//! Resource governor for synthesis runs: budgets, cooperative
//! cancellation, and structured abort reasons.
//!
//! The decision procedure is complete but exponential in the worst case
//! (Theorem 4.2), so a production caller needs a way to bound a run
//! without killing the process: a [`Budget`] declares the limits, a
//! [`Governor`] is the shared, cheaply-pollable handle every hot loop
//! checks at bounded intervals, and an [`AbortReason`] says exactly
//! which limit tripped.
//!
//! Determinism contract: the *capped* budgets (`max_states`,
//! `max_deletion_work`, `max_minimize_attempts`) are checked against
//! deterministic work counters — tableau nodes after each in-order
//! batch commit, deletion worklist pops plus certificate builds,
//! minimization attempts — so a cap abort happens at the identical
//! point with the identical counters at every worker-thread count.
//! Only the wall-clock deadline and the external cancel flag are
//! allowed to fire nondeterministically.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::time::{Duration, Instant};

/// Resource limits for one synthesis run. `None` means unlimited; the
/// default budget is fully unlimited, under which a governed run is
/// byte-identical to an ungoverned one.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Budget {
    /// Wall-clock deadline, measured from [`Governor`] creation. The
    /// only nondeterministic budget (besides external cancellation).
    pub deadline: Option<Duration>,
    /// Maximum tableau nodes. Checked after each in-order batch commit,
    /// so the abort point is bit-identical across thread counts.
    pub max_states: Option<usize>,
    /// Maximum deletion work: worklist pops plus fulfillment-certificate
    /// builds (the deletion engine is single-threaded, so the counter is
    /// trivially deterministic).
    pub max_deletion_work: Option<usize>,
    /// Maximum candidate merges the semantic minimizer may verify.
    pub max_minimize_attempts: Option<usize>,
    /// Maximum guard-refinement rounds the extraction-verification
    /// stage may run before giving up with a structured
    /// `ExtractionGap` failure. `None` uses the pipeline's default
    /// cap; `Some(0)` forbids refinement entirely (the extracted
    /// program must verify as-is). Reaching this cap does not abort
    /// the run — it degrades the verification verdict instead — so
    /// there is no matching [`AbortReason`].
    pub max_extract_refine_rounds: Option<usize>,
    /// Maximum candidate models the CEGIS bounded-synthesis engine may
    /// examine. The candidate counter is a deterministic work counter
    /// (the engine's search is sequential and its branching order
    /// fixed), so a cap abort happens at the identical candidate with
    /// the identical counters at every thread count.
    pub max_cegis_candidates: Option<usize>,
}

impl Budget {
    /// A budget with no limits at all.
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// Whether every limit is off.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.max_states.is_none()
            && self.max_deletion_work.is_none()
            && self.max_minimize_attempts.is_none()
            && self.max_extract_refine_rounds.is_none()
            && self.max_cegis_candidates.is_none()
    }
}

/// Why a governed run stopped early.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AbortReason {
    /// The wall-clock deadline passed.
    DeadlineExceeded {
        /// The configured deadline.
        limit: Duration,
        /// Time elapsed when the deadline check fired.
        elapsed: Duration,
    },
    /// The tableau reached the state cap.
    StateCapExceeded {
        /// The configured cap.
        cap: usize,
        /// Node count at the (deterministic) abort point.
        reached: usize,
    },
    /// The deletion engine reached its work cap.
    DeletionWorkCapExceeded {
        /// The configured cap.
        cap: usize,
        /// Worklist pops + certificate builds at the abort point.
        reached: usize,
    },
    /// The semantic minimizer reached its attempt cap.
    MinimizeAttemptCapExceeded {
        /// The configured cap.
        cap: usize,
        /// Candidate merges verified at the abort point.
        reached: usize,
    },
    /// The CEGIS engine reached its candidate cap.
    CegisCandidateCapExceeded {
        /// The configured cap.
        cap: usize,
        /// Candidate models examined at the (deterministic) abort point.
        reached: usize,
    },
    /// The CEGIS engine exhausted its bounded search space without
    /// finding a program, while the tableau certificate shows the
    /// specification *is* satisfiable — the bound was too small, so the
    /// run stops structurally instead of claiming impossibility.
    CegisBoundExhausted {
        /// The obligation-queue bound the search widened up to (the
        /// model may hold up to this many simultaneously tracked
        /// eventuality obligations per state, which caps the number of
        /// copies per admissible valuation).
        bound: usize,
        /// Candidate models examined across all bounds.
        candidates: usize,
    },
    /// An external caller flipped the cancel flag.
    Cancelled,
    /// A worker thread panicked; the scheduler contained the panic and
    /// shut the remaining workers down cleanly.
    WorkerPanic {
        /// The panic payload, rendered.
        message: String,
    },
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbortReason::DeadlineExceeded { limit, elapsed } => {
                write!(f, "deadline of {limit:?} exceeded after {elapsed:?}")
            }
            AbortReason::StateCapExceeded { cap, reached } => {
                write!(f, "state cap of {cap} exceeded ({reached} tableau nodes)")
            }
            AbortReason::DeletionWorkCapExceeded { cap, reached } => {
                write!(f, "deletion work cap of {cap} exceeded ({reached} work units)")
            }
            AbortReason::MinimizeAttemptCapExceeded { cap, reached } => {
                write!(
                    f,
                    "minimize attempt cap of {cap} exceeded ({reached} attempts)"
                )
            }
            AbortReason::CegisCandidateCapExceeded { cap, reached } => {
                write!(
                    f,
                    "cegis candidate cap of {cap} exceeded ({reached} candidates)"
                )
            }
            AbortReason::CegisBoundExhausted { bound, candidates } => {
                write!(
                    f,
                    "cegis bound exhausted at queue bound {bound} \
                     ({candidates} candidates, spec still satisfiable)"
                )
            }
            AbortReason::Cancelled => write!(f, "cancelled by the caller"),
            AbortReason::WorkerPanic { message } => {
                write!(f, "worker panic: {message}")
            }
        }
    }
}

/// The pipeline phase a governed run was in when it aborted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Tableau construction (step 1).
    Build,
    /// Deletion rules (step 2).
    Deletion,
    /// Fragments + unraveling (steps 3–4).
    Unravel,
    /// Semantic minimization.
    Minimize,
    /// Program extraction + in-pipeline extraction verification
    /// (step 5).
    Extract,
    /// The CEGIS bounded-synthesis engine's guess–verify–block loop
    /// (the alternative backend; not part of the tableau pipeline).
    Cegis,
}

impl Phase {
    /// Stable machine-readable name (used as a JSON value by
    /// `bench_json` and in CLI output).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Build => "build",
            Phase::Deletion => "deletion",
            Phase::Unravel => "unravel",
            Phase::Minimize => "minimize",
            Phase::Extract => "extract",
            Phase::Cegis => "cegis",
        }
    }

    /// Stable small integer for the governor's atomic phase register.
    fn as_u8(self) -> u8 {
        match self {
            Phase::Build => 0,
            Phase::Deletion => 1,
            Phase::Unravel => 2,
            Phase::Minimize => 3,
            Phase::Extract => 4,
            Phase::Cegis => 5,
        }
    }

    /// Inverse of [`Phase::as_u8`].
    fn from_u8(v: u8) -> Phase {
        match v {
            0 => Phase::Build,
            1 => Phase::Deletion,
            2 => Phase::Unravel,
            3 => Phase::Minimize,
            5 => Phase::Cegis,
            _ => Phase::Extract,
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The shared governor handle: a [`Budget`] plus the run's start
/// instant and an external cancel flag. Shared by reference across the
/// pipeline (and across expansion worker threads); every check is a
/// couple of branch instructions when the corresponding limit is off.
///
/// A capped budget trips as soon as its deterministic counter *reaches*
/// the cap (`counter >= cap`), so `max_minimize_attempts: Some(n)`
/// permits exactly `n` verified candidates.
#[derive(Debug)]
pub struct Governor {
    budget: Budget,
    start: Instant,
    cancel: AtomicBool,
    /// The pipeline phase the governed run is currently in (the run
    /// reports transitions via [`Governor::enter_phase`]); readable by
    /// other threads for live progress.
    phase: AtomicU8,
    /// Test hook: the expansion worker executing the batch with this
    /// sequence id panics deterministically (batch numbering is
    /// identical at every thread count).
    panic_batch: Option<usize>,
    /// Test hook: entering this phase self-cancels the run, so
    /// mid-phase external-cancel aborts reproduce deterministically at
    /// every thread count (the first realtime poll of the phase trips).
    cancel_phase: Option<Phase>,
}

impl Governor {
    /// A governor that never aborts (unless a worker genuinely panics).
    pub fn unlimited() -> Governor {
        Governor::with_budget(Budget::unlimited())
    }

    /// A governor enforcing `budget`, with the deadline clock starting
    /// now.
    pub fn with_budget(budget: Budget) -> Governor {
        Governor {
            budget,
            start: Instant::now(),
            cancel: AtomicBool::new(false),
            phase: AtomicU8::new(Phase::Build.as_u8()),
            panic_batch: None,
            cancel_phase: None,
        }
    }

    /// The budget this governor enforces.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Wall-clock time since the governor was created.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Requests cooperative cancellation: the next realtime poll in any
    /// phase aborts with [`AbortReason::Cancelled`]. Safe to call from
    /// another thread through a shared reference.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Whether [`Governor::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    /// Records that the governed run entered `phase`. Called by the
    /// pipeline at each phase start; other threads may read the current
    /// phase for live progress ([`Governor::current_phase`]).
    pub fn enter_phase(&self, phase: Phase) {
        self.phase.store(phase.as_u8(), Ordering::Relaxed);
    }

    /// The pipeline phase the governed run last reported entering.
    pub fn current_phase(&self) -> Phase {
        Phase::from_u8(self.phase.load(Ordering::Relaxed))
    }

    /// Polls the nondeterministic triggers: the cancel flag and the
    /// wall-clock deadline.
    pub fn check_realtime(&self) -> Result<(), AbortReason> {
        if self.is_cancelled() {
            return Err(AbortReason::Cancelled);
        }
        if self.cancel_phase == Some(self.current_phase()) {
            return Err(AbortReason::Cancelled);
        }
        if let Some(limit) = self.budget.deadline {
            let elapsed = self.start.elapsed();
            if elapsed >= limit {
                return Err(AbortReason::DeadlineExceeded { limit, elapsed });
            }
        }
        Ok(())
    }

    /// Polls the tableau state cap against the current node count.
    #[inline]
    pub fn check_states(&self, states: usize) -> Result<(), AbortReason> {
        match self.budget.max_states {
            Some(cap) if states >= cap => Err(AbortReason::StateCapExceeded {
                cap,
                reached: states,
            }),
            _ => Ok(()),
        }
    }

    /// Polls the deletion work cap against worklist pops + cert builds.
    #[inline]
    pub fn check_deletion_work(&self, work: usize) -> Result<(), AbortReason> {
        match self.budget.max_deletion_work {
            Some(cap) if work >= cap => Err(AbortReason::DeletionWorkCapExceeded {
                cap,
                reached: work,
            }),
            _ => Ok(()),
        }
    }

    /// Polls the minimize attempt cap against attempts performed so far.
    #[inline]
    pub fn check_minimize_attempts(&self, attempts: usize) -> Result<(), AbortReason> {
        match self.budget.max_minimize_attempts {
            Some(cap) if attempts >= cap => Err(AbortReason::MinimizeAttemptCapExceeded {
                cap,
                reached: attempts,
            }),
            _ => Ok(()),
        }
    }

    /// Polls the CEGIS candidate cap against candidates examined so far.
    #[inline]
    pub fn check_cegis_candidates(&self, candidates: usize) -> Result<(), AbortReason> {
        match self.budget.max_cegis_candidates {
            Some(cap) if candidates >= cap => Err(AbortReason::CegisCandidateCapExceeded {
                cap,
                reached: candidates,
            }),
            _ => Ok(()),
        }
    }

    /// Test hook: arranges for the expansion worker that executes the
    /// batch with sequence id `seq` to panic. Batch numbering is
    /// deterministic across thread counts, so panic-containment tests
    /// reproduce exactly at 1, 2, and 8 workers.
    pub fn inject_worker_panic_at_batch(mut self, seq: usize) -> Governor {
        self.panic_batch = Some(seq);
        self
    }

    /// Test hook: the run cancels itself upon *entering* `phase` — the
    /// first realtime poll of that phase trips with
    /// [`AbortReason::Cancelled`]. Phase entries and realtime poll
    /// sites are thread-count-independent, so mid-phase cancel aborts
    /// reproduce deterministically at 1, 2, and 8 workers (unlike an
    /// asynchronous [`Governor::cancel`] from another thread, which
    /// lands wherever the race does).
    pub fn cancel_at_phase(mut self, phase: Phase) -> Governor {
        self.cancel_phase = Some(phase);
        self
    }

    /// Whether the injection hook targets batch `seq`.
    pub(crate) fn should_panic_at_batch(&self, seq: usize) -> bool {
        self.panic_batch == Some(seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let g = Governor::unlimited();
        assert!(g.budget().is_unlimited());
        assert!(g.check_realtime().is_ok());
        assert!(g.check_states(usize::MAX).is_ok());
        assert!(g.check_deletion_work(usize::MAX).is_ok());
        assert!(g.check_minimize_attempts(usize::MAX).is_ok());
        assert!(g.check_cegis_candidates(usize::MAX).is_ok());
    }

    #[test]
    fn caps_trip_on_reaching_the_cap() {
        let g = Governor::with_budget(Budget {
            max_states: Some(10),
            max_deletion_work: Some(20),
            max_minimize_attempts: Some(30),
            ..Budget::default()
        });
        assert!(g.check_states(9).is_ok());
        assert_eq!(
            g.check_states(10),
            Err(AbortReason::StateCapExceeded {
                cap: 10,
                reached: 10
            })
        );
        assert!(g.check_deletion_work(19).is_ok());
        assert_eq!(
            g.check_deletion_work(25),
            Err(AbortReason::DeletionWorkCapExceeded {
                cap: 20,
                reached: 25
            })
        );
        assert!(g.check_minimize_attempts(29).is_ok());
        assert_eq!(
            g.check_minimize_attempts(30),
            Err(AbortReason::MinimizeAttemptCapExceeded {
                cap: 30,
                reached: 30
            })
        );
    }

    #[test]
    fn cegis_candidate_cap_trips_on_reaching_the_cap() {
        let g = Governor::with_budget(Budget {
            max_cegis_candidates: Some(40),
            ..Budget::default()
        });
        assert!(!g.budget().is_unlimited());
        assert!(g.check_cegis_candidates(39).is_ok());
        assert_eq!(
            g.check_cegis_candidates(40),
            Err(AbortReason::CegisCandidateCapExceeded {
                cap: 40,
                reached: 40
            })
        );
    }

    #[test]
    fn cancel_flag_trips_realtime_poll() {
        let g = Governor::unlimited();
        assert!(g.check_realtime().is_ok());
        g.cancel();
        assert!(g.is_cancelled());
        assert_eq!(g.check_realtime(), Err(AbortReason::Cancelled));
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let g = Governor::with_budget(Budget {
            deadline: Some(Duration::ZERO),
            ..Budget::default()
        });
        assert!(matches!(
            g.check_realtime(),
            Err(AbortReason::DeadlineExceeded { .. })
        ));
    }

    #[test]
    fn phase_register_tracks_transitions() {
        let g = Governor::unlimited();
        assert_eq!(g.current_phase(), Phase::Build);
        g.enter_phase(Phase::Minimize);
        assert_eq!(g.current_phase(), Phase::Minimize);
        g.enter_phase(Phase::Extract);
        assert_eq!(g.current_phase(), Phase::Extract);
        g.enter_phase(Phase::Cegis);
        assert_eq!(g.current_phase(), Phase::Cegis);
    }

    #[test]
    fn cancel_at_phase_trips_only_in_that_phase() {
        let g = Governor::unlimited().cancel_at_phase(Phase::Minimize);
        assert!(g.check_realtime().is_ok()); // Build
        g.enter_phase(Phase::Deletion);
        assert!(g.check_realtime().is_ok());
        g.enter_phase(Phase::Minimize);
        assert_eq!(g.check_realtime(), Err(AbortReason::Cancelled));
        assert!(!g.is_cancelled(), "phase self-cancel is not the external flag");
    }

    #[test]
    fn abort_reasons_render() {
        let r = AbortReason::StateCapExceeded {
            cap: 5,
            reached: 7,
        };
        assert_eq!(r.to_string(), "state cap of 5 exceeded (7 tableau nodes)");
        assert_eq!(AbortReason::Cancelled.to_string(), "cancelled by the caller");
        assert_eq!(Phase::Minimize.to_string(), "minimize");
        assert_eq!(
            AbortReason::CegisCandidateCapExceeded { cap: 8, reached: 8 }.to_string(),
            "cegis candidate cap of 8 exceeded (8 candidates)"
        );
        assert_eq!(
            AbortReason::CegisBoundExhausted {
                bound: 2,
                candidates: 512
            }
            .to_string(),
            "cegis bound exhausted at queue bound 2 (512 candidates, spec still satisfiable)"
        );
        assert_eq!(Phase::Cegis.to_string(), "cegis");
    }
}
