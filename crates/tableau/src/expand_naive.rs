//! Reference (`slow-reference`) implementations of the `Blocks` and
//! `Tiles` expansions, kept verbatim from before the build-phase
//! acceleration work.
//!
//! These are the oracle for the optimized kernels in [`crate::expand`]:
//! equivalence tests (and the `slow-reference` bench head-to-head)
//! assert that the fast path produces bit-identical label sets. The
//! propositional consistency check here deliberately re-derives the
//! literal table from the label via a `HashMap` walk — the exact
//! pre-optimization behavior — rather than using the precomputed
//! literal masks of [`ftsyn_ctl::Closure::is_prop_consistent`].

use ftsyn_ctl::{Closure, ClosureIdx, EntryKind, Expansion, LabelSet, PropId};
use std::collections::{HashMap, HashSet};

/// Propositional consistency via a per-call `HashMap` over the label's
/// literals: no `false`, and no `p` together with `¬p`.
pub fn naive_is_prop_consistent(closure: &Closure, label: &LabelSet) -> bool {
    let mut seen: HashMap<PropId, [bool; 2]> = HashMap::new();
    for idx in label.iter() {
        match closure.entry(idx).kind {
            EntryKind::False => return false,
            EntryKind::Lit { prop, positive } => {
                let polar = seen.entry(prop).or_default();
                polar[positive as usize] = true;
                if polar[0] && polar[1] {
                    return false;
                }
            }
            _ => {}
        }
    }
    true
}

/// Pre-optimization `Blocks(d)` (see [`crate::expand::blocks`] for the
/// algorithm documentation; the two must stay output-identical).
pub fn blocks_naive(closure: &Closure, label: &LabelSet) -> Vec<LabelSet> {
    let mut done: Vec<LabelSet> = Vec::new();
    let mut done_set: HashSet<LabelSet> = HashSet::new();
    let mut betas: Vec<ClosureIdx> = Vec::new();
    let mut alphas: Vec<ClosureIdx> = Vec::new();
    for idx in label.iter() {
        match closure.expansion(idx) {
            Expansion::Beta(_, _) => betas.push(idx),
            _ => alphas.push(idx),
        }
    }
    let mut stack: Vec<(LabelSet, Vec<ClosureIdx>, Vec<ClosureIdx>)> =
        vec![(label.clone(), alphas, betas)];

    while let Some((acc, mut alphas, mut betas)) = stack.pop() {
        if alphas.is_empty() && betas.is_empty() {
            if done_set.insert(acc.clone()) {
                done.push(acc);
            }
            continue;
        }
        if let Some(idx) = alphas.pop() {
            match closure.expansion(idx) {
                Expansion::Elementary => {
                    if matches!(closure.entry(idx).kind, EntryKind::False) {
                        continue; // propositionally inconsistent branch
                    }
                    stack.push((acc, alphas, betas));
                }
                Expansion::Alpha(a, b) => {
                    let mut acc = acc;
                    for comp in [a, b] {
                        if acc.insert(comp) {
                            match closure.expansion(comp) {
                                Expansion::Beta(_, _) => betas.push(comp),
                                _ => alphas.push(comp),
                            }
                        }
                    }
                    if naive_is_prop_consistent(closure, &acc) {
                        stack.push((acc, alphas, betas));
                    }
                }
                Expansion::Beta(_, _) => unreachable!("betas are queued separately"),
            }
            continue;
        }
        let mut chosen = betas.len() - 1;
        let mut forced: Option<ClosureIdx> = None;
        'scan: for (bi, &idx) in betas.iter().enumerate() {
            let Expansion::Beta(a, b) = closure.expansion(idx) else {
                unreachable!("beta queue holds only beta formulae")
            };
            if acc.contains(a) || acc.contains(b) {
                chosen = bi;
                forced = None;
                break 'scan; // discharged: resolves for free
            }
            if forced.is_none() {
                let lit_blocked = |comp: ClosureIdx| -> bool {
                    match closure.entry(comp).kind {
                        EntryKind::False => true,
                        EntryKind::Lit { .. } => {
                            let mut probe = acc.clone();
                            probe.insert(comp);
                            !naive_is_prop_consistent(closure, &probe)
                        }
                        _ => false,
                    }
                };
                let a_blocked = lit_blocked(a);
                let b_blocked = lit_blocked(b);
                if a_blocked || b_blocked {
                    chosen = bi;
                    forced = Some(if a_blocked { b } else { a });
                    // Keep scanning: a discharged β is cheaper still.
                }
            }
        }
        let idx = betas.swap_remove(chosen);
        let Expansion::Beta(a, b) = closure.expansion(idx) else {
            unreachable!("beta queue holds only beta formulae")
        };
        if acc.contains(a) || acc.contains(b) {
            stack.push((acc, alphas, betas));
            continue;
        }
        let choices: &[ClosureIdx] = match &forced {
            Some(comp) => std::slice::from_ref(comp),
            None => &[a, b],
        };
        for &comp in choices {
            let mut acc2 = acc.clone();
            let mut alphas2 = alphas.clone();
            let mut betas2 = betas.clone();
            if acc2.insert(comp) {
                match closure.expansion(comp) {
                    Expansion::Beta(_, _) => betas2.push(comp),
                    _ => alphas2.push(comp),
                }
            }
            if naive_is_prop_consistent(closure, &acc2) {
                stack.push((acc2, alphas2, betas2));
            }
        }
    }

    // Split labels that have AX formulae but no EX formula at all.
    let mut out: Vec<LabelSet> = Vec::new();
    let mut out_set: HashSet<LabelSet> = HashSet::new();
    for acc in done {
        let mut has_ax = false;
        let mut has_ex = false;
        for idx in acc.iter() {
            match closure.entry(idx).kind {
                EntryKind::Ax { .. } => has_ax = true,
                EntryKind::Ex { .. } => has_ex = true,
                _ => {}
            }
        }
        if has_ax && !has_ex {
            for i in 0..closure.num_procs() {
                let mut v = acc.clone();
                v.insert(closure.ex_true(i));
                if out_set.insert(v.clone()) {
                    out.push(v);
                }
            }
        } else if out_set.insert(acc.clone()) {
            out.push(acc);
        }
    }
    let minimal: Vec<LabelSet> = out
        .iter()
        .filter(|a| !out.iter().any(|b| *b != **a && b.is_subset(a)))
        .cloned()
        .collect();
    minimal
}

/// Pre-optimization `Tiles(c)` with the original O(n²) `Vec::contains`
/// dedup (see [`crate::expand::tiles`]).
pub fn tiles_naive(
    closure: &Closure,
    props: &ftsyn_ctl::PropTable,
    label: &LabelSet,
) -> Vec<crate::expand::Tile> {
    use crate::expand::Tile;
    let mut ax_bodies: Vec<Vec<ClosureIdx>> = Vec::new();
    let mut ex_bodies: Vec<Vec<ClosureIdx>> = Vec::new();
    let ensure = |v: &mut Vec<Vec<ClosureIdx>>, i: usize| {
        while v.len() <= i {
            v.push(Vec::new());
        }
    };
    let mut any_nexttime = false;
    for idx in label.iter() {
        match closure.entry(idx).kind {
            EntryKind::Ax { proc, body } => {
                ensure(&mut ax_bodies, proc);
                ax_bodies[proc].push(body);
                any_nexttime = true;
            }
            EntryKind::Ex { proc, body } => {
                ensure(&mut ex_bodies, proc);
                ex_bodies[proc].push(body);
                any_nexttime = true;
            }
            _ => {}
        }
    }
    if !any_nexttime {
        return vec![Tile::Dummy];
    }
    let mut out = Vec::new();
    for (proc, exs) in ex_bodies.iter().enumerate() {
        for &e in exs {
            let mut or_label = closure.empty_label();
            if let Some(axs) = ax_bodies.get(proc) {
                for &a in axs {
                    or_label.insert(a);
                }
            }
            // Frame condition (Definition 5.1.2): pin every proposition
            // owned by another process to its current value. The naive
            // oracle re-derives the valuation per tile; the optimized
            // kernel shares it across the process's tiles.
            for p in props.iter() {
                match props.owner(p) {
                    ftsyn_ctl::Owner::Process(j) if j != proc => {
                        let positive = label.iter().any(|idx| {
                            matches!(
                                closure.entry(idx).kind,
                                EntryKind::Lit { prop, positive: true } if prop == p
                            )
                        });
                        let lit = closure
                            .literal(p, positive)
                            .expect("all literals are registered in the closure");
                        or_label.insert(lit);
                    }
                    _ => {}
                }
            }
            or_label.insert(e);
            let tile = Tile::Or { proc, or_label };
            if !out.contains(&tile) {
                out.push(tile);
            }
        }
    }
    out
}
