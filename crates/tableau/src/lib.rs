//! The AND/OR tableau engine for fault-tolerant CTL synthesis.
//!
//! Implements steps 1–2 of the synthesis method of *Attie, Arora,
//! Emerson — Synthesis of Fault-Tolerant Concurrent Programs* (TOPLAS
//! 2004):
//!
//! * AND/OR graphs with label-deduplicated nodes ([`Tableau`]);
//! * the `Blocks` / `Tiles` expansions of the CTL decision procedure,
//!   including both `Tiles` special cases ([`blocks`], [`tiles`]);
//! * fault-successor generation from guarded-command fault actions with
//!   per-action tolerance labels (multitolerance-ready, [`build`],
//!   [`FaultSpec`]);
//! * the five deletion rules of Figure 2, with *fault-free* full-subdag
//!   and fault-free-path certification of eventualities
//!   ([`apply_deletion_rules`]), exposing the rank certificates the
//!   unraveling step needs to extract acyclic fragments
//!   ([`au_fulfillment`], [`eu_fulfillment`], [`Fulfillment`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod build;
mod cache;
mod checkpoint;
mod delete;
mod expand;
mod governor;
#[cfg(any(test, feature = "slow-reference"))]
mod expand_naive;
mod graph;
#[cfg(test)]
mod prop_tests;
mod scan;

#[cfg(any(test, feature = "slow-reference"))]
pub use build::build_reference;
pub use build::{
    build, build_governed, build_level_sync, build_level_sync_governed, build_resume_governed,
    build_shared_cache_governed, build_with_cache, build_with_threads, valuation_of, BuildAbort,
    BuildProfile, FaultSpec,
};
pub use cache::{CacheFill, CacheLimits, ExpansionCache};
pub use checkpoint::{
    blob_checksum, spec_fingerprint, Checkpoint, CheckpointError, PendingBatch,
    CHECKPOINT_FORMAT_VERSION, CHECKPOINT_MIN_FORMAT_VERSION,
};
#[cfg(any(test, feature = "slow-reference"))]
pub use delete::{apply_deletion_rules_naive_mode, au_fulfillment_naive, eu_fulfillment_naive};
pub use delete::{
    apply_deletion_rules, apply_deletion_rules_governed, apply_deletion_rules_mode,
    apply_deletion_rules_profiled, au_fulfillment, eu_fulfillment, CertMode, DeletionAbort,
    DeletionProfile, DeletionStats, Fulfillment,
};
pub use governor::{AbortReason, Budget, Governor, Phase};
#[cfg(any(test, feature = "slow-reference"))]
pub use expand_naive::{blocks_naive, naive_is_prop_consistent, tiles_naive};
pub use expand::{blocks, tiles, Tile};
pub use graph::{EdgeKind, Node, NodeId, NodeKind, Tableau};
pub use scan::{earliest_success, ScanStats, SCAN_CHUNK};
