//! Build-phase checkpoints: serialize the work-stealing scheduler's
//! exact state at a governed abort so a request can *resume* under a
//! raised budget instead of restarting from scratch.
//!
//! A [`Checkpoint`] captures everything the deterministic scheduler
//! needs to continue as if the abort never happened: the partial
//! tableau (nodes, labels, edge and predecessor order — the intern
//! tables and edge-dedup set are re-derived bit-identically by
//! [`Tableau::from_build_nodes`]), the injected-but-uncommitted batches
//! in sequence order, the fresh nodes of the last committed batch that
//! were never batched (the governor polls *between* a commit and its
//! fresh-node injection), and the deterministic work counters
//! (`injected`, `committed`, per-level widths, nodes expanded, intern
//! probes). Because commits are applied strictly in sequence order at
//! every thread count, a resumed build replays the identical commit
//! sequence and the final tableau — and hence the synthesized program —
//! is byte-identical to an uninterrupted run (`conformance/tests/resume.rs`
//! pins this at 1/2/8 threads).
//!
//! The blob format is a versioned, length-prefixed little-endian binary
//! encoding with a leading magic and a *specification fingerprint*
//! ([`spec_fingerprint`]); [`Checkpoint::decode`] rejects bad magics,
//! unknown versions, and truncated or corrupt payloads, and
//! [`Checkpoint::validate`] rejects a blob whose fingerprint does not
//! match the problem it is being resumed against — a stale checkpoint
//! fails with a structured [`CheckpointError`], never a silent resume.

use crate::build::FaultSpec;
use crate::graph::{EdgeKind, NodeId, NodeKind, Tableau};
use ftsyn_ctl::{Closure, LabelSet, PropTable};
use std::fmt;

/// The magic bytes every checkpoint blob starts with.
const MAGIC: &[u8; 8] = b"FTSYNCKP";

/// Current checkpoint format version: what [`Checkpoint::encode`]
/// writes. Bump on any layout change.
///
/// v2 added a payload checksum after the version field, so corruption
/// anywhere in the blob — including counters a structural parse would
/// swallow silently — fails with [`CheckpointError::ChecksumMismatch`].
/// [`Checkpoint::decode`] still reads v1 blobs (same payload layout,
/// no checksum field) so checkpoints written by earlier builds remain
/// resumable after an upgrade; versions above
/// [`CHECKPOINT_FORMAT_VERSION`] are rejected with
/// [`CheckpointError::UnsupportedVersion`].
pub const CHECKPOINT_FORMAT_VERSION: u32 = 2;

/// Oldest checkpoint format version [`Checkpoint::decode`] accepts.
pub const CHECKPOINT_MIN_FORMAT_VERSION: u32 = 1;

/// A structured checkpoint failure: why a blob cannot be decoded or
/// resumed. Returned instead of silently resuming stale or damaged
/// state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// The blob does not start with the checkpoint magic.
    BadMagic,
    /// The blob's format version is not the one this build understands.
    UnsupportedVersion {
        /// Version found in the blob.
        found: u32,
        /// Version this build writes and reads.
        expected: u32,
    },
    /// The blob ended before its structure was complete.
    Truncated,
    /// The blob's integrity checksum does not match its payload: the
    /// bytes were damaged (torn write, bit rot) after encoding.
    ChecksumMismatch {
        /// Checksum stored in the blob header.
        stored: u64,
        /// Checksum computed over the payload as read.
        computed: u64,
    },
    /// The blob is structurally invalid (bad tag, out-of-range id,
    /// trailing bytes, …).
    Corrupt(String),
    /// The blob was taken from a different synthesis problem: its
    /// specification fingerprint does not match the problem it is being
    /// resumed against.
    SpecHashMismatch {
        /// Fingerprint stored in the blob.
        found: u64,
        /// Fingerprint of the problem being resumed.
        expected: u64,
    },
    /// The blob's closure shape (formula count or label word width)
    /// does not match the problem being resumed — the labels could not
    /// even be interpreted.
    ClosureShapeMismatch {
        /// `(closure_len, label_words)` stored in the blob.
        found: (usize, usize),
        /// `(closure_len, label_words)` of the problem being resumed.
        expected: (usize, usize),
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a checkpoint blob (bad magic)"),
            CheckpointError::UnsupportedVersion { found, expected } => write!(
                f,
                "unsupported checkpoint format version {found} (this build reads {expected})"
            ),
            CheckpointError::Truncated => write!(f, "checkpoint blob is truncated"),
            CheckpointError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checkpoint blob is damaged: payload checksum {computed:#018x} \
                 does not match the stored {stored:#018x}"
            ),
            CheckpointError::Corrupt(msg) => write!(f, "corrupt checkpoint blob: {msg}"),
            CheckpointError::SpecHashMismatch { found, expected } => write!(
                f,
                "checkpoint belongs to a different problem: spec fingerprint \
                 {found:#018x} does not match {expected:#018x}"
            ),
            CheckpointError::ClosureShapeMismatch { found, expected } => write!(
                f,
                "checkpoint closure shape {found:?} does not match the problem's {expected:?}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// An injected-but-uncommitted scheduler batch: its dense sequence id,
/// BFS level, and the ids of the nodes it expands. Kind and label are
/// *not* stored — they are re-snapshotted from the restored tableau on
/// resume, exactly as the original injection snapshotted them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PendingBatch {
    /// Dense batch sequence id (commit order).
    pub seq: usize,
    /// BFS level of the batch's nodes (bookkeeping for profile levels).
    pub level: usize,
    /// The nodes the batch expands, in discovery order.
    pub nodes: Vec<NodeId>,
}

/// A resumable snapshot of a governed tableau build at its abort point.
/// Produced by the build engine on a Build-phase abort (carried by
/// `BuildAbort::checkpoint` and `AbortedSynthesis::checkpoint`);
/// consumed by `build_resume` / `synthesize_resume`.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// Specification fingerprint of the problem the build belongs to
    /// (see [`spec_fingerprint`]).
    pub(crate) spec_hash: u64,
    /// Closure size the labels are defined over.
    pub(crate) closure_len: usize,
    /// `u64` words per label bitset.
    pub(crate) label_words: usize,
    /// The partial tableau: every committed node with its edges.
    pub(crate) tableau: Tableau,
    /// Injected-but-uncommitted batches, in sequence order.
    pub(crate) pending: Vec<PendingBatch>,
    /// Fresh nodes of the last committed batch, never injected (the
    /// governor poll sits between commit and injection).
    pub(crate) fresh: Vec<NodeId>,
    /// BFS level the fresh nodes belong to.
    pub(crate) fresh_level: usize,
    /// Batches injected so far (the next batch takes this sequence id).
    pub(crate) injected: usize,
    /// Batches committed so far (the next commit waits for this
    /// sequence id).
    pub(crate) committed: usize,
    /// Nodes expanded per BFS level so far (profile bookkeeping).
    pub(crate) level_widths: Vec<usize>,
    /// Nodes expanded so far (profile counter, cumulative on resume).
    pub(crate) nodes_expanded: usize,
    /// Intern probes so far (profile counter, cumulative on resume).
    pub(crate) intern_probes: usize,
}

impl Checkpoint {
    /// The specification fingerprint this checkpoint was taken under.
    pub fn spec_hash(&self) -> u64 {
        self.spec_hash
    }

    /// Tableau nodes captured in the checkpoint.
    pub fn tableau_nodes(&self) -> usize {
        self.tableau.len()
    }

    /// Uncommitted scheduler batches captured in the checkpoint
    /// (pending injected batches plus the not-yet-batched fresh nodes).
    pub fn pending_batches(&self) -> usize {
        self.pending.len() + self.fresh.len().div_ceil(crate::build::BATCH_SIZE)
    }

    /// Rejects resuming this checkpoint against a problem whose
    /// specification fingerprint or closure shape differs — the
    /// "no silent resume of a stale blob" contract.
    pub fn validate(
        &self,
        expected_spec_hash: u64,
        expected_closure_len: usize,
        expected_label_words: usize,
    ) -> Result<(), CheckpointError> {
        if self.spec_hash != expected_spec_hash {
            return Err(CheckpointError::SpecHashMismatch {
                found: self.spec_hash,
                expected: expected_spec_hash,
            });
        }
        if self.closure_len != expected_closure_len || self.label_words != expected_label_words {
            return Err(CheckpointError::ClosureShapeMismatch {
                found: (self.closure_len, self.label_words),
                expected: (expected_closure_len, expected_label_words),
            });
        }
        Ok(())
    }

    /// Serializes the checkpoint into a self-describing binary blob
    /// (magic, format version, payload checksum, fingerprint, then the
    /// scheduler state).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.tableau.len() * (8 * self.label_words + 16));
        put_u64(&mut out, self.spec_hash);
        put_u64(&mut out, self.closure_len as u64);
        put_u64(&mut out, self.label_words as u64);
        put_u64(&mut out, self.tableau.len() as u64);
        for node in self.tableau.nodes() {
            let mut flags = 0u8;
            if node.kind == NodeKind::And {
                flags |= 1;
            }
            if node.dummy {
                flags |= 2;
            }
            out.push(flags);
            debug_assert_eq!(node.label.words().len(), self.label_words);
            for &w in node.label.words() {
                put_u64(&mut out, w);
            }
            put_edges(&mut out, &node.succ);
            put_edges(&mut out, &node.pred);
        }
        put_u64(&mut out, self.pending.len() as u64);
        for batch in &self.pending {
            put_u64(&mut out, batch.seq as u64);
            put_u64(&mut out, batch.level as u64);
            put_ids(&mut out, &batch.nodes);
        }
        put_ids(&mut out, &self.fresh);
        put_u64(&mut out, self.fresh_level as u64);
        put_u64(&mut out, self.injected as u64);
        put_u64(&mut out, self.committed as u64);
        put_u64(&mut out, self.level_widths.len() as u64);
        for &w in &self.level_widths {
            put_u64(&mut out, w as u64);
        }
        put_u64(&mut out, self.nodes_expanded as u64);
        put_u64(&mut out, self.intern_probes as u64);
        // Prepend the header last: the checksum covers every payload
        // byte, so any later flip — even in a counter a structural
        // parse would accept — is detected.
        let mut blob = Vec::with_capacity(out.len() + MAGIC.len() + 12);
        blob.extend_from_slice(MAGIC);
        put_u32(&mut blob, CHECKPOINT_FORMAT_VERSION);
        put_u64(&mut blob, blob_checksum(&out));
        blob.extend_from_slice(&out);
        blob
    }

    /// Deserializes a blob produced by [`Checkpoint::encode`],
    /// rebuilding the tableau (intern tables and edge-dedup set
    /// re-derived bit-identically).
    ///
    /// Accepts every version from [`CHECKPOINT_MIN_FORMAT_VERSION`] up
    /// to [`CHECKPOINT_FORMAT_VERSION`]: v1 blobs (written before the
    /// payload checksum existed) share the payload layout and decode
    /// without the integrity check, so `.ckpt` files from earlier
    /// builds stay resumable.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::BadMagic`] /
    /// [`CheckpointError::UnsupportedVersion`] /
    /// [`CheckpointError::Truncated`] / [`CheckpointError::Corrupt`]
    /// for blobs this build cannot interpret. Fingerprint matching is a
    /// separate step — call [`Checkpoint::validate`] against the
    /// problem before resuming.
    pub fn decode(bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
        let mut r = Reader { bytes, pos: 0 };
        if r.take(MAGIC.len())? != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = r.u32()?;
        if !(CHECKPOINT_MIN_FORMAT_VERSION..=CHECKPOINT_FORMAT_VERSION).contains(&version) {
            return Err(CheckpointError::UnsupportedVersion {
                found: version,
                expected: CHECKPOINT_FORMAT_VERSION,
            });
        }
        if version >= 2 {
            let stored = r.u64()?;
            let computed = blob_checksum(&bytes[r.pos..]);
            if stored != computed {
                return Err(CheckpointError::ChecksumMismatch { stored, computed });
            }
        }
        let spec_hash = r.u64()?;
        let closure_len = r.usize()?;
        let label_words = r.usize()?;
        if closure_len.div_ceil(64) > label_words {
            return Err(CheckpointError::Corrupt(format!(
                "label width of {label_words} word(s) cannot hold {closure_len} closure members"
            )));
        }
        let node_count = r.usize()?;
        let mut parts = Vec::with_capacity(node_count.min(1 << 20));
        for _ in 0..node_count {
            let flags = r.u8()?;
            if flags & !3 != 0 {
                return Err(CheckpointError::Corrupt(format!(
                    "unknown node flags {flags:#x}"
                )));
            }
            let kind = if flags & 1 != 0 {
                NodeKind::And
            } else {
                NodeKind::Or
            };
            let dummy = flags & 2 != 0;
            let mut words = Vec::with_capacity(label_words.min(1 << 20));
            for _ in 0..label_words {
                words.push(r.u64()?);
            }
            let label = LabelSet::from_words(words);
            let succ = r.edges(node_count)?;
            let pred = r.edges(node_count)?;
            parts.push((kind, label, dummy, succ, pred));
        }
        if parts.is_empty() {
            return Err(CheckpointError::Corrupt("checkpoint has no nodes".into()));
        }
        let pending_count = r.usize()?;
        let mut pending = Vec::with_capacity(pending_count.min(1 << 20));
        for _ in 0..pending_count {
            let seq = r.usize()?;
            let level = r.usize()?;
            let nodes = r.ids(parts.len())?;
            pending.push(PendingBatch { seq, level, nodes });
        }
        let fresh = r.ids(parts.len())?;
        let fresh_level = r.usize()?;
        let injected = r.usize()?;
        let committed = r.usize()?;
        let widths = r.usize()?;
        let mut level_widths = Vec::with_capacity(widths.min(1 << 20));
        for _ in 0..widths {
            level_widths.push(r.usize()?);
        }
        let nodes_expanded = r.usize()?;
        let intern_probes = r.usize()?;
        if r.pos != r.bytes.len() {
            return Err(CheckpointError::Corrupt(format!(
                "{} trailing byte(s) after the checkpoint payload",
                r.bytes.len() - r.pos
            )));
        }
        if committed > injected {
            return Err(CheckpointError::Corrupt(format!(
                "committed batch count {committed} exceeds injected count {injected}"
            )));
        }
        Ok(Checkpoint {
            spec_hash,
            closure_len,
            label_words,
            tableau: Tableau::from_build_nodes(parts),
            pending,
            fresh,
            fresh_level,
            injected,
            committed,
            level_widths,
            nodes_expanded,
            intern_probes,
        })
    }
}

/// A deterministic fingerprint of the tableau-relevant inputs of a
/// synthesis problem: closure size and label width, proposition count,
/// the root label, and every fault action with its per-action tolerance
/// label. Two problems with the same fingerprint drive the (pure,
/// deterministic) build engine identically, so a checkpoint may resume
/// under any governor exactly when the fingerprints match.
pub fn spec_fingerprint(
    closure: &Closure,
    props: &PropTable,
    root_label: &LabelSet,
    faults: &FaultSpec,
) -> u64 {
    const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    let mut h = 0x66_74_73_79_6e_63_6b_70u64; // "ftsynckp"
    let mut fold = |w: u64| {
        h = (h.rotate_left(5) ^ w).wrapping_mul(K);
    };
    fold(closure.len() as u64);
    fold(root_label.words().len() as u64);
    fold(props.len() as u64);
    fold(root_label.stable_hash());
    fold(faults.actions.len() as u64);
    for (action, tol) in faults.actions.iter().zip(&faults.tolerance_labels) {
        // The Debug rendering pins name, guard, assignments, and shared
        // corruption deterministically (no addresses, no map ordering).
        for b in format!("{action:?}").bytes() {
            fold(b as u64);
        }
        fold(tol.stable_hash());
    }
    h
}

/// Integrity checksum over a byte payload: the same rotate-xor-multiply
/// fold as [`spec_fingerprint`], applied to the bytes in 8-byte
/// little-endian chunks (the tail zero-padded) and salted with the
/// length. Each fold step is a bijection of the running state, so for
/// equal-length payloads any change to a single chunk — in particular
/// any single-bit flip — is guaranteed to change the result. Shared
/// with the service's on-disk store records.
pub fn blob_checksum(bytes: &[u8]) -> u64 {
    const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    let mut h = 0x66_74_73_79_6e_63_6b_73u64; // "ftsyncks"
    for chunk in bytes.chunks(8) {
        let mut w = [0u8; 8];
        w[..chunk.len()].copy_from_slice(chunk);
        h = (h.rotate_left(5) ^ u64::from_le_bytes(w)).wrapping_mul(K);
    }
    h ^ bytes.len() as u64
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_edges(out: &mut Vec<u8>, edges: &[(EdgeKind, NodeId)]) {
    put_u32(out, edges.len() as u32);
    for &(kind, to) in edges {
        let (tag, payload) = match kind {
            EdgeKind::Proc(i) => (0u8, i as u32),
            EdgeKind::Fault(i) => (1, i as u32),
            EdgeKind::Dummy => (2, 0),
            EdgeKind::Unlabeled => (3, 0),
        };
        out.push(tag);
        put_u32(out, payload);
        put_u32(out, to.0);
    }
}

fn put_ids(out: &mut Vec<u8>, ids: &[NodeId]) {
    put_u32(out, ids.len() as u32);
    for id in ids {
        put_u32(out, id.0);
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], CheckpointError> {
        if self.pos + n > self.bytes.len() {
            return Err(CheckpointError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn usize(&mut self) -> Result<usize, CheckpointError> {
        let v = self.u64()?;
        usize::try_from(v)
            .map_err(|_| CheckpointError::Corrupt(format!("count {v} exceeds usize")))
    }

    fn node_id(&mut self, nodes: usize) -> Result<NodeId, CheckpointError> {
        let raw = self.u32()?;
        if raw as usize >= nodes {
            return Err(CheckpointError::Corrupt(format!(
                "node id {raw} out of range (checkpoint has {nodes} nodes)"
            )));
        }
        Ok(NodeId(raw))
    }

    fn edges(&mut self, nodes: usize) -> Result<Vec<(EdgeKind, NodeId)>, CheckpointError> {
        let len = self.u32()? as usize;
        let mut edges = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            let tag = self.u8()?;
            let payload = self.u32()? as usize;
            let kind = match tag {
                0 => EdgeKind::Proc(payload),
                1 => EdgeKind::Fault(payload),
                2 => EdgeKind::Dummy,
                3 => EdgeKind::Unlabeled,
                other => {
                    return Err(CheckpointError::Corrupt(format!(
                        "unknown edge tag {other}"
                    )))
                }
            };
            edges.push((kind, self.node_id(nodes)?));
        }
        Ok(edges)
    }

    fn ids(&mut self, nodes: usize) -> Result<Vec<NodeId>, CheckpointError> {
        let len = self.u32()? as usize;
        let mut ids = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            ids.push(self.node_id(nodes)?);
        }
        Ok(ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn label(words: &[u64]) -> LabelSet {
        LabelSet::from_words(words.to_vec())
    }

    /// A small hand-built checkpoint with every structural feature: an
    /// AND node, a dummy OR node, all four edge kinds, pending batches,
    /// fresh nodes, and nonzero counters.
    fn sample() -> Checkpoint {
        let parts = vec![
            (
                NodeKind::Or,
                label(&[0b101]),
                false,
                vec![(EdgeKind::Unlabeled, NodeId(1))],
                Vec::new(),
            ),
            (
                NodeKind::And,
                label(&[0b011]),
                false,
                vec![
                    (EdgeKind::Proc(2), NodeId(0)),
                    (EdgeKind::Fault(1), NodeId(2)),
                    (EdgeKind::Dummy, NodeId(3)),
                ],
                vec![(EdgeKind::Unlabeled, NodeId(0))],
            ),
            (
                NodeKind::Or,
                label(&[0b110]),
                false,
                Vec::new(),
                vec![(EdgeKind::Fault(1), NodeId(1))],
            ),
            (
                NodeKind::Or,
                label(&[0b011]),
                true,
                vec![(EdgeKind::Unlabeled, NodeId(1))],
                vec![(EdgeKind::Dummy, NodeId(1))],
            ),
        ];
        Checkpoint {
            spec_hash: 0xdead_beef_cafe_f00d,
            closure_len: 3,
            label_words: 1,
            tableau: Tableau::from_build_nodes(parts),
            pending: vec![PendingBatch {
                seq: 2,
                level: 1,
                nodes: vec![NodeId(2)],
            }],
            fresh: vec![NodeId(3)],
            fresh_level: 2,
            injected: 3,
            committed: 2,
            level_widths: vec![1, 2],
            nodes_expanded: 3,
            intern_probes: 4,
        }
    }

    #[test]
    fn round_trip_is_exact() {
        let ck = sample();
        let blob = ck.encode();
        let back = Checkpoint::decode(&blob).expect("decodes");
        assert_eq!(back.spec_hash, ck.spec_hash);
        assert_eq!(back.closure_len, ck.closure_len);
        assert_eq!(back.label_words, ck.label_words);
        assert_eq!(back.pending, ck.pending);
        assert_eq!(back.fresh, ck.fresh);
        assert_eq!(back.fresh_level, ck.fresh_level);
        assert_eq!(back.injected, ck.injected);
        assert_eq!(back.committed, ck.committed);
        assert_eq!(back.level_widths, ck.level_widths);
        assert_eq!(back.nodes_expanded, ck.nodes_expanded);
        assert_eq!(back.intern_probes, ck.intern_probes);
        assert_eq!(back.tableau.len(), ck.tableau.len());
        for id in ck.tableau.node_ids() {
            let (a, b) = (ck.tableau.node(id), back.tableau.node(id));
            assert_eq!(a.kind, b.kind, "{id:?}");
            assert_eq!(a.label, b.label, "{id:?}");
            assert_eq!(a.dummy, b.dummy, "{id:?}");
            assert_eq!(a.succ, b.succ, "{id:?}");
            assert_eq!(a.pred, b.pred, "{id:?}");
            assert_eq!(a.alive_succ_prog, b.alive_succ_prog, "{id:?}");
            assert_eq!(a.alive_succ_fault, b.alive_succ_fault, "{id:?}");
        }
        // Re-encoding the decoded checkpoint is byte-identical.
        assert_eq!(back.encode(), blob);
    }

    #[test]
    fn rebuilt_interners_dedup_exactly_like_the_original() {
        let ck = sample();
        let mut t = Checkpoint::decode(&ck.encode()).unwrap().tableau;
        // Interning an existing non-dummy label finds the original id…
        assert_eq!(t.intern_and(label(&[0b011])), (NodeId(1), false));
        assert_eq!(t.intern_or(label(&[0b101])), (NodeId(0), false));
        assert_eq!(t.intern_or(label(&[0b110])), (NodeId(2), false));
        // …the dummy node's label is NOT deduplicated against it…
        assert_eq!(t.intern_or(label(&[0b011])), (NodeId(4), true));
        // …and a known edge is not re-added (edge_set round-trips).
        t.add_edge(NodeId(1), EdgeKind::Proc(2), NodeId(0));
        assert_eq!(t.node(NodeId(1)).succ.len(), 3);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut blob = sample().encode();
        blob[0] = b'X';
        match Checkpoint::decode(&blob) {
            Err(CheckpointError::BadMagic) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let mut blob = sample().encode();
        blob[8] = 0xFF; // little-endian low byte of the version field
        match Checkpoint::decode(&blob) {
            Err(CheckpointError::UnsupportedVersion { found, expected }) => {
                assert_eq!(found, 0xFF);
                assert_eq!(expected, CHECKPOINT_FORMAT_VERSION);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn version_zero_is_rejected() {
        let mut blob = sample().encode();
        blob[8] = 0;
        match Checkpoint::decode(&blob) {
            Err(CheckpointError::UnsupportedVersion { found, .. }) => assert_eq!(found, 0),
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn v1_blobs_without_a_checksum_still_decode() {
        let ck = sample();
        let v2 = ck.encode();
        // A v1 blob is the v2 blob minus the 8-byte checksum field,
        // with the version field rewritten: magic(8) + version(4) +
        // payload — exactly what pre-v2 builds wrote to .ckpt files.
        let mut v1 = Vec::with_capacity(v2.len() - 8);
        v1.extend_from_slice(&v2[..8]);
        v1.extend_from_slice(&1u32.to_le_bytes());
        v1.extend_from_slice(&v2[20..]);
        let back = Checkpoint::decode(&v1).expect("v1 blob must stay resumable");
        assert_eq!(back.spec_hash, ck.spec_hash);
        assert_eq!(back.pending, ck.pending);
        assert_eq!(back.fresh, ck.fresh);
        assert_eq!(back.tableau.len(), ck.tableau.len());
        // Re-encoding upgrades it to the current checksummed format.
        assert_eq!(back.encode(), v2);
    }

    #[test]
    fn truncation_is_rejected_at_every_prefix() {
        let blob = sample().encode();
        for cut in 0..blob.len() {
            match Checkpoint::decode(&blob[..cut]) {
                Err(CheckpointError::Truncated)
                | Err(CheckpointError::BadMagic)
                | Err(CheckpointError::ChecksumMismatch { .. })
                | Err(CheckpointError::Corrupt(_)) => {}
                other => panic!("prefix of {cut} bytes must fail, got {other:?}"),
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut blob = sample().encode();
        blob.push(0);
        match Checkpoint::decode(&blob) {
            // The trailing byte extends the checksummed payload, so the
            // integrity check fires before the structural parse.
            Err(CheckpointError::ChecksumMismatch { .. }) => {}
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
    }

    /// Every single-bit flip, at every bit position of the blob, must
    /// yield a structured error — never a panic, never a silent accept.
    /// Flips in the magic report `BadMagic`, in the version field
    /// `UnsupportedVersion`, everywhere else `ChecksumMismatch` (the
    /// fold checksum provably detects any single-chunk change).
    #[test]
    fn every_single_bit_flip_is_rejected() {
        let blob = sample().encode();
        for byte in 0..blob.len() {
            for bit in 0..8 {
                let mut damaged = blob.clone();
                damaged[byte] ^= 1 << bit;
                match Checkpoint::decode(&damaged) {
                    Err(CheckpointError::BadMagic) => {
                        assert!(byte < MAGIC.len(), "BadMagic from flip at {byte}:{bit}")
                    }
                    Err(CheckpointError::UnsupportedVersion { .. }) => assert!(
                        (MAGIC.len()..MAGIC.len() + 4).contains(&byte),
                        "UnsupportedVersion from flip at {byte}:{bit}"
                    ),
                    Err(CheckpointError::ChecksumMismatch { .. }) => {}
                    other => panic!("flip at {byte}:{bit} must be detected, got {other:?}"),
                }
            }
        }
    }

    /// Seeded multi-bit corruption: random bursts of flips anywhere in
    /// the blob must decode to a structured error or — only when every
    /// flip cancelled out — the identical checkpoint.
    #[test]
    fn seeded_random_corruption_never_panics_or_silently_differs() {
        let blob = sample().encode();
        let mut state = 0x9e37_79b9_7f4a_7c15u64; // fixed seed
        let mut next = move || {
            // xorshift64* — deterministic, dependency-free.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_f491_4f6c_dd1d)
        };
        for _ in 0..2000 {
            let mut damaged = blob.clone();
            let flips = 1 + (next() as usize % 8);
            for _ in 0..flips {
                let r = next();
                let byte = r as usize % damaged.len();
                damaged[byte] ^= 1u8 << ((r >> 32) % 8);
            }
            match Checkpoint::decode(&damaged) {
                Err(_) => {}
                Ok(back) => assert_eq!(back.encode(), blob, "corruption accepted silently"),
            }
        }
    }

    #[test]
    fn out_of_range_node_id_is_rejected() {
        let mut ck = sample();
        ck.fresh = vec![NodeId(99)];
        match Checkpoint::decode(&ck.encode()) {
            Err(CheckpointError::Corrupt(msg)) => {
                assert!(msg.contains("out of range"), "{msg}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn validate_rejects_spec_hash_and_shape_mismatches() {
        let ck = sample();
        assert_eq!(ck.validate(ck.spec_hash, 3, 1), Ok(()));
        assert_eq!(
            ck.validate(1, 3, 1),
            Err(CheckpointError::SpecHashMismatch {
                found: ck.spec_hash,
                expected: 1
            })
        );
        assert_eq!(
            ck.validate(ck.spec_hash, 5, 2),
            Err(CheckpointError::ClosureShapeMismatch {
                found: (3, 1),
                expected: (5, 2)
            })
        );
    }

    #[test]
    fn errors_render() {
        assert_eq!(
            CheckpointError::BadMagic.to_string(),
            "not a checkpoint blob (bad magic)"
        );
        assert!(CheckpointError::UnsupportedVersion {
            found: 9,
            expected: 1
        }
        .to_string()
        .contains("version 9"));
        assert!(CheckpointError::SpecHashMismatch {
            found: 1,
            expected: 2
        }
        .to_string()
        .contains("different problem"));
    }
}
