//! The deletion rules of the synthesis method (Figure 2) and the
//! fulfillment certificates they rely on.
//!
//! The rules differ from the plain CTL decision procedure in two ways
//! (Section 5.2): `DeleteAND` also fires when a *fault*-successor is
//! deleted, and the eventuality rules `DeleteAU`/`DeleteEU` certify
//! fulfillment with *fault-free* full subdags / paths — fault successors
//! may be absent from a certificate, but all `Tiles` successors of an
//! interior AND-node must be present.
//!
//! # Worklist engine
//!
//! [`apply_deletion_rules_mode`] is a worklist implementation:
//!
//! * `DeleteOR`/`DeleteAND` cascade through the graph's [deletion
//!   log](Tableau::deletion_log) using the per-node alive-successor
//!   counters, so structural propagation costs O(E) total over the
//!   whole run instead of O(rounds · N) full-graph sweeps.
//! * `DeleteAU`/`DeleteEU` certificates are built by a monotone rank
//!   worklist (a bucket queue seeded from the `h`-labeled nodes) in
//!   O(E) per build, replacing the O(N · E) `while changed` sweeps; a
//!   per-eventuality cursor into the deletion log skips certificates
//!   whose graph has not changed since they were last checked.
//!
//! The sweep-based reference implementation is kept, compiled under
//! `cfg(any(test, feature = "slow-reference"))`, as the oracle for
//! equivalence tests and the baseline for benchmarks. Both engines
//! visit the same rule phases in the same order, so they produce
//! identical alive sets *and* identical per-rule [`DeletionStats`].

use crate::governor::{AbortReason, Governor};
use crate::graph::{EdgeKind, NodeId, NodeKind, Tableau};
use ftsyn_ctl::{Closure, ClosureIdx, EntryKind, LabelSet};
use std::time::{Duration, Instant};

/// How many structural worklist pops between wall-clock deadline polls
/// (the deterministic work-cap check happens on every pop — it is two
/// branch instructions — but `Instant::now` is not free).
const REALTIME_POLL_INTERVAL: usize = 1024;

/// Which paths certify the fulfillment of eventualities (and hence which
/// correctness statement the synthesized program enjoys).
///
/// * [`CertMode::FaultFree`] — the paper's main method (Section 5):
///   eventualities are certified along fault-free subdags/paths, and the
///   synthesized program is correct under the relativized `⊨ₙ` (once
///   faults stop occurring).
/// * [`CertMode::FaultProne`] — the alternative method of Section 8.3:
///   certificates must include the fault successors of every interior
///   AND-node, so eventualities are fulfilled even along paths on which
///   faults keep occurring, and the program is correct under the plain
///   `⊨`. Stronger, but applicable to fewer problems (a repeatable
///   fault can make any liveness property unachievable).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CertMode {
    /// Fault-free certificates (`⊨ₙ` correctness) — the default.
    FaultFree,
    /// Fault-inclusive certificates (`⊨` correctness), Section 8.3.
    FaultProne,
}

impl CertMode {
    /// Whether an edge participates in certificates under this mode.
    pub fn admits(self, kind: EdgeKind) -> bool {
        match self {
            CertMode::FaultFree => !kind.is_fault(),
            CertMode::FaultProne => true,
        }
    }
}

/// Counters of how many nodes each rule removed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeletionStats {
    /// `DeleteP`: propositionally inconsistent labels.
    pub prop_inconsistent: usize,
    /// `DeleteOR`: OR-nodes with all successors deleted.
    pub or_without_children: usize,
    /// `DeleteAND`: AND-nodes with a deleted (incl. fault) successor.
    pub and_missing_successor: usize,
    /// `DeleteAU`: nodes with an unfulfillable `A[gUh]`.
    pub au_unfulfilled: usize,
    /// `DeleteEU`: nodes with an unfulfillable `E[gUh]`.
    pub eu_unfulfilled: usize,
    /// Nodes removed because they became unreachable from the root.
    pub unreachable: usize,
}

impl DeletionStats {
    /// Total nodes removed.
    pub fn total(&self) -> usize {
        self.prop_inconsistent
            + self.or_without_children
            + self.and_missing_successor
            + self.au_unfulfilled
            + self.eu_unfulfilled
            + self.unreachable
    }
}

/// Per-rule timings and worklist counters collected by one
/// [`apply_deletion_rules_profiled`] run.
#[derive(Clone, Copy, Debug, Default)]
pub struct DeletionProfile {
    /// Time spent in the one-shot `DeleteP` sweep.
    pub delete_p_time: Duration,
    /// Time spent cascading `DeleteOR`/`DeleteAND` through the worklist.
    pub structural_time: Duration,
    /// Time spent building certificates and applying `DeleteAU`/`DeleteEU`.
    pub eventuality_time: Duration,
    /// Time spent in the final reachability restriction.
    pub reachability_time: Duration,
    /// Outer rounds until no eventuality rule fired.
    pub rounds: usize,
    /// Deletion-log entries consumed by the structural cascade (each one
    /// is a pop of the structural worklist).
    pub worklist_pops: usize,
    /// Fulfillment certificates built from scratch.
    pub cert_builds: usize,
    /// Certificate checks skipped because no deletion intervened since
    /// the eventuality was last checked.
    pub cert_reuses: usize,
    /// Distinct live eventualities in the first round.
    pub eventualities: usize,
}

impl DeletionProfile {
    /// Total time across all deletion phases.
    pub fn total_time(&self) -> Duration {
        self.delete_p_time + self.structural_time + self.eventuality_time + self.reachability_time
    }
}

/// A fulfillment certificate for one eventuality: for every alive node,
/// whether the eventuality is fault-free-fulfillable from it, and a rank
/// that strictly decreases along a fulfilling subdag (used to extract
/// the acyclic `FDAG`s during unraveling).
#[derive(Clone, Debug)]
pub struct Fulfillment {
    /// Per node: fulfillable?
    pub fulfilled: Vec<bool>,
    /// Per node: certificate rank (0 = immediate). Meaningful only where
    /// `fulfilled` is true.
    pub rank: Vec<u32>,
}

impl Fulfillment {
    fn new(n: usize) -> Fulfillment {
        Fulfillment {
            fulfilled: vec![false; n],
            rank: vec![u32::MAX; n],
        }
    }

    /// Whether `id` is fulfilled.
    pub fn is_fulfilled(&self, id: NodeId) -> bool {
        self.fulfilled[id.index()]
    }
}

/// Rank-ordered worklist for certificate construction: nodes finalized
/// at rank `r` live in bucket `r`; processing a bucket may finalize OR
/// predecessors into the same bucket and AND predecessors into bucket
/// `r + 1`, so every node and edge is handled exactly once.
struct BucketQueue {
    buckets: Vec<Vec<NodeId>>,
}

impl BucketQueue {
    fn new() -> BucketQueue {
        BucketQueue {
            buckets: vec![Vec::new()],
        }
    }

    fn push(&mut self, rank: u32, id: NodeId) {
        let r = rank as usize;
        if self.buckets.len() <= r {
            self.buckets.resize_with(r + 1, Vec::new);
        }
        self.buckets[r].push(id);
    }
}

/// Computes fault-free fulfillment of `A[gUh]` (`g`, `h` as closure
/// indices) for every alive node.
///
/// An AND-node is fulfilled at rank 0 if `h ∈ L(c)`; at rank `r+1` if
/// `g ∈ L(c)` and *every* non-fault OR-successor has some fulfilled
/// AND-child of rank ≤ `r`. An OR-node is fulfilled if *some* alive
/// AND-child is fulfilled.
///
/// Implemented as a single monotone pass over a rank bucket queue
/// seeded from the `h`-labeled AND-nodes: each AND-node keeps a pending
/// count of its admissible alive successor edges and is finalized when
/// the count reaches zero, so the whole certificate costs O(N + E).
pub fn au_fulfillment(
    t: &Tableau,
    closure: &Closure,
    g: ClosureIdx,
    h: ClosureIdx,
    mode: CertMode,
) -> Fulfillment {
    let n = t.len();
    let mut f = Fulfillment::new(n);
    // `AF h = A[true U h]`: the arena folds `true ∧ x` to `x`, so `true`
    // never appears in labels — treat it as universally present.
    let g_holds = |l: &LabelSet| g == closure.true_idx() || l.contains(g);
    // Pending admissible alive successor edges per AND-node, seeded from
    // the graph's incrementally-maintained counters (no edge scan). A
    // node with no admissible alive successor is never finalized through
    // this counter, which encodes the reference engine's "at least one
    // successor" requirement.
    let mut pending: Vec<u32> = vec![0; n];
    let mut queue = BucketQueue::new();
    for id in t.node_ids() {
        if !t.alive(id) {
            continue;
        }
        let node = t.node(id);
        if node.kind != NodeKind::And {
            continue;
        }
        if node.label.contains(h) {
            f.fulfilled[id.index()] = true;
            f.rank[id.index()] = 0;
            queue.push(0, id);
        } else {
            pending[id.index()] = match mode {
                CertMode::FaultFree => node.alive_succ_prog,
                CertMode::FaultProne => node.alive_succ_total(),
            };
        }
    }
    let mut r = 0usize;
    while r < queue.buckets.len() {
        let mut i = 0;
        while i < queue.buckets[r].len() {
            let id = queue.buckets[r][i];
            i += 1;
            // `id` is finalized at rank `r`; propagate to predecessors.
            let np = t.node(id).pred.len();
            for pi in 0..np {
                let (kind, p) = t.node(id).pred[pi];
                if !t.alive(p) || f.fulfilled[p.index()] {
                    continue;
                }
                match t.node(p).kind {
                    NodeKind::Or => {
                        // First fulfilled child is the minimum rank.
                        f.fulfilled[p.index()] = true;
                        f.rank[p.index()] = r as u32;
                        queue.buckets[r].push(p);
                    }
                    NodeKind::And => {
                        if !mode.admits(kind) || !g_holds(&t.node(p).label) {
                            continue;
                        }
                        pending[p.index()] -= 1;
                        if pending[p.index()] == 0 {
                            f.fulfilled[p.index()] = true;
                            f.rank[p.index()] = r as u32 + 1;
                            queue.push(r as u32 + 1, p);
                        }
                    }
                }
            }
        }
        r += 1;
    }
    f
}

/// Computes fault-free fulfillment of `E[gUh]` for every alive node: an
/// AND-node is fulfilled at rank 0 if `h ∈ L(c)`, at rank `r+1` if
/// `g ∈ L(c)` and *some* non-fault OR-successor has a fulfilled AND-child
/// of rank ≤ `r`; an OR-node if some alive AND-child is fulfilled.
///
/// Single monotone bucket-queue pass, like [`au_fulfillment`] but with
/// an existential (first-successor) trigger instead of a pending count.
pub fn eu_fulfillment(
    t: &Tableau,
    closure: &Closure,
    g: ClosureIdx,
    h: ClosureIdx,
    mode: CertMode,
) -> Fulfillment {
    let n = t.len();
    let mut f = Fulfillment::new(n);
    let g_holds = |l: &LabelSet| g == closure.true_idx() || l.contains(g);
    let mut queue = BucketQueue::new();
    for id in t.node_ids() {
        if t.alive(id) && t.node(id).kind == NodeKind::And && t.node(id).label.contains(h) {
            f.fulfilled[id.index()] = true;
            f.rank[id.index()] = 0;
            queue.push(0, id);
        }
    }
    let mut r = 0usize;
    while r < queue.buckets.len() {
        let mut i = 0;
        while i < queue.buckets[r].len() {
            let id = queue.buckets[r][i];
            i += 1;
            let np = t.node(id).pred.len();
            for pi in 0..np {
                let (kind, p) = t.node(id).pred[pi];
                if !t.alive(p) || f.fulfilled[p.index()] {
                    continue;
                }
                match t.node(p).kind {
                    NodeKind::Or => {
                        f.fulfilled[p.index()] = true;
                        f.rank[p.index()] = r as u32;
                        queue.buckets[r].push(p);
                    }
                    NodeKind::And => {
                        if mode.admits(kind) && g_holds(&t.node(p).label) {
                            f.fulfilled[p.index()] = true;
                            f.rank[p.index()] = r as u32 + 1;
                            queue.push(r as u32 + 1, p);
                        }
                    }
                }
            }
        }
        r += 1;
    }
    f
}

/// All distinct eventualities (`AU`/`EU`) occurring in alive labels, as
/// `(closure idx, g, h, is_au)`, in order of first occurrence (node-id
/// order, then closure-index order within a label).
///
/// Works closure-side: the `AU`/`EU` members of the closure are few, so
/// one O(N) membership scan per candidate beats iterating every label
/// bit of every node (the order produced is identical — a label is
/// iterated in ascending closure index, so first-occurrence order is
/// lexicographic in `(first containing node, closure index)`).
fn live_eventualities(
    t: &Tableau,
    closure: &Closure,
) -> Vec<(ClosureIdx, ClosureIdx, ClosureIdx, bool)> {
    let mut live: Vec<(u32, (ClosureIdx, ClosureIdx, ClosureIdx, bool))> = Vec::new();
    for idx in closure.indices() {
        let cand = match closure.entry(idx).kind {
            EntryKind::Au { g, h, .. } => (idx, g, h, true),
            EntryKind::Eu { g, h, .. } => (idx, g, h, false),
            _ => continue,
        };
        if let Some(first) = t
            .node_ids()
            .find(|&id| t.alive(id) && t.node(id).label.contains(idx))
        {
            live.push((first.0, cand));
        }
    }
    live.sort_by_key(|&(first, (idx, ..))| (first, idx));
    live.into_iter().map(|(_, cand)| cand).collect()
}

/// The pre-worklist `live_eventualities`: one pass over every label bit
/// of every alive node. Kept as the oracle for the closure-side scan
/// and as part of the reference engine's cost profile.
#[cfg(any(test, feature = "slow-reference"))]
fn live_eventualities_sweep(
    t: &Tableau,
    closure: &Closure,
) -> Vec<(ClosureIdx, ClosureIdx, ClosureIdx, bool)> {
    let mut seen: LabelSet = closure.empty_label();
    let mut out = Vec::new();
    for id in t.node_ids() {
        if !t.alive(id) {
            continue;
        }
        for idx in t.node(id).label.iter() {
            if seen.contains(idx) {
                continue;
            }
            seen.insert(idx);
            match closure.entry(idx).kind {
                EntryKind::Au { g, h, .. } => out.push((idx, g, h, true)),
                EntryKind::Eu { g, h, .. } => out.push((idx, g, h, false)),
                _ => {}
            }
        }
    }
    out
}

/// Applies the deletion rules of Figure 2 until no rule is applicable,
/// then restricts to the nodes still reachable from the root. Returns
/// per-rule statistics. (If the root is deleted, the synthesis problem
/// is impossible — Corollary 7.2.)
pub fn apply_deletion_rules(t: &mut Tableau, closure: &Closure) -> DeletionStats {
    apply_deletion_rules_mode(t, closure, CertMode::FaultFree)
}

/// [`apply_deletion_rules`] with an explicit certificate mode
/// (Section 8.3's alternative method uses [`CertMode::FaultProne`]).
pub fn apply_deletion_rules_mode(
    t: &mut Tableau,
    closure: &Closure,
    mode: CertMode,
) -> DeletionStats {
    apply_deletion_rules_profiled(t, closure, mode).0
}

/// Drains the deletion log from `cursor`, cascading `DeleteAND` (any
/// deleted successor, faults included — Section 5.2) and `DeleteOR`
/// (alive-successor counter at zero) to predecessors until quiescent.
///
/// Updates `profile.worklist_pops` in place and, when governed, checks
/// the deterministic work cap (pops + certificate builds) on every pop
/// and the wall-clock deadline every [`REALTIME_POLL_INTERVAL`] pops.
fn structural_cascade(
    t: &mut Tableau,
    cursor: &mut usize,
    stats: &mut DeletionStats,
    profile: &mut DeletionProfile,
    gov: Option<&Governor>,
) -> Result<(), AbortReason> {
    while *cursor < t.deletion_log().len() {
        let d = t.deletion_log()[*cursor];
        *cursor += 1;
        profile.worklist_pops += 1;
        if let Some(g) = gov {
            g.check_deletion_work(profile.worklist_pops + profile.cert_builds)?;
            if profile.worklist_pops.is_multiple_of(REALTIME_POLL_INTERVAL) {
                g.check_realtime()?;
            }
        }
        let np = t.node(d).pred.len();
        for pi in 0..np {
            let (_, p) = t.node(d).pred[pi];
            if !t.alive(p) {
                continue;
            }
            match t.node(p).kind {
                NodeKind::And => {
                    // DeleteAND: `d` is a deleted successor of `p`.
                    t.delete(p);
                    stats.and_missing_successor += 1;
                }
                NodeKind::Or => {
                    if t.node(p).alive_succ_total() == 0 {
                        t.delete(p);
                        stats.or_without_children += 1;
                    }
                }
            }
        }
    }
    Ok(())
}

/// [`apply_deletion_rules_mode`] returning per-rule timings and
/// worklist counters alongside the deletion statistics.
pub fn apply_deletion_rules_profiled(
    t: &mut Tableau,
    closure: &Closure,
    mode: CertMode,
) -> (DeletionStats, DeletionProfile) {
    let mut stats = DeletionStats::default();
    let mut profile = DeletionProfile::default();
    deletion_core(t, closure, mode, None, &mut stats, &mut profile)
        .unwrap_or_else(|reason| panic!("ungoverned deletion aborted: {reason}"));
    (stats, profile)
}

/// Partial results of a governed deletion run that exceeded its budget:
/// the [`AbortReason`] plus the statistics and profile accumulated up to
/// the abort point.
#[derive(Clone, Debug)]
pub struct DeletionAbort {
    /// Which limit tripped.
    pub reason: AbortReason,
    /// Per-rule deletion counts up to the abort point.
    pub stats: DeletionStats,
    /// Timings and worklist counters up to the abort point.
    pub profile: DeletionProfile,
}

/// [`apply_deletion_rules_profiled`] under a [`Governor`]: the work cap
/// is checked against `worklist_pops + cert_builds` (both deterministic
/// — the deletion engine is single-threaded), the deadline/cancel flag
/// at bounded intervals. On abort the tableau is left mid-deletion and
/// should be discarded.
pub fn apply_deletion_rules_governed(
    t: &mut Tableau,
    closure: &Closure,
    mode: CertMode,
    gov: &Governor,
) -> Result<(DeletionStats, DeletionProfile), Box<DeletionAbort>> {
    let mut stats = DeletionStats::default();
    let mut profile = DeletionProfile::default();
    match deletion_core(t, closure, mode, Some(gov), &mut stats, &mut profile) {
        Ok(()) => Ok((stats, profile)),
        Err(reason) => Err(Box::new(DeletionAbort {
            reason,
            stats,
            profile,
        })),
    }
}

/// Shared deletion engine: the worklist implementation, optionally
/// governed. `stats`/`profile` are out-parameters so an abort still
/// surfaces the partial counters.
fn deletion_core(
    t: &mut Tableau,
    closure: &Closure,
    mode: CertMode,
    gov: Option<&Governor>,
    stats: &mut DeletionStats,
    profile: &mut DeletionProfile,
) -> Result<(), AbortReason> {
    // Cursor into the deletion log for structural propagation, and one
    // per eventuality for certificate staleness checks.
    let mut cursor = t.deletion_log().len();

    // DeleteP (once: labels never change afterwards).
    let t0 = Instant::now();
    for id in t.node_ids().collect::<Vec<_>>() {
        if t.alive(id) && !closure.is_prop_consistent(&t.node(id).label) {
            t.delete(id);
            stats.prop_inconsistent += 1;
        }
    }
    profile.delete_p_time = t0.elapsed();

    // Seed DeleteOR: an OR-node can be *built* childless (every block of
    // its label is propositionally inconsistent), and the cascade only
    // visits predecessors of deleted nodes — catch those with one O(N)
    // sweep; everything later is reached through the log.
    let t0 = Instant::now();
    for id in t.node_ids().collect::<Vec<_>>() {
        if t.alive(id)
            && t.node(id).kind == NodeKind::Or
            && t.node(id).alive_succ_total() == 0
        {
            t.delete(id);
            stats.or_without_children += 1;
        }
    }
    profile.structural_time += t0.elapsed();
    let mut cert_cursor: std::collections::HashMap<ClosureIdx, usize> =
        std::collections::HashMap::new();

    loop {
        profile.rounds += 1;

        // Structural propagation (DeleteOR / DeleteAND) to quiescence.
        let t0 = Instant::now();
        let cascaded = structural_cascade(t, &mut cursor, stats, profile, gov);
        profile.structural_time += t0.elapsed();
        cascaded?;

        // Eventuality rules. Deletions here are *not* cascaded until the
        // next round, mirroring the reference engine's phase order so
        // per-rule attribution is identical.
        let t0 = Instant::now();
        let mut removed_any = false;
        let evs = live_eventualities(t, closure);
        if profile.rounds == 1 {
            profile.eventualities = evs.len();
        }
        for (idx, g, h, is_au) in evs {
            // Unchanged graph since this eventuality was last certified:
            // deletions only shrink certificates, and the prior pass
            // already removed every unfulfilled labeled node, so the
            // check is a guaranteed no-op.
            if cert_cursor.get(&idx) == Some(&t.deletion_log().len()) {
                profile.cert_reuses += 1;
                continue;
            }
            // Certificate builds are the expensive unit of eventuality
            // work: poll before each one (the skip above is counted as a
            // reuse, not as work, so the abort point stays deterministic).
            if let Some(gv) = gov {
                if let Err(reason) = gv
                    .check_deletion_work(profile.worklist_pops + profile.cert_builds)
                    .and_then(|()| gv.check_realtime())
                {
                    profile.eventuality_time += t0.elapsed();
                    return Err(reason);
                }
            }
            let f = if is_au {
                au_fulfillment(t, closure, g, h, mode)
            } else {
                eu_fulfillment(t, closure, g, h, mode)
            };
            profile.cert_builds += 1;
            for id in t.node_ids().collect::<Vec<_>>() {
                if t.alive(id) && t.node(id).label.contains(idx) && !f.is_fulfilled(id) {
                    t.delete(id);
                    if is_au {
                        stats.au_unfulfilled += 1;
                    } else {
                        stats.eu_unfulfilled += 1;
                    }
                    removed_any = true;
                }
            }
            // Removing unfulfilled nodes never unfulfills a surviving
            // node for the *same* eventuality, so the certificate is
            // clean as of the log position after our own deletions.
            cert_cursor.insert(idx, t.deletion_log().len());
        }
        profile.eventuality_time += t0.elapsed();
        if !removed_any {
            break;
        }
    }

    let t0 = Instant::now();
    stats.unreachable = t.restrict_to_reachable();
    profile.reachability_time = t0.elapsed();
    Ok(())
}

// ---------------------------------------------------------------------
// Sweep-based reference implementation (the pre-worklist engine), kept
// as the oracle for equivalence tests and the benchmark baseline.
// ---------------------------------------------------------------------

/// Reference `A[gUh]` fulfillment by whole-graph fixpoint sweeps
/// (O(N · E)); semantics identical to [`au_fulfillment`].
#[cfg(any(test, feature = "slow-reference"))]
pub fn au_fulfillment_naive(
    t: &Tableau,
    closure: &Closure,
    g: ClosureIdx,
    h: ClosureIdx,
    mode: CertMode,
) -> Fulfillment {
    let mut f = Fulfillment::new(t.len());
    let g_holds = |l: &LabelSet| g == closure.true_idx() || l.contains(g);
    for id in t.node_ids() {
        if t.alive(id) && t.node(id).kind == NodeKind::And && t.node(id).label.contains(h) {
            f.fulfilled[id.index()] = true;
            f.rank[id.index()] = 0;
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        // OR nodes: min over fulfilled children.
        for id in t.node_ids() {
            if !t.alive(id) || t.node(id).kind != NodeKind::Or {
                continue;
            }
            let best = t
                .alive_succ(id, |_| true)
                .filter(|&(_, c)| f.fulfilled[c.index()])
                .map(|(_, c)| f.rank[c.index()])
                .min();
            if let Some(r) = best {
                if !f.fulfilled[id.index()] || r < f.rank[id.index()] {
                    f.fulfilled[id.index()] = true;
                    f.rank[id.index()] = r;
                    changed = true;
                }
            }
        }
        // AND nodes: all non-fault successors fulfilled.
        for id in t.node_ids() {
            if !t.alive(id)
                || t.node(id).kind != NodeKind::And
                || f.fulfilled[id.index()]
                || !g_holds(&t.node(id).label)
            {
                continue;
            }
            let mut all = true;
            let mut worst = 0u32;
            let mut any = false;
            for (_, d) in t.alive_succ(id, |k| mode.admits(k)) {
                any = true;
                if f.fulfilled[d.index()] {
                    worst = worst.max(f.rank[d.index()]);
                } else {
                    all = false;
                    break;
                }
            }
            if any && all {
                f.fulfilled[id.index()] = true;
                f.rank[id.index()] = worst + 1;
                changed = true;
            }
        }
    }
    f
}

/// Reference `E[gUh]` fulfillment by whole-graph fixpoint sweeps;
/// semantics identical to [`eu_fulfillment`].
#[cfg(any(test, feature = "slow-reference"))]
pub fn eu_fulfillment_naive(
    t: &Tableau,
    closure: &Closure,
    g: ClosureIdx,
    h: ClosureIdx,
    mode: CertMode,
) -> Fulfillment {
    let mut f = Fulfillment::new(t.len());
    let g_holds = |l: &LabelSet| g == closure.true_idx() || l.contains(g);
    for id in t.node_ids() {
        if t.alive(id) && t.node(id).kind == NodeKind::And && t.node(id).label.contains(h) {
            f.fulfilled[id.index()] = true;
            f.rank[id.index()] = 0;
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for id in t.node_ids() {
            if !t.alive(id) {
                continue;
            }
            match t.node(id).kind {
                NodeKind::Or => {
                    let best = t
                        .alive_succ(id, |_| true)
                        .filter(|&(_, c)| f.fulfilled[c.index()])
                        .map(|(_, c)| f.rank[c.index()])
                        .min();
                    if let Some(r) = best {
                        if !f.fulfilled[id.index()] || r < f.rank[id.index()] {
                            f.fulfilled[id.index()] = true;
                            f.rank[id.index()] = r;
                            changed = true;
                        }
                    }
                }
                NodeKind::And => {
                    if f.fulfilled[id.index()] || !g_holds(&t.node(id).label) {
                        continue;
                    }
                    let best = t
                        .alive_succ(id, |k| mode.admits(k))
                        .filter(|&(_, d)| f.fulfilled[d.index()])
                        .map(|(_, d)| f.rank[d.index()])
                        .min();
                    if let Some(r) = best {
                        f.fulfilled[id.index()] = true;
                        f.rank[id.index()] = r + 1;
                        changed = true;
                    }
                }
            }
        }
    }
    f
}

/// Reference deletion engine: full-graph sweeps to a fixpoint (the
/// pre-worklist implementation). Produces the same alive set and the
/// same [`DeletionStats`] as [`apply_deletion_rules_mode`].
#[cfg(any(test, feature = "slow-reference"))]
pub fn apply_deletion_rules_naive_mode(
    t: &mut Tableau,
    closure: &Closure,
    mode: CertMode,
) -> DeletionStats {
    let mut stats = DeletionStats::default();

    // DeleteP (once: labels never change afterwards).
    for id in t.node_ids().collect::<Vec<_>>() {
        if t.alive(id) && !closure.is_prop_consistent(&t.node(id).label) {
            t.delete(id);
            stats.prop_inconsistent += 1;
        }
    }

    loop {
        // Structural propagation (DeleteOR / DeleteAND) to a fixpoint.
        loop {
            let mut changed = false;
            for id in t.node_ids().collect::<Vec<_>>() {
                if !t.alive(id) {
                    continue;
                }
                match t.node(id).kind {
                    NodeKind::Or => {
                        if t.alive_succ(id, |_| true).next().is_none() {
                            t.delete(id);
                            stats.or_without_children += 1;
                            changed = true;
                        }
                    }
                    NodeKind::And => {
                        let missing = t.node(id).succ.iter().any(|&(_, d)| !t.alive(d));
                        if missing {
                            t.delete(id);
                            stats.and_missing_successor += 1;
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Eventuality rules.
        let mut removed_any = false;
        for (idx, g, h, is_au) in live_eventualities_sweep(t, closure) {
            let f = if is_au {
                au_fulfillment_naive(t, closure, g, h, mode)
            } else {
                eu_fulfillment_naive(t, closure, g, h, mode)
            };
            for id in t.node_ids().collect::<Vec<_>>() {
                if t.alive(id) && t.node(id).label.contains(idx) && !f.is_fulfilled(id) {
                    t.delete(id);
                    if is_au {
                        stats.au_unfulfilled += 1;
                    } else {
                        stats.eu_unfulfilled += 1;
                    }
                    removed_any = true;
                }
            }
        }
        if !removed_any {
            break;
        }
    }

    stats.unreachable = t.restrict_to_reachable();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build, FaultSpec};
    use ftsyn_ctl::{parse::parse, FormulaArena, Owner, PropTable};
    use ftsyn_guarded::{BoolExpr, FaultAction, PropAssign};

    fn run(spec: &str, procs: usize) -> (Tableau, DeletionStats) {
        let (t, stats, _) = run_both(spec, procs);
        (t, stats)
    }

    /// Runs the worklist engine, cross-checks against the reference
    /// engine on a clone (alive sets and stats must agree), and returns
    /// the worklist result.
    fn run_both(spec: &str, procs: usize) -> (Tableau, DeletionStats, DeletionStats) {
        let mut props = PropTable::new();
        props.add("p", Owner::Process(0)).unwrap();
        props.add("q", Owner::Process(0)).unwrap();
        let mut arena = FormulaArena::new(procs);
        let f = parse(&mut arena, &mut props, spec, true).unwrap();
        let cl = Closure::build(&mut arena, &props, &[f]);
        let mut root = cl.empty_label();
        root.insert(cl.index_of(f).unwrap());
        let t0 = build(&cl, &props, root, &FaultSpec::none());
        let mut t = t0.clone();
        let mut t_ref = t0;
        let stats = apply_deletion_rules(&mut t, &cl);
        let stats_ref = apply_deletion_rules_naive_mode(&mut t_ref, &cl, CertMode::FaultFree);
        assert_eq!(stats, stats_ref, "engines disagree on stats for `{spec}`");
        for id in t.node_ids() {
            assert_eq!(
                t.alive(id),
                t_ref.alive(id),
                "engines disagree on {id:?} for `{spec}`"
            );
        }
        (t, stats, stats_ref)
    }

    #[test]
    fn satisfiable_root_survives() {
        let (t, _) = run("p & AG(EX1 true)", 1);
        assert!(t.alive(t.root()));
    }

    #[test]
    fn contradiction_deletes_root() {
        let (t, stats) = run("p & ~p", 1);
        assert!(!t.alive(t.root()));
        assert!(stats.or_without_children >= 1);
    }

    #[test]
    fn unfulfillable_eventuality_deletes_root() {
        // AG ~p ∧ AF p is unsatisfiable: the AF p eventuality can never
        // be fulfilled while ~p is invariant.
        let (t, stats) = run("AG ~p & AF p & AG EX1 true", 1);
        assert!(!t.alive(t.root()), "stats: {stats:?}");
        assert!(stats.au_unfulfilled >= 1);
    }

    #[test]
    fn fulfillable_eventuality_survives() {
        let (t, _) = run("~p & AF p & AG EX1 true", 1);
        assert!(t.alive(t.root()));
    }

    #[test]
    fn eg_vs_af_conflict_deleted() {
        // EG ~p together with AF p is unsatisfiable (every path must
        // reach p, but some path keeps ¬p forever).
        let (t, _) = run("EG ~p & AF p & AG EX1 true", 1);
        assert!(!t.alive(t.root()));
    }

    #[test]
    fn eu_fulfillment_via_some_path() {
        // EF p is satisfiable even when q-branches exist.
        let (t, _) = run("EF p & AG EX1 true", 1);
        assert!(t.alive(t.root()));
    }

    #[test]
    fn fault_to_unsatisfiable_state_cascades() {
        // Spec: p invariantly true and provable; fault forces ¬p with a
        // *masking* tolerance label AG p — the perturbed OR-node label
        // {¬p, AG p} is propositionally inconsistent (AG p's α₁ is p),
        // so the fault-successor dies and DeleteAND kills every AND-node,
        // making the problem impossible.
        let mut props = PropTable::new();
        let p = props.add("p", Owner::Process(0)).unwrap();
        let mut arena = FormulaArena::new(1);
        let spec = parse(&mut arena, &mut props, "p & AG p & AG EX1 true", false).unwrap();
        let tolf = parse(&mut arena, &mut props, "AG p & AG EX1 true", false).unwrap();
        let cl = Closure::build(&mut arena, &props, &[spec, tolf]);
        let mut root = cl.empty_label();
        root.insert(cl.index_of(spec).unwrap());
        let mut tol = cl.empty_label();
        for c in arena.conjuncts(tolf) {
            tol.insert(cl.index_of(c).unwrap());
        }
        let action =
            FaultAction::new("kill-p", BoolExpr::Prop(p), vec![(p, PropAssign::False)]).unwrap();
        let fs = FaultSpec::uniform(vec![action], tol);
        let mut t = build(&cl, &props, root, &fs);
        let stats = apply_deletion_rules(&mut t, &cl);
        assert!(!t.alive(t.root()), "stats: {stats:?}");
        assert!(stats.and_missing_successor >= 1);
    }

    #[test]
    fn deferred_af_fulfilled_one_step_later() {
        // ~p ∧ AF p is satisfiable: the AF branch that would fulfill
        // immediately is propositionally inconsistent (p ∧ ¬p), but the
        // deferring branch carries AX(AF p) — and, via the EXᵢtrue
        // split, a real successor where p finally holds.
        let (t, stats) = run("~p & AF p", 1);
        assert!(t.alive(t.root()), "stats: {stats:?}");
        assert_eq!(stats.au_unfulfilled, 0);
    }

    #[test]
    fn stats_total_adds_up() {
        let (_, stats) = run("p & ~p", 1);
        assert_eq!(
            stats.total(),
            stats.prop_inconsistent
                + stats.or_without_children
                + stats.and_missing_successor
                + stats.au_unfulfilled
                + stats.eu_unfulfilled
                + stats.unreachable
        );
    }

    /// The bucket-queue certificates agree with the sweep-based
    /// reference on fulfilled sets (ranks may legitimately differ: the
    /// reference's AU ranks are not always minimal).
    #[test]
    fn fulfillment_matches_reference() {
        for spec in [
            "~p & AF p",
            "EF p & AG EX1 true",
            "AF (p & q) & AG EX1 true",
            "E[p U q] & A[true U p] & AG EX1 true",
            "EG ~p & AF p & AG EX1 true",
        ] {
            let mut props = PropTable::new();
            props.add("p", Owner::Process(0)).unwrap();
            props.add("q", Owner::Process(0)).unwrap();
            let mut arena = FormulaArena::new(1);
            let f = parse(&mut arena, &mut props, spec, true).unwrap();
            let cl = Closure::build(&mut arena, &props, &[f]);
            let mut root = cl.empty_label();
            root.insert(cl.index_of(f).unwrap());
            let t = build(&cl, &props, root, &FaultSpec::none());
            assert_eq!(
                live_eventualities(&t, &cl),
                live_eventualities_sweep(&t, &cl),
                "closure-side eventuality scan diverges from the label sweep for `{spec}`"
            );
            for mode in [CertMode::FaultFree, CertMode::FaultProne] {
                for (_, g, h, is_au) in live_eventualities(&t, &cl) {
                    let (fast, slow) = if is_au {
                        (
                            au_fulfillment(&t, &cl, g, h, mode),
                            au_fulfillment_naive(&t, &cl, g, h, mode),
                        )
                    } else {
                        (
                            eu_fulfillment(&t, &cl, g, h, mode),
                            eu_fulfillment_naive(&t, &cl, g, h, mode),
                        )
                    };
                    assert_eq!(
                        fast.fulfilled, slow.fulfilled,
                        "fulfilled sets differ for `{spec}` ({mode:?}, au={is_au})"
                    );
                    // Bucket-queue ranks are minimal, hence never above
                    // the reference's.
                    for id in t.node_ids() {
                        if fast.fulfilled[id.index()] {
                            assert!(fast.rank[id.index()] <= slow.rank[id.index()]);
                        }
                    }
                }
            }
        }
    }

    /// The profiled entry point reports worklist activity consistent
    /// with the deletions performed.
    #[test]
    fn profile_counters_are_consistent() {
        let mut props = PropTable::new();
        props.add("p", Owner::Process(0)).unwrap();
        props.add("q", Owner::Process(0)).unwrap();
        let mut arena = FormulaArena::new(1);
        let f = parse(&mut arena, &mut props, "AG ~p & AF p & AG EX1 true", true).unwrap();
        let cl = Closure::build(&mut arena, &props, &[f]);
        let mut root = cl.empty_label();
        root.insert(cl.index_of(f).unwrap());
        let mut t = build(&cl, &props, root, &FaultSpec::none());
        let (stats, profile) = apply_deletion_rules_profiled(&mut t, &cl, CertMode::FaultFree);
        assert!(profile.rounds >= 2, "one round deletes, one confirms");
        assert!(profile.cert_builds >= 1);
        // Every pre-reachability deletion is eventually popped from the
        // structural worklist except those from the final (quiescent)
        // eventuality pass.
        assert!(profile.worklist_pops <= stats.total());
        assert!(profile.eventualities >= 1);
        assert!(profile.total_time() >= profile.structural_time);
    }
}
