//! The deletion rules of the synthesis method (Figure 2) and the
//! fulfillment certificates they rely on.
//!
//! The rules differ from the plain CTL decision procedure in two ways
//! (Section 5.2): `DeleteAND` also fires when a *fault*-successor is
//! deleted, and the eventuality rules `DeleteAU`/`DeleteEU` certify
//! fulfillment with *fault-free* full subdags / paths — fault successors
//! may be absent from a certificate, but all `Tiles` successors of an
//! interior AND-node must be present.

use crate::graph::{EdgeKind, NodeId, NodeKind, Tableau};
use ftsyn_ctl::{Closure, ClosureIdx, EntryKind, LabelSet};

/// Which paths certify the fulfillment of eventualities (and hence which
/// correctness statement the synthesized program enjoys).
///
/// * [`CertMode::FaultFree`] — the paper's main method (Section 5):
///   eventualities are certified along fault-free subdags/paths, and the
///   synthesized program is correct under the relativized `⊨ₙ` (once
///   faults stop occurring).
/// * [`CertMode::FaultProne`] — the alternative method of Section 8.3:
///   certificates must include the fault successors of every interior
///   AND-node, so eventualities are fulfilled even along paths on which
///   faults keep occurring, and the program is correct under the plain
///   `⊨`. Stronger, but applicable to fewer problems (a repeatable
///   fault can make any liveness property unachievable).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CertMode {
    /// Fault-free certificates (`⊨ₙ` correctness) — the default.
    FaultFree,
    /// Fault-inclusive certificates (`⊨` correctness), Section 8.3.
    FaultProne,
}

impl CertMode {
    /// Whether an edge participates in certificates under this mode.
    pub fn admits(self, kind: EdgeKind) -> bool {
        match self {
            CertMode::FaultFree => !kind.is_fault(),
            CertMode::FaultProne => true,
        }
    }
}

/// Counters of how many nodes each rule removed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeletionStats {
    /// `DeleteP`: propositionally inconsistent labels.
    pub prop_inconsistent: usize,
    /// `DeleteOR`: OR-nodes with all successors deleted.
    pub or_without_children: usize,
    /// `DeleteAND`: AND-nodes with a deleted (incl. fault) successor.
    pub and_missing_successor: usize,
    /// `DeleteAU`: nodes with an unfulfillable `A[gUh]`.
    pub au_unfulfilled: usize,
    /// `DeleteEU`: nodes with an unfulfillable `E[gUh]`.
    pub eu_unfulfilled: usize,
    /// Nodes removed because they became unreachable from the root.
    pub unreachable: usize,
}

impl DeletionStats {
    /// Total nodes removed.
    pub fn total(&self) -> usize {
        self.prop_inconsistent
            + self.or_without_children
            + self.and_missing_successor
            + self.au_unfulfilled
            + self.eu_unfulfilled
            + self.unreachable
    }
}

/// A fulfillment certificate for one eventuality: for every alive node,
/// whether the eventuality is fault-free-fulfillable from it, and a rank
/// that strictly decreases along a fulfilling subdag (used to extract
/// the acyclic `FDAG`s during unraveling).
#[derive(Clone, Debug)]
pub struct Fulfillment {
    /// Per node: fulfillable?
    pub fulfilled: Vec<bool>,
    /// Per node: certificate rank (0 = immediate). Meaningful only where
    /// `fulfilled` is true.
    pub rank: Vec<u32>,
}

impl Fulfillment {
    fn new(n: usize) -> Fulfillment {
        Fulfillment {
            fulfilled: vec![false; n],
            rank: vec![u32::MAX; n],
        }
    }

    /// Whether `id` is fulfilled.
    pub fn is_fulfilled(&self, id: NodeId) -> bool {
        self.fulfilled[id.index()]
    }
}

/// Computes fault-free fulfillment of `A[gUh]` (`g`, `h` as closure
/// indices) for every alive node.
///
/// An AND-node is fulfilled at rank 0 if `h ∈ L(c)`; at rank `r+1` if
/// `g ∈ L(c)` and *every* non-fault OR-successor has some fulfilled
/// AND-child of rank ≤ `r`. An OR-node is fulfilled if *some* alive
/// AND-child is fulfilled.
pub fn au_fulfillment(
    t: &Tableau,
    closure: &Closure,
    g: ClosureIdx,
    h: ClosureIdx,
    mode: CertMode,
) -> Fulfillment {
    let mut f = Fulfillment::new(t.len());
    // `AF h = A[true U h]`: the arena folds `true ∧ x` to `x`, so `true`
    // never appears in labels — treat it as universally present.
    let g_holds = |l: &LabelSet| g == closure.true_idx() || l.contains(g);
    // Base: AND nodes with h in label.
    for id in t.node_ids() {
        if t.alive(id) && t.node(id).kind == NodeKind::And && t.node(id).label.contains(h) {
            f.fulfilled[id.index()] = true;
            f.rank[id.index()] = 0;
        }
    }
    // Iterate to a fixpoint; ranks grow monotonically with rounds.
    let mut changed = true;
    while changed {
        changed = false;
        // OR nodes: min over fulfilled children.
        for id in t.node_ids() {
            if !t.alive(id) || t.node(id).kind != NodeKind::Or {
                continue;
            }
            let best = t
                .alive_succ(id, |_| true)
                .filter(|&(_, c)| f.fulfilled[c.index()])
                .map(|(_, c)| f.rank[c.index()])
                .min();
            if let Some(r) = best {
                if !f.fulfilled[id.index()] || r < f.rank[id.index()] {
                    f.fulfilled[id.index()] = true;
                    f.rank[id.index()] = r;
                    changed = true;
                }
            }
        }
        // AND nodes: all non-fault successors fulfilled.
        for id in t.node_ids() {
            if !t.alive(id)
                || t.node(id).kind != NodeKind::And
                || f.fulfilled[id.index()]
                || !g_holds(&t.node(id).label)
            {
                continue;
            }
            let mut all = true;
            let mut worst = 0u32;
            let mut any = false;
            for (_, d) in t.alive_succ(id, |k| mode.admits(k)) {
                any = true;
                if f.fulfilled[d.index()] {
                    worst = worst.max(f.rank[d.index()]);
                } else {
                    all = false;
                    break;
                }
            }
            if any && all {
                f.fulfilled[id.index()] = true;
                f.rank[id.index()] = worst + 1;
                changed = true;
            }
        }
    }
    f
}

/// Computes fault-free fulfillment of `E[gUh]` for every alive node: an
/// AND-node is fulfilled at rank 0 if `h ∈ L(c)`, at rank `r+1` if
/// `g ∈ L(c)` and *some* non-fault OR-successor has a fulfilled AND-child
/// of rank ≤ `r`; an OR-node if some alive AND-child is fulfilled.
pub fn eu_fulfillment(
    t: &Tableau,
    closure: &Closure,
    g: ClosureIdx,
    h: ClosureIdx,
    mode: CertMode,
) -> Fulfillment {
    let mut f = Fulfillment::new(t.len());
    let g_holds = |l: &LabelSet| g == closure.true_idx() || l.contains(g);
    for id in t.node_ids() {
        if t.alive(id) && t.node(id).kind == NodeKind::And && t.node(id).label.contains(h) {
            f.fulfilled[id.index()] = true;
            f.rank[id.index()] = 0;
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for id in t.node_ids() {
            if !t.alive(id) {
                continue;
            }
            match t.node(id).kind {
                NodeKind::Or => {
                    let best = t
                        .alive_succ(id, |_| true)
                        .filter(|&(_, c)| f.fulfilled[c.index()])
                        .map(|(_, c)| f.rank[c.index()])
                        .min();
                    if let Some(r) = best {
                        if !f.fulfilled[id.index()] || r < f.rank[id.index()] {
                            f.fulfilled[id.index()] = true;
                            f.rank[id.index()] = r;
                            changed = true;
                        }
                    }
                }
                NodeKind::And => {
                    if f.fulfilled[id.index()] || !g_holds(&t.node(id).label) {
                        continue;
                    }
                    let best = t
                        .alive_succ(id, |k| mode.admits(k))
                        .filter(|&(_, d)| f.fulfilled[d.index()])
                        .map(|(_, d)| f.rank[d.index()])
                        .min();
                    if let Some(r) = best {
                        f.fulfilled[id.index()] = true;
                        f.rank[id.index()] = r + 1;
                        changed = true;
                    }
                }
            }
        }
    }
    f
}

/// All distinct eventualities (`AU`/`EU`) occurring in alive labels, as
/// `(closure idx, g, h, is_au)`.
fn live_eventualities(t: &Tableau, closure: &Closure) -> Vec<(ClosureIdx, ClosureIdx, ClosureIdx, bool)> {
    let mut seen: LabelSet = closure.empty_label();
    let mut out = Vec::new();
    for id in t.node_ids() {
        if !t.alive(id) {
            continue;
        }
        for idx in t.node(id).label.iter() {
            if seen.contains(idx) {
                continue;
            }
            seen.insert(idx);
            match closure.entry(idx).kind {
                EntryKind::Au { g, h, .. } => out.push((idx, g, h, true)),
                EntryKind::Eu { g, h, .. } => out.push((idx, g, h, false)),
                _ => {}
            }
        }
    }
    out
}

/// Applies the deletion rules of Figure 2 until no rule is applicable,
/// then restricts to the nodes still reachable from the root. Returns
/// per-rule statistics. (If the root is deleted, the synthesis problem
/// is impossible — Corollary 7.2.)
pub fn apply_deletion_rules(t: &mut Tableau, closure: &Closure) -> DeletionStats {
    apply_deletion_rules_mode(t, closure, CertMode::FaultFree)
}

/// [`apply_deletion_rules`] with an explicit certificate mode
/// (Section 8.3's alternative method uses [`CertMode::FaultProne`]).
pub fn apply_deletion_rules_mode(
    t: &mut Tableau,
    closure: &Closure,
    mode: CertMode,
) -> DeletionStats {
    let mut stats = DeletionStats::default();

    // DeleteP (once: labels never change afterwards).
    for id in t.node_ids().collect::<Vec<_>>() {
        if t.alive(id) && !closure.is_prop_consistent(&t.node(id).label) {
            t.delete(id);
            stats.prop_inconsistent += 1;
        }
    }

    loop {
        // Structural propagation (DeleteOR / DeleteAND) to a fixpoint.
        loop {
            let mut changed = false;
            for id in t.node_ids().collect::<Vec<_>>() {
                if !t.alive(id) {
                    continue;
                }
                match t.node(id).kind {
                    NodeKind::Or => {
                        if t.alive_succ(id, |_| true).next().is_none() {
                            t.delete(id);
                            stats.or_without_children += 1;
                            changed = true;
                        }
                    }
                    NodeKind::And => {
                        let missing = t
                            .node(id)
                            .succ
                            .iter()
                            .any(|&(_, d)| !t.alive(d));
                        if missing {
                            t.delete(id);
                            stats.and_missing_successor += 1;
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Eventuality rules.
        let mut removed_any = false;
        for (idx, g, h, is_au) in live_eventualities(t, closure) {
            let f = if is_au {
                au_fulfillment(t, closure, g, h, mode)
            } else {
                eu_fulfillment(t, closure, g, h, mode)
            };
            for id in t.node_ids().collect::<Vec<_>>() {
                if t.alive(id) && t.node(id).label.contains(idx) && !f.is_fulfilled(id) {
                    t.delete(id);
                    if is_au {
                        stats.au_unfulfilled += 1;
                    } else {
                        stats.eu_unfulfilled += 1;
                    }
                    removed_any = true;
                }
            }
        }
        if !removed_any {
            break;
        }
    }

    stats.unreachable = t.restrict_to_reachable();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build, FaultSpec};
    use ftsyn_ctl::{parse::parse, FormulaArena, Owner, PropTable};
    use ftsyn_guarded::{BoolExpr, FaultAction, PropAssign};

    fn run(spec: &str, procs: usize) -> (Tableau, DeletionStats) {
        let mut props = PropTable::new();
        props.add("p", Owner::Process(0)).unwrap();
        props.add("q", Owner::Process(0)).unwrap();
        let mut arena = FormulaArena::new(procs);
        let f = parse(&mut arena, &mut props, spec, true).unwrap();
        let cl = Closure::build(&mut arena, &props, &[f]);
        let mut root = cl.empty_label();
        root.insert(cl.index_of(f).unwrap());
        let mut t = build(&cl, &props, root, &FaultSpec::none());
        let stats = apply_deletion_rules(&mut t, &cl);
        (t, stats)
    }

    #[test]
    fn satisfiable_root_survives() {
        let (t, _) = run("p & AG(EX1 true)", 1);
        assert!(t.alive(t.root()));
    }

    #[test]
    fn contradiction_deletes_root() {
        let (t, stats) = run("p & ~p", 1);
        assert!(!t.alive(t.root()));
        assert!(stats.or_without_children >= 1);
    }

    #[test]
    fn unfulfillable_eventuality_deletes_root() {
        // AG ~p ∧ AF p is unsatisfiable: the AF p eventuality can never
        // be fulfilled while ~p is invariant.
        let (t, stats) = run("AG ~p & AF p & AG EX1 true", 1);
        assert!(!t.alive(t.root()), "stats: {stats:?}");
        assert!(stats.au_unfulfilled >= 1);
    }

    #[test]
    fn fulfillable_eventuality_survives() {
        let (t, _) = run("~p & AF p & AG EX1 true", 1);
        assert!(t.alive(t.root()));
    }

    #[test]
    fn eg_vs_af_conflict_deleted() {
        // EG ~p together with AF p is unsatisfiable (every path must
        // reach p, but some path keeps ¬p forever).
        let (t, _) = run("EG ~p & AF p & AG EX1 true", 1);
        assert!(!t.alive(t.root()));
    }

    #[test]
    fn eu_fulfillment_via_some_path() {
        // EF p is satisfiable even when q-branches exist.
        let (t, _) = run("EF p & AG EX1 true", 1);
        assert!(t.alive(t.root()));
    }

    #[test]
    fn fault_to_unsatisfiable_state_cascades() {
        // Spec: p invariantly true and provable; fault forces ¬p with a
        // *masking* tolerance label AG p — the perturbed OR-node label
        // {¬p, AG p} is propositionally inconsistent (AG p's α₁ is p),
        // so the fault-successor dies and DeleteAND kills every AND-node,
        // making the problem impossible.
        let mut props = PropTable::new();
        let p = props.add("p", Owner::Process(0)).unwrap();
        let mut arena = FormulaArena::new(1);
        let spec = parse(&mut arena, &mut props, "p & AG p & AG EX1 true", false).unwrap();
        let tolf = parse(&mut arena, &mut props, "AG p & AG EX1 true", false).unwrap();
        let cl = Closure::build(&mut arena, &props, &[spec, tolf]);
        let mut root = cl.empty_label();
        root.insert(cl.index_of(spec).unwrap());
        let mut tol = cl.empty_label();
        for c in arena.conjuncts(tolf) {
            tol.insert(cl.index_of(c).unwrap());
        }
        let action =
            FaultAction::new("kill-p", BoolExpr::Prop(p), vec![(p, PropAssign::False)]).unwrap();
        let fs = FaultSpec::uniform(vec![action], tol);
        let mut t = build(&cl, &props, root, &fs);
        let stats = apply_deletion_rules(&mut t, &cl);
        assert!(!t.alive(t.root()), "stats: {stats:?}");
        assert!(stats.and_missing_successor >= 1);
    }

    #[test]
    fn deferred_af_fulfilled_one_step_later() {
        // ~p ∧ AF p is satisfiable: the AF branch that would fulfill
        // immediately is propositionally inconsistent (p ∧ ¬p), but the
        // deferring branch carries AX(AF p) — and, via the EXᵢtrue
        // split, a real successor where p finally holds.
        let (t, stats) = run("~p & AF p", 1);
        assert!(t.alive(t.root()), "stats: {stats:?}");
        assert_eq!(stats.au_unfulfilled, 0);
    }

    #[test]
    fn stats_total_adds_up() {
        let (_, stats) = run("p & ~p", 1);
        assert_eq!(
            stats.total(),
            stats.prop_inconsistent
                + stats.or_without_children
                + stats.and_missing_successor
                + stats.au_unfulfilled
                + stats.eu_unfulfilled
                + stats.unreachable
        );
    }
}
