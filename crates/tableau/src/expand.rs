//! The `Blocks` and `Tiles` expansions of the CTL decision procedure
//! (Section 4 of the paper).

use ftsyn_ctl::{Closure, ClosureIdx, EntryKind, Expansion, LabelSet, Owner, PropTable};
use std::collections::HashSet;

/// Computes `Blocks(d)` for an OR-node label: the set of downward-closed,
/// propositionally consistent AND-node labels that embody all the ways of
/// satisfying the conjunction of the formulae in `label`.
///
/// The expansion tree uses the α/β classification: an α-formula adds both
/// components to the branch; a β-formula forks the branch, adding one
/// component each. The resulting AND label is the union of all formulae
/// along the branch (hence downward-closed). Propositionally inconsistent
/// branches are pruned eagerly — equivalent to generating the node and
/// immediately applying the `DeleteP` rule.
///
/// Special case (Section 4): a resulting label containing `AX` formulae
/// but no `EX` formula for any process is split into one variant per
/// process `i`, each adding `EXᵢ true` — otherwise the `AX` obligations
/// would be vacuous for lack of successors.
pub fn blocks(closure: &Closure, label: &LabelSet) -> Vec<LabelSet> {
    blocks_with(closure, label, FilterKind::Accepted)
}

/// [`blocks`] with the classic all-smaller-labels minimal filter —
/// retained verbatim with the level-synchronized build kernel so that
/// engine head-to-heads compare frozen generations (same policy as
/// [`crate::expand_naive`] for `build_reference`). The output is
/// identical to [`blocks`]; only the filter's comparison count differs.
pub(crate) fn blocks_classic(closure: &Closure, label: &LabelSet) -> Vec<LabelSet> {
    blocks_with(closure, label, FilterKind::Classic)
}

/// Which minimal-superset filter a `blocks` run uses. Both compute the
/// same predicate (see the filter comments below), so the output —
/// contents *and* order — is identical either way.
#[derive(Clone, Copy)]
enum FilterKind {
    /// Scan every strictly-smaller label (quadratic in practice on
    /// fault-heavy problems; frozen with the level-sync kernel).
    Classic,
    /// Scan only already-accepted *minimal* strictly-smaller labels
    /// (the work-stealing engine's filter).
    Accepted,
}

fn blocks_with(closure: &Closure, label: &LabelSet, filter: FilterKind) -> Vec<LabelSet> {
    let mut done: Vec<LabelSet> = Vec::new();
    let mut done_set: HashSet<LabelSet> = HashSet::new();
    // Branch = (accumulated label, unexpanded α/elementary, unexpanded β).
    // β-formulae are deferred until no α work remains, and a β whose
    // component is already in the branch is *discharged* without
    // branching — both standard tableau optimizations; they avoid the
    // exponential blow-up of vacuously-true implications (`¬N₁ ∨ X` in a
    // branch that already pinned `¬N₁`) without affecting the set of
    // satisfiable labels.
    let mut betas: Vec<ClosureIdx> = Vec::new();
    let mut alphas: Vec<ClosureIdx> = Vec::new();
    for idx in label.iter() {
        match closure.expansion(idx) {
            Expansion::Beta(_, _) => betas.push(idx),
            _ => alphas.push(idx),
        }
    }
    let mut stack: Vec<(LabelSet, Vec<ClosureIdx>, Vec<ClosureIdx>)> =
        vec![(label.clone(), alphas, betas)];

    'branch: while let Some((mut acc, mut alphas, mut betas)) = stack.pop() {
        // Drain all α/elementary work in place. In the pre-optimization
        // code each α step pushed the branch back and immediately
        // re-popped it (LIFO), so this loop is step-for-step identical —
        // minus one stack round-trip (and its Vec moves) per formula.
        while let Some(idx) = alphas.pop() {
            match closure.expansion(idx) {
                Expansion::Elementary => {
                    if matches!(closure.entry(idx).kind, EntryKind::False) {
                        continue 'branch; // propositionally inconsistent
                    }
                }
                Expansion::Alpha(a, b) => {
                    for comp in [a, b] {
                        if acc.insert(comp) {
                            match closure.expansion(comp) {
                                Expansion::Beta(_, _) => betas.push(comp),
                                _ => alphas.push(comp),
                            }
                        }
                    }
                    if !closure.is_prop_consistent(&acc) {
                        continue 'branch;
                    }
                }
                Expansion::Beta(_, _) => unreachable!("betas are queued separately"),
            }
        }
        if betas.is_empty() {
            if done_set.insert(acc.clone()) {
                done.push(acc);
            }
            continue;
        }
        // Choose which β to resolve next. Preferring *determined* βs —
        // already discharged (a component is present) or *forced* (one
        // component contradicts the branch propositionally) — resolves
        // the vacuously-true implication clauses of typical
        // specifications without forking, leaving genuine semantic
        // choices as the only branch points. This is a search-order
        // heuristic only: the set of minimal labels produced is
        // unchanged (superset branches are filtered below either way).
        //
        // The "would inserting this literal contradict the branch?"
        // probe is O(1): `acc` was already checked for consistency (at
        // its fork/α site, or here for the not-yet-checked root label),
        // so a literal insertion breaks consistency iff its complement
        // is present. The pre-optimization probe cloned `acc` and re-ran
        // the full consistency scan per candidate.
        let acc_consistent = closure.is_prop_consistent(&acc);
        let mut chosen = betas.len() - 1;
        let mut forced: Option<ClosureIdx> = None;
        'scan: for (bi, &idx) in betas.iter().enumerate() {
            let Expansion::Beta(a, b) = closure.expansion(idx) else {
                unreachable!("beta queue holds only beta formulae")
            };
            if acc.contains(a) || acc.contains(b) {
                chosen = bi;
                forced = None;
                break 'scan; // discharged: resolves for free
            }
            if forced.is_none() {
                let lit_blocked = |comp: ClosureIdx| -> bool {
                    match closure.entry(comp).kind {
                        EntryKind::False => true,
                        EntryKind::Lit { .. } => {
                            !acc_consistent || closure.insert_breaks_consistency(&acc, comp)
                        }
                        _ => false,
                    }
                };
                let a_blocked = lit_blocked(a);
                let b_blocked = lit_blocked(b);
                if a_blocked || b_blocked {
                    chosen = bi;
                    forced = Some(if a_blocked { b } else { a });
                    // Keep scanning: a discharged β is cheaper still.
                }
            }
        }
        let idx = betas.swap_remove(chosen);
        let Expansion::Beta(a, b) = closure.expansion(idx) else {
            unreachable!("beta queue holds only beta formulae")
        };
        if acc.contains(a) || acc.contains(b) {
            // Already discharged by an earlier choice.
            stack.push((acc, alphas, betas));
            continue;
        }
        // The last choice reuses the branch's buffers; a two-way fork
        // clones only for `a`. Push order (`a` then `b`) matches the
        // original exactly.
        let mut push_choice =
            |mut acc2: LabelSet, mut alphas2: Vec<ClosureIdx>, mut betas2: Vec<ClosureIdx>, comp| {
                if acc2.insert(comp) {
                    match closure.expansion(comp) {
                        Expansion::Beta(_, _) => betas2.push(comp),
                        _ => alphas2.push(comp),
                    }
                }
                if closure.is_prop_consistent(&acc2) {
                    stack.push((acc2, alphas2, betas2));
                }
            };
        match forced {
            Some(comp) => push_choice(acc, alphas, betas, comp),
            None => {
                push_choice(acc.clone(), alphas.clone(), betas.clone(), a);
                push_choice(acc, alphas, betas, b);
            }
        }
    }

    // Split labels that have AX formulae but no EX formula at all.
    let mut out: Vec<LabelSet> = Vec::new();
    let mut out_set: HashSet<LabelSet> = HashSet::new();
    for acc in done {
        let has_ax = closure.label_has_ax(&acc);
        let has_ex = closure.label_has_ex(&acc);
        if has_ax && !has_ex {
            for i in 0..closure.num_procs() {
                let mut v = acc.clone();
                v.insert(closure.ex_true(i));
                if out_set.insert(v.clone()) {
                    out.push(v);
                }
            }
        } else if out_set.insert(acc.clone()) {
            out.push(acc);
        }
    }
    // Minimal-branch filtering: a label that is a strict superset of
    // another is redundant — the subset label imposes fewer obligations
    // and is satisfiable whenever the superset is, so dropping supersets
    // preserves both soundness and completeness while keeping the
    // tableau (and the final model) small.
    //
    // A strict subset has strictly smaller cardinality, so only labels
    // from smaller size classes can shadow `a`. Both filters exploit
    // this by sorting candidate indices by size; they differ in *which*
    // smaller labels they compare against:
    //
    // * `Classic` scans every strictly-smaller label (the historic
    //   filter, frozen with the level-sync kernel). Cheap when output
    //   skews to one size class, quadratic when it does not — which is
    //   exactly what fault-successor-heavy OR labels produce (many
    //   distinct size classes of partially-determined branches).
    //
    // * `Accepted` processes labels in ascending size order and
    //   compares each only against the strictly-smaller labels *already
    //   accepted as minimal*. Equivalent predicate: if any smaller
    //   label `b ⊆ a` exists, take a minimum-size such `b*` — nothing
    //   strictly smaller is a subset of `b*` (it would also be a
    //   smaller subset of `a`), so `b*` itself is accepted, and the
    //   accepted-only scan finds it. Equal-size labels never shadow
    //   each other (strict subsets are strictly smaller), so the
    //   unstable sort's tie order is irrelevant. The minimal set is
    //   typically ~10x smaller than the candidate set, which turns the
    //   dominant cost of `Blocks` on fault-heavy problems into noise.
    let sizes: Vec<usize> = out.iter().map(LabelSet::len).collect();
    let mut by_size: Vec<usize> = (0..out.len()).collect();
    by_size.sort_unstable_by_key(|&i| sizes[i]);
    match filter {
        FilterKind::Classic => out
            .iter()
            .enumerate()
            .filter(|&(i, a)| {
                !by_size
                    .iter()
                    .take_while(|&&j| sizes[j] < sizes[i])
                    .any(|&j| out[j].is_subset(a))
            })
            .map(|(_, a)| a.clone())
            .collect(),
        FilterKind::Accepted => {
            let mut keep = vec![false; out.len()];
            // Monotone one-word summaries: a failing fingerprint test
            // refutes `out[j] ⊆ out[i]` without touching the words, and
            // a passing one changes nothing — the kept set is identical.
            let fps: Vec<u64> = out.iter().map(LabelSet::fingerprint).collect();
            // Indices of accepted minimal labels, in ascending size
            // order (the processing order).
            let mut accepted: Vec<usize> = Vec::new();
            for &i in &by_size {
                let shadowed = accepted
                    .iter()
                    .take_while(|&&j| sizes[j] < sizes[i])
                    .any(|&j| fps[j] & !fps[i] == 0 && out[j].is_subset(&out[i]));
                if !shadowed {
                    keep[i] = true;
                    accepted.push(i);
                }
            }
            // Emit in the original candidate order, exactly like the
            // classic filter.
            out.iter()
                .enumerate()
                .filter(|&(i, _)| keep[i])
                .map(|(_, a)| a.clone())
                .collect()
        }
    }
}

/// One `Tiles` successor requirement of an AND-node.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Tile {
    /// A per-process OR-node successor: edge label `Proc(proc)`, OR-node
    /// label `or_label` (the `AXᵢ` bodies plus one `EXᵢ` body).
    Or {
        /// The process index.
        proc: usize,
        /// The OR-node's label.
        or_label: LabelSet,
    },
    /// The node has no nexttime formulae: it gets a single dummy
    /// successor with its own label, whose `Blocks` is pinned to the node
    /// itself (a self-loop in the eventual model).
    Dummy,
}

/// Inserts the *frame condition* of Definition 5.1.2 into a `Proc(proc)`
/// tile label: a transition of process `proc` preserves the local state
/// of every other process, so each proposition owned by a process
/// `j ≠ proc` is pinned to its (closed-world) value in the source
/// AND-node label. Without the pins, perturbed sections — whose labels
/// no longer carry the specification's interleaving clauses — admit
/// "recovery" successors that flip other processes' propositions, which
/// no synchronization skeleton can implement.
fn pin_frame(closure: &Closure, props: &PropTable, label: &LabelSet, proc: usize, or_label: &mut LabelSet) {
    let mut positive: Vec<bool> = vec![false; props.len()];
    for idx in label.iter() {
        if let EntryKind::Lit {
            prop,
            positive: true,
        } = closure.entry(idx).kind
        {
            positive[prop.index()] = true;
        }
    }
    for p in props.iter() {
        match props.owner(p) {
            Owner::Process(j) if j != proc => {
                let lit = closure
                    .literal(p, positive[p.index()])
                    .expect("all literals are registered in the closure");
                or_label.insert(lit);
            }
            _ => {}
        }
    }
}

/// Computes the `Tiles(c)` successor requirements of an AND-node label.
pub fn tiles(closure: &Closure, props: &PropTable, label: &LabelSet) -> Vec<Tile> {
    // Gather AX/EX bodies per process.
    let mut ax_bodies: Vec<Vec<ClosureIdx>> = Vec::new();
    let mut ex_bodies: Vec<Vec<ClosureIdx>> = Vec::new();
    let ensure = |v: &mut Vec<Vec<ClosureIdx>>, i: usize| {
        while v.len() <= i {
            v.push(Vec::new());
        }
    };
    let mut any_nexttime = false;
    for idx in label.iter() {
        match closure.entry(idx).kind {
            EntryKind::Ax { proc, body } => {
                ensure(&mut ax_bodies, proc);
                ax_bodies[proc].push(body);
                any_nexttime = true;
            }
            EntryKind::Ex { proc, body } => {
                ensure(&mut ex_bodies, proc);
                ex_bodies[proc].push(body);
                any_nexttime = true;
            }
            _ => {}
        }
    }
    if !any_nexttime {
        return vec![Tile::Dummy];
    }
    let mut out = Vec::new();
    let mut out_set: HashSet<Tile> = HashSet::new();
    for (proc, exs) in ex_bodies.iter().enumerate() {
        // The shared AXᵢ-bodies part of each tile label is built once
        // per process; each EXᵢ body is then added to a copy.
        let mut ax_label = closure.empty_label();
        if let Some(axs) = ax_bodies.get(proc) {
            for &a in axs {
                ax_label.insert(a);
            }
        }
        pin_frame(closure, props, label, proc, &mut ax_label);
        for &e in exs {
            let mut or_label = ax_label.clone();
            or_label.insert(e);
            let tile = Tile::Or { proc, or_label };
            if out_set.insert(tile.clone()) {
                out.push(tile);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsyn_ctl::{parse::parse, Closure, FormulaArena, LabelSet, Owner, PropTable};

    fn setup(formulas: &[&str], procs: usize) -> (PropTable, Closure, Vec<LabelSet>) {
        let mut props = PropTable::new();
        for n in ["p", "q", "r"] {
            props.add(n, Owner::Process(0)).unwrap();
        }
        let mut arena = FormulaArena::new(procs);
        let ids: Vec<_> = formulas
            .iter()
            .map(|s| parse(&mut arena, &mut props, s, true).unwrap())
            .collect();
        let cl = Closure::build(&mut arena, &props, &ids);
        let labels = ids
            .iter()
            .map(|&f| {
                let mut l = cl.empty_label();
                l.insert(cl.index_of(f).unwrap());
                l
            })
            .collect();
        (props, cl, labels)
    }

    fn names(closure: &Closure, l: &LabelSet) -> usize {
        l.len().min(closure.len())
    }

    #[test]
    fn conjunction_expands_to_single_block() {
        let (_props, cl, labels) = setup(&["p & q"], 1);
        let bs = blocks(&cl, &labels[0]);
        assert_eq!(bs.len(), 1);
        let b = &bs[0];
        // Contains p, q, and the conjunction itself (downward closed).
        assert!(b.len() >= 3, "got {}", names(&cl, b));
    }

    #[test]
    fn disjunction_forks() {
        let (_props, cl, labels) = setup(&["p | q"], 1);
        let bs = blocks(&cl, &labels[0]);
        assert_eq!(bs.len(), 2);
    }

    #[test]
    fn contradiction_pruned() {
        let (_props, cl, labels) = setup(&["p & ~p"], 1);
        let bs = blocks(&cl, &labels[0]);
        assert!(bs.is_empty());
    }

    #[test]
    fn af_generates_fulfill_and_defer_branches() {
        let (_props, cl, labels) = setup(&["AF p"], 1);
        let bs = blocks(&cl, &labels[0]);
        // One branch contains p (fulfilled), the other AX(AF p) (deferred).
        assert_eq!(bs.len(), 2);
        let with_p = bs.iter().filter(|b| {
            b.iter().any(|i| matches!(
                cl.entry(i).kind,
                ftsyn_ctl::EntryKind::Lit { positive: true, .. }
            ))
        });
        assert_eq!(with_p.count(), 1);
    }

    #[test]
    fn ag_single_block_with_propagation() {
        let (_props, cl, labels) = setup(&["AG p"], 1);
        let bs = blocks(&cl, &labels[0]);
        assert_eq!(bs.len(), 1);
        // The block contains p and AX(AG p).
        let b = &bs[0];
        let has_ax = b
            .iter()
            .any(|i| matches!(cl.entry(i).kind, ftsyn_ctl::EntryKind::Ax { .. }));
        assert!(has_ax);
    }

    #[test]
    fn ax_without_ex_splits_per_process() {
        // AG p has AX obligations but no EX — with 2 processes, the split
        // produces one variant per process (each adding EXᵢ true).
        let (_props, cl, labels) = setup(&["AG p"], 2);
        let bs = blocks(&cl, &labels[0]);
        assert_eq!(bs.len(), 2);
        for b in &bs {
            let has_ex_true = (0..2).any(|i| b.contains(cl.ex_true(i)));
            assert!(has_ex_true);
        }
    }

    /// The accepted-only minimal filter and the classic all-smaller
    /// scan produce identical output — contents *and* order.
    #[test]
    fn accepted_filter_matches_classic_filter() {
        for spec in [
            "AF p | AF q",
            "AG(p | q) & AF r",
            "(p | q) & (~p | r) & AF q",
            "AG(EX1 true & EX2 true) & (p | ~q) & AF(q | r)",
        ] {
            let (_props, cl, labels) = setup(&[spec], 2);
            assert_eq!(
                blocks(&cl, &labels[0]),
                blocks_classic(&cl, &labels[0]),
                "{spec}"
            );
        }
    }

    #[test]
    fn tiles_dummy_for_pure_propositional() {
        let (_props, cl, labels) = setup(&["p & q"], 1);
        let bs = blocks(&cl, &labels[0]);
        let ts = tiles(&cl, &_props, &bs[0]);
        assert_eq!(ts, vec![Tile::Dummy]);
    }

    #[test]
    fn tiles_one_or_node_per_ex() {
        // EX1 p ∧ EX1 q ∧ AX1 r → two tiles for process 0, each with r
        // plus one of p/q.
        let (_props, cl, labels) = setup(&["EX1 p & EX1 q & AX1 r"], 1);
        let bs = blocks(&cl, &labels[0]);
        assert_eq!(bs.len(), 1);
        let ts = tiles(&cl, &_props, &bs[0]);
        assert_eq!(ts.len(), 2);
        for t in &ts {
            match t {
                Tile::Or { proc, or_label } => {
                    assert_eq!(*proc, 0);
                    assert_eq!(or_label.len(), 2, "AX body + one EX body");
                }
                Tile::Dummy => panic!("unexpected dummy"),
            }
        }
    }

    #[test]
    fn tiles_processes_partition() {
        let (_props, cl, labels) = setup(&["EX1 p & EX2 q"], 2);
        let bs = blocks(&cl, &labels[0]);
        let ts = tiles(&cl, &_props, &bs[0]);
        assert_eq!(ts.len(), 2);
        let procs: Vec<usize> = ts
            .iter()
            .map(|t| match t {
                Tile::Or { proc, .. } => *proc,
                Tile::Dummy => usize::MAX,
            })
            .collect();
        assert!(procs.contains(&0));
        assert!(procs.contains(&1));
    }
}
