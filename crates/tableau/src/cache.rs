//! Memoization of the `Blocks`/`Tiles` expansions across tableau builds.
//!
//! Both kernels are pure functions of `(closure, label)`, and OR-labels
//! repeat heavily across related builds (fault successors pin complete
//! valuations, so different specifications over the same propositions
//! keep producing the same perturbed labels). An [`ExpansionCache`]
//! owned by the caller can therefore be threaded through any number of
//! [`build_with_cache`](crate::build_with_cache) calls.
//!
//! The memo is sound only across builds that share the same *closure*:
//! a `LabelSet` key is a bitset of closure formula indices, so the
//! same bits mean different formulas under a different closure. A
//! caller serving multiple problems (e.g. the service daemon) must
//! keep one cache per problem rather than one global cache.
//!
//! Within a *single* build the cache never hits: node interning already
//! deduplicates labels per kind, so each unique label is expanded
//! exactly once per build. The hit/miss counters in
//! [`BuildProfile`](crate::BuildProfile) make this visible rather than
//! hiding it — warm-cache wins show up only from the second build over
//! a given label population onwards.
//!
//! Lookups run concurrently on expansion worker threads (shared
//! reference, atomic counters); inserts are deferred to the sequential
//! apply phase via [`CacheFill`] records, so the map itself needs no
//! locking.

use crate::expand::Tile;
use ftsyn_ctl::LabelSet;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Size caps for an [`ExpansionCache`]. `None` means uncapped. A capped
/// cache evicts whole entries in *admission order* (oldest fill first)
/// via [`ExpansionCache::evict_to`] — a deterministic function of the
/// fill sequence, with no clock or access-recency input, so two daemons
/// that admit the same fills in the same order hold identical caches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheLimits {
    /// Maximum memoized entries (blocks + tiles) to retain.
    pub max_entries: Option<usize>,
    /// Maximum approximate payload bytes to retain.
    pub max_bytes: Option<usize>,
}

impl CacheLimits {
    /// No caps: the cache never evicts (the pre-eviction behavior).
    pub fn unlimited() -> CacheLimits {
        CacheLimits::default()
    }

    /// Whether neither cap is set.
    pub fn is_unlimited(&self) -> bool {
        self.max_entries.is_none() && self.max_bytes.is_none()
    }
}

/// Which memo table an admission-queue entry lives in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum EntryKind {
    Blocks,
    Tiles,
}

/// Approximate heap bytes of a label bitset.
fn label_bytes(label: &LabelSet) -> usize {
    label.words().len() * 8
}

/// Approximate retained bytes of a memoized `Blocks` entry: key, result
/// labels, and a flat per-entry overhead for the map slot and vec
/// headers. The figure feeds the `max_bytes` cap and the stats/bench
/// counters; it is a stable estimate, not an allocator measurement.
fn blocks_bytes(key: &LabelSet, result: &[LabelSet]) -> usize {
    32 + label_bytes(key) + result.iter().map(label_bytes).sum::<usize>()
}

/// Approximate retained bytes of a memoized `Tiles` entry.
fn tiles_bytes(key: &LabelSet, result: &[Tile]) -> usize {
    32 + label_bytes(key)
        + result
            .iter()
            .map(|t| {
                16 + match t {
                    Tile::Or { or_label, .. } => label_bytes(or_label),
                    Tile::Dummy => 0,
                }
            })
            .sum::<usize>()
}

/// A deferred cache insert, produced on a worker thread during the pure
/// expansion half and applied by the sequential apply phase.
#[derive(Clone, Debug)]
pub enum CacheFill {
    /// `Blocks(label)` result for an OR-node label.
    Blocks(LabelSet, Vec<LabelSet>),
    /// `Tiles(label)` result for an AND-node label.
    Tiles(LabelSet, Vec<Tile>),
}

/// Cross-build memo table for `Blocks` and `Tiles` results.
#[derive(Debug, Default)]
pub struct ExpansionCache {
    blocks: HashMap<LabelSet, Vec<LabelSet>>,
    tiles: HashMap<LabelSet, Vec<Tile>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    /// Fill-admission order, the eviction order under [`CacheLimits`].
    /// Every queue entry is present in its map until evicted (eviction
    /// is the only removal path).
    admission: VecDeque<(EntryKind, LabelSet)>,
    /// Approximate retained payload bytes across both maps.
    bytes: usize,
    /// Lifetime eviction counters.
    evicted_entries: usize,
    evicted_bytes: usize,
}

impl ExpansionCache {
    /// An empty cache.
    pub fn new() -> ExpansionCache {
        ExpansionCache::default()
    }

    /// The memoized `Blocks` result for `label`, if present. Counts a
    /// hit or a miss either way.
    pub fn lookup_blocks(&self, label: &LabelSet) -> Option<&Vec<LabelSet>> {
        Self::count(&self.hits, &self.misses, self.blocks.get(label))
    }

    /// The memoized `Tiles` result for `label`, if present.
    pub fn lookup_tiles(&self, label: &LabelSet) -> Option<&Vec<Tile>> {
        Self::count(&self.hits, &self.misses, self.tiles.get(label))
    }

    fn count<'a, T>(
        hits: &AtomicUsize,
        misses: &AtomicUsize,
        found: Option<&'a T>,
    ) -> Option<&'a T> {
        if found.is_some() {
            hits.fetch_add(1, Ordering::Relaxed);
        } else {
            misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Applies a deferred insert (first result for a label wins; the
    /// kernels are deterministic so later fills are identical anyway).
    /// A fill that actually inserts joins the tail of the admission
    /// queue; duplicate fills change nothing, including the queue.
    pub fn apply_fill(&mut self, fill: CacheFill) {
        use std::collections::hash_map::Entry;
        match fill {
            CacheFill::Blocks(label, result) => {
                if let Entry::Vacant(slot) = self.blocks.entry(label.clone()) {
                    self.bytes += blocks_bytes(&label, &result);
                    self.admission.push_back((EntryKind::Blocks, label));
                    slot.insert(result);
                }
            }
            CacheFill::Tiles(label, result) => {
                if let Entry::Vacant(slot) = self.tiles.entry(label.clone()) {
                    self.bytes += tiles_bytes(&label, &result);
                    self.admission.push_back((EntryKind::Tiles, label));
                    slot.insert(result);
                }
            }
        }
    }

    /// Evicts oldest-admitted entries until both caps in `limits` are
    /// respected. Returns `(entries, bytes)` evicted by this call. A
    /// no-op under [`CacheLimits::unlimited`]. An evicted label misses
    /// on its next lookup and, if re-filled, re-enters the admission
    /// queue at the tail.
    pub fn evict_to(&mut self, limits: CacheLimits) -> (usize, usize) {
        let mut entries = 0;
        let mut bytes = 0;
        loop {
            let total = self.blocks.len() + self.tiles.len();
            let over_entries = limits.max_entries.is_some_and(|cap| total > cap);
            let over_bytes = limits.max_bytes.is_some_and(|cap| self.bytes > cap);
            if !over_entries && !over_bytes {
                break;
            }
            let Some((kind, label)) = self.admission.pop_front() else {
                break;
            };
            let freed = match kind {
                EntryKind::Blocks => self
                    .blocks
                    .remove(&label)
                    .map(|result| blocks_bytes(&label, &result)),
                EntryKind::Tiles => self
                    .tiles
                    .remove(&label)
                    .map(|result| tiles_bytes(&label, &result)),
            };
            if let Some(freed) = freed {
                self.bytes -= freed;
                entries += 1;
                bytes += freed;
            }
        }
        self.evicted_entries += entries;
        self.evicted_bytes += bytes;
        (entries, bytes)
    }

    /// Number of memoized entries `(blocks, tiles)`.
    pub fn len(&self) -> (usize, usize) {
        (self.blocks.len(), self.tiles.len())
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty() && self.tiles.is_empty()
    }

    /// Lifetime lookup counters `(hits, misses)`.
    pub fn counters(&self) -> (usize, usize) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Approximate retained payload bytes (the `max_bytes` accounting).
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Lifetime eviction counters `(entries, bytes)`.
    pub fn eviction_counters(&self) -> (usize, usize) {
        (self.evicted_entries, self.evicted_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_with_cache, build_with_threads};
    use crate::expand::Tile;
    use crate::FaultSpec;
    use ftsyn_ctl::{parse::parse, Closure, FormulaArena, Owner, PropTable};

    /// A small closure to mint valid `LabelSet`s from, plus the root
    /// label of its spec (the same shape the build tests use).
    fn setup(spec: &str) -> (PropTable, Closure, LabelSet) {
        let mut props = PropTable::new();
        props.add("p", Owner::Process(0)).unwrap();
        props.add("q", Owner::Process(0)).unwrap();
        let mut arena = FormulaArena::new(1);
        let f = parse(&mut arena, &mut props, spec, true).unwrap();
        let cl = Closure::build(&mut arena, &props, &[f]);
        let mut root = cl.empty_label();
        root.insert(cl.index_of(f).unwrap());
        (props, cl, root)
    }

    fn label(cl: &Closure, members: &[u32]) -> LabelSet {
        let mut l = cl.empty_label();
        for &m in members {
            l.insert(m);
        }
        l
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let (_, cl, _) = setup("p & q");
        let cache = ExpansionCache::new();
        let key = label(&cl, &[0]);
        assert!(cache.is_empty());
        assert!(cache.lookup_blocks(&key).is_none());
        assert_eq!(cache.counters(), (0, 1), "a lookup on empty is a miss");

        let mut cache = cache;
        let result = vec![label(&cl, &[0, 1])];
        cache.apply_fill(CacheFill::Blocks(key.clone(), result.clone()));
        assert_eq!(cache.len(), (1, 0));
        assert!(!cache.is_empty());
        assert_eq!(cache.lookup_blocks(&key), Some(&result));
        assert_eq!(cache.counters(), (1, 1), "the filled label now hits");
    }

    #[test]
    fn blocks_and_tiles_namespaces_are_separate() {
        let (_, cl, _) = setup("p & q");
        let mut cache = ExpansionCache::new();
        let key = label(&cl, &[0]);
        cache.apply_fill(CacheFill::Tiles(key.clone(), vec![Tile::Dummy]));
        assert_eq!(cache.len(), (0, 1));
        // The same label as a *blocks* key still misses: the memo is
        // keyed per kernel, matching node-kind-specific expansion.
        assert!(cache.lookup_blocks(&key).is_none());
        assert_eq!(cache.lookup_tiles(&key), Some(&vec![Tile::Dummy]));
        assert_eq!(cache.counters(), (1, 1));
    }

    /// `apply_fill` keeps the first result for a label. The kernels are
    /// deterministic, so duplicate fills (e.g. the same label expanded
    /// by two builds racing on a shared cache's fill queue) carry
    /// identical payloads — but the first-wins contract is what makes
    /// the order of deferred fills irrelevant, so it is pinned here.
    #[test]
    fn first_fill_wins() {
        let (_, cl, _) = setup("p & q");
        let mut cache = ExpansionCache::new();
        let key = label(&cl, &[0]);
        let first = vec![label(&cl, &[1])];
        let second = vec![label(&cl, &[2])];
        cache.apply_fill(CacheFill::Blocks(key.clone(), first.clone()));
        cache.apply_fill(CacheFill::Blocks(key.clone(), second));
        assert_eq!(cache.len(), (1, 0), "duplicate fill adds no entry");
        assert_eq!(cache.lookup_blocks(&key), Some(&first));
    }

    /// Lookups are shared-reference and must account correctly when
    /// issued from concurrent expansion workers (the scheduler hands
    /// every worker `&ExpansionCache` for the whole build).
    #[test]
    fn concurrent_lookups_account_exactly() {
        let (_, cl, _) = setup("p & q");
        let mut cache = ExpansionCache::new();
        let present = label(&cl, &[0]);
        let absent = label(&cl, &[1]);
        cache.apply_fill(CacheFill::Blocks(present.clone(), vec![]));
        let cache = &cache;
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        assert!(cache.lookup_blocks(&present).is_some());
                        assert!(cache.lookup_blocks(&absent).is_none());
                    }
                });
            }
        });
        assert_eq!(cache.counters(), (400, 400));
    }

    /// Entry-cap eviction removes entries strictly in admission order,
    /// and an evicted label can be re-filled, re-entering at the tail.
    #[test]
    fn entry_cap_evicts_in_admission_order() {
        let (_, cl, _) = setup("p & q");
        let mut cache = ExpansionCache::new();
        for i in 0..4u32 {
            cache.apply_fill(CacheFill::Blocks(label(&cl, &[i]), vec![label(&cl, &[i])]));
        }
        assert_eq!(cache.evict_to(CacheLimits::unlimited()), (0, 0));
        assert_eq!(cache.len(), (4, 0));

        let limits = CacheLimits {
            max_entries: Some(2),
            max_bytes: None,
        };
        let (evicted, freed) = cache.evict_to(limits);
        assert_eq!(evicted, 2);
        assert!(freed > 0);
        assert_eq!(cache.len(), (2, 0));
        // The two oldest admissions are gone, the two newest survive.
        assert!(cache.lookup_blocks(&label(&cl, &[0])).is_none());
        assert!(cache.lookup_blocks(&label(&cl, &[1])).is_none());
        assert!(cache.lookup_blocks(&label(&cl, &[2])).is_some());
        assert!(cache.lookup_blocks(&label(&cl, &[3])).is_some());
        assert_eq!(cache.eviction_counters(), (2, freed));

        // Re-filling an evicted label re-admits it at the tail: the
        // next eviction round takes label 2, not the re-filled 0.
        cache.apply_fill(CacheFill::Blocks(label(&cl, &[0]), vec![label(&cl, &[0])]));
        assert_eq!(cache.evict_to(limits), (1, freed / 2));
        assert!(cache.lookup_blocks(&label(&cl, &[2])).is_none());
        assert!(cache.lookup_blocks(&label(&cl, &[0])).is_some());
    }

    /// Byte-cap eviction frees oldest entries until under the cap, with
    /// the byte accounting consistent between `bytes()`, the eviction
    /// return, and the lifetime counters.
    #[test]
    fn byte_cap_evicts_until_under() {
        let (_, cl, _) = setup("p & q");
        let mut cache = ExpansionCache::new();
        cache.apply_fill(CacheFill::Tiles(label(&cl, &[0]), vec![Tile::Dummy]));
        cache.apply_fill(CacheFill::Blocks(label(&cl, &[1]), vec![label(&cl, &[2])]));
        let full = cache.bytes();
        assert!(full > 0);

        let limits = CacheLimits {
            max_entries: None,
            max_bytes: Some(full - 1),
        };
        let (evicted, freed) = cache.evict_to(limits);
        assert_eq!(evicted, 1, "one eviction suffices to get under the cap");
        assert_eq!(cache.bytes(), full - freed);
        assert!(cache.bytes() < full);
        // Admission order: the tiles entry was older and is the victim.
        assert_eq!(cache.len(), (1, 0));
        assert_eq!(cache.eviction_counters(), (1, freed));
    }

    /// A warm multi-threaded build served by a cache filled by a cold
    /// single-threaded build produces the bit-identical tableau, hits
    /// on every unique label, and inserts nothing new — the end-to-end
    /// contract of deferred [`CacheFill`]s under the work-stealing
    /// scheduler.
    #[test]
    fn warm_multithreaded_build_matches_cold() {
        let (props, cl, root) = setup("p & AG(EX1 true) & AF(q)");
        let (plain, _) = build_with_threads(&cl, &props, root.clone(), &FaultSpec::none(), 1);
        let mut cache = ExpansionCache::new();
        let (cold, cold_prof) =
            build_with_cache(&cl, &props, root.clone(), &FaultSpec::none(), 1, &mut cache);
        let filled = cache.len();
        assert_eq!(
            cold_prof.cache_hits, 0,
            "interning makes every label unique within one build"
        );
        assert!(cold_prof.cache_misses > 0);
        let (warm, warm_prof) =
            build_with_cache(&cl, &props, root, &FaultSpec::none(), 4, &mut cache);
        assert!(warm_prof.cache_hits > 0);
        assert_eq!(warm_prof.cache_misses, 0, "warm build is fully served");
        assert_eq!(cache.len(), filled, "warm build adds no entries");
        for t in [&cold, &warm] {
            assert_eq!(plain.len(), t.len());
            for id in plain.node_ids() {
                assert_eq!(plain.node(id).label, t.node(id).label, "{id:?}");
                assert_eq!(plain.node(id).kind, t.node(id).kind, "{id:?}");
                assert_eq!(plain.node(id).succ, t.node(id).succ, "{id:?}");
            }
        }
    }
}
