//! Memoization of the `Blocks`/`Tiles` expansions across tableau builds.
//!
//! Both kernels are pure functions of `(closure, label)`, and OR-labels
//! repeat heavily across related builds (fault successors pin complete
//! valuations, so different specifications over the same propositions
//! keep producing the same perturbed labels). An [`ExpansionCache`]
//! owned by the caller can therefore be threaded through any number of
//! [`build_with_cache`](crate::build_with_cache) calls.
//!
//! The memo is sound only across builds that share the same *closure*:
//! a `LabelSet` key is a bitset of closure formula indices, so the
//! same bits mean different formulas under a different closure. A
//! caller serving multiple problems (e.g. the service daemon) must
//! keep one cache per problem rather than one global cache.
//!
//! Within a *single* build the cache never hits: node interning already
//! deduplicates labels per kind, so each unique label is expanded
//! exactly once per build. The hit/miss counters in
//! [`BuildProfile`](crate::BuildProfile) make this visible rather than
//! hiding it — warm-cache wins show up only from the second build over
//! a given label population onwards.
//!
//! Lookups run concurrently on expansion worker threads (shared
//! reference, atomic counters); inserts are deferred to the sequential
//! apply phase via [`CacheFill`] records, so the map itself needs no
//! locking.

use crate::expand::Tile;
use ftsyn_ctl::LabelSet;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A deferred cache insert, produced on a worker thread during the pure
/// expansion half and applied by the sequential apply phase.
#[derive(Clone, Debug)]
pub enum CacheFill {
    /// `Blocks(label)` result for an OR-node label.
    Blocks(LabelSet, Vec<LabelSet>),
    /// `Tiles(label)` result for an AND-node label.
    Tiles(LabelSet, Vec<Tile>),
}

/// Cross-build memo table for `Blocks` and `Tiles` results.
#[derive(Debug, Default)]
pub struct ExpansionCache {
    blocks: HashMap<LabelSet, Vec<LabelSet>>,
    tiles: HashMap<LabelSet, Vec<Tile>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl ExpansionCache {
    /// An empty cache.
    pub fn new() -> ExpansionCache {
        ExpansionCache::default()
    }

    /// The memoized `Blocks` result for `label`, if present. Counts a
    /// hit or a miss either way.
    pub fn lookup_blocks(&self, label: &LabelSet) -> Option<&Vec<LabelSet>> {
        Self::count(&self.hits, &self.misses, self.blocks.get(label))
    }

    /// The memoized `Tiles` result for `label`, if present.
    pub fn lookup_tiles(&self, label: &LabelSet) -> Option<&Vec<Tile>> {
        Self::count(&self.hits, &self.misses, self.tiles.get(label))
    }

    fn count<'a, T>(
        hits: &AtomicUsize,
        misses: &AtomicUsize,
        found: Option<&'a T>,
    ) -> Option<&'a T> {
        if found.is_some() {
            hits.fetch_add(1, Ordering::Relaxed);
        } else {
            misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Applies a deferred insert (first result for a label wins; the
    /// kernels are deterministic so later fills are identical anyway).
    pub fn apply_fill(&mut self, fill: CacheFill) {
        match fill {
            CacheFill::Blocks(label, result) => {
                self.blocks.entry(label).or_insert(result);
            }
            CacheFill::Tiles(label, result) => {
                self.tiles.entry(label).or_insert(result);
            }
        }
    }

    /// Number of memoized entries `(blocks, tiles)`.
    pub fn len(&self) -> (usize, usize) {
        (self.blocks.len(), self.tiles.len())
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty() && self.tiles.is_empty()
    }

    /// Lifetime lookup counters `(hits, misses)`.
    pub fn counters(&self) -> (usize, usize) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_with_cache, build_with_threads};
    use crate::expand::Tile;
    use crate::FaultSpec;
    use ftsyn_ctl::{parse::parse, Closure, FormulaArena, Owner, PropTable};

    /// A small closure to mint valid `LabelSet`s from, plus the root
    /// label of its spec (the same shape the build tests use).
    fn setup(spec: &str) -> (PropTable, Closure, LabelSet) {
        let mut props = PropTable::new();
        props.add("p", Owner::Process(0)).unwrap();
        props.add("q", Owner::Process(0)).unwrap();
        let mut arena = FormulaArena::new(1);
        let f = parse(&mut arena, &mut props, spec, true).unwrap();
        let cl = Closure::build(&mut arena, &props, &[f]);
        let mut root = cl.empty_label();
        root.insert(cl.index_of(f).unwrap());
        (props, cl, root)
    }

    fn label(cl: &Closure, members: &[u32]) -> LabelSet {
        let mut l = cl.empty_label();
        for &m in members {
            l.insert(m);
        }
        l
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let (_, cl, _) = setup("p & q");
        let cache = ExpansionCache::new();
        let key = label(&cl, &[0]);
        assert!(cache.is_empty());
        assert!(cache.lookup_blocks(&key).is_none());
        assert_eq!(cache.counters(), (0, 1), "a lookup on empty is a miss");

        let mut cache = cache;
        let result = vec![label(&cl, &[0, 1])];
        cache.apply_fill(CacheFill::Blocks(key.clone(), result.clone()));
        assert_eq!(cache.len(), (1, 0));
        assert!(!cache.is_empty());
        assert_eq!(cache.lookup_blocks(&key), Some(&result));
        assert_eq!(cache.counters(), (1, 1), "the filled label now hits");
    }

    #[test]
    fn blocks_and_tiles_namespaces_are_separate() {
        let (_, cl, _) = setup("p & q");
        let mut cache = ExpansionCache::new();
        let key = label(&cl, &[0]);
        cache.apply_fill(CacheFill::Tiles(key.clone(), vec![Tile::Dummy]));
        assert_eq!(cache.len(), (0, 1));
        // The same label as a *blocks* key still misses: the memo is
        // keyed per kernel, matching node-kind-specific expansion.
        assert!(cache.lookup_blocks(&key).is_none());
        assert_eq!(cache.lookup_tiles(&key), Some(&vec![Tile::Dummy]));
        assert_eq!(cache.counters(), (1, 1));
    }

    /// `apply_fill` keeps the first result for a label. The kernels are
    /// deterministic, so duplicate fills (e.g. the same label expanded
    /// by two builds racing on a shared cache's fill queue) carry
    /// identical payloads — but the first-wins contract is what makes
    /// the order of deferred fills irrelevant, so it is pinned here.
    #[test]
    fn first_fill_wins() {
        let (_, cl, _) = setup("p & q");
        let mut cache = ExpansionCache::new();
        let key = label(&cl, &[0]);
        let first = vec![label(&cl, &[1])];
        let second = vec![label(&cl, &[2])];
        cache.apply_fill(CacheFill::Blocks(key.clone(), first.clone()));
        cache.apply_fill(CacheFill::Blocks(key.clone(), second));
        assert_eq!(cache.len(), (1, 0), "duplicate fill adds no entry");
        assert_eq!(cache.lookup_blocks(&key), Some(&first));
    }

    /// Lookups are shared-reference and must account correctly when
    /// issued from concurrent expansion workers (the scheduler hands
    /// every worker `&ExpansionCache` for the whole build).
    #[test]
    fn concurrent_lookups_account_exactly() {
        let (_, cl, _) = setup("p & q");
        let mut cache = ExpansionCache::new();
        let present = label(&cl, &[0]);
        let absent = label(&cl, &[1]);
        cache.apply_fill(CacheFill::Blocks(present.clone(), vec![]));
        let cache = &cache;
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        assert!(cache.lookup_blocks(&present).is_some());
                        assert!(cache.lookup_blocks(&absent).is_none());
                    }
                });
            }
        });
        assert_eq!(cache.counters(), (400, 400));
    }

    /// A warm multi-threaded build served by a cache filled by a cold
    /// single-threaded build produces the bit-identical tableau, hits
    /// on every unique label, and inserts nothing new — the end-to-end
    /// contract of deferred [`CacheFill`]s under the work-stealing
    /// scheduler.
    #[test]
    fn warm_multithreaded_build_matches_cold() {
        let (props, cl, root) = setup("p & AG(EX1 true) & AF(q)");
        let (plain, _) = build_with_threads(&cl, &props, root.clone(), &FaultSpec::none(), 1);
        let mut cache = ExpansionCache::new();
        let (cold, cold_prof) =
            build_with_cache(&cl, &props, root.clone(), &FaultSpec::none(), 1, &mut cache);
        let filled = cache.len();
        assert_eq!(
            cold_prof.cache_hits, 0,
            "interning makes every label unique within one build"
        );
        assert!(cold_prof.cache_misses > 0);
        let (warm, warm_prof) =
            build_with_cache(&cl, &props, root, &FaultSpec::none(), 4, &mut cache);
        assert!(warm_prof.cache_hits > 0);
        assert_eq!(warm_prof.cache_misses, 0, "warm build is fully served");
        assert_eq!(cache.len(), filled, "warm build adds no entries");
        for t in [&cold, &warm] {
            assert_eq!(plain.len(), t.len());
            for id in plain.node_ids() {
                assert_eq!(plain.node(id).label, t.node(id).label, "{id:?}");
                assert_eq!(plain.node(id).kind, t.node(id).kind, "{id:?}");
                assert_eq!(plain.node(id).succ, t.node(id).succ, "{id:?}");
            }
        }
    }
}
