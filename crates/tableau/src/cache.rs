//! Memoization of the `Blocks`/`Tiles` expansions across tableau builds.
//!
//! Both kernels are pure functions of `(closure, label)`, and OR-labels
//! repeat heavily across related builds (fault successors pin complete
//! valuations, so different specifications over the same propositions
//! keep producing the same perturbed labels). An [`ExpansionCache`]
//! owned by the caller can therefore be threaded through any number of
//! [`build_with_cache`](crate::build_with_cache) calls.
//!
//! Within a *single* build the cache never hits: node interning already
//! deduplicates labels per kind, so each unique label is expanded
//! exactly once per build. The hit/miss counters in
//! [`BuildProfile`](crate::BuildProfile) make this visible rather than
//! hiding it — warm-cache wins show up only from the second build over
//! a given label population onwards.
//!
//! Lookups run concurrently on expansion worker threads (shared
//! reference, atomic counters); inserts are deferred to the sequential
//! apply phase via [`CacheFill`] records, so the map itself needs no
//! locking.

use crate::expand::Tile;
use ftsyn_ctl::LabelSet;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A deferred cache insert, produced on a worker thread during the pure
/// expansion half and applied by the sequential apply phase.
#[derive(Clone, Debug)]
pub enum CacheFill {
    /// `Blocks(label)` result for an OR-node label.
    Blocks(LabelSet, Vec<LabelSet>),
    /// `Tiles(label)` result for an AND-node label.
    Tiles(LabelSet, Vec<Tile>),
}

/// Cross-build memo table for `Blocks` and `Tiles` results.
#[derive(Debug, Default)]
pub struct ExpansionCache {
    blocks: HashMap<LabelSet, Vec<LabelSet>>,
    tiles: HashMap<LabelSet, Vec<Tile>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl ExpansionCache {
    /// An empty cache.
    pub fn new() -> ExpansionCache {
        ExpansionCache::default()
    }

    /// The memoized `Blocks` result for `label`, if present. Counts a
    /// hit or a miss either way.
    pub fn lookup_blocks(&self, label: &LabelSet) -> Option<&Vec<LabelSet>> {
        Self::count(&self.hits, &self.misses, self.blocks.get(label))
    }

    /// The memoized `Tiles` result for `label`, if present.
    pub fn lookup_tiles(&self, label: &LabelSet) -> Option<&Vec<Tile>> {
        Self::count(&self.hits, &self.misses, self.tiles.get(label))
    }

    fn count<'a, T>(
        hits: &AtomicUsize,
        misses: &AtomicUsize,
        found: Option<&'a T>,
    ) -> Option<&'a T> {
        if found.is_some() {
            hits.fetch_add(1, Ordering::Relaxed);
        } else {
            misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Applies a deferred insert (first result for a label wins; the
    /// kernels are deterministic so later fills are identical anyway).
    pub fn apply_fill(&mut self, fill: CacheFill) {
        match fill {
            CacheFill::Blocks(label, result) => {
                self.blocks.entry(label).or_insert(result);
            }
            CacheFill::Tiles(label, result) => {
                self.tiles.entry(label).or_insert(result);
            }
        }
    }

    /// Number of memoized entries `(blocks, tiles)`.
    pub fn len(&self) -> (usize, usize) {
        (self.blocks.len(), self.tiles.len())
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty() && self.tiles.is_empty()
    }

    /// Lifetime lookup counters `(hits, misses)`.
    pub fn counters(&self) -> (usize, usize) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}
