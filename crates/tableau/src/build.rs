//! Tableau construction (step 1 of the synthesis method, Section 5.2).
//!
//! Starting from the root OR-node labeled `{spec}`, nodes are expanded
//! until no frontier remains: OR-nodes get their `Blocks` AND-successors,
//! AND-nodes get their `Tiles` OR-successors *plus* one fault-successor
//! OR-node per possible outcome of every enabled fault action
//! (`FaultStates`, Definitions 5.1.1–5.1.2).
//!
//! The label of a fault-successor OR-node pins the *complete* perturbed
//! valuation — a literal for every atomic proposition — and adds the
//! tolerance formulae `Label_TOL(spec)` (or, for multitolerance, the
//! per-action `Label_a(spec)`, Section 8.2).
//!
//! # Level-synchronized parallel expansion
//!
//! Construction is breadth-first over *levels*: the current frontier is
//! expanded into [`Step`] lists (a pure, read-only computation —
//! `Blocks`/`Tiles` decomposition and fault-outcome enumeration), then
//! the steps are applied sequentially in frontier order (interning,
//! edge insertion, next-frontier collection). Because only the pure
//! half runs on worker threads (`std::thread::scope`, no external
//! dependencies) and steps are applied in a fixed order, the resulting
//! tableau is bit-identical to a sequential build regardless of thread
//! count. Small frontiers fall back to inline expansion.

use crate::cache::{CacheFill, ExpansionCache};
use crate::expand::{blocks, tiles, Tile};
use crate::graph::{EdgeKind, NodeId, NodeKind, Tableau};
use ftsyn_ctl::{Closure, EntryKind, LabelSet, PropTable};
use ftsyn_guarded::FaultAction;
use ftsyn_kripke::PropSet;
use std::time::{Duration, Instant};

/// The fault side of a synthesis problem, ready for tableau construction:
/// the actions plus, for each action, the set of closure formulae that
/// must label the perturbed states it creates.
#[derive(Clone, Debug)]
pub struct FaultSpec {
    /// The fault actions, in index order (edge labels refer to these).
    pub actions: Vec<FaultAction>,
    /// `Label_a(spec)` per action, as closure members. For uniform
    /// tolerance all entries are equal; multitolerance varies them.
    pub tolerance_labels: Vec<LabelSet>,
}

impl FaultSpec {
    /// A fault spec with the same tolerance label for every action.
    pub fn uniform(actions: Vec<FaultAction>, label: LabelSet) -> FaultSpec {
        let tolerance_labels = vec![label; actions.len()];
        FaultSpec {
            actions,
            tolerance_labels,
        }
    }

    /// A fault spec with no actions (fault-intolerant synthesis — the
    /// plain Emerson–Clarke decision procedure).
    pub fn none() -> FaultSpec {
        FaultSpec {
            actions: Vec::new(),
            tolerance_labels: Vec::new(),
        }
    }
}

/// The closed-world valuation of an AND-node label: the set of
/// propositions whose positive literal is in the label
/// (the paper's `L(c)↑AP`).
pub fn valuation_of(closure: &Closure, props: &PropTable, label: &LabelSet) -> PropSet {
    let mut v = PropSet::with_capacity(props.len());
    for idx in label.iter() {
        if let EntryKind::Lit {
            prop,
            positive: true,
        } = closure.entry(idx).kind
        {
            v.insert(prop);
        }
    }
    v
}

/// Builds the label of a fault-successor OR-node: every proposition
/// pinned to its value in the outcome valuation `phi`, plus the
/// tolerance label.
fn fault_or_label(
    closure: &Closure,
    props: &PropTable,
    phi: &PropSet,
    tol: &LabelSet,
) -> LabelSet {
    let mut l = tol.clone();
    for p in props.iter() {
        let lit = closure
            .literal(p, phi.contains(p))
            .expect("all literals are registered in the closure");
        l.insert(lit);
    }
    l
}

/// Frontier/parallelism statistics of one tableau construction.
#[derive(Clone, Copy, Debug, Default)]
pub struct BuildProfile {
    /// Breadth-first levels until the frontier emptied.
    pub levels: usize,
    /// Levels whose expansion ran on worker threads.
    pub parallel_levels: usize,
    /// Total nodes expanded (= final node count).
    pub nodes_expanded: usize,
    /// Widest frontier encountered.
    pub max_frontier: usize,
    /// Worker threads the build was allowed to use.
    pub threads: usize,
    /// Time in the pure expansion half (parallelizable).
    pub expand_time: Duration,
    /// Time applying steps: interning, edges, frontier bookkeeping
    /// (inherently sequential).
    pub apply_time: Duration,
    /// Portion of [`BuildProfile::apply_time`] spent probing/creating
    /// nodes in the label-intern tables.
    pub intern_time: Duration,
    /// Number of label-intern probes (one per non-dummy successor step).
    pub intern_probes: usize,
    /// `Blocks`/`Tiles` memo-cache hits during this build (0 without a
    /// cache; also 0 on any cold build — interning already dedups labels
    /// within one build, so hits only come from earlier builds).
    pub cache_hits: usize,
    /// `Blocks`/`Tiles` memo-cache misses during this build.
    pub cache_misses: usize,
}

/// One successor to materialize for a frontier node — the output of the
/// pure expansion half, applied sequentially afterwards. Labels carry
/// their [`LabelSet::stable_hash`], computed on the (parallel) worker
/// side so the sequential intern pass probes with a ready-made hash.
enum Step {
    /// OR-node child: intern the AND-node for this block.
    And { label: LabelSet, hash: u64 },
    /// AND-node `Tiles` successor for process `proc`.
    Or {
        proc: usize,
        label: LabelSet,
        hash: u64,
    },
    /// AND-node dummy self-loop (pure-propositional tile).
    Dummy,
    /// Fault successor of action `action` with the perturbed label.
    Fault {
        action: usize,
        label: LabelSet,
        hash: u64,
    },
}

/// Which expansion kernels a build uses.
#[derive(Clone, Copy)]
enum Kernel {
    /// The optimized kernels in [`crate::expand`] (plus the memo cache
    /// when one is supplied).
    Fast,
    /// The pre-optimization kernels in [`crate::expand_naive`], kept as
    /// a timing/equivalence oracle.
    #[cfg(any(test, feature = "slow-reference"))]
    Reference,
}

/// The pure half of expanding one node: everything that only *reads*
/// the tableau. Safe to run concurrently for all frontier nodes; cache
/// lookups share the table immutably (counters are atomic) and cache
/// *inserts* are deferred to the apply phase as [`CacheFill`]s.
fn expand_node(
    t: &Tableau,
    closure: &Closure,
    props: &PropTable,
    faults: &FaultSpec,
    id: NodeId,
    cache: Option<&ExpansionCache>,
    kernel: Kernel,
) -> (Vec<Step>, Option<CacheFill>) {
    match t.node(id).kind {
        NodeKind::Or => {
            if t.node(id).dummy {
                return (Vec::new(), None); // successors pinned at creation
            }
            let label = &t.node(id).label;
            let mut fill = None;
            let bs = match cache.and_then(|c| c.lookup_blocks(label)) {
                Some(cached) => cached.clone(),
                None => {
                    let computed = run_blocks(closure, label, kernel);
                    if cache.is_some() {
                        fill = Some(CacheFill::Blocks(label.clone(), computed.clone()));
                    }
                    computed
                }
            };
            let steps = bs
                .into_iter()
                .map(|label| {
                    let hash = label.stable_hash();
                    Step::And { label, hash }
                })
                .collect();
            (steps, fill)
        }
        NodeKind::And => {
            let label = &t.node(id).label;
            let mut steps = Vec::new();
            let mut fill = None;
            // Tiles successors.
            let ts = match cache.and_then(|c| c.lookup_tiles(label)) {
                Some(cached) => cached.clone(),
                None => {
                    let computed = run_tiles(closure, label, kernel);
                    if cache.is_some() {
                        fill = Some(CacheFill::Tiles(label.clone(), computed.clone()));
                    }
                    computed
                }
            };
            for tile in ts {
                match tile {
                    Tile::Or { proc, or_label } => {
                        let hash = or_label.stable_hash();
                        steps.push(Step::Or {
                            proc,
                            label: or_label,
                            hash,
                        });
                    }
                    Tile::Dummy => steps.push(Step::Dummy),
                }
            }
            // Fault successors (Definition 5.1.2).
            let valuation = valuation_of(closure, props, label);
            for (ai, action) in faults.actions.iter().enumerate() {
                if !action.enabled(&valuation) {
                    continue;
                }
                for phi in action.outcomes(&valuation, props.len()) {
                    let label =
                        fault_or_label(closure, props, &phi, &faults.tolerance_labels[ai]);
                    let hash = label.stable_hash();
                    steps.push(Step::Fault {
                        action: ai,
                        label,
                        hash,
                    });
                }
            }
            (steps, fill)
        }
    }
}

fn run_blocks(closure: &Closure, label: &LabelSet, kernel: Kernel) -> Vec<LabelSet> {
    match kernel {
        Kernel::Fast => blocks(closure, label),
        #[cfg(any(test, feature = "slow-reference"))]
        Kernel::Reference => crate::expand_naive::blocks_naive(closure, label),
    }
}

fn run_tiles(closure: &Closure, label: &LabelSet, kernel: Kernel) -> Vec<Tile> {
    match kernel {
        Kernel::Fast => tiles(closure, label),
        #[cfg(any(test, feature = "slow-reference"))]
        Kernel::Reference => crate::expand_naive::tiles_naive(closure, label),
    }
}

/// Frontiers below this size are expanded inline: thread spawn overhead
/// would dominate the pure expansion work.
const MIN_PARALLEL_FRONTIER: usize = 4;

/// Constructs the tableau `T₀` for the given root label (the temporal
/// specification) and fault specification.
pub fn build(
    closure: &Closure,
    props: &PropTable,
    root_label: LabelSet,
    faults: &FaultSpec,
) -> Tableau {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    build_with_threads(closure, props, root_label, faults, threads).0
}

/// [`build`] with an explicit worker-thread budget (1 = fully
/// sequential). The result is identical for every thread count; the
/// profile records how the work was scheduled.
pub fn build_with_threads(
    closure: &Closure,
    props: &PropTable,
    root_label: LabelSet,
    faults: &FaultSpec,
    threads: usize,
) -> (Tableau, BuildProfile) {
    build_core(closure, props, root_label, faults, threads, None, Kernel::Fast)
}

/// [`build_with_threads`] with a cross-build `Blocks`/`Tiles` memo
/// cache. The cache never changes the result (the kernels are pure);
/// hits only occur for labels already expanded by *earlier* builds
/// through the same cache (see [`ExpansionCache`]).
pub fn build_with_cache(
    closure: &Closure,
    props: &PropTable,
    root_label: LabelSet,
    faults: &FaultSpec,
    threads: usize,
    cache: &mut ExpansionCache,
) -> (Tableau, BuildProfile) {
    build_core(
        closure,
        props,
        root_label,
        faults,
        threads,
        Some(cache),
        Kernel::Fast,
    )
}

/// [`build_with_threads`] running the pre-optimization
/// [`crate::expand_naive`] kernels — the timing/equivalence oracle for
/// the fast path. Must produce a bit-identical tableau.
#[cfg(any(test, feature = "slow-reference"))]
pub fn build_reference(
    closure: &Closure,
    props: &PropTable,
    root_label: LabelSet,
    faults: &FaultSpec,
    threads: usize,
) -> (Tableau, BuildProfile) {
    build_core(
        closure,
        props,
        root_label,
        faults,
        threads,
        None,
        Kernel::Reference,
    )
}

/// The planned materialization of one [`Step`] after interning: which
/// edge to draw, or a dummy pair. Produced by the intern pass, consumed
/// by the edge pass.
enum Planned {
    /// Draw `frontier_node --kind--> target`; `fresh` nodes join the
    /// next frontier.
    Edge {
        kind: EdgeKind,
        target: NodeId,
        fresh: bool,
    },
    /// Draw the dummy self-loop pair through dummy node `dummy`.
    DummyPair { dummy: NodeId },
}

fn build_core(
    closure: &Closure,
    props: &PropTable,
    root_label: LabelSet,
    faults: &FaultSpec,
    threads: usize,
    mut cache: Option<&mut ExpansionCache>,
    kernel: Kernel,
) -> (Tableau, BuildProfile) {
    let threads = threads.max(1);
    let mut profile = BuildProfile {
        threads,
        ..BuildProfile::default()
    };
    let counters_before = cache.as_deref().map_or((0, 0), ExpansionCache::counters);
    let mut t = Tableau::with_root(root_label);
    let mut frontier = vec![t.root()];

    while !frontier.is_empty() {
        profile.levels += 1;
        profile.max_frontier = profile.max_frontier.max(frontier.len());
        profile.nodes_expanded += frontier.len();

        // Pure expansion of the whole level, possibly on worker threads.
        let t0 = Instant::now();
        let shared_cache: Option<&ExpansionCache> = cache.as_deref();
        let expansions: Vec<(Vec<Step>, Option<CacheFill>)> =
            if threads > 1 && frontier.len() >= MIN_PARALLEL_FRONTIER {
                profile.parallel_levels += 1;
                let chunk = frontier.len().div_ceil(threads);
                std::thread::scope(|scope| {
                    let handles: Vec<_> = frontier
                        .chunks(chunk)
                        .map(|ids| {
                            let t = &t;
                            scope.spawn(move || {
                                ids.iter()
                                    .map(|&id| {
                                        expand_node(
                                            t,
                                            closure,
                                            props,
                                            faults,
                                            id,
                                            shared_cache,
                                            kernel,
                                        )
                                    })
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    // Joining in spawn order keeps results in frontier
                    // order, so the apply phase is deterministic.
                    handles
                        .into_iter()
                        .flat_map(|h| h.join().expect("expansion workers do not panic"))
                        .collect()
                })
            } else {
                frontier
                    .iter()
                    .map(|&id| expand_node(&t, closure, props, faults, id, shared_cache, kernel))
                    .collect()
            };
        profile.expand_time += t0.elapsed();

        // Sequential application in frontier order. Two passes, both in
        // frontier/step order so node numbering matches the historic
        // interleaved apply exactly: (A) intern every successor label
        // (this alone defines node ids — edges never create nodes),
        // (B) draw the edges and collect the next frontier.
        let t0 = Instant::now();
        let mut planned: Vec<(NodeId, Vec<Planned>)> = Vec::with_capacity(frontier.len());
        for (&id, (steps, fill)) in frontier.iter().zip(expansions) {
            if let (Some(c), Some(fill)) = (cache.as_deref_mut(), fill) {
                c.apply_fill(fill);
            }
            let mut plans = Vec::with_capacity(steps.len());
            for step in steps {
                let plan = match step {
                    Step::And { label, hash } => {
                        profile.intern_probes += 1;
                        let (target, fresh) = t.intern_and_hashed(label, hash);
                        Planned::Edge {
                            kind: EdgeKind::Unlabeled,
                            target,
                            fresh,
                        }
                    }
                    Step::Or { proc, label, hash } => {
                        profile.intern_probes += 1;
                        let (target, fresh) = t.intern_or_hashed(label, hash);
                        Planned::Edge {
                            kind: EdgeKind::Proc(proc),
                            target,
                            fresh,
                        }
                    }
                    Step::Fault {
                        action,
                        label,
                        hash,
                    } => {
                        profile.intern_probes += 1;
                        let (target, fresh) = t.intern_or_hashed(label, hash);
                        Planned::Edge {
                            kind: EdgeKind::Fault(action),
                            target,
                            fresh,
                        }
                    }
                    Step::Dummy => Planned::DummyPair {
                        dummy: t.new_dummy_or(t.node(id).label.clone()),
                    },
                };
                plans.push(plan);
            }
            planned.push((id, plans));
        }
        profile.intern_time += t0.elapsed();

        let mut next = Vec::new();
        for (id, plans) in planned {
            for plan in plans {
                match plan {
                    Planned::Edge {
                        kind,
                        target,
                        fresh,
                    } => {
                        t.add_edge(id, kind, target);
                        if fresh {
                            next.push(target);
                        }
                    }
                    Planned::DummyPair { dummy } => {
                        t.add_edge(id, EdgeKind::Dummy, dummy);
                        t.add_edge(dummy, EdgeKind::Unlabeled, id);
                    }
                }
            }
        }
        profile.apply_time += t0.elapsed();
        frontier = next;
    }
    let counters_after = cache.as_deref().map_or((0, 0), ExpansionCache::counters);
    profile.cache_hits = counters_after.0 - counters_before.0;
    profile.cache_misses = counters_after.1 - counters_before.1;
    (t, profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeId;
    use ftsyn_ctl::{parse::parse, FormulaArena, Owner};
    use ftsyn_guarded::{BoolExpr, PropAssign};

    fn simple_setup(
        spec: &str,
        procs: usize,
    ) -> (FormulaArena, PropTable, Closure, LabelSet) {
        let mut props = PropTable::new();
        props.add("p", Owner::Process(0)).unwrap();
        props.add("q", Owner::Process(0)).unwrap();
        let mut arena = FormulaArena::new(procs);
        let f = parse(&mut arena, &mut props, spec, true).unwrap();
        let cl = Closure::build(&mut arena, &props, &[f]);
        let mut root = cl.empty_label();
        root.insert(cl.index_of(f).unwrap());
        (arena, props, cl, root)
    }

    #[test]
    fn every_alive_node_has_a_successor() {
        let (_, props, cl, root) = simple_setup("p & AG(EX1 true)", 1);
        let t = build(&cl, &props, root, &FaultSpec::none());
        for id in t.node_ids() {
            assert!(
                !t.node(id).succ.is_empty(),
                "node {id:?} must have a successor (Prop 7.1.4 clause 3)"
            );
        }
    }

    #[test]
    fn pure_propositional_gets_dummy_self_loop() {
        let (_, props, cl, root) = simple_setup("p", 1);
        let t = build(&cl, &props, root, &FaultSpec::none());
        // root → AND(p) → dummy OR → same AND.
        let and_nodes: Vec<NodeId> = t
            .node_ids()
            .filter(|&n| t.node(n).kind == NodeKind::And)
            .collect();
        assert_eq!(and_nodes.len(), 1);
        let c = and_nodes[0];
        let (k, d) = t.node(c).succ[0];
        assert_eq!(k, EdgeKind::Dummy);
        assert!(t.node(d).dummy);
        assert_eq!(t.node(d).succ, vec![(EdgeKind::Unlabeled, c)]);
    }

    #[test]
    fn fault_successors_pin_full_valuation() {
        let (_, props, cl, root) = simple_setup("p & ~q", 1);
        let p = props.id("p").unwrap();
        let q = props.id("q").unwrap();
        // Fault: falsify p, truthify q.
        let action = FaultAction::new(
            "flip",
            BoolExpr::Prop(p),
            vec![(p, PropAssign::False), (q, PropAssign::True)],
        )
        .unwrap();
        let tol = cl.empty_label();
        let fs = FaultSpec::uniform(vec![action], tol);
        let t = build(&cl, &props, root, &fs);
        // Find the fault edge and check its OR label pins ¬p and q.
        let mut found = false;
        for id in t.node_ids() {
            for &(k, d) in &t.node(id).succ {
                if k.is_fault() {
                    found = true;
                    let l = &t.node(d).label;
                    assert!(l.contains(cl.literal(p, false).unwrap()));
                    assert!(l.contains(cl.literal(q, true).unwrap()));
                    assert!(!l.contains(cl.literal(p, true).unwrap()));
                }
            }
        }
        assert!(found, "the enabled fault must generate a fault successor");
    }

    #[test]
    fn disabled_fault_generates_nothing() {
        let (_, props, cl, root) = simple_setup("p & ~q", 1);
        let q = props.id("q").unwrap();
        // Guard requires q, which is false in every AND-node.
        let action =
            FaultAction::new("never", BoolExpr::Prop(q), vec![(q, PropAssign::False)]).unwrap();
        let fs = FaultSpec::uniform(vec![action], cl.empty_label());
        let t = build(&cl, &props, root, &fs);
        let fault_edges = t
            .node_ids()
            .flat_map(|id| t.node(id).succ.clone())
            .filter(|(k, _)| k.is_fault())
            .count();
        assert_eq!(fault_edges, 0);
    }

    #[test]
    fn nondet_fault_generates_one_successor_per_outcome() {
        let (_, props, cl, root) = simple_setup("p & ~q", 1);
        let q = props.id("q").unwrap();
        let action =
            FaultAction::new("maybe-q", BoolExpr::tru(), vec![(q, PropAssign::NonDet)]).unwrap();
        let fs = FaultSpec::uniform(vec![action], cl.empty_label());
        let t = build(&cl, &props, root, &fs);
        let and_with_faults: Vec<usize> = t
            .node_ids()
            .filter(|&id| t.node(id).kind == NodeKind::And)
            .map(|id| {
                t.node(id)
                    .succ
                    .iter()
                    .filter(|(k, _)| k.is_fault())
                    .count()
            })
            .collect();
        assert!(and_with_faults.contains(&2));
    }

    #[test]
    fn tolerance_label_carried_into_perturbed_or() {
        let (mut arena, mut props, _, _) = simple_setup("p", 1);
        // Rebuild closure with a tolerance formula as an extra root.
        let spec = parse(&mut arena, &mut props, "p & AG p", false).unwrap();
        let tolf = parse(&mut arena, &mut props, "AF(AG p)", false).unwrap();
        let cl = Closure::build(&mut arena, &props, &[spec, tolf]);
        let mut root = cl.empty_label();
        root.insert(cl.index_of(spec).unwrap());
        let mut tol = cl.empty_label();
        tol.insert(cl.index_of(tolf).unwrap());
        let p = props.id("p").unwrap();
        let action =
            FaultAction::new("drop-p", BoolExpr::Prop(p), vec![(p, PropAssign::False)]).unwrap();
        let fs = FaultSpec::uniform(vec![action], tol.clone());
        let t = build(&cl, &props, root, &fs);
        let mut checked = false;
        for id in t.node_ids() {
            for &(k, d) in &t.node(id).succ {
                if k.is_fault() {
                    checked = true;
                    assert!(tol.is_subset(&t.node(d).label));
                }
            }
        }
        assert!(checked);
    }

    /// A fault spec that flips `p` whenever it holds — wide enough to
    /// exercise fault-successor generation on most test specs.
    fn flip_p_faults(props: &PropTable, cl: &Closure) -> FaultSpec {
        let p = props.id("p").unwrap();
        let action =
            FaultAction::new("flip-p", BoolExpr::Prop(p), vec![(p, PropAssign::False)]).unwrap();
        FaultSpec::uniform(vec![action], cl.empty_label())
    }

    /// The tableau is bit-identical for every worker-thread count
    /// (labels, kinds, and edges in the same order at the same ids),
    /// with and without fault actions, through the sharded intern
    /// tables.
    #[test]
    fn build_is_deterministic_across_thread_counts() {
        for spec in ["p & AG(EX1 true & EX2 true)", "AG(EX1 true) & AF p & EF q"] {
            for with_faults in [false, true] {
                let (_, props, cl, root) = simple_setup(spec, 2);
                let faults = if with_faults {
                    flip_p_faults(&props, &cl)
                } else {
                    FaultSpec::none()
                };
                let (seq, seq_prof) = build_with_threads(&cl, &props, root.clone(), &faults, 1);
                assert_eq!(seq_prof.parallel_levels, 0);
                for threads in [2, 4, 8] {
                    let (par, prof) =
                        build_with_threads(&cl, &props, root.clone(), &faults, threads);
                    assert_eq!(seq.len(), par.len(), "{spec}: node counts differ");
                    for id in seq.node_ids() {
                        assert_eq!(seq.node(id).label, par.node(id).label, "{spec}: {id:?}");
                        assert_eq!(seq.node(id).kind, par.node(id).kind);
                        assert_eq!(seq.node(id).succ, par.node(id).succ);
                    }
                    assert_eq!(prof.threads, threads);
                    assert_eq!(prof.levels, seq_prof.levels);
                    // Dummy successors are created without ever joining
                    // a frontier, so compare against the sequential
                    // profile, not the node count.
                    assert_eq!(prof.nodes_expanded, seq_prof.nodes_expanded);
                }
            }
        }
    }

    /// The optimized build and the [`build_reference`] oracle (naive
    /// kernels) produce bit-identical tableaux at every thread count.
    #[test]
    fn build_matches_reference_kernels() {
        for spec in ["p & AG(EX1 true & EX2 true)", "AG(EX1 true) & AF p & EF q"] {
            let (_, props, cl, root) = simple_setup(spec, 2);
            let faults = flip_p_faults(&props, &cl);
            let (fast, _) = build_with_threads(&cl, &props, root.clone(), &faults, 1);
            for threads in [1, 4] {
                let (oracle, _) = build_reference(&cl, &props, root.clone(), &faults, threads);
                assert_eq!(fast.len(), oracle.len(), "{spec}: node counts differ");
                for id in fast.node_ids() {
                    assert_eq!(fast.node(id).label, oracle.node(id).label, "{spec}: {id:?}");
                    assert_eq!(fast.node(id).kind, oracle.node(id).kind);
                    assert_eq!(fast.node(id).succ, oracle.node(id).succ);
                }
            }
        }
    }

    /// Wide frontiers actually take the worker-thread path.
    #[test]
    fn wide_frontiers_expand_in_parallel() {
        let (_, props, cl, root) = simple_setup("AG(EX1 true) & AF p & EF q", 2);
        let (_, prof) = build_with_threads(&cl, &props, root, &FaultSpec::none(), 2);
        assert!(
            prof.max_frontier >= MIN_PARALLEL_FRONTIER,
            "spec too narrow to exercise the parallel path: {prof:?}"
        );
        assert!(prof.parallel_levels >= 1, "{prof:?}");
    }
}
