//! Tableau construction (step 1 of the synthesis method, Section 5.2).
//!
//! Starting from the root OR-node labeled `{spec}`, nodes are expanded
//! until no frontier remains: OR-nodes get their `Blocks` AND-successors,
//! AND-nodes get their `Tiles` OR-successors *plus* one fault-successor
//! OR-node per possible outcome of every enabled fault action
//! (`FaultStates`, Definitions 5.1.1–5.1.2).
//!
//! The label of a fault-successor OR-node pins the *complete* perturbed
//! valuation — a literal for every atomic proposition — and adds the
//! tolerance formulae `Label_TOL(spec)` (or, for multitolerance, the
//! per-action `Label_a(spec)`, Section 8.2).
//!
//! # Level-synchronized parallel expansion
//!
//! Construction is breadth-first over *levels*: the current frontier is
//! expanded into [`Step`] lists (a pure, read-only computation —
//! `Blocks`/`Tiles` decomposition and fault-outcome enumeration), then
//! the steps are applied sequentially in frontier order (interning,
//! edge insertion, next-frontier collection). Because only the pure
//! half runs on worker threads (`std::thread::scope`, no external
//! dependencies) and steps are applied in a fixed order, the resulting
//! tableau is bit-identical to a sequential build regardless of thread
//! count. Small frontiers fall back to inline expansion.

use crate::expand::{blocks, tiles, Tile};
use crate::graph::{EdgeKind, NodeId, NodeKind, Tableau};
use ftsyn_ctl::{Closure, EntryKind, LabelSet, PropTable};
use ftsyn_guarded::FaultAction;
use ftsyn_kripke::PropSet;
use std::time::{Duration, Instant};

/// The fault side of a synthesis problem, ready for tableau construction:
/// the actions plus, for each action, the set of closure formulae that
/// must label the perturbed states it creates.
#[derive(Clone, Debug)]
pub struct FaultSpec {
    /// The fault actions, in index order (edge labels refer to these).
    pub actions: Vec<FaultAction>,
    /// `Label_a(spec)` per action, as closure members. For uniform
    /// tolerance all entries are equal; multitolerance varies them.
    pub tolerance_labels: Vec<LabelSet>,
}

impl FaultSpec {
    /// A fault spec with the same tolerance label for every action.
    pub fn uniform(actions: Vec<FaultAction>, label: LabelSet) -> FaultSpec {
        let tolerance_labels = vec![label; actions.len()];
        FaultSpec {
            actions,
            tolerance_labels,
        }
    }

    /// A fault spec with no actions (fault-intolerant synthesis — the
    /// plain Emerson–Clarke decision procedure).
    pub fn none() -> FaultSpec {
        FaultSpec {
            actions: Vec::new(),
            tolerance_labels: Vec::new(),
        }
    }
}

/// The closed-world valuation of an AND-node label: the set of
/// propositions whose positive literal is in the label
/// (the paper's `L(c)↑AP`).
pub fn valuation_of(closure: &Closure, props: &PropTable, label: &LabelSet) -> PropSet {
    let mut v = PropSet::with_capacity(props.len());
    for idx in label.iter() {
        if let EntryKind::Lit {
            prop,
            positive: true,
        } = closure.entry(idx).kind
        {
            v.insert(prop);
        }
    }
    v
}

/// Builds the label of a fault-successor OR-node: every proposition
/// pinned to its value in the outcome valuation `phi`, plus the
/// tolerance label.
fn fault_or_label(
    closure: &Closure,
    props: &PropTable,
    phi: &PropSet,
    tol: &LabelSet,
) -> LabelSet {
    let mut l = tol.clone();
    for p in props.iter() {
        let lit = closure
            .literal(p, phi.contains(p))
            .expect("all literals are registered in the closure");
        l.insert(lit);
    }
    l
}

/// Frontier/parallelism statistics of one tableau construction.
#[derive(Clone, Copy, Debug, Default)]
pub struct BuildProfile {
    /// Breadth-first levels until the frontier emptied.
    pub levels: usize,
    /// Levels whose expansion ran on worker threads.
    pub parallel_levels: usize,
    /// Total nodes expanded (= final node count).
    pub nodes_expanded: usize,
    /// Widest frontier encountered.
    pub max_frontier: usize,
    /// Worker threads the build was allowed to use.
    pub threads: usize,
    /// Time in the pure expansion half (parallelizable).
    pub expand_time: Duration,
    /// Time applying steps: interning, edges, frontier bookkeeping
    /// (inherently sequential).
    pub apply_time: Duration,
}

/// One successor to materialize for a frontier node — the output of the
/// pure expansion half, applied sequentially afterwards.
enum Step {
    /// OR-node child: intern the AND-node for this block.
    And(LabelSet),
    /// AND-node `Tiles` successor for process `proc`.
    Or { proc: usize, label: LabelSet },
    /// AND-node dummy self-loop (pure-propositional tile).
    Dummy,
    /// Fault successor of action `action` with the perturbed label.
    Fault { action: usize, label: LabelSet },
}

/// The pure half of expanding one node: everything that only *reads*
/// the tableau. Safe to run concurrently for all frontier nodes.
fn expand_node(
    t: &Tableau,
    closure: &Closure,
    props: &PropTable,
    faults: &FaultSpec,
    id: NodeId,
) -> Vec<Step> {
    match t.node(id).kind {
        NodeKind::Or => {
            if t.node(id).dummy {
                return Vec::new(); // successors pinned at creation
            }
            blocks(closure, &t.node(id).label)
                .into_iter()
                .map(Step::And)
                .collect()
        }
        NodeKind::And => {
            let label = &t.node(id).label;
            let mut steps = Vec::new();
            // Tiles successors.
            for tile in tiles(closure, label) {
                match tile {
                    Tile::Or { proc, or_label } => steps.push(Step::Or {
                        proc,
                        label: or_label,
                    }),
                    Tile::Dummy => steps.push(Step::Dummy),
                }
            }
            // Fault successors (Definition 5.1.2).
            let valuation = valuation_of(closure, props, label);
            for (ai, action) in faults.actions.iter().enumerate() {
                if !action.enabled(&valuation) {
                    continue;
                }
                for phi in action.outcomes(&valuation, props.len()) {
                    steps.push(Step::Fault {
                        action: ai,
                        label: fault_or_label(closure, props, &phi, &faults.tolerance_labels[ai]),
                    });
                }
            }
            steps
        }
    }
}

/// Frontiers below this size are expanded inline: thread spawn overhead
/// would dominate the pure expansion work.
const MIN_PARALLEL_FRONTIER: usize = 4;

/// Constructs the tableau `T₀` for the given root label (the temporal
/// specification) and fault specification.
pub fn build(
    closure: &Closure,
    props: &PropTable,
    root_label: LabelSet,
    faults: &FaultSpec,
) -> Tableau {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    build_with_threads(closure, props, root_label, faults, threads).0
}

/// [`build`] with an explicit worker-thread budget (1 = fully
/// sequential). The result is identical for every thread count; the
/// profile records how the work was scheduled.
pub fn build_with_threads(
    closure: &Closure,
    props: &PropTable,
    root_label: LabelSet,
    faults: &FaultSpec,
    threads: usize,
) -> (Tableau, BuildProfile) {
    let threads = threads.max(1);
    let mut profile = BuildProfile {
        threads,
        ..BuildProfile::default()
    };
    let mut t = Tableau::with_root(root_label);
    let mut frontier = vec![t.root()];

    while !frontier.is_empty() {
        profile.levels += 1;
        profile.max_frontier = profile.max_frontier.max(frontier.len());
        profile.nodes_expanded += frontier.len();

        // Pure expansion of the whole level, possibly on worker threads.
        let t0 = Instant::now();
        let expansions: Vec<Vec<Step>> =
            if threads > 1 && frontier.len() >= MIN_PARALLEL_FRONTIER {
                profile.parallel_levels += 1;
                let chunk = frontier.len().div_ceil(threads);
                std::thread::scope(|scope| {
                    let handles: Vec<_> = frontier
                        .chunks(chunk)
                        .map(|ids| {
                            let t = &t;
                            scope.spawn(move || {
                                ids.iter()
                                    .map(|&id| expand_node(t, closure, props, faults, id))
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    // Joining in spawn order keeps results in frontier
                    // order, so the apply phase is deterministic.
                    handles
                        .into_iter()
                        .flat_map(|h| h.join().expect("expansion workers do not panic"))
                        .collect()
                })
            } else {
                frontier
                    .iter()
                    .map(|&id| expand_node(&t, closure, props, faults, id))
                    .collect()
            };
        profile.expand_time += t0.elapsed();

        // Sequential application in frontier order: interning and edge
        // insertion mutate the tableau and define node numbering.
        let t0 = Instant::now();
        let mut next = Vec::new();
        for (&id, steps) in frontier.iter().zip(expansions) {
            for step in steps {
                match step {
                    Step::And(label) => {
                        let (c, fresh) = t.intern_and(label);
                        t.add_edge(id, EdgeKind::Unlabeled, c);
                        if fresh {
                            next.push(c);
                        }
                    }
                    Step::Or { proc, label } => {
                        let (d, fresh) = t.intern_or(label);
                        t.add_edge(id, EdgeKind::Proc(proc), d);
                        if fresh {
                            next.push(d);
                        }
                    }
                    Step::Dummy => {
                        let d = t.new_dummy_or(t.node(id).label.clone());
                        t.add_edge(id, EdgeKind::Dummy, d);
                        t.add_edge(d, EdgeKind::Unlabeled, id);
                    }
                    Step::Fault { action, label } => {
                        let (d, fresh) = t.intern_or(label);
                        t.add_edge(id, EdgeKind::Fault(action), d);
                        if fresh {
                            next.push(d);
                        }
                    }
                }
            }
        }
        profile.apply_time += t0.elapsed();
        frontier = next;
    }
    (t, profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeId;
    use ftsyn_ctl::{parse::parse, FormulaArena, Owner};
    use ftsyn_guarded::{BoolExpr, PropAssign};

    fn simple_setup(
        spec: &str,
        procs: usize,
    ) -> (FormulaArena, PropTable, Closure, LabelSet) {
        let mut props = PropTable::new();
        props.add("p", Owner::Process(0)).unwrap();
        props.add("q", Owner::Process(0)).unwrap();
        let mut arena = FormulaArena::new(procs);
        let f = parse(&mut arena, &mut props, spec, true).unwrap();
        let cl = Closure::build(&mut arena, &props, &[f]);
        let mut root = cl.empty_label();
        root.insert(cl.index_of(f).unwrap());
        (arena, props, cl, root)
    }

    #[test]
    fn every_alive_node_has_a_successor() {
        let (_, props, cl, root) = simple_setup("p & AG(EX1 true)", 1);
        let t = build(&cl, &props, root, &FaultSpec::none());
        for id in t.node_ids() {
            assert!(
                !t.node(id).succ.is_empty(),
                "node {id:?} must have a successor (Prop 7.1.4 clause 3)"
            );
        }
    }

    #[test]
    fn pure_propositional_gets_dummy_self_loop() {
        let (_, props, cl, root) = simple_setup("p", 1);
        let t = build(&cl, &props, root, &FaultSpec::none());
        // root → AND(p) → dummy OR → same AND.
        let and_nodes: Vec<NodeId> = t
            .node_ids()
            .filter(|&n| t.node(n).kind == NodeKind::And)
            .collect();
        assert_eq!(and_nodes.len(), 1);
        let c = and_nodes[0];
        let (k, d) = t.node(c).succ[0];
        assert_eq!(k, EdgeKind::Dummy);
        assert!(t.node(d).dummy);
        assert_eq!(t.node(d).succ, vec![(EdgeKind::Unlabeled, c)]);
    }

    #[test]
    fn fault_successors_pin_full_valuation() {
        let (_, props, cl, root) = simple_setup("p & ~q", 1);
        let p = props.id("p").unwrap();
        let q = props.id("q").unwrap();
        // Fault: falsify p, truthify q.
        let action = FaultAction::new(
            "flip",
            BoolExpr::Prop(p),
            vec![(p, PropAssign::False), (q, PropAssign::True)],
        )
        .unwrap();
        let tol = cl.empty_label();
        let fs = FaultSpec::uniform(vec![action], tol);
        let t = build(&cl, &props, root, &fs);
        // Find the fault edge and check its OR label pins ¬p and q.
        let mut found = false;
        for id in t.node_ids() {
            for &(k, d) in &t.node(id).succ {
                if k.is_fault() {
                    found = true;
                    let l = &t.node(d).label;
                    assert!(l.contains(cl.literal(p, false).unwrap()));
                    assert!(l.contains(cl.literal(q, true).unwrap()));
                    assert!(!l.contains(cl.literal(p, true).unwrap()));
                }
            }
        }
        assert!(found, "the enabled fault must generate a fault successor");
    }

    #[test]
    fn disabled_fault_generates_nothing() {
        let (_, props, cl, root) = simple_setup("p & ~q", 1);
        let q = props.id("q").unwrap();
        // Guard requires q, which is false in every AND-node.
        let action =
            FaultAction::new("never", BoolExpr::Prop(q), vec![(q, PropAssign::False)]).unwrap();
        let fs = FaultSpec::uniform(vec![action], cl.empty_label());
        let t = build(&cl, &props, root, &fs);
        let fault_edges = t
            .node_ids()
            .flat_map(|id| t.node(id).succ.clone())
            .filter(|(k, _)| k.is_fault())
            .count();
        assert_eq!(fault_edges, 0);
    }

    #[test]
    fn nondet_fault_generates_one_successor_per_outcome() {
        let (_, props, cl, root) = simple_setup("p & ~q", 1);
        let q = props.id("q").unwrap();
        let action =
            FaultAction::new("maybe-q", BoolExpr::tru(), vec![(q, PropAssign::NonDet)]).unwrap();
        let fs = FaultSpec::uniform(vec![action], cl.empty_label());
        let t = build(&cl, &props, root, &fs);
        let and_with_faults: Vec<usize> = t
            .node_ids()
            .filter(|&id| t.node(id).kind == NodeKind::And)
            .map(|id| {
                t.node(id)
                    .succ
                    .iter()
                    .filter(|(k, _)| k.is_fault())
                    .count()
            })
            .collect();
        assert!(and_with_faults.contains(&2));
    }

    #[test]
    fn tolerance_label_carried_into_perturbed_or() {
        let (mut arena, mut props, _, _) = simple_setup("p", 1);
        // Rebuild closure with a tolerance formula as an extra root.
        let spec = parse(&mut arena, &mut props, "p & AG p", false).unwrap();
        let tolf = parse(&mut arena, &mut props, "AF(AG p)", false).unwrap();
        let cl = Closure::build(&mut arena, &props, &[spec, tolf]);
        let mut root = cl.empty_label();
        root.insert(cl.index_of(spec).unwrap());
        let mut tol = cl.empty_label();
        tol.insert(cl.index_of(tolf).unwrap());
        let p = props.id("p").unwrap();
        let action =
            FaultAction::new("drop-p", BoolExpr::Prop(p), vec![(p, PropAssign::False)]).unwrap();
        let fs = FaultSpec::uniform(vec![action], tol.clone());
        let t = build(&cl, &props, root, &fs);
        let mut checked = false;
        for id in t.node_ids() {
            for &(k, d) in &t.node(id).succ {
                if k.is_fault() {
                    checked = true;
                    assert!(tol.is_subset(&t.node(d).label));
                }
            }
        }
        assert!(checked);
    }

    /// The tableau is bit-identical for every worker-thread count
    /// (labels, kinds, and edges in the same order at the same ids).
    #[test]
    fn build_is_deterministic_across_thread_counts() {
        for spec in ["p & AG(EX1 true & EX2 true)", "AG(EX1 true) & AF p & EF q"] {
            let (_, props, cl, root) = simple_setup(spec, 2);
            let (seq, seq_prof) =
                build_with_threads(&cl, &props, root.clone(), &FaultSpec::none(), 1);
            assert_eq!(seq_prof.parallel_levels, 0);
            for threads in [2, 4] {
                let (par, prof) =
                    build_with_threads(&cl, &props, root.clone(), &FaultSpec::none(), threads);
                assert_eq!(seq.len(), par.len(), "{spec}: node counts differ");
                for id in seq.node_ids() {
                    assert_eq!(seq.node(id).label, par.node(id).label, "{spec}: {id:?}");
                    assert_eq!(seq.node(id).kind, par.node(id).kind);
                    assert_eq!(seq.node(id).succ, par.node(id).succ);
                }
                assert_eq!(prof.threads, threads);
                assert_eq!(prof.levels, seq_prof.levels);
                assert_eq!(prof.nodes_expanded, seq.len());
            }
        }
    }

    /// Wide frontiers actually take the worker-thread path.
    #[test]
    fn wide_frontiers_expand_in_parallel() {
        let (_, props, cl, root) = simple_setup("AG(EX1 true) & AF p & EF q", 2);
        let (_, prof) = build_with_threads(&cl, &props, root, &FaultSpec::none(), 2);
        assert!(
            prof.max_frontier >= MIN_PARALLEL_FRONTIER,
            "spec too narrow to exercise the parallel path: {prof:?}"
        );
        assert!(prof.parallel_levels >= 1, "{prof:?}");
    }
}
