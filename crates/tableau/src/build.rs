//! Tableau construction (step 1 of the synthesis method, Section 5.2).
//!
//! Starting from the root OR-node labeled `{spec}`, nodes are expanded
//! until no frontier remains: OR-nodes get their `Blocks` AND-successors,
//! AND-nodes get their `Tiles` OR-successors *plus* one fault-successor
//! OR-node per possible outcome of every enabled fault action
//! (`FaultStates`, Definitions 5.1.1–5.1.2).
//!
//! The label of a fault-successor OR-node pins the *complete* perturbed
//! valuation — a literal for every atomic proposition — and adds the
//! tolerance formulae `Label_TOL(spec)` (or, for multitolerance, the
//! per-action `Label_a(spec)`, Section 8.2).
//!
//! # Deterministic work-stealing expansion scheduler
//!
//! The default engine ([`build`], [`build_with_threads`],
//! [`build_with_cache`]) chunks expansion work into fixed-size batches
//! carrying dense sequence ids. Worker threads
//! (`std::thread::scope`, no external dependencies) pull batches from
//! per-worker queues and *steal* from the most loaded other queue when
//! theirs runs dry — so a worker that finishes its share of one BFS
//! level immediately starts on the next level instead of idling at a
//! barrier. Expansion itself is a pure, read-only computation
//! (`Blocks`/`Tiles` decomposition and fault-outcome enumeration over a
//! snapshot of the node's label), so batches may complete in any order;
//! determinism comes from the *commit* side: the main thread applies
//! batch results strictly in sequence order (interning, edge insertion,
//! fresh-node collection), and fresh nodes are batched in discovery
//! order. The global commit order therefore equals the BFS frontier
//! order of a sequential build, and the produced tableau — node ids,
//! edge order, intern order — is bit-identical at every thread count.
//! See `DESIGN.md` §8 for the full argument.
//!
//! The previous level-synchronized engine is retained verbatim as
//! [`build_level_sync`] (same output, barrier per BFS level, classic
//! `Blocks` minimal filter) so benchmarks can compare engine
//! generations head-to-head, and as the harness of the
//! [`build_reference`] naive-kernel oracle.

use crate::cache::{CacheFill, ExpansionCache};
use crate::checkpoint::{spec_fingerprint, Checkpoint, PendingBatch};
use crate::expand::{blocks, tiles, Tile};
use crate::governor::{AbortReason, Governor};
use crate::graph::{EdgeKind, NodeId, NodeKind, Tableau};
use ftsyn_ctl::{Closure, EntryKind, LabelSet, PropTable};
use ftsyn_guarded::FaultAction;
use ftsyn_kripke::PropSet;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// A tableau construction stopped by its [`Governor`]: the reason plus
/// the partial [`BuildProfile`] and node count accumulated so far —
/// and, for the work-stealing engine, a resumable [`Checkpoint`] of the
/// exact abort point plus the deferred cache fills computed so far.
#[derive(Debug)]
pub struct BuildAbort {
    /// Which budget tripped (or which worker panicked).
    pub reason: AbortReason,
    /// Scheduler/frontier statistics up to the abort point.
    pub profile: BuildProfile,
    /// Tableau nodes interned when the build stopped.
    pub nodes: usize,
    /// Resumable snapshot of the abort point. `Some` for the
    /// work-stealing engine ([`build_governed`],
    /// [`build_shared_cache_governed`], [`build_resume_governed`]);
    /// `None` for the retained level-synchronized engine, which is not
    /// resumable.
    pub checkpoint: Option<Box<Checkpoint>>,
    /// `Blocks`/`Tiles` results computed before the abort, still worth
    /// warming a cache with (the work-stealing engine defers fills to
    /// its caller; empty for engines that apply fills themselves).
    pub fills: Vec<CacheFill>,
}

/// Locks a mutex, recovering the guarded data if a panicking thread
/// poisoned it. The scheduler state is either consistent (workers
/// update it transactionally under the lock) or discarded wholesale on
/// the abort path, so poison recovery is always sound here — and it
/// keeps one worker panic from cascading into secondary panics in every
/// other thread touching the scheduler.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// [`Condvar::wait`] with the same poison recovery as [`lock_recover`].
fn wait_recover<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(|e| e.into_inner())
}

/// Renders a panic payload for [`AbortReason::WorkerPanic`].
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_owned()
    }
}

/// One governor poll on the build's deterministic counter (tableau
/// nodes after an in-order commit) plus the realtime triggers.
fn poll_build(gov: Option<&Governor>, states: usize) -> Result<(), AbortReason> {
    match gov {
        None => Ok(()),
        Some(g) => {
            g.check_states(states)?;
            g.check_realtime()
        }
    }
}

/// The fault side of a synthesis problem, ready for tableau construction:
/// the actions plus, for each action, the set of closure formulae that
/// must label the perturbed states it creates.
#[derive(Clone, Debug)]
pub struct FaultSpec {
    /// The fault actions, in index order (edge labels refer to these).
    pub actions: Vec<FaultAction>,
    /// `Label_a(spec)` per action, as closure members. For uniform
    /// tolerance all entries are equal; multitolerance varies them.
    pub tolerance_labels: Vec<LabelSet>,
}

impl FaultSpec {
    /// A fault spec with the same tolerance label for every action.
    pub fn uniform(actions: Vec<FaultAction>, label: LabelSet) -> FaultSpec {
        let tolerance_labels = vec![label; actions.len()];
        FaultSpec {
            actions,
            tolerance_labels,
        }
    }

    /// A fault spec with no actions (fault-intolerant synthesis — the
    /// plain Emerson–Clarke decision procedure).
    pub fn none() -> FaultSpec {
        FaultSpec {
            actions: Vec::new(),
            tolerance_labels: Vec::new(),
        }
    }
}

/// The closed-world valuation of an AND-node label: the set of
/// propositions whose positive literal is in the label
/// (the paper's `L(c)↑AP`).
pub fn valuation_of(closure: &Closure, props: &PropTable, label: &LabelSet) -> PropSet {
    let mut v = PropSet::with_capacity(props.len());
    for idx in label.iter() {
        if let EntryKind::Lit {
            prop,
            positive: true,
        } = closure.entry(idx).kind
        {
            v.insert(prop);
        }
    }
    v
}

/// Builds the label of a fault-successor OR-node: every proposition
/// pinned to its value in the outcome valuation `phi`, plus the
/// tolerance label.
fn fault_or_label(
    closure: &Closure,
    props: &PropTable,
    phi: &PropSet,
    tol: &LabelSet,
) -> LabelSet {
    let mut l = tol.clone();
    for p in props.iter() {
        let lit = closure
            .literal(p, phi.contains(p))
            .expect("all literals are registered in the closure");
        l.insert(lit);
    }
    l
}

/// Frontier/parallelism statistics of one tableau construction.
#[derive(Clone, Debug, Default)]
pub struct BuildProfile {
    /// Breadth-first levels until the frontier emptied. (The
    /// work-stealing engine has no level barriers, but tracks each
    /// node's BFS level as bookkeeping; the value matches the
    /// level-synchronized engine exactly.)
    pub levels: usize,
    /// Levels wide enough for parallel expansion (≥ the minimum
    /// parallel frontier, with more than one thread). For the
    /// level-synchronized engine these are the levels that actually ran
    /// on worker threads.
    pub parallel_levels: usize,
    /// Total nodes expanded (= final node count).
    pub nodes_expanded: usize,
    /// Widest frontier encountered.
    pub max_frontier: usize,
    /// Worker threads the build was allowed to use.
    pub threads: usize,
    /// Scheduler batches executed (0 for the level-synchronized
    /// engine, which schedules whole levels).
    pub batches: usize,
    /// Batches a worker took from another worker's queue instead of
    /// its own.
    pub steals: usize,
    /// Batches executed per worker (empty for single-threaded or
    /// level-synchronized builds).
    pub worker_batches: Vec<usize>,
    /// Time each worker spent parked waiting for work.
    pub worker_idle: Vec<Duration>,
    /// Time in the pure expansion half. For multi-threaded
    /// work-stealing builds this is the *sum* across workers, so it can
    /// exceed wall-clock time when expansion overlaps the commit pass.
    pub expand_time: Duration,
    /// Time applying steps: interning, edges, frontier bookkeeping
    /// (inherently sequential).
    pub apply_time: Duration,
    /// Portion of [`BuildProfile::apply_time`] spent probing/creating
    /// nodes in the label-intern tables.
    pub intern_time: Duration,
    /// Number of label-intern probes (one per non-dummy successor step).
    pub intern_probes: usize,
    /// `Blocks`/`Tiles` memo-cache hits during this build (0 without a
    /// cache; also 0 on any cold build — interning already dedups labels
    /// within one build, so hits only come from earlier builds).
    pub cache_hits: usize,
    /// `Blocks`/`Tiles` memo-cache misses during this build.
    pub cache_misses: usize,
}

/// One successor to materialize for a frontier node — the output of the
/// pure expansion half, applied sequentially afterwards. Labels carry
/// their [`LabelSet::stable_hash`], computed on the (parallel) worker
/// side so the sequential intern pass probes with a ready-made hash.
enum Step {
    /// OR-node child: intern the AND-node for this block.
    And { label: LabelSet, hash: u64 },
    /// AND-node `Tiles` successor for process `proc`.
    Or {
        proc: usize,
        label: LabelSet,
        hash: u64,
    },
    /// AND-node dummy self-loop (pure-propositional tile).
    Dummy,
    /// Fault successor of action `action` with the perturbed label.
    Fault {
        action: usize,
        label: LabelSet,
        hash: u64,
    },
}

/// Which expansion kernels a build uses.
#[derive(Clone, Copy)]
enum Kernel {
    /// The optimized kernels in [`crate::expand`] (plus the memo cache
    /// when one is supplied) — the work-stealing engine's kernels.
    Fast,
    /// The [`crate::expand`] kernels with the classic `Blocks` minimal
    /// filter, frozen with the retained level-synchronized engine
    /// ([`build_level_sync`]) so head-to-heads compare engine
    /// generations.
    Classic,
    /// The pre-optimization kernels in [`crate::expand_naive`], kept as
    /// a timing/equivalence oracle.
    #[cfg(any(test, feature = "slow-reference"))]
    Reference,
}

/// The tableau-side facts expansion needs about one node, taken as an
/// explicit snapshot so the work-stealing workers never borrow the
/// mutably growing tableau.
#[derive(Clone, Copy)]
struct NodeView<'a> {
    kind: NodeKind,
    dummy: bool,
    label: &'a LabelSet,
}

/// The pure half of expanding one node: everything that only *reads*
/// tableau state (through a [`NodeView`] snapshot). Safe to run
/// concurrently for any set of nodes; cache lookups share the table
/// immutably (counters are atomic) and cache *inserts* are deferred as
/// [`CacheFill`]s.
fn expand_task(
    closure: &Closure,
    props: &PropTable,
    faults: &FaultSpec,
    view: NodeView<'_>,
    cache: Option<&ExpansionCache>,
    kernel: Kernel,
) -> (Vec<Step>, Option<CacheFill>) {
    let label = view.label;
    match view.kind {
        NodeKind::Or => {
            if view.dummy {
                return (Vec::new(), None); // successors pinned at creation
            }
            let mut fill = None;
            let bs = match cache.and_then(|c| c.lookup_blocks(label)) {
                Some(cached) => cached.clone(),
                None => {
                    let computed = run_blocks(closure, label, kernel);
                    if cache.is_some() {
                        fill = Some(CacheFill::Blocks(label.clone(), computed.clone()));
                    }
                    computed
                }
            };
            let steps = bs
                .into_iter()
                .map(|label| {
                    let hash = label.stable_hash();
                    Step::And { label, hash }
                })
                .collect();
            (steps, fill)
        }
        NodeKind::And => {
            let mut steps = Vec::new();
            let mut fill = None;
            // Tiles successors.
            let ts = match cache.and_then(|c| c.lookup_tiles(label)) {
                Some(cached) => cached.clone(),
                None => {
                    let computed = run_tiles(closure, props, label, kernel);
                    if cache.is_some() {
                        fill = Some(CacheFill::Tiles(label.clone(), computed.clone()));
                    }
                    computed
                }
            };
            for tile in ts {
                match tile {
                    Tile::Or { proc, or_label } => {
                        let hash = or_label.stable_hash();
                        steps.push(Step::Or {
                            proc,
                            label: or_label,
                            hash,
                        });
                    }
                    Tile::Dummy => steps.push(Step::Dummy),
                }
            }
            // Fault successors (Definition 5.1.2).
            let valuation = valuation_of(closure, props, label);
            for (ai, action) in faults.actions.iter().enumerate() {
                if !action.enabled(&valuation) {
                    continue;
                }
                for phi in action.outcomes(&valuation, props.len()) {
                    let label =
                        fault_or_label(closure, props, &phi, &faults.tolerance_labels[ai]);
                    let hash = label.stable_hash();
                    steps.push(Step::Fault {
                        action: ai,
                        label,
                        hash,
                    });
                }
            }
            (steps, fill)
        }
    }
}

/// [`expand_task`] reading its snapshot from a tableau node — the
/// level-synchronized engine's entry point (its workers share the
/// tableau immutably between level barriers).
fn expand_node(
    t: &Tableau,
    closure: &Closure,
    props: &PropTable,
    faults: &FaultSpec,
    id: NodeId,
    cache: Option<&ExpansionCache>,
    kernel: Kernel,
) -> (Vec<Step>, Option<CacheFill>) {
    let n = t.node(id);
    let view = NodeView {
        kind: n.kind,
        dummy: n.dummy,
        label: &n.label,
    };
    expand_task(closure, props, faults, view, cache, kernel)
}

fn run_blocks(closure: &Closure, label: &LabelSet, kernel: Kernel) -> Vec<LabelSet> {
    match kernel {
        Kernel::Fast => blocks(closure, label),
        Kernel::Classic => crate::expand::blocks_classic(closure, label),
        #[cfg(any(test, feature = "slow-reference"))]
        Kernel::Reference => crate::expand_naive::blocks_naive(closure, label),
    }
}

fn run_tiles(closure: &Closure, props: &PropTable, label: &LabelSet, kernel: Kernel) -> Vec<Tile> {
    match kernel {
        // `Tiles` never grew a second filter; Fast and Classic share it.
        Kernel::Fast | Kernel::Classic => tiles(closure, props, label),
        #[cfg(any(test, feature = "slow-reference"))]
        Kernel::Reference => crate::expand_naive::tiles_naive(closure, props, label),
    }
}

/// Frontiers below this size are expanded inline by the
/// level-synchronized engine (thread spawn overhead would dominate);
/// the work-stealing engine uses the same threshold only as the
/// [`BuildProfile::parallel_levels`] bookkeeping cutoff.
const MIN_PARALLEL_FRONTIER: usize = 4;

/// Expansion tasks per work-stealing batch. Small enough to spread a
/// narrow frontier across workers, large enough that the per-batch
/// queue/commit bookkeeping stays noise.
pub(crate) const BATCH_SIZE: usize = 16;

/// Constructs the tableau `T₀` for the given root label (the temporal
/// specification) and fault specification.
pub fn build(
    closure: &Closure,
    props: &PropTable,
    root_label: LabelSet,
    faults: &FaultSpec,
) -> Tableau {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    build_with_threads(closure, props, root_label, faults, threads).0
}

/// [`build`] with an explicit worker-thread budget (1 = fully
/// sequential). The result is identical for every thread count; the
/// profile records how the work was scheduled.
pub fn build_with_threads(
    closure: &Closure,
    props: &PropTable,
    root_label: LabelSet,
    faults: &FaultSpec,
    threads: usize,
) -> (Tableau, BuildProfile) {
    let (t, profile, _) = build_ws_core(
        closure,
        props,
        WsStart::Fresh(root_label),
        faults,
        threads,
        None,
        Kernel::Fast,
        None,
    )
    .unwrap_or_else(|a| panic!("ungoverned tableau build aborted: {}", a.reason));
    (t, profile)
}

/// [`build_with_threads`] under a [`Governor`]: the committer polls the
/// state cap and the realtime triggers after every in-order batch
/// commit, and a worker panic is contained (`catch_unwind`) instead of
/// taking the process down. On abort the workers are drained and shut
/// down cleanly and the partial profile is returned. With an unlimited
/// governor the result is identical to [`build_with_threads`].
pub fn build_governed(
    closure: &Closure,
    props: &PropTable,
    root_label: LabelSet,
    faults: &FaultSpec,
    threads: usize,
    gov: &Governor,
) -> Result<(Tableau, BuildProfile), Box<BuildAbort>> {
    build_ws_core(
        closure,
        props,
        WsStart::Fresh(root_label),
        faults,
        threads,
        None,
        Kernel::Fast,
        Some(gov),
    )
    .map(|(t, profile, _)| (t, profile))
}

/// The full-service build entry: optional *shared* cache reference
/// (lookups only — the deferred [`CacheFill`]s are returned for the
/// caller to apply, so many concurrent builds can warm one table) and
/// optional [`Governor`]. On a governed abort the [`BuildAbort`]
/// carries a resumable [`Checkpoint`].
pub fn build_shared_cache_governed(
    closure: &Closure,
    props: &PropTable,
    root_label: LabelSet,
    faults: &FaultSpec,
    threads: usize,
    cache: Option<&ExpansionCache>,
    gov: Option<&Governor>,
) -> Result<(Tableau, BuildProfile, Vec<CacheFill>), Box<BuildAbort>> {
    build_ws_core(
        closure,
        props,
        WsStart::Fresh(root_label),
        faults,
        threads,
        cache,
        Kernel::Fast,
        gov,
    )
}

/// Resumes a build from a [`Checkpoint`] instead of the root label. The
/// scheduler picks up at the checkpointed commit sequence, so the
/// finished tableau — and every deterministic profile counter — is
/// bit-identical to an uninterrupted run at every thread count.
///
/// Callers must [`Checkpoint::validate`] the blob against the problem
/// first; resuming a checkpoint from a different problem is a logic
/// error (debug builds assert the specification fingerprints match).
pub fn build_resume_governed(
    closure: &Closure,
    props: &PropTable,
    faults: &FaultSpec,
    threads: usize,
    cache: Option<&ExpansionCache>,
    gov: Option<&Governor>,
    checkpoint: Checkpoint,
) -> Result<(Tableau, BuildProfile, Vec<CacheFill>), Box<BuildAbort>> {
    build_ws_core(
        closure,
        props,
        WsStart::Resume(Box::new(checkpoint)),
        faults,
        threads,
        cache,
        Kernel::Fast,
        gov,
    )
}

/// [`build_with_threads`] with a cross-build `Blocks`/`Tiles` memo
/// cache. The cache never changes the result (the kernels are pure);
/// hits only occur for labels already expanded by *earlier* builds
/// through the same cache (see [`ExpansionCache`]).
pub fn build_with_cache(
    closure: &Closure,
    props: &PropTable,
    root_label: LabelSet,
    faults: &FaultSpec,
    threads: usize,
    cache: &mut ExpansionCache,
) -> (Tableau, BuildProfile) {
    let (t, profile, fills) = build_ws_core(
        closure,
        props,
        WsStart::Fresh(root_label),
        faults,
        threads,
        Some(&*cache),
        Kernel::Fast,
        None,
    )
    .unwrap_or_else(|a| panic!("ungoverned tableau build aborted: {}", a.reason));
    for fill in fills {
        cache.apply_fill(fill);
    }
    (t, profile)
}

/// The retained previous-generation engine: level-synchronized parallel
/// expansion (barrier per BFS level) with the classic `Blocks` minimal
/// filter. Produces a tableau bit-identical to [`build_with_threads`];
/// kept public so benchmarks can compare engine generations
/// head-to-head.
pub fn build_level_sync(
    closure: &Closure,
    props: &PropTable,
    root_label: LabelSet,
    faults: &FaultSpec,
    threads: usize,
) -> (Tableau, BuildProfile) {
    build_level_core(
        closure,
        props,
        root_label,
        faults,
        threads,
        None,
        Kernel::Classic,
        None,
    )
    .unwrap_or_else(|a| panic!("ungoverned tableau build aborted: {}", a.reason))
}

/// [`build_level_sync`] under a [`Governor`]: polls after every level
/// barrier and contains worker panics, like [`build_governed`] does for
/// the work-stealing engine.
pub fn build_level_sync_governed(
    closure: &Closure,
    props: &PropTable,
    root_label: LabelSet,
    faults: &FaultSpec,
    threads: usize,
    gov: &Governor,
) -> Result<(Tableau, BuildProfile), Box<BuildAbort>> {
    build_level_core(
        closure,
        props,
        root_label,
        faults,
        threads,
        None,
        Kernel::Classic,
        Some(gov),
    )
}

/// [`build_with_threads`] running the pre-optimization
/// [`crate::expand_naive`] kernels on the level-synchronized harness —
/// the timing/equivalence oracle for both engines. Must produce a
/// bit-identical tableau.
#[cfg(any(test, feature = "slow-reference"))]
pub fn build_reference(
    closure: &Closure,
    props: &PropTable,
    root_label: LabelSet,
    faults: &FaultSpec,
    threads: usize,
) -> (Tableau, BuildProfile) {
    build_level_core(
        closure,
        props,
        root_label,
        faults,
        threads,
        None,
        Kernel::Reference,
        None,
    )
    .unwrap_or_else(|a| panic!("ungoverned tableau build aborted: {}", a.reason))
}

/// The planned materialization of one [`Step`] after interning: which
/// edge to draw, or a dummy pair. Produced by the intern pass, consumed
/// by the edge pass.
enum Planned {
    /// Draw `frontier_node --kind--> target`; `fresh` nodes join the
    /// next frontier.
    Edge {
        kind: EdgeKind,
        target: NodeId,
        fresh: bool,
    },
    /// Draw the dummy self-loop pair through dummy node `dummy`.
    DummyPair { dummy: NodeId },
}

/// One level's pure-expansion output — per frontier node its [`Step`]s
/// plus an optional deferred cache fill — or the first panicking
/// worker's message.
type LevelExpansions = Result<Vec<(Vec<Step>, Option<CacheFill>)>, String>;

/// The retained level-synchronized engine (kept byte-for-byte as the
/// previous generation; see [`build_level_sync`]).
#[allow(clippy::too_many_arguments)] // internal core shared by four public entry points
fn build_level_core(
    closure: &Closure,
    props: &PropTable,
    root_label: LabelSet,
    faults: &FaultSpec,
    threads: usize,
    mut cache: Option<&mut ExpansionCache>,
    kernel: Kernel,
    gov: Option<&Governor>,
) -> Result<(Tableau, BuildProfile), Box<BuildAbort>> {
    let threads = threads.max(1);
    let mut profile = BuildProfile {
        threads,
        ..BuildProfile::default()
    };
    let counters_before = cache.as_deref().map_or((0, 0), ExpansionCache::counters);
    let mut t = Tableau::with_root(root_label);
    let mut frontier = vec![t.root()];
    let mut abort: Option<AbortReason> = None;

    while !frontier.is_empty() {
        profile.levels += 1;
        profile.max_frontier = profile.max_frontier.max(frontier.len());
        profile.nodes_expanded += frontier.len();

        // Pure expansion of the whole level, possibly on worker threads.
        // Worker bodies are wrapped in `catch_unwind`: a panicking
        // worker becomes a structured abort instead of a process abort.
        let t0 = Instant::now();
        let shared_cache: Option<&ExpansionCache> = cache.as_deref();
        let expansions: LevelExpansions =
            if threads > 1 && frontier.len() >= MIN_PARALLEL_FRONTIER {
                profile.parallel_levels += 1;
                let chunk = frontier.len().div_ceil(threads);
                std::thread::scope(|scope| {
                    let handles: Vec<_> = frontier
                        .chunks(chunk)
                        .map(|ids| {
                            let t = &t;
                            scope.spawn(move || {
                                catch_unwind(AssertUnwindSafe(|| {
                                    ids.iter()
                                        .map(|&id| {
                                            expand_node(
                                                t,
                                                closure,
                                                props,
                                                faults,
                                                id,
                                                shared_cache,
                                                kernel,
                                            )
                                        })
                                        .collect::<Vec<_>>()
                                }))
                            })
                        })
                        .collect();
                    // Joining in spawn order keeps results in frontier
                    // order, so the apply phase is deterministic.
                    let mut out = Vec::new();
                    let mut panicked: Option<String> = None;
                    for h in handles {
                        match h.join().unwrap_or_else(Err) {
                            Ok(v) => out.extend(v),
                            Err(payload) => {
                                if panicked.is_none() {
                                    panicked = Some(panic_message(payload));
                                }
                            }
                        }
                    }
                    match panicked {
                        Some(message) => Err(message),
                        None => Ok(out),
                    }
                })
            } else {
                Ok(frontier
                    .iter()
                    .map(|&id| expand_node(&t, closure, props, faults, id, shared_cache, kernel))
                    .collect())
            };
        profile.expand_time += t0.elapsed();
        let expansions = match expansions {
            Ok(e) => e,
            Err(message) => {
                abort = Some(AbortReason::WorkerPanic { message });
                break;
            }
        };

        // Sequential application in frontier order. Two passes, both in
        // frontier/step order so node numbering matches the historic
        // interleaved apply exactly: (A) intern every successor label
        // (this alone defines node ids — edges never create nodes),
        // (B) draw the edges and collect the next frontier.
        let t0 = Instant::now();
        let mut planned: Vec<(NodeId, Vec<Planned>)> = Vec::with_capacity(frontier.len());
        for (&id, (steps, fill)) in frontier.iter().zip(expansions) {
            if let (Some(c), Some(fill)) = (cache.as_deref_mut(), fill) {
                c.apply_fill(fill);
            }
            let mut plans = Vec::with_capacity(steps.len());
            for step in steps {
                let plan = match step {
                    Step::And { label, hash } => {
                        profile.intern_probes += 1;
                        let (target, fresh) = t.intern_and_hashed(label, hash);
                        Planned::Edge {
                            kind: EdgeKind::Unlabeled,
                            target,
                            fresh,
                        }
                    }
                    Step::Or { proc, label, hash } => {
                        profile.intern_probes += 1;
                        let (target, fresh) = t.intern_or_hashed(label, hash);
                        Planned::Edge {
                            kind: EdgeKind::Proc(proc),
                            target,
                            fresh,
                        }
                    }
                    Step::Fault {
                        action,
                        label,
                        hash,
                    } => {
                        profile.intern_probes += 1;
                        let (target, fresh) = t.intern_or_hashed(label, hash);
                        Planned::Edge {
                            kind: EdgeKind::Fault(action),
                            target,
                            fresh,
                        }
                    }
                    Step::Dummy => Planned::DummyPair {
                        dummy: t.new_dummy_or(t.node(id).label.clone()),
                    },
                };
                plans.push(plan);
            }
            planned.push((id, plans));
        }
        profile.intern_time += t0.elapsed();

        let mut next = Vec::new();
        for (id, plans) in planned {
            for plan in plans {
                match plan {
                    Planned::Edge {
                        kind,
                        target,
                        fresh,
                    } => {
                        t.add_edge(id, kind, target);
                        if fresh {
                            next.push(target);
                        }
                    }
                    Planned::DummyPair { dummy } => {
                        t.add_edge(id, EdgeKind::Dummy, dummy);
                        t.add_edge(dummy, EdgeKind::Unlabeled, id);
                    }
                }
            }
        }
        profile.apply_time += t0.elapsed();
        frontier = next;
        if let Err(reason) = poll_build(gov, t.len()) {
            abort = Some(reason);
            break;
        }
    }
    let counters_after = cache.as_deref().map_or((0, 0), ExpansionCache::counters);
    profile.cache_hits = counters_after.0 - counters_before.0;
    profile.cache_misses = counters_after.1 - counters_before.1;
    match abort {
        Some(reason) => Err(Box::new(BuildAbort {
            reason,
            nodes: t.len(),
            profile,
            // The level-synchronized engine predates checkpointing and
            // applies its fills per level; it is kept verbatim as the
            // previous generation, so its aborts are not resumable.
            checkpoint: None,
            fills: Vec::new(),
        })),
        None => Ok((t, profile)),
    }
}

/// One node to expand, snapshotted at discovery time (kind and label
/// are final once interned) so workers never touch the mutably growing
/// tableau. Dummy OR-nodes are never interned fresh, hence never
/// scheduled — tasks are always non-dummy.
struct Task {
    id: NodeId,
    kind: NodeKind,
    label: LabelSet,
}

/// A fixed-size chunk of expansion tasks with its dense sequence id
/// (assigned at injection, in discovery order) and BFS level
/// (bookkeeping only — the scheduler has no level barriers).
struct Batch {
    seq: usize,
    level: usize,
    tasks: Vec<Task>,
}

type BatchOutput = Vec<(Vec<Step>, Option<CacheFill>)>;

/// Scheduler state shared between the committer (main thread) and the
/// expansion workers.
struct SchedState {
    /// Per-worker FIFO queues. A worker whose queue is empty steals
    /// from the back of the most loaded other queue.
    queues: Vec<VecDeque<Batch>>,
    /// Completed batches, indexed by sequence id. The committer
    /// consumes them strictly in sequence order.
    results: Vec<Option<(Batch, BatchOutput)>>,
    /// Set by the committer once every injected batch is committed (or
    /// the build aborts).
    shutdown: bool,
    /// Set by a worker whose batch body panicked (first panic wins);
    /// the committer converts it into [`AbortReason::WorkerPanic`].
    panic: Option<String>,
    steals: usize,
    worker_batches: Vec<usize>,
    worker_idle: Vec<Duration>,
    /// Summed expansion time across workers.
    expand_time: Duration,
}

struct Scheduler {
    state: Mutex<SchedState>,
    /// Workers park here when every queue is empty.
    work: Condvar,
    /// The committer parks here waiting for the next-in-sequence batch.
    done: Condvar,
}

impl Scheduler {
    fn new(workers: usize) -> Scheduler {
        Scheduler {
            state: Mutex::new(SchedState {
                queues: (0..workers).map(|_| VecDeque::new()).collect(),
                results: Vec::new(),
                shutdown: false,
                panic: None,
                steals: 0,
                worker_batches: vec![0; workers],
                worker_idle: vec![Duration::ZERO; workers],
                expand_time: Duration::ZERO,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        }
    }
}

/// Snapshots freshly interned nodes into a batch.
fn make_batch(t: &Tableau, seq: usize, level: usize, chunk: &[NodeId]) -> Batch {
    Batch {
        seq,
        level,
        tasks: chunk
            .iter()
            .map(|&id| Task {
                id,
                kind: t.node(id).kind,
                label: t.node(id).label.clone(),
            })
            .collect(),
    }
}

/// An expansion worker: pop from the own queue, steal when dry, park
/// when every queue is empty, exit on shutdown. Batch order is
/// irrelevant here — determinism lives entirely in the sequence-ordered
/// commit. The batch body runs under `catch_unwind`: a panic is
/// recorded in the scheduler state (first panic wins) and the worker
/// exits; the committer turns it into a structured abort.
#[allow(clippy::too_many_arguments)] // internal scheduler plumbing
fn worker_loop(
    sched: &Scheduler,
    w: usize,
    closure: &Closure,
    props: &PropTable,
    faults: &FaultSpec,
    cache: Option<&ExpansionCache>,
    kernel: Kernel,
    gov: Option<&Governor>,
) {
    loop {
        let batch = {
            let mut st = lock_recover(&sched.state);
            loop {
                if let Some(b) = st.queues[w].pop_front() {
                    break Some(b);
                }
                let victim = (0..st.queues.len())
                    .filter(|&v| v != w && !st.queues[v].is_empty())
                    .max_by_key(|&v| st.queues[v].len());
                if let Some(v) = victim {
                    st.steals += 1;
                    break st.queues[v].pop_back();
                }
                if st.shutdown {
                    break None;
                }
                let idle = Instant::now();
                st = wait_recover(&sched.work, st);
                st.worker_idle[w] += idle.elapsed();
            }
        };
        let Some(batch) = batch else { return };
        let t0 = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| {
            if let Some(g) = gov {
                if g.should_panic_at_batch(batch.seq) {
                    panic!("injected worker panic at batch {}", batch.seq);
                }
            }
            batch
                .tasks
                .iter()
                .map(|task| {
                    let view = NodeView {
                        kind: task.kind,
                        dummy: false,
                        label: &task.label,
                    };
                    expand_task(closure, props, faults, view, cache, kernel)
                })
                .collect::<BatchOutput>()
        }));
        let spent = t0.elapsed();
        let output = match result {
            Ok(o) => o,
            Err(payload) => {
                let message = panic_message(payload);
                let mut st = lock_recover(&sched.state);
                if st.panic.is_none() {
                    st.panic = Some(message);
                }
                drop(st);
                // Wake the committer (which may be parked waiting for
                // this very batch) and any parked workers.
                sched.done.notify_all();
                sched.work.notify_all();
                return;
            }
        };
        let seq = batch.seq;
        let mut st = lock_recover(&sched.state);
        st.expand_time += spent;
        st.worker_batches[w] += 1;
        if st.results.len() <= seq {
            st.results.resize_with(seq + 1, || None);
        }
        st.results[seq] = Some((batch, output));
        drop(st);
        sched.done.notify_all();
    }
}

/// Applies one batch's expansion output in task order — the same two
/// passes as the level-synchronized engine, per batch instead of per
/// level: (A) intern every successor label (this alone defines node
/// ids), (B) draw the edges and collect fresh nodes. Interleaving edge
/// passes between batches' intern passes cannot perturb the result:
/// node ids depend only on the intern-operation sequence and edge
/// state only on the edge-operation sequence, and committing batches in
/// sequence order preserves both sequences exactly as a sequential
/// frontier-order build produces them.
#[allow(clippy::too_many_arguments)] // internal commit half of the scheduler
fn commit_batch(
    t: &mut Tableau,
    batch: &Batch,
    output: BatchOutput,
    profile: &mut BuildProfile,
    fills: &mut Vec<CacheFill>,
    level_widths: &mut Vec<usize>,
    cache_enabled: bool,
) -> Vec<NodeId> {
    profile.nodes_expanded += batch.tasks.len();
    if level_widths.len() <= batch.level {
        level_widths.resize(batch.level + 1, 0);
    }
    level_widths[batch.level] += batch.tasks.len();

    let t0 = Instant::now();
    let mut planned: Vec<(NodeId, Vec<Planned>)> = Vec::with_capacity(batch.tasks.len());
    for (task, (steps, fill)) in batch.tasks.iter().zip(output) {
        // Per-task cache accounting: tasks are never dummy, so with a
        // cache present each task performed exactly one lookup, and a
        // deferred fill exists iff that lookup missed. Counting here
        // (instead of diffing the cache's global atomic counters) keeps
        // the profile deterministic even when concurrent builds share
        // one cache.
        if cache_enabled {
            if fill.is_some() {
                profile.cache_misses += 1;
            } else {
                profile.cache_hits += 1;
            }
        }
        if let Some(fill) = fill {
            fills.push(fill);
        }
        let id = task.id;
        let mut plans = Vec::with_capacity(steps.len());
        for step in steps {
            let plan = match step {
                Step::And { label, hash } => {
                    profile.intern_probes += 1;
                    let (target, fresh) = t.intern_and_hashed(label, hash);
                    Planned::Edge {
                        kind: EdgeKind::Unlabeled,
                        target,
                        fresh,
                    }
                }
                Step::Or { proc, label, hash } => {
                    profile.intern_probes += 1;
                    let (target, fresh) = t.intern_or_hashed(label, hash);
                    Planned::Edge {
                        kind: EdgeKind::Proc(proc),
                        target,
                        fresh,
                    }
                }
                Step::Fault {
                    action,
                    label,
                    hash,
                } => {
                    profile.intern_probes += 1;
                    let (target, fresh) = t.intern_or_hashed(label, hash);
                    Planned::Edge {
                        kind: EdgeKind::Fault(action),
                        target,
                        fresh,
                    }
                }
                Step::Dummy => Planned::DummyPair {
                    dummy: t.new_dummy_or(t.node(id).label.clone()),
                },
            };
            plans.push(plan);
        }
        planned.push((id, plans));
    }
    profile.intern_time += t0.elapsed();

    let mut fresh_nodes = Vec::new();
    for (id, plans) in planned {
        for plan in plans {
            match plan {
                Planned::Edge {
                    kind,
                    target,
                    fresh,
                } => {
                    t.add_edge(id, kind, target);
                    if fresh {
                        fresh_nodes.push(target);
                    }
                }
                Planned::DummyPair { dummy } => {
                    t.add_edge(id, EdgeKind::Dummy, dummy);
                    t.add_edge(dummy, EdgeKind::Unlabeled, id);
                }
            }
        }
    }
    profile.apply_time += t0.elapsed();
    fresh_nodes
}

/// Where a work-stealing build starts: from a fresh root label, or from
/// a [`Checkpoint`]'s restored scheduler state.
enum WsStart {
    Fresh(LabelSet),
    Resume(Box<Checkpoint>),
}

/// The work-stealing engine core. Fresh nodes discovered by each commit
/// are chunked into new batches in discovery order and injected with
/// the next sequence ids, so the global commit order equals the BFS
/// frontier order of a sequential build — which is what makes the
/// output bit-identical at every thread count (and to the
/// level-synchronized engine).
///
/// The cache is taken by shared reference (so concurrent builds may
/// warm one table) and the deferred [`CacheFill`]s are *returned*, on
/// success and on abort alike — applying them is the caller's business.
///
/// On a governed abort the returned [`BuildAbort`] carries a
/// [`Checkpoint`] of the exact scheduler state: the partial tableau,
/// every injected-but-uncommitted batch (in sequence order), the fresh
/// nodes of the last commit that were never batched (the governor polls
/// *between* a commit and its fresh-node injection), and the
/// deterministic counters. Resuming replays the identical commit
/// sequence, so the finished tableau is bit-identical to an
/// uninterrupted run at every thread count.
#[allow(clippy::too_many_arguments)] // internal core shared by the public entry points
fn build_ws_core(
    closure: &Closure,
    props: &PropTable,
    start: WsStart,
    faults: &FaultSpec,
    threads: usize,
    cache: Option<&ExpansionCache>,
    kernel: Kernel,
    gov: Option<&Governor>,
) -> Result<(Tableau, BuildProfile, Vec<CacheFill>), Box<BuildAbort>> {
    let threads = threads.max(1);
    let mut profile = BuildProfile {
        threads,
        ..BuildProfile::default()
    };
    // Cache inserts stay deferred past the entire build: workers hold a
    // shared cache reference for its whole duration, and this core only
    // ever *reads* the cache — the returned fills are applied by the
    // caller. Behavior-identical to per-level application — interning
    // already guarantees each unique label is expanded (and hence
    // looked up) at most once per build.
    let mut fills: Vec<CacheFill> = Vec::new();

    // Seed the scheduler: a fresh build starts from the root batch; a
    // resumed build re-snapshots the checkpoint's uncommitted batches
    // from the restored tableau (kind and label are final once
    // interned, so the snapshots equal the originals) and batches the
    // never-injected fresh nodes with the next sequence ids — exactly
    // the ids an uninterrupted run would have assigned them.
    let (mut t, spec_hash, mut seeds, mut injected, mut committed, mut level_widths) = match start
    {
        WsStart::Fresh(root_label) => {
            let spec_hash = spec_fingerprint(closure, props, &root_label, faults);
            let t = Tableau::with_root(root_label);
            let seeds = vec![make_batch(&t, 0, 0, &[t.root()])];
            (t, spec_hash, seeds, 1usize, 0usize, Vec::new())
        }
        WsStart::Resume(ck) => {
            let ck = *ck;
            let t = ck.tableau;
            debug_assert_eq!(
                ck.spec_hash,
                spec_fingerprint(closure, props, &t.node(t.root()).label, faults),
                "resuming a checkpoint against a different problem — \
                 callers must Checkpoint::validate first"
            );
            let mut injected = ck.injected;
            let mut seeds: Vec<Batch> = ck
                .pending
                .iter()
                .map(|pb| make_batch(&t, pb.seq, pb.level, &pb.nodes))
                .collect();
            for chunk in ck.fresh.chunks(BATCH_SIZE) {
                seeds.push(make_batch(&t, injected, ck.fresh_level, chunk));
                injected += 1;
            }
            profile.nodes_expanded = ck.nodes_expanded;
            profile.intern_probes = ck.intern_probes;
            (t, ck.spec_hash, seeds, injected, ck.committed, ck.level_widths)
        }
    };

    // Injected-but-uncommitted batches, tracked as plain node-id lists
    // so an abort can checkpoint them (a batch is removed only *after*
    // its successful commit — a batch lost to a worker panic therefore
    // stays checkpointed and re-runs on resume).
    let mut pending: VecDeque<(usize, usize, Vec<NodeId>)> = seeds
        .iter()
        .map(|b| (b.seq, b.level, b.tasks.iter().map(|task| task.id).collect()))
        .collect();
    let mut abort: Option<AbortReason> = None;
    // Fresh nodes of the last commit when an abort struck before their
    // injection, paired with their BFS level.
    let mut abort_fresh: (Vec<NodeId>, usize) = (Vec::new(), 0);

    if threads == 1 {
        // Inline scheduler: same batching and commit order, no workers.
        // The batch body still runs under `catch_unwind`, so a panic
        // (injected or genuine) aborts identically to the worker path.
        let mut queue: VecDeque<Batch> = seeds.drain(..).collect();
        while let Some(batch) = queue.pop_front() {
            let t0 = Instant::now();
            let result = catch_unwind(AssertUnwindSafe(|| {
                if let Some(g) = gov {
                    if g.should_panic_at_batch(batch.seq) {
                        panic!("injected worker panic at batch {}", batch.seq);
                    }
                }
                batch
                    .tasks
                    .iter()
                    .map(|task| {
                        let view = NodeView {
                            kind: task.kind,
                            dummy: false,
                            label: &task.label,
                        };
                        expand_task(closure, props, faults, view, cache, kernel)
                    })
                    .collect::<BatchOutput>()
            }));
            profile.expand_time += t0.elapsed();
            let output = match result {
                Ok(o) => o,
                Err(payload) => {
                    abort = Some(AbortReason::WorkerPanic {
                        message: panic_message(payload),
                    });
                    break;
                }
            };
            let fresh = commit_batch(
                &mut t,
                &batch,
                output,
                &mut profile,
                &mut fills,
                &mut level_widths,
                cache.is_some(),
            );
            let popped = pending.pop_front();
            debug_assert_eq!(popped.map(|p| p.0), Some(batch.seq));
            committed += 1;
            if let Err(reason) = poll_build(gov, t.len()) {
                abort = Some(reason);
                abort_fresh = (fresh, batch.level + 1);
                break;
            }
            for chunk in fresh.chunks(BATCH_SIZE) {
                pending.push_back((injected, batch.level + 1, chunk.to_vec()));
                queue.push_back(make_batch(&t, injected, batch.level + 1, chunk));
                injected += 1;
            }
        }
    } else {
        let sched = Scheduler::new(threads);
        {
            let mut st = lock_recover(&sched.state);
            for (i, b) in seeds.drain(..).enumerate() {
                st.queues[i % threads].push_back(b);
            }
        }
        let shared_cache: Option<&ExpansionCache> = cache;
        std::thread::scope(|scope| {
            for w in 0..threads {
                let sched = &sched;
                scope.spawn(move || {
                    worker_loop(sched, w, closure, props, faults, shared_cache, kernel, gov)
                });
            }
            // The committer: consume results strictly in sequence
            // order, inject fresh batches round-robin across workers.
            // On resume the sequence picks up at the checkpoint's
            // committed count — lower ids were committed before the
            // abort and live in the restored tableau already.
            let mut next_commit = committed;
            let mut rr = 0usize;
            'commit: while next_commit < injected {
                let (batch, output) = {
                    let mut st = lock_recover(&sched.state);
                    loop {
                        if let Some(message) = st.panic.take() {
                            abort = Some(AbortReason::WorkerPanic { message });
                            break 'commit;
                        }
                        if let Some(done) =
                            st.results.get_mut(next_commit).and_then(Option::take)
                        {
                            break done;
                        }
                        st = wait_recover(&sched.done, st);
                    }
                };
                let fresh = commit_batch(
                    &mut t,
                    &batch,
                    output,
                    &mut profile,
                    &mut fills,
                    &mut level_widths,
                    shared_cache.is_some(),
                );
                let popped = pending.pop_front();
                debug_assert_eq!(popped.map(|p| p.0), Some(batch.seq));
                committed += 1;
                if let Err(reason) = poll_build(gov, t.len()) {
                    abort = Some(reason);
                    abort_fresh = (fresh, batch.level + 1);
                    break 'commit;
                }
                if !fresh.is_empty() {
                    let mut st = lock_recover(&sched.state);
                    for chunk in fresh.chunks(BATCH_SIZE) {
                        pending.push_back((injected, batch.level + 1, chunk.to_vec()));
                        st.queues[rr % threads]
                            .push_back(make_batch(&t, injected, batch.level + 1, chunk));
                        rr += 1;
                        injected += 1;
                    }
                    drop(st);
                    sched.work.notify_all();
                }
                next_commit += 1;
            }
            // Drain/shutdown: on the abort path, clear every queue so
            // workers stop as soon as their current batch finishes; the
            // scoped join below then reaps them all cleanly.
            let mut st = lock_recover(&sched.state);
            st.shutdown = true;
            if abort.is_some() {
                for q in &mut st.queues {
                    q.clear();
                }
            }
            drop(st);
            sched.work.notify_all();
        });
        let st = sched
            .state
            .into_inner()
            .unwrap_or_else(|e| e.into_inner());
        profile.steals = st.steals;
        profile.worker_batches = st.worker_batches;
        profile.worker_idle = st.worker_idle;
        profile.expand_time = st.expand_time;
    }

    profile.batches = injected;
    profile.levels = level_widths.len();
    profile.max_frontier = level_widths.iter().copied().max().unwrap_or(0);
    profile.parallel_levels = if threads > 1 {
        level_widths
            .iter()
            .filter(|&&w| w >= MIN_PARALLEL_FRONTIER)
            .count()
    } else {
        0
    };
    match abort {
        Some(reason) => {
            let nodes = t.len();
            let label_words = t.node(t.root()).label.words().len();
            let checkpoint = Checkpoint {
                spec_hash,
                closure_len: closure.len(),
                label_words,
                pending: pending
                    .into_iter()
                    .map(|(seq, level, nodes)| PendingBatch { seq, level, nodes })
                    .collect(),
                fresh: abort_fresh.0,
                fresh_level: abort_fresh.1,
                injected,
                committed,
                level_widths,
                nodes_expanded: profile.nodes_expanded,
                intern_probes: profile.intern_probes,
                tableau: t,
            };
            Err(Box::new(BuildAbort {
                reason,
                nodes,
                profile,
                checkpoint: Some(Box::new(checkpoint)),
                fills,
            }))
        }
        None => Ok((t, profile, fills)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeId;
    use ftsyn_ctl::{parse::parse, FormulaArena, Owner};
    use ftsyn_guarded::{BoolExpr, PropAssign};

    fn simple_setup(
        spec: &str,
        procs: usize,
    ) -> (FormulaArena, PropTable, Closure, LabelSet) {
        let mut props = PropTable::new();
        props.add("p", Owner::Process(0)).unwrap();
        props.add("q", Owner::Process(0)).unwrap();
        let mut arena = FormulaArena::new(procs);
        let f = parse(&mut arena, &mut props, spec, true).unwrap();
        let cl = Closure::build(&mut arena, &props, &[f]);
        let mut root = cl.empty_label();
        root.insert(cl.index_of(f).unwrap());
        (arena, props, cl, root)
    }

    #[test]
    fn every_alive_node_has_a_successor() {
        let (_, props, cl, root) = simple_setup("p & AG(EX1 true)", 1);
        let t = build(&cl, &props, root, &FaultSpec::none());
        for id in t.node_ids() {
            assert!(
                !t.node(id).succ.is_empty(),
                "node {id:?} must have a successor (Prop 7.1.4 clause 3)"
            );
        }
    }

    #[test]
    fn pure_propositional_gets_dummy_self_loop() {
        let (_, props, cl, root) = simple_setup("p", 1);
        let t = build(&cl, &props, root, &FaultSpec::none());
        // root → AND(p) → dummy OR → same AND.
        let and_nodes: Vec<NodeId> = t
            .node_ids()
            .filter(|&n| t.node(n).kind == NodeKind::And)
            .collect();
        assert_eq!(and_nodes.len(), 1);
        let c = and_nodes[0];
        let (k, d) = t.node(c).succ[0];
        assert_eq!(k, EdgeKind::Dummy);
        assert!(t.node(d).dummy);
        assert_eq!(t.node(d).succ, vec![(EdgeKind::Unlabeled, c)]);
    }

    #[test]
    fn fault_successors_pin_full_valuation() {
        let (_, props, cl, root) = simple_setup("p & ~q", 1);
        let p = props.id("p").unwrap();
        let q = props.id("q").unwrap();
        // Fault: falsify p, truthify q.
        let action = FaultAction::new(
            "flip",
            BoolExpr::Prop(p),
            vec![(p, PropAssign::False), (q, PropAssign::True)],
        )
        .unwrap();
        let tol = cl.empty_label();
        let fs = FaultSpec::uniform(vec![action], tol);
        let t = build(&cl, &props, root, &fs);
        // Find the fault edge and check its OR label pins ¬p and q.
        let mut found = false;
        for id in t.node_ids() {
            for &(k, d) in &t.node(id).succ {
                if k.is_fault() {
                    found = true;
                    let l = &t.node(d).label;
                    assert!(l.contains(cl.literal(p, false).unwrap()));
                    assert!(l.contains(cl.literal(q, true).unwrap()));
                    assert!(!l.contains(cl.literal(p, true).unwrap()));
                }
            }
        }
        assert!(found, "the enabled fault must generate a fault successor");
    }

    #[test]
    fn disabled_fault_generates_nothing() {
        let (_, props, cl, root) = simple_setup("p & ~q", 1);
        let q = props.id("q").unwrap();
        // Guard requires q, which is false in every AND-node.
        let action =
            FaultAction::new("never", BoolExpr::Prop(q), vec![(q, PropAssign::False)]).unwrap();
        let fs = FaultSpec::uniform(vec![action], cl.empty_label());
        let t = build(&cl, &props, root, &fs);
        let fault_edges = t
            .node_ids()
            .flat_map(|id| t.node(id).succ.clone())
            .filter(|(k, _)| k.is_fault())
            .count();
        assert_eq!(fault_edges, 0);
    }

    #[test]
    fn nondet_fault_generates_one_successor_per_outcome() {
        let (_, props, cl, root) = simple_setup("p & ~q", 1);
        let q = props.id("q").unwrap();
        let action =
            FaultAction::new("maybe-q", BoolExpr::tru(), vec![(q, PropAssign::NonDet)]).unwrap();
        let fs = FaultSpec::uniform(vec![action], cl.empty_label());
        let t = build(&cl, &props, root, &fs);
        let and_with_faults: Vec<usize> = t
            .node_ids()
            .filter(|&id| t.node(id).kind == NodeKind::And)
            .map(|id| {
                t.node(id)
                    .succ
                    .iter()
                    .filter(|(k, _)| k.is_fault())
                    .count()
            })
            .collect();
        assert!(and_with_faults.contains(&2));
    }

    #[test]
    fn tolerance_label_carried_into_perturbed_or() {
        let (mut arena, mut props, _, _) = simple_setup("p", 1);
        // Rebuild closure with a tolerance formula as an extra root.
        let spec = parse(&mut arena, &mut props, "p & AG p", false).unwrap();
        let tolf = parse(&mut arena, &mut props, "AF(AG p)", false).unwrap();
        let cl = Closure::build(&mut arena, &props, &[spec, tolf]);
        let mut root = cl.empty_label();
        root.insert(cl.index_of(spec).unwrap());
        let mut tol = cl.empty_label();
        tol.insert(cl.index_of(tolf).unwrap());
        let p = props.id("p").unwrap();
        let action =
            FaultAction::new("drop-p", BoolExpr::Prop(p), vec![(p, PropAssign::False)]).unwrap();
        let fs = FaultSpec::uniform(vec![action], tol.clone());
        let t = build(&cl, &props, root, &fs);
        let mut checked = false;
        for id in t.node_ids() {
            for &(k, d) in &t.node(id).succ {
                if k.is_fault() {
                    checked = true;
                    assert!(tol.is_subset(&t.node(d).label));
                }
            }
        }
        assert!(checked);
    }

    /// A fault spec that flips `p` whenever it holds — wide enough to
    /// exercise fault-successor generation on most test specs.
    fn flip_p_faults(props: &PropTable, cl: &Closure) -> FaultSpec {
        let p = props.id("p").unwrap();
        let action =
            FaultAction::new("flip-p", BoolExpr::Prop(p), vec![(p, PropAssign::False)]).unwrap();
        FaultSpec::uniform(vec![action], cl.empty_label())
    }

    fn assert_same_tableau(context: &str, a: &Tableau, b: &Tableau) {
        assert_eq!(a.len(), b.len(), "{context}: node counts differ");
        for id in a.node_ids() {
            assert_eq!(a.node(id).label, b.node(id).label, "{context}: {id:?}");
            assert_eq!(a.node(id).kind, b.node(id).kind, "{context}: {id:?}");
            assert_eq!(a.node(id).succ, b.node(id).succ, "{context}: {id:?}");
            assert_eq!(a.node(id).pred, b.node(id).pred, "{context}: {id:?}");
        }
    }

    /// The tableau is bit-identical for every worker-thread count
    /// (labels, kinds, and edges in the same order at the same ids),
    /// with and without fault actions, through the sharded intern
    /// tables — and identical to the retained level-synchronized
    /// engine at every thread count.
    #[test]
    fn build_is_deterministic_across_thread_counts() {
        for spec in ["p & AG(EX1 true & EX2 true)", "AG(EX1 true) & AF p & EF q"] {
            for with_faults in [false, true] {
                let (_, props, cl, root) = simple_setup(spec, 2);
                let faults = if with_faults {
                    flip_p_faults(&props, &cl)
                } else {
                    FaultSpec::none()
                };
                let (seq, seq_prof) = build_with_threads(&cl, &props, root.clone(), &faults, 1);
                assert_eq!(seq_prof.parallel_levels, 0);
                for threads in [2, 4, 8] {
                    let (par, prof) =
                        build_with_threads(&cl, &props, root.clone(), &faults, threads);
                    assert_same_tableau(spec, &seq, &par);
                    assert_eq!(prof.threads, threads);
                    assert_eq!(prof.levels, seq_prof.levels);
                    // Dummy successors are created without ever joining
                    // a frontier, so compare against the sequential
                    // profile, not the node count.
                    assert_eq!(prof.nodes_expanded, seq_prof.nodes_expanded);
                }
                for threads in [1, 2, 4, 8] {
                    let (level, level_prof) =
                        build_level_sync(&cl, &props, root.clone(), &faults, threads);
                    assert_same_tableau(spec, &seq, &level);
                    assert_eq!(level_prof.levels, seq_prof.levels);
                    assert_eq!(level_prof.nodes_expanded, seq_prof.nodes_expanded);
                    // The level-synchronized engine schedules whole
                    // levels, not batches.
                    assert_eq!(level_prof.batches, 0);
                }
            }
        }
    }

    /// Scheduler counters add up: every batch is executed by exactly
    /// one worker, and per-worker vectors match the thread budget.
    #[test]
    fn scheduler_counters_are_consistent() {
        let (_, props, cl, root) = simple_setup("AG(EX1 true) & AF p & EF q", 2);
        let faults = flip_p_faults(&props, &cl);
        let (_, seq_prof) = build_with_threads(&cl, &props, root.clone(), &faults, 1);
        assert!(seq_prof.batches > 0);
        assert_eq!(seq_prof.steals, 0);
        assert!(seq_prof.worker_batches.is_empty());
        assert!(seq_prof.worker_idle.is_empty());
        for threads in [2, 4] {
            let (_, prof) = build_with_threads(&cl, &props, root.clone(), &faults, threads);
            assert_eq!(prof.worker_batches.len(), threads);
            assert_eq!(prof.worker_idle.len(), threads);
            assert_eq!(
                prof.worker_batches.iter().sum::<usize>(),
                prof.batches,
                "every batch runs on exactly one worker: {prof:?}"
            );
            assert_eq!(prof.batches, seq_prof.batches, "batching is deterministic");
        }
    }

    /// The optimized build and the [`build_reference`] oracle (naive
    /// kernels) produce bit-identical tableaux at every thread count.
    #[test]
    fn build_matches_reference_kernels() {
        for spec in ["p & AG(EX1 true & EX2 true)", "AG(EX1 true) & AF p & EF q"] {
            let (_, props, cl, root) = simple_setup(spec, 2);
            let faults = flip_p_faults(&props, &cl);
            let (fast, _) = build_with_threads(&cl, &props, root.clone(), &faults, 1);
            for threads in [1, 4] {
                let (oracle, _) = build_reference(&cl, &props, root.clone(), &faults, threads);
                assert_same_tableau(spec, &fast, &oracle);
            }
        }
    }

    /// A state-cap abort carries a checkpoint that — after an
    /// encode/decode round-trip — resumes to a tableau bit-identical to
    /// an uninterrupted build, with cumulative deterministic counters,
    /// at every thread count.
    #[test]
    fn resume_after_state_cap_abort_is_bit_identical() {
        use crate::governor::Budget;
        let spec = "AG(EX1 true) & AF p & EF q";
        let (_, props, cl, root) = simple_setup(spec, 2);
        let faults = flip_p_faults(&props, &cl);
        let (full, full_prof) = build_with_threads(&cl, &props, root.clone(), &faults, 1);
        for threads in [1, 2, 8] {
            let gov = Governor::with_budget(Budget {
                max_states: Some(12),
                ..Budget::default()
            });
            let abort = build_governed(&cl, &props, root.clone(), &faults, threads, &gov)
                .expect_err("cap of 12 must trip");
            assert!(matches!(
                abort.reason,
                AbortReason::StateCapExceeded { cap: 12, .. }
            ));
            let ck = *abort.checkpoint.expect("work-stealing aborts are resumable");
            assert!(ck.tableau_nodes() >= 12);
            let ck = Checkpoint::decode(&ck.encode()).expect("blob round-trips");
            ck.validate(
                spec_fingerprint(&cl, &props, &root, &faults),
                cl.len(),
                root.words().len(),
            )
            .expect("checkpoint matches its own problem");
            let (resumed, prof, _) = build_resume_governed(
                &cl,
                &props,
                &faults,
                threads,
                None,
                Some(&Governor::unlimited()),
                ck,
            )
            .expect("unlimited resume completes");
            assert_same_tableau(&format!("resume@{threads}"), &full, &resumed);
            assert_eq!(prof.nodes_expanded, full_prof.nodes_expanded);
            assert_eq!(prof.batches, full_prof.batches);
            assert_eq!(prof.levels, full_prof.levels);
            assert_eq!(prof.intern_probes, full_prof.intern_probes);
        }
    }

    /// Abort→resume→abort→resume chains land on the same tableau, and
    /// a contained worker-panic abort is just as resumable as a cap
    /// abort (the lost batch re-runs).
    #[test]
    fn abort_resume_chains_and_panic_aborts_are_resumable() {
        use crate::governor::Budget;
        let spec = "AG(EX1 true) & AF p & EF q";
        let (_, props, cl, root) = simple_setup(spec, 2);
        let faults = flip_p_faults(&props, &cl);
        let (full, _) = build_with_threads(&cl, &props, root.clone(), &faults, 1);
        for threads in [1, 2, 8] {
            // Chain of rising caps.
            let caps = Governor::with_budget(Budget {
                max_states: Some(8),
                ..Budget::default()
            });
            let a1 = build_governed(&cl, &props, root.clone(), &faults, threads, &caps)
                .expect_err("cap of 8 trips");
            let raised = Governor::with_budget(Budget {
                max_states: Some(2 * full.len() / 3),
                ..Budget::default()
            });
            let a2 = build_resume_governed(
                &cl,
                &props,
                &faults,
                threads,
                None,
                Some(&raised),
                *a1.checkpoint.unwrap(),
            )
            .expect_err("two-thirds cap trips again");
            let (resumed, _, _) = build_resume_governed(
                &cl,
                &props,
                &faults,
                threads,
                None,
                Some(&Governor::unlimited()),
                *a2.checkpoint.unwrap(),
            )
            .expect("final resume completes");
            assert_same_tableau(&format!("chain@{threads}"), &full, &resumed);

            // Panic abort: the panicked batch was never committed and
            // must re-run on resume.
            let booby = Governor::unlimited().inject_worker_panic_at_batch(2);
            let a3 = build_governed(&cl, &props, root.clone(), &faults, threads, &booby)
                .expect_err("injected panic aborts");
            assert!(matches!(a3.reason, AbortReason::WorkerPanic { .. }));
            let (after_panic, _, _) = build_resume_governed(
                &cl,
                &props,
                &faults,
                threads,
                None,
                Some(&Governor::unlimited()),
                *a3.checkpoint.unwrap(),
            )
            .expect("resume after panic completes");
            assert_same_tableau(&format!("panic-resume@{threads}"), &full, &after_panic);
        }
    }

    /// Wide frontiers actually produce parallelizable work.
    #[test]
    fn wide_frontiers_expand_in_parallel() {
        let (_, props, cl, root) = simple_setup("AG(EX1 true) & AF p & EF q", 2);
        let (_, prof) = build_with_threads(&cl, &props, root, &FaultSpec::none(), 2);
        assert!(
            prof.max_frontier >= MIN_PARALLEL_FRONTIER,
            "spec too narrow to exercise the parallel path: {prof:?}"
        );
        assert!(prof.parallel_levels >= 1, "{prof:?}");
        assert!(prof.batches > 1, "{prof:?}");
    }
}
