//! Deterministic earliest-success parallel scan.
//!
//! The semantic minimizer tries an ordered list of candidate merges per
//! round and must commit exactly the one the sequential greedy engine
//! would: the *lowest-index* candidate that passes verification.
//! [`earliest_success`] fans the tests out over worker threads with
//! chunked work claiming (the same claim-and-steal shape as the tableau
//! expansion scheduler) while keeping that commit rule exact:
//!
//! * workers claim fixed-size index chunks from a shared atomic cursor;
//! * a passing test publishes its index with `fetch_min`, so the best
//!   known index only decreases;
//! * workers skip indices above the current best, but *every* index
//!   below the final best is guaranteed to have been tested — the
//!   cursor hands chunks out in order and a worker only abandons a
//!   claimed index when it exceeds the current best.
//!
//! Hence the returned index is the minimal passing one — bit-identical
//! to a sequential left-to-right scan at every thread count. Tests above
//! the committed index may or may not have run (speculation); their
//! results are reported but carry no decision weight, and callers must
//! not fold them into determinism-sensitive counters.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Indices per claimed chunk. Small enough to keep workers near the
/// front of the index order (little speculation past a success), large
/// enough to amortize the claim.
pub const SCAN_CHUNK: usize = 8;

/// Work accounting of one [`earliest_success`] scan.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Chunks of indices claimed (sequential scans count chunks of
    /// [`SCAN_CHUNK`] too, so the number is comparable across modes).
    pub batches: usize,
    /// Chunks executed by a worker other than the one the chunk's
    /// position maps to round-robin — claim-order drift, the scan
    /// analogue of a steal. Zero when sequential.
    pub steals: usize,
    /// Tests actually executed. With more than one worker this may
    /// exceed `committed index + 1` (speculation) and is therefore not
    /// deterministic across thread counts.
    pub tested: usize,
}

fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// Result of a scan: the committed (lowest passing) index if any, the
/// per-index test values that are guaranteed to have been produced, and
/// the work accounting.
pub type ScanOutcome<T> = (Option<usize>, Vec<Option<T>>, ScanStats);

/// Runs `test` over `0..n` and returns the lowest index whose test
/// reports a hit, together with the per-index results that are
/// guaranteed to have been produced (every index up to and including
/// the returned one; all of `0..n` when there is no hit and no
/// speculation was cut short) and the scan's work accounting.
///
/// `test(i)` returns `Ok((hit, value))` or an error; the first error
/// observed cancels the scan and is returned (which error wins is
/// nondeterministic under parallelism — callers use errors only for
/// realtime aborts, which are allowed to be nondeterministic).
///
/// With `threads <= 1` the scan is a plain left-to-right loop that
/// stops at the first hit, so indices beyond the hit are untested.
pub fn earliest_success<T, E, F>(
    n: usize,
    threads: usize,
    test: F,
) -> Result<ScanOutcome<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<(bool, T), E> + Sync,
{
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let mut stats = ScanStats::default();
    if n == 0 {
        return Ok((None, out, stats));
    }
    // A chunk of SCAN_CHUNK indices never pays for thread coordination;
    // nor does a single worker.
    if threads <= 1 || n <= SCAN_CHUNK {
        for (i, slot) in out.iter_mut().enumerate() {
            let (hit, value) = test(i)?;
            stats.tested += 1;
            stats.batches = i / SCAN_CHUNK + 1;
            *slot = Some(value);
            if hit {
                return Ok((Some(i), out, stats));
            }
        }
        return Ok((None, out, stats));
    }

    let workers = threads.min(n.div_ceil(SCAN_CHUNK));
    let next = AtomicUsize::new(0);
    let best = AtomicUsize::new(usize::MAX);
    let stop = AtomicBool::new(false);
    let error: Mutex<Option<E>> = Mutex::new(None);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();

    let run_worker = |wid: usize| -> ScanStats {
        let mut local = ScanStats::default();
        loop {
            if stop.load(Ordering::Acquire) {
                break;
            }
            let start = next.fetch_add(SCAN_CHUNK, Ordering::Relaxed);
            if start >= n || start > best.load(Ordering::Acquire) {
                break;
            }
            local.batches += 1;
            if (start / SCAN_CHUNK) % workers != wid {
                local.steals += 1;
            }
            let end = (start + SCAN_CHUNK).min(n);
            for (i, slot) in slots.iter().enumerate().take(end).skip(start) {
                if i > best.load(Ordering::Acquire) {
                    break;
                }
                if stop.load(Ordering::Acquire) {
                    break;
                }
                match test(i) {
                    Ok((hit, value)) => {
                        local.tested += 1;
                        *lock_recover(slot) = Some(value);
                        if hit {
                            best.fetch_min(i, Ordering::AcqRel);
                        }
                    }
                    Err(e) => {
                        let mut guard = lock_recover(&error);
                        if guard.is_none() {
                            *guard = Some(e);
                        }
                        stop.store(true, Ordering::Release);
                        break;
                    }
                }
            }
        }
        local
    };

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|wid| scope.spawn(move || run_worker(wid)))
            .collect();
        for h in handles {
            // A panicking test propagates out of the scope, matching the
            // behavior of an inline call.
            let local = h.join().unwrap_or_else(|payload| {
                stop.store(true, Ordering::Release);
                std::panic::resume_unwind(payload)
            });
            stats.batches += local.batches;
            stats.steals += local.steals;
            stats.tested += local.tested;
        }
    });

    if let Some(e) = lock_recover(&error).take() {
        return Err(e);
    }
    for (slot, out_slot) in slots.into_iter().zip(out.iter_mut()) {
        *out_slot = lock_recover(&slot).take();
    }
    let committed = best.load(Ordering::Acquire);
    let committed = (committed != usize::MAX).then_some(committed);
    // Every index at or below the committed one was tested (see module
    // docs), so the caller can fold those results deterministically.
    debug_assert!(committed
        .map(|j| out.iter().take(j + 1).all(|s| s.is_some()))
        .unwrap_or(true));
    Ok((committed, out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn empty_scan_finds_nothing() {
        let (found, out, stats) =
            earliest_success::<(), (), _>(0, 4, |_| unreachable!()).unwrap();
        assert_eq!(found, None);
        assert!(out.is_empty());
        assert_eq!(stats, ScanStats::default());
    }

    #[test]
    fn sequential_scan_stops_at_first_hit() {
        let calls = AtomicUsize::new(0);
        let (found, out, stats) = earliest_success::<usize, (), _>(100, 1, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            Ok((i == 5, i))
        })
        .unwrap();
        assert_eq!(found, Some(5));
        assert_eq!(calls.load(Ordering::Relaxed), 6);
        assert_eq!(stats.tested, 6);
        assert_eq!(stats.steals, 0);
        assert!(out[5] == Some(5) && out[6].is_none());
    }

    #[test]
    fn parallel_scan_commits_the_lowest_index_at_every_thread_count() {
        // Hits at 40 and 11; 11 must win regardless of scheduling, and
        // everything at or below it must be reported.
        for threads in [1, 2, 4, 8] {
            let (found, out, stats) = earliest_success::<usize, (), _>(64, threads, |i| {
                Ok((i == 40 || i == 11, i * 2))
            })
            .unwrap();
            assert_eq!(found, Some(11), "threads={threads}");
            for (i, slot) in out.iter().take(12).enumerate() {
                assert_eq!(*slot, Some(i * 2), "threads={threads} i={i}");
            }
            assert!(stats.tested >= 12);
        }
    }

    #[test]
    fn parallel_scan_without_hit_tests_everything() {
        for threads in [2, 8] {
            let (found, out, stats) =
                earliest_success::<usize, (), _>(50, threads, |i| Ok((false, i))).unwrap();
            assert_eq!(found, None);
            assert!(out.iter().all(|s| s.is_some()));
            assert_eq!(stats.tested, 50);
            assert_eq!(stats.batches, 50usize.div_ceil(SCAN_CHUNK));
        }
    }

    #[test]
    fn errors_cancel_the_scan() {
        for threads in [1, 4] {
            let r = earliest_success::<(), &'static str, _>(100, threads, |i| {
                if i == 20 {
                    Err("deadline")
                } else {
                    Ok((false, ()))
                }
            });
            assert_eq!(r.err(), Some("deadline"), "threads={threads}");
        }
    }

    #[test]
    fn steals_are_counted_only_for_off_home_chunks() {
        // With one worker per chunk-home the accounting is stable: a
        // single worker claiming everything registers n-1 steals at 2
        // workers only if the other worker never claims; either way the
        // invariant batches >= steals holds.
        let (_, _, stats) =
            earliest_success::<(), (), _>(64, 2, |_| Ok((false, ()))).unwrap();
        assert!(stats.batches >= stats.steals);
        assert_eq!(stats.batches, 8);
    }
}
