//! AND/OR graph storage for the tableau (Definition 4.2 of the paper).
//!
//! Nodes live in an index-based arena; labels are [`LabelSet`] bitsets
//! over the closure. AND-nodes and OR-nodes are deduplicated by label
//! ("if some successor has the same label as an already present node of
//! the same type, identify them").

use ftsyn_ctl::LabelSet;
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Identifier of a tableau node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index usable for direct vector addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// AND-node or OR-node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum NodeKind {
    /// AND-node: corresponds to a state in the final model.
    And,
    /// OR-node: a disjunctive choice point.
    Or,
}

/// Label of a tableau edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum EdgeKind {
    /// AND→OR edge associated with a process (`A_CD ⊆ V_C × [1:I] × V_D`).
    Proc(usize),
    /// AND→OR fault edge for the fault action with this index.
    Fault(usize),
    /// AND→OR edge to the node's *dummy* successor (the `Tiles` special
    /// case for nodes with no nexttime formulae).
    Dummy,
    /// OR→AND edge (unlabeled in the paper).
    Unlabeled,
}

impl EdgeKind {
    /// Whether this is a fault edge.
    pub fn is_fault(self) -> bool {
        matches!(self, EdgeKind::Fault(_))
    }
}

/// A tableau node.
#[derive(Clone, Debug)]
pub struct Node {
    /// AND or OR.
    pub kind: NodeKind,
    /// The set of closure formulae labeling the node.
    pub label: LabelSet,
    /// Outgoing edges.
    pub succ: Vec<(EdgeKind, NodeId)>,
    /// Incoming edges (kind of the original edge, source node).
    pub pred: Vec<(EdgeKind, NodeId)>,
    /// Whether a deletion rule removed this node.
    pub deleted: bool,
    /// Whether this OR-node is a dummy successor (its `Blocks` is pinned
    /// to its unique parent rather than computed from the label).
    pub dummy: bool,
    /// Number of alive successors reached by non-fault edges. Maintained
    /// incrementally by [`Tableau::add_edge`] / [`Tableau::delete`] so the
    /// DeleteOR trigger ("no alive successor left") is O(1) per deletion
    /// instead of a sweep.
    pub alive_succ_prog: u32,
    /// Number of alive successors reached by fault edges.
    pub alive_succ_fault: u32,
}

impl Node {
    /// Total number of alive successors (program and fault edges).
    #[inline]
    pub fn alive_succ_total(&self) -> u32 {
        self.alive_succ_prog + self.alive_succ_fault
    }
}

/// Number of shards in a [`LabelInterner`]; must be a power of two.
const INTERN_SHARDS: usize = 16;

/// A label → node intern table addressed by *precomputed*
/// [`LabelSet::stable_hash`] values, sharded by the low hash bits.
///
/// Build workers hash every produced label on the (parallel) expansion
/// side; the sequential apply phase then probes with the ready-made
/// hash instead of re-reading each label, and the per-shard maps stay
/// small. Shard choice depends only on the hash, so the table contents
/// are identical for every thread count.
#[derive(Clone, Debug)]
struct LabelInterner {
    /// `hash → candidate nodes` (collision chains are label-checked).
    shards: Vec<HashMap<u64, Vec<NodeId>>>,
}

impl LabelInterner {
    fn new() -> LabelInterner {
        LabelInterner {
            shards: vec![HashMap::new(); INTERN_SHARDS],
        }
    }

    fn get(&self, nodes: &[Node], label: &LabelSet, hash: u64) -> Option<NodeId> {
        self.shards[hash as usize & (INTERN_SHARDS - 1)]
            .get(&hash)?
            .iter()
            .copied()
            .find(|id| nodes[id.index()].label == *label)
    }

    fn insert(&mut self, hash: u64, id: NodeId) {
        self.shards[hash as usize & (INTERN_SHARDS - 1)]
            .entry(hash)
            .or_default()
            .push(id);
    }
}

/// One node's serialized parts for [`Tableau::from_build_nodes`]:
/// `(kind, label, dummy, successors, predecessors)`.
pub type BuildNodeParts = (
    NodeKind,
    LabelSet,
    bool,
    Vec<(EdgeKind, NodeId)>,
    Vec<(EdgeKind, NodeId)>,
);

/// The tableau: an AND/OR graph with a root OR-node.
#[derive(Clone, Debug)]
pub struct Tableau {
    nodes: Vec<Node>,
    root: NodeId,
    and_index: LabelInterner,
    or_index: LabelInterner,
    /// Edge dedup set: `(from, kind, to)` of every edge ever added, so
    /// [`Tableau::add_edge`] is O(1) instead of scanning `succ`.
    edge_set: HashSet<(NodeId, EdgeKind, NodeId)>,
    /// Every deletion in order. The worklist deletion engine consumes
    /// this with per-client cursors: a client that processed the first
    /// `k` entries catches up by looking only at `deletion_log[k..]`.
    deletion_log: Vec<NodeId>,
}

impl Tableau {
    /// Creates a tableau containing only the root OR-node with `label`.
    pub fn with_root(label: LabelSet) -> Tableau {
        let root = NodeId(0);
        let mut or_index = LabelInterner::new();
        or_index.insert(label.stable_hash(), root);
        Tableau {
            nodes: vec![Node {
                kind: NodeKind::Or,
                label,
                succ: Vec::new(),
                pred: Vec::new(),
                deleted: false,
                dummy: false,
                alive_succ_prog: 0,
                alive_succ_fault: 0,
            }],
            root,
            and_index: LabelInterner::new(),
            or_index,
            edge_set: HashSet::new(),
            deletion_log: Vec::new(),
        }
    }

    /// The root OR-node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of nodes ever created (including deleted ones).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tableau has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Access a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Mutable access to a node.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// Finds (or creates) an AND-node with the given label. Returns the
    /// id and whether it was newly created.
    pub fn intern_and(&mut self, label: LabelSet) -> (NodeId, bool) {
        let hash = label.stable_hash();
        self.intern_and_hashed(label, hash)
    }

    /// [`Tableau::intern_and`] with the label's
    /// [`stable_hash`](LabelSet::stable_hash) already computed (the
    /// parallel build hashes labels on worker threads).
    pub fn intern_and_hashed(&mut self, label: LabelSet, hash: u64) -> (NodeId, bool) {
        if let Some(id) = self.and_index.get(&self.nodes, &label, hash) {
            return (id, false);
        }
        let id = NodeId(self.nodes.len() as u32);
        self.and_index.insert(hash, id);
        self.nodes.push(Node {
            kind: NodeKind::And,
            label,
            succ: Vec::new(),
            pred: Vec::new(),
            deleted: false,
            dummy: false,
            alive_succ_prog: 0,
            alive_succ_fault: 0,
        });
        (id, true)
    }

    /// Finds (or creates) a non-dummy OR-node with the given label.
    pub fn intern_or(&mut self, label: LabelSet) -> (NodeId, bool) {
        let hash = label.stable_hash();
        self.intern_or_hashed(label, hash)
    }

    /// [`Tableau::intern_or`] with the label hash precomputed.
    pub fn intern_or_hashed(&mut self, label: LabelSet, hash: u64) -> (NodeId, bool) {
        if let Some(id) = self.or_index.get(&self.nodes, &label, hash) {
            return (id, false);
        }
        let id = NodeId(self.nodes.len() as u32);
        self.or_index.insert(hash, id);
        self.nodes.push(Node {
            kind: NodeKind::Or,
            label,
            succ: Vec::new(),
            pred: Vec::new(),
            deleted: false,
            dummy: false,
            alive_succ_prog: 0,
            alive_succ_fault: 0,
        });
        (id, true)
    }

    /// Creates a fresh dummy OR-node (never deduplicated against regular
    /// OR-nodes: its successor set is pinned, not derived from its label).
    pub fn new_dummy_or(&mut self, label: LabelSet) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind: NodeKind::Or,
            label,
            succ: Vec::new(),
            pred: Vec::new(),
            deleted: false,
            dummy: true,
            alive_succ_prog: 0,
            alive_succ_fault: 0,
        });
        id
    }

    /// Adds an edge (duplicates ignored).
    ///
    /// The alive-successor counters are only touched while *both*
    /// endpoints are alive: a deleted `from` node's counters are frozen
    /// at their deletion-time values (they are never read again — every
    /// consumer checks aliveness first), and [`Tableau::delete`]
    /// symmetrically skips deleted predecessors, so the counters of
    /// alive nodes always equal their alive-successor count and can
    /// never underflow.
    pub fn add_edge(&mut self, from: NodeId, kind: EdgeKind, to: NodeId) {
        if !self.edge_set.insert((from, kind, to)) {
            return;
        }
        self.nodes[from.index()].succ.push((kind, to));
        if !self.nodes[from.index()].deleted && !self.nodes[to.index()].deleted {
            if kind.is_fault() {
                self.nodes[from.index()].alive_succ_fault += 1;
            } else {
                self.nodes[from.index()].alive_succ_prog += 1;
            }
        }
        self.nodes[to.index()].pred.push((kind, from));
    }

    /// Iterates over all node ids (including deleted nodes).
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Whether the node is alive (not deleted).
    pub fn alive(&self, id: NodeId) -> bool {
        !self.nodes[id.index()].deleted
    }

    /// Marks a node deleted. Returns whether it was alive.
    ///
    /// A first deletion is appended to the [deletion log](Self::deletion_log)
    /// and decrements the alive-successor counters of every predecessor,
    /// keeping the DeleteOR trigger O(degree) per deletion.
    pub fn delete(&mut self, id: NodeId) -> bool {
        if self.nodes[id.index()].deleted {
            return false;
        }
        self.nodes[id.index()].deleted = true;
        self.deletion_log.push(id);
        let preds = std::mem::take(&mut self.nodes[id.index()].pred);
        for &(kind, p) in &preds {
            let n = &mut self.nodes[p.index()];
            // A deleted predecessor's counters are frozen (add_edge never
            // incremented them past its deletion), so decrementing here
            // would underflow. Alive nodes' counters stay exact.
            if n.deleted {
                continue;
            }
            if kind.is_fault() {
                n.alive_succ_fault -= 1;
            } else {
                n.alive_succ_prog -= 1;
            }
        }
        self.nodes[id.index()].pred = preds;
        true
    }

    /// The deletions performed so far, in order. Indices into this log
    /// serve as catch-up cursors for incremental passes over the graph.
    pub fn deletion_log(&self) -> &[NodeId] {
        &self.deletion_log
    }

    /// Count of alive nodes of each kind `(and, or)`.
    pub fn alive_counts(&self) -> (usize, usize) {
        let mut and = 0;
        let mut or = 0;
        for n in &self.nodes {
            if !n.deleted {
                match n.kind {
                    NodeKind::And => and += 1,
                    NodeKind::Or => or += 1,
                }
            }
        }
        (and, or)
    }

    /// Alive successors of `id`, filtered by a predicate on edge kind.
    pub fn alive_succ<'a>(
        &'a self,
        id: NodeId,
        mut filter: impl FnMut(EdgeKind) -> bool + 'a,
    ) -> impl Iterator<Item = (EdgeKind, NodeId)> + 'a {
        self.node(id)
            .succ
            .iter()
            .copied()
            .filter(move |&(k, to)| filter(k) && self.alive(to))
    }

    /// The node arena in id order (including deleted and dummy nodes).
    /// Exposed for checkpoint serialization; pair with
    /// [`Tableau::from_build_nodes`] to round-trip a mid-build tableau.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Reconstructs a mid-build tableau from `(kind, label, dummy, succ,
    /// pred)` node data in id order — the inverse of reading
    /// [`Tableau::nodes`] off a tableau no deletion rule has touched.
    ///
    /// The intern tables are re-derived by replaying the non-dummy nodes
    /// in id order (exactly the order [`Tableau::intern_and`] /
    /// [`Tableau::intern_or`] populated them originally — node ids are
    /// assigned monotonically at intern time), the edge-dedup set from
    /// the successor lists, and the alive-successor counters by counting
    /// successors per edge class. The result is therefore bit-identical
    /// to the tableau the parts were read from: same ids, same intern
    /// chains, same edge and predecessor order.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or contains a deleted node (checkpoints
    /// are taken during construction, before any deletion).
    pub fn from_build_nodes(parts: Vec<BuildNodeParts>) -> Tableau {
        assert!(!parts.is_empty(), "a tableau has at least its root node");
        let mut and_index = LabelInterner::new();
        let mut or_index = LabelInterner::new();
        let mut edge_set = HashSet::new();
        let mut nodes = Vec::with_capacity(parts.len());
        for (i, (kind, label, dummy, succ, pred)) in parts.into_iter().enumerate() {
            let id = NodeId(i as u32);
            if !dummy {
                match kind {
                    NodeKind::And => and_index.insert(label.stable_hash(), id),
                    NodeKind::Or => or_index.insert(label.stable_hash(), id),
                }
            }
            let mut alive_succ_prog = 0;
            let mut alive_succ_fault = 0;
            for &(k, to) in &succ {
                edge_set.insert((id, k, to));
                if k.is_fault() {
                    alive_succ_fault += 1;
                } else {
                    alive_succ_prog += 1;
                }
            }
            nodes.push(Node {
                kind,
                label,
                succ,
                pred,
                deleted: false,
                dummy,
                alive_succ_prog,
                alive_succ_fault,
            });
        }
        Tableau {
            nodes,
            root: NodeId(0),
            and_index,
            or_index,
            edge_set,
            deletion_log: Vec::new(),
        }
    }

    /// Marks every node not reachable from the (alive) root as deleted;
    /// returns the number of nodes removed this way. Reachability follows
    /// all edge kinds.
    pub fn restrict_to_reachable(&mut self) -> usize {
        if !self.alive(self.root) {
            let mut removed = 0;
            for id in self.node_ids().collect::<Vec<_>>() {
                if self.delete(id) {
                    removed += 1;
                }
            }
            return removed;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![self.root];
        seen[self.root.index()] = true;
        while let Some(id) = stack.pop() {
            for &(_, to) in &self.nodes[id.index()].succ {
                if !seen[to.index()] && !self.nodes[to.index()].deleted {
                    seen[to.index()] = true;
                    stack.push(to);
                }
            }
        }
        let mut removed = 0;
        for id in self.node_ids().collect::<Vec<_>>() {
            if !seen[id.index()] && self.delete(id) {
                removed += 1;
            }
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsyn_ctl::{Closure, FormulaArena, PropTable};

    fn label_with(bits: &[u32]) -> (Closure, LabelSet) {
        let mut arena = FormulaArena::new(2);
        let props = PropTable::new();
        let cl = Closure::build(&mut arena, &props, &[]);
        let mut l = cl.empty_label();
        for &b in bits {
            l.insert(b);
        }
        (cl, l)
    }

    #[test]
    fn interning_dedups_per_kind() {
        let (_, l) = label_with(&[0]);
        let mut t = Tableau::with_root(l.clone());
        let (a1, fresh1) = t.intern_and(l.clone());
        let (a2, fresh2) = t.intern_and(l.clone());
        assert!(fresh1);
        assert!(!fresh2);
        assert_eq!(a1, a2);
        // Same label as the root OR-node dedups to the root.
        let (o, fresh) = t.intern_or(l);
        assert!(!fresh);
        assert_eq!(o, t.root());
    }

    #[test]
    fn dummy_or_not_deduplicated() {
        let (_, l) = label_with(&[1]);
        let mut t = Tableau::with_root(l.clone());
        let d1 = t.new_dummy_or(l.clone());
        let d2 = t.new_dummy_or(l.clone());
        assert_ne!(d1, d2);
        assert!(t.node(d1).dummy);
    }

    #[test]
    fn reachability_restriction() {
        let (_, l) = label_with(&[0]);
        let (_, l2) = label_with(&[1]);
        let (_, l3) = label_with(&[2]);
        let mut t = Tableau::with_root(l);
        let (a, _) = t.intern_and(l2);
        let (orphan, _) = t.intern_and(l3);
        t.add_edge(t.root(), EdgeKind::Unlabeled, a);
        let removed = t.restrict_to_reachable();
        assert_eq!(removed, 1);
        assert!(!t.alive(orphan));
        assert!(t.alive(a));
    }

    #[test]
    fn deleting_root_kills_everything() {
        let (_, l) = label_with(&[0]);
        let (_, l2) = label_with(&[1]);
        let mut t = Tableau::with_root(l);
        let (a, _) = t.intern_and(l2);
        t.add_edge(t.root(), EdgeKind::Unlabeled, a);
        let root = t.root();
        t.delete(root);
        let removed = t.restrict_to_reachable();
        assert_eq!(removed, 1);
        assert_eq!(t.alive_counts(), (0, 0));
    }

    #[test]
    fn alive_succ_filters() {
        let (_, l) = label_with(&[0]);
        let (_, l2) = label_with(&[1]);
        let (_, l3) = label_with(&[2]);
        let mut t = Tableau::with_root(l);
        let (a, _) = t.intern_and(l2);
        let (b, _) = t.intern_or(l3);
        t.add_edge(a, EdgeKind::Proc(0), b);
        t.add_edge(a, EdgeKind::Fault(1), t.root());
        let non_fault: Vec<_> = t.alive_succ(a, |k| !k.is_fault()).collect();
        assert_eq!(non_fault, vec![(EdgeKind::Proc(0), b)]);
        let faults: Vec<_> = t.alive_succ(a, EdgeKind::is_fault).collect();
        assert_eq!(faults.len(), 1);
    }

    /// The alive-successor counters and the deletion log track
    /// add_edge/delete exactly (the worklist deletion engine relies on
    /// both).
    #[test]
    fn alive_succ_counters_and_deletion_log() {
        let (_, l) = label_with(&[0]);
        let (_, l2) = label_with(&[1]);
        let (_, l3) = label_with(&[2]);
        let mut t = Tableau::with_root(l);
        let (a, _) = t.intern_and(l2);
        let (b, _) = t.intern_or(l3);
        t.add_edge(t.root(), EdgeKind::Unlabeled, a);
        t.add_edge(a, EdgeKind::Proc(0), b);
        t.add_edge(a, EdgeKind::Fault(0), b);
        // Duplicate edges are ignored, so counters do not double-count.
        t.add_edge(a, EdgeKind::Proc(0), b);
        assert_eq!(t.node(a).alive_succ_prog, 1);
        assert_eq!(t.node(a).alive_succ_fault, 1);
        assert_eq!(t.node(a).alive_succ_total(), 2);
        assert_eq!(t.node(t.root()).alive_succ_total(), 1);
        assert!(t.deletion_log().is_empty());

        // Deleting `b` decrements both of `a`'s counters and logs it.
        assert!(t.delete(b));
        assert!(!t.delete(b), "double delete is a no-op");
        assert_eq!(t.node(a).alive_succ_total(), 0);
        assert_eq!(t.deletion_log(), &[b]);

        // Edges to already-deleted targets do not count.
        let (c, _) = t.intern_and(label_with(&[3]).1);
        t.add_edge(c, EdgeKind::Proc(1), b);
        assert_eq!(t.node(c).alive_succ_total(), 0);

        assert!(t.delete(a));
        assert_eq!(t.node(t.root()).alive_succ_total(), 0);
        assert_eq!(t.deletion_log(), &[b, a]);
    }

    /// Regression test: an edge added from an already-deleted node must
    /// not bump its alive-successor counters, and deleting the target
    /// afterwards must not underflow them.
    #[test]
    fn add_edge_from_deleted_node_keeps_counters_frozen() {
        let (_, l) = label_with(&[0]);
        let (_, l2) = label_with(&[1]);
        let (_, l3) = label_with(&[2]);
        let mut t = Tableau::with_root(l);
        let (a, _) = t.intern_and(l2);
        let (b, _) = t.intern_or(l3);
        t.delete(a);

        t.add_edge(a, EdgeKind::Proc(0), b);
        t.add_edge(a, EdgeKind::Fault(0), b);
        assert_eq!(
            t.node(a).alive_succ_total(),
            0,
            "deleted `from` node's counters stay frozen"
        );
        // The edges themselves still exist (structure is preserved).
        assert_eq!(t.node(a).succ.len(), 2);
        assert_eq!(t.node(b).pred.len(), 2);

        // Deleting `b` now must not underflow `a`'s frozen counters.
        assert!(t.delete(b));
        assert_eq!(t.node(a).alive_succ_prog, 0);
        assert_eq!(t.node(a).alive_succ_fault, 0);
    }

    /// Counters survive a deletion-time decrement when the predecessor
    /// was itself deleted first (frozen counters are skipped).
    #[test]
    fn delete_skips_deleted_predecessors() {
        let (_, l) = label_with(&[0]);
        let (_, l2) = label_with(&[1]);
        let (_, l3) = label_with(&[2]);
        let mut t = Tableau::with_root(l);
        let (a, _) = t.intern_and(l2);
        let (b, _) = t.intern_or(l3);
        t.add_edge(a, EdgeKind::Proc(0), b);
        assert_eq!(t.node(a).alive_succ_prog, 1);
        // Delete the predecessor first: its counter freezes at 1.
        t.delete(a);
        // Deleting `b` must skip the frozen predecessor (no underflow,
        // counter untouched).
        t.delete(b);
        assert_eq!(t.node(a).alive_succ_prog, 1);
    }
}
