//! A CTL model checker over fault-tolerant Kripke structures.
//!
//! Two satisfaction relations are provided (Section 2.4 of the paper):
//!
//! * [`Semantics::FaultFree`] — the paper's `⊨ₙ`, where the path
//!   quantifiers of `AU`/`EU`/`AW`/`EW` range over *fault-free* fullpaths
//!   only (fault transitions are ignored when following paths);
//! * [`Semantics::IncludeFaults`] — path quantifiers range over all
//!   fullpaths, including those that take fault transitions (the
//!   semantics needed by the alternative method of Section 8.3).
//!
//! In both relations the indexed nexttime modalities `AXᵢ`/`EXᵢ` range
//! over the program transitions of process `i` only — fault transitions
//! are never process transitions (`A` and `A_F` are disjoint).
//!
//! Fullpaths may be finite (a maximal path ending in a state with no
//! outgoing transitions). Following the paper's indexing
//! `i ∈ [0 : |π|]`, on a dead-end state `A[gUh]` and `E[gUh]` hold iff
//! `h` holds there, `EXᵢf` is false, and `AXᵢf` is vacuously true.
//!
//! (The paper's displayed path clause reads `j ∈ [1 : (i−1)]`, which
//! would exempt the first state from the `g` obligation; this conflicts
//! with the fixpoint characterization `E[gUh] ≡ h ∨ (g ∧ EX E[gUh])`
//! used by the decision procedure, so we implement the standard
//! `j ∈ [0 : (i−1)]` reading.)

use crate::structure::{FtKripke, StateId};
use ftsyn_ctl::{Formula, FormulaArena, FormulaId};
use std::collections::HashMap;

/// Which fullpaths the path quantifiers range over.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Semantics {
    /// The paper's `⊨ₙ`: fault-free fullpaths only.
    FaultFree,
    /// All fullpaths, including fault transitions.
    IncludeFaults,
}

/// A memoizing model checker for one structure and one semantics.
///
/// # Examples
///
/// ```
/// use ftsyn_ctl::{FormulaArena, PropTable, Owner};
/// use ftsyn_kripke::{FtKripke, State, PropSet, TransKind, Checker, Semantics};
///
/// let mut props = PropTable::new();
/// let p = props.add("p", Owner::Process(0)).unwrap();
/// let mut arena = FormulaArena::new(1);
///
/// let mut m = FtKripke::new();
/// let s0 = m.intern_state(State::new(PropSet::with_capacity(1)));
/// let s1 = m.intern_state(State::new(PropSet::from_iter_with_capacity(1, [p])));
/// m.add_init(s0);
/// m.add_edge(s0, TransKind::Proc(0), s1);
/// m.add_edge(s1, TransKind::Proc(0), s1);
///
/// let fp = arena.prop(p);
/// let af = arena.af(fp);
/// let mut ck = Checker::new(&m, Semantics::FaultFree);
/// assert!(ck.holds(&arena, af, s0));
/// ```
pub struct Checker<'m> {
    model: &'m FtKripke,
    semantics: Semantics,
    memo: HashMap<FormulaId, Vec<bool>>,
}

impl<'m> Checker<'m> {
    /// Creates a checker for `model` under the given semantics.
    pub fn new(model: &'m FtKripke, semantics: Semantics) -> Checker<'m> {
        Checker {
            model,
            semantics,
            memo: HashMap::new(),
        }
    }

    /// The structure being checked.
    pub fn model(&self) -> &'m FtKripke {
        self.model
    }

    /// The semantics in force.
    pub fn semantics(&self) -> Semantics {
        self.semantics
    }

    /// Whether `f` holds at state `s`.
    pub fn holds(&mut self, arena: &FormulaArena, f: FormulaId, s: StateId) -> bool {
        self.eval(arena, f)[s.index()]
    }

    /// Whether `f` holds at every state in `states`.
    pub fn holds_at_all(
        &mut self,
        arena: &FormulaArena,
        f: FormulaId,
        states: impl IntoIterator<Item = StateId>,
    ) -> bool {
        let v = self.eval(arena, f).clone();
        states.into_iter().all(|s| v[s.index()])
    }

    /// The set of states (as a bool-per-state vector) satisfying `f`.
    pub fn eval(&mut self, arena: &FormulaArena, f: FormulaId) -> &Vec<bool> {
        if !self.memo.contains_key(&f) {
            let v = self.compute(arena, f);
            self.memo.insert(f, v);
        }
        &self.memo[&f]
    }

    fn compute(&mut self, arena: &FormulaArena, f: FormulaId) -> Vec<bool> {
        let n = self.model.len();
        match arena.get(f) {
            Formula::True => vec![true; n],
            Formula::False => vec![false; n],
            Formula::Prop(p) => self
                .model
                .state_ids()
                .map(|s| self.model.state(s).props.contains(p))
                .collect(),
            Formula::NegProp(p) => self
                .model
                .state_ids()
                .map(|s| !self.model.state(s).props.contains(p))
                .collect(),
            Formula::And(a, b) => {
                let va = self.eval(arena, a).clone();
                let vb = self.eval(arena, b);
                va.iter().zip(vb.iter()).map(|(x, y)| *x && *y).collect()
            }
            Formula::Or(a, b) => {
                let va = self.eval(arena, a).clone();
                let vb = self.eval(arena, b);
                va.iter().zip(vb.iter()).map(|(x, y)| *x || *y).collect()
            }
            Formula::Ax(i, g) => {
                let vg = self.eval(arena, g).clone();
                self.model
                    .state_ids()
                    .map(|s| {
                        self.model
                            .succ(s)
                            .iter()
                            .filter(|e| e.kind == crate::structure::TransKind::Proc(i))
                            .all(|e| vg[e.to.index()])
                    })
                    .collect()
            }
            Formula::Ex(i, g) => {
                let vg = self.eval(arena, g).clone();
                self.model
                    .state_ids()
                    .map(|s| {
                        self.model
                            .succ(s)
                            .iter()
                            .filter(|e| e.kind == crate::structure::TransKind::Proc(i))
                            .any(|e| vg[e.to.index()])
                    })
                    .collect()
            }
            Formula::Au(g, h) => {
                let vg = self.eval(arena, g).clone();
                let vh = self.eval(arena, h).clone();
                self.au_set(&vg, &vh)
            }
            Formula::Eu(g, h) => {
                let vg = self.eval(arena, g).clone();
                let vh = self.eval(arena, h).clone();
                self.eu_set(&vg, &vh)
            }
            Formula::Aw(g, h) => {
                // A[gWh] = ¬E[¬g U ¬h]
                let vg = self.eval(arena, g).clone();
                let vh = self.eval(arena, h).clone();
                let ng: Vec<bool> = vg.iter().map(|x| !x).collect();
                let nh: Vec<bool> = vh.iter().map(|x| !x).collect();
                self.eu_set(&ng, &nh).iter().map(|x| !x).collect()
            }
            Formula::Ew(g, h) => {
                // E[gWh] = ¬A[¬g U ¬h]
                let vg = self.eval(arena, g).clone();
                let vh = self.eval(arena, h).clone();
                let ng: Vec<bool> = vg.iter().map(|x| !x).collect();
                let nh: Vec<bool> = vh.iter().map(|x| !x).collect();
                self.au_set(&ng, &nh).iter().map(|x| !x).collect()
            }
        }
    }

    /// Consumes the checker and returns its accumulated per-state
    /// labeling as a [`LabelCache`]. Evaluate every formula of interest
    /// with [`Checker::eval`] first; the cache then holds the exact
    /// satisfaction vector of each evaluated formula *and all of its
    /// subformulae* (evaluation is bottom-up and memoized).
    pub fn into_cache(self) -> LabelCache {
        LabelCache { labels: self.memo }
    }

    /// Whether every state has at least one path-successor under this
    /// checker's semantics (i.e. the structure has no dead ends, so
    /// every fullpath is infinite).
    pub fn dead_end_free(&self) -> bool {
        self.model
            .state_ids()
            .all(|s| self.path_succ(s).next().is_some())
    }

    /// `E[gUh]` over explicit satisfaction vectors (no arena needed):
    /// the least-fixpoint machinery of [`Checker::eval`], exposed so
    /// callers holding precomputed vectors can run one modality without
    /// mutating a formula arena.
    pub fn eu_of(&self, g: &[bool], h: &[bool]) -> Vec<bool> {
        self.eu_set(g, h)
    }

    /// `A[gUh]` over explicit satisfaction vectors.
    pub fn au_of(&self, g: &[bool], h: &[bool]) -> Vec<bool> {
        self.au_set(g, h)
    }

    /// `EF h` over an explicit satisfaction vector.
    pub fn ef_of(&self, h: &[bool]) -> Vec<bool> {
        self.eu_set(&vec![true; self.model.len()], h)
    }

    /// `AF h` over an explicit satisfaction vector.
    pub fn af_of(&self, h: &[bool]) -> Vec<bool> {
        self.au_set(&vec![true; self.model.len()], h)
    }

    /// `AG h` over an explicit satisfaction vector (`¬EF¬h`).
    pub fn ag_of(&self, h: &[bool]) -> Vec<bool> {
        let nh: Vec<bool> = h.iter().map(|x| !x).collect();
        self.ef_of(&nh).iter().map(|x| !x).collect()
    }

    fn path_succ(&self, s: StateId) -> impl Iterator<Item = StateId> + '_ {
        let include_faults = self.semantics == Semantics::IncludeFaults;
        self.model
            .succ(s)
            .iter()
            .filter(move |e| include_faults || !e.kind.is_fault())
            .map(|e| e.to)
    }

    /// Least fixpoint for `E[gUh]`:
    /// `X = h ∪ (g ∩ pre∃(X))`.
    fn eu_set(&self, g: &[bool], h: &[bool]) -> Vec<bool> {
        let n = self.model.len();
        let mut x: Vec<bool> = h.to_vec();
        // Worklist over predecessors.
        let mut work: Vec<StateId> = (0..n as u32).map(StateId).filter(|s| x[s.index()]).collect();
        let include_faults = self.semantics == Semantics::IncludeFaults;
        while let Some(t) = work.pop() {
            for e in self.model.pred(t) {
                if !include_faults && e.kind.is_fault() {
                    continue;
                }
                let s = e.to; // source
                if !x[s.index()] && g[s.index()] {
                    x[s.index()] = true;
                    work.push(s);
                }
            }
        }
        x
    }

    /// Least fixpoint for `A[gUh]`:
    /// `X = h ∪ (g ∩ {s : succ(s) ≠ ∅ ∧ succ(s) ⊆ X})`.
    ///
    /// Dead-end states satisfy `A[gUh]` iff `h` holds there (the only
    /// fullpath is the single-state path).
    fn au_set(&self, g: &[bool], h: &[bool]) -> Vec<bool> {
        let n = self.model.len();
        let mut x: Vec<bool> = h.to_vec();
        // remaining[s] = number of path-successors of s not yet in X.
        let mut remaining: Vec<usize> = (0..n as u32)
            .map(StateId)
            .map(|s| self.path_succ(s).count())
            .collect();
        let has_succ: Vec<bool> = remaining.iter().map(|&c| c > 0).collect();
        let include_faults = self.semantics == Semantics::IncludeFaults;
        let mut work: Vec<StateId> = (0..n as u32).map(StateId).filter(|s| x[s.index()]).collect();
        while let Some(t) = work.pop() {
            for e in self.model.pred(t) {
                if !include_faults && e.kind.is_fault() {
                    continue;
                }
                let s = e.to; // source
                remaining[s.index()] = remaining[s.index()].saturating_sub(1);
                if !x[s.index()] && g[s.index()] && has_succ[s.index()] && remaining[s.index()] == 0
                {
                    x[s.index()] = true;
                    work.push(s);
                }
            }
        }
        x
    }
}

/// A frozen per-state CTL labeling captured from a [`Checker`] run:
/// formula id → satisfaction vector over the model the checker was
/// built on. The cache owns plain data (no borrow of the model), so it
/// can outlive the checker and be shared across worker threads; the
/// semantic minimizer uses one cache per accepted model to transfer
/// base-model truths onto merge candidates instead of re-checking them.
#[derive(Clone, Debug, Default)]
pub struct LabelCache {
    labels: HashMap<FormulaId, Vec<bool>>,
}

impl LabelCache {
    /// The satisfaction vector of `f`, if `f` was evaluated (directly
    /// or as a subformula) before the cache was captured.
    pub fn get(&self, f: FormulaId) -> Option<&[bool]> {
        self.labels.get(&f).map(|v| v.as_slice())
    }

    /// Whether `f` holds at `s`, if `f` is cached.
    pub fn holds(&self, f: FormulaId, s: StateId) -> Option<bool> {
        self.labels.get(&f).map(|v| v[s.index()])
    }

    /// Whether `f` is cached and holds at *every* state of the model.
    pub fn all_true(&self, f: FormulaId) -> bool {
        self.labels.get(&f).is_some_and(|v| v.iter().all(|&x| x))
    }

    /// Ids of all cached formulae (arbitrary order).
    pub fn formulas(&self) -> impl Iterator<Item = FormulaId> + '_ {
        self.labels.keys().copied()
    }

    /// Number of cached formulae.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether nothing was cached.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{PropSet, State};
    use crate::structure::TransKind;
    use ftsyn_ctl::{Owner, PropId, PropTable};

    struct Fixture {
        arena: FormulaArena,
        props: PropTable,
        m: FtKripke,
        ids: Vec<StateId>,
    }

    /// Builds the classic mutex-like ring:
    /// s0{n} → s1{t} → s2{c} → s0, with a fault edge s0 -F-> s3{bad},
    /// s3 → s3 (self loop) and s3 → s0 recovery.
    fn fixture() -> Fixture {
        let mut props = PropTable::new();
        let pn = props.add("n", Owner::Process(0)).unwrap();
        let pt = props.add("t", Owner::Process(0)).unwrap();
        let pc = props.add("c", Owner::Process(0)).unwrap();
        let pbad = props.add("bad", Owner::Process(0)).unwrap();
        let arena = FormulaArena::new(2);
        let mut m = FtKripke::new();
        let mk = |ps: &[PropId]| State::new(PropSet::from_iter_with_capacity(4, ps.iter().copied()));
        let s0 = m.intern_state(mk(&[pn]));
        let s1 = m.intern_state(mk(&[pt]));
        let s2 = m.intern_state(mk(&[pc]));
        let s3 = m.intern_state(mk(&[pbad]));
        m.add_init(s0);
        m.add_edge(s0, TransKind::Proc(0), s1);
        m.add_edge(s1, TransKind::Proc(0), s2);
        m.add_edge(s2, TransKind::Proc(0), s0);
        m.add_edge(s0, TransKind::Fault(0), s3);
        m.add_edge(s3, TransKind::Proc(1), s0);
        Fixture {
            arena,
            props,
            m,
            ids: vec![s0, s1, s2, s3],
        }
    }

    fn prop(fx: &mut Fixture, name: &str) -> FormulaId {
        let p = fx.props.id(name).unwrap();
        fx.arena.prop(p)
    }

    #[test]
    fn af_holds_on_cycle_reaching_goal() {
        let mut fx = fixture();
        let c = prop(&mut fx, "c");
        let af = fx.arena.af(c);
        let mut ck = Checker::new(&fx.m, Semantics::FaultFree);
        // Fault-free from s0 the only path is the ring, so AF c holds.
        assert!(ck.holds(&fx.arena, af, fx.ids[0]));
        assert!(ck.holds(&fx.arena, af, fx.ids[1]));
    }

    #[test]
    fn fault_free_vs_include_faults() {
        let mut fx = fixture();
        let bad = prop(&mut fx, "bad");
        let nbad = fx.arena.not(bad);
        let ag = fx.arena.ag(nbad);
        // Under |=n the fault edge is invisible: AG ~bad holds at s0.
        let mut ckn = Checker::new(&fx.m, Semantics::FaultFree);
        assert!(ckn.holds(&fx.arena, ag, fx.ids[0]));
        // Under |= with faults, the path through the fault reaches bad.
        let mut ckf = Checker::new(&fx.m, Semantics::IncludeFaults);
        assert!(!ckf.holds(&fx.arena, ag, fx.ids[0]));
    }

    #[test]
    fn ex_ax_are_per_process_and_ignore_faults() {
        let mut fx = fixture();
        let t = prop(&mut fx, "t");
        let ex0 = fx.arena.ex(0, t);
        let ex1 = fx.arena.ex(1, t);
        // s0's fault successor s3 is not an EX-successor of any process.
        let bad = prop(&mut fx, "bad");
        let exb0 = fx.arena.ex(0, bad);
        let exb1 = fx.arena.ex(1, bad);
        let mut ck = Checker::new(&fx.m, Semantics::FaultFree);
        assert!(ck.holds(&fx.arena, ex0, fx.ids[0]));
        assert!(!ck.holds(&fx.arena, ex1, fx.ids[0]));
        assert!(!ck.holds(&fx.arena, exb0, fx.ids[0]));
        assert!(!ck.holds(&fx.arena, exb1, fx.ids[0]));
    }

    #[test]
    fn dead_end_semantics() {
        let mut props = PropTable::new();
        let p = props.add("p", Owner::Process(0)).unwrap();
        let mut arena = FormulaArena::new(1);
        let mut m = FtKripke::new();
        let dead_p = m.intern_state(State::new(PropSet::from_iter_with_capacity(1, [p])));
        let dead_np = m.intern_state(State::new(PropSet::with_capacity(1)));
        m.add_init(dead_p);
        m.add_init(dead_np);
        let fp = arena.prop(p);
        let af = arena.af(fp);
        let ef = arena.ef(fp);
        let ax = arena.ax(0, fp);
        let ex = arena.ex(0, fp);
        let mut ck = Checker::new(&m, Semantics::FaultFree);
        // Dead end with p: the single-state fullpath fulfills AF/EF.
        assert!(ck.holds(&arena, af, dead_p));
        assert!(ck.holds(&arena, ef, dead_p));
        // Dead end without p: unfulfillable.
        assert!(!ck.holds(&arena, af, dead_np));
        assert!(!ck.holds(&arena, ef, dead_np));
        // AX vacuous, EX false on dead ends.
        assert!(ck.holds(&arena, ax, dead_np));
        assert!(!ck.holds(&arena, ex, dead_p));
    }

    #[test]
    fn weak_until_duality() {
        let mut fx = fixture();
        let n = prop(&mut fx, "n");
        let c = prop(&mut fx, "c");
        // E[c W n]: exists a path where n holds until c∧n releases — on
        // the ring, n holds at s0 and the next state has ¬n, so the
        // release c∧n never fires but n doesn't hold forever either.
        let ew = fx.arena.ew(c, n);
        let mut ck = Checker::new(&fx.m, Semantics::FaultFree);
        assert!(!ck.holds(&fx.arena, ew, fx.ids[0]));
        // A[false W n] = AG n fails at s0 (t is reached).
        let ag = fx.arena.ag(n);
        assert!(!ck.holds(&fx.arena, ag, fx.ids[0]));
        // EG true holds everywhere (infinite ring).
        let t = fx.arena.tru();
        let eg = fx.arena.eg(t);
        assert!(ck.holds(&fx.arena, eg, fx.ids[0]));
    }

    #[test]
    fn vector_fixpoints_match_formula_evaluation() {
        let mut fx = fixture();
        let n = prop(&mut fx, "n");
        let c = prop(&mut fx, "c");
        for semantics in [Semantics::FaultFree, Semantics::IncludeFaults] {
            let mut ck = Checker::new(&fx.m, semantics);
            let vn = ck.eval(&fx.arena, n).clone();
            let vc = ck.eval(&fx.arena, c).clone();
            let ef = fx.arena.ef(c);
            let af = fx.arena.af(c);
            let ag = fx.arena.ag(n);
            let eu = fx.arena.eu(n, c);
            let au = fx.arena.au(n, c);
            assert_eq!(&ck.ef_of(&vc), ck.eval(&fx.arena, ef));
            assert_eq!(&ck.af_of(&vc), ck.eval(&fx.arena, af));
            assert_eq!(&ck.ag_of(&vn), ck.eval(&fx.arena, ag));
            assert_eq!(&ck.eu_of(&vn, &vc), ck.eval(&fx.arena, eu));
            assert_eq!(&ck.au_of(&vn, &vc), ck.eval(&fx.arena, au));
        }
    }

    #[test]
    fn label_cache_captures_subformulae_and_all_true() {
        let mut fx = fixture();
        let n = prop(&mut fx, "n");
        let c = prop(&mut fx, "c");
        let nc = fx.arena.or(n, c);
        let ef = fx.arena.ef(nc);
        let mut ck = Checker::new(&fx.m, Semantics::FaultFree);
        ck.eval(&fx.arena, ef);
        let cache = ck.into_cache();
        // The root and its subformulae are all cached.
        assert!(cache.get(ef).is_some());
        assert!(cache.get(nc).is_some());
        assert_eq!(cache.holds(n, fx.ids[0]), Some(true));
        assert_eq!(cache.holds(n, fx.ids[1]), Some(false));
        // EF(n|c) holds everywhere except the dead-end-free ring… it
        // holds at every state of this fixture.
        assert!(cache.all_true(ef));
        assert!(!cache.all_true(n));
        // Unevaluated formulae are absent, and absent means not all-true.
        let bad = prop(&mut fx, "bad");
        assert!(cache.get(bad).is_none());
        assert!(!cache.all_true(bad));
        assert!(!cache.is_empty());
        assert!(cache.len() >= 4);
    }

    #[test]
    fn dead_end_detection_respects_semantics() {
        let fx = fixture();
        // Every state of the fixture has a successor under both
        // semantics (s3 has a Proc edge back to s0).
        assert!(Checker::new(&fx.m, Semantics::FaultFree).dead_end_free());
        assert!(Checker::new(&fx.m, Semantics::IncludeFaults).dead_end_free());
        // A state whose only successor is a fault edge is a dead end
        // under fault-free semantics but not under include-faults.
        let mut m = fx.m.clone();
        let lone = m.push_state(State::new(PropSet::with_capacity(4)));
        m.add_edge(lone, TransKind::Fault(0), fx.ids[0]);
        assert!(!Checker::new(&m, Semantics::FaultFree).dead_end_free());
        assert!(Checker::new(&m, Semantics::IncludeFaults).dead_end_free());
    }

    #[test]
    fn au_requires_g_along_the_way() {
        let mut fx = fixture();
        let n = prop(&mut fx, "n");
        let t = prop(&mut fx, "t");
        let c = prop(&mut fx, "c");
        // A[(n|t) U c] holds at s0 along the ring.
        let nt = fx.arena.or(n, t);
        let au = fx.arena.au(nt, c);
        let mut ck = Checker::new(&fx.m, Semantics::FaultFree);
        assert!(ck.holds(&fx.arena, au, fx.ids[0]));
        // A[n U c] fails: t-state breaks the g-chain.
        let au2 = fx.arena.au(n, c);
        assert!(!ck.holds(&fx.arena, au2, fx.ids[0]));
    }
}
