//! Witness and counterexample extraction.
//!
//! When a formula holds (for existential properties) or fails (for
//! universal ones), a concrete path through the structure demonstrates
//! it. These are invaluable for diagnosing synthesis problems: a failed
//! tolerance check can be shown as the exact execution that violates
//! the specification.

use crate::checker::{Checker, Semantics};
use crate::structure::{FtKripke, StateId};
use ftsyn_ctl::{Formula, FormulaArena, FormulaId};

/// A (possibly looping) evidence path: the states visited in order; if
/// `loop_start` is set, the path is a lasso whose suffix from that index
/// repeats forever.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EvidencePath {
    /// The states along the path.
    pub states: Vec<StateId>,
    /// Index into `states` where the repeating loop begins, if infinite.
    pub loop_start: Option<usize>,
}

impl EvidencePath {
    /// Renders the path using state displays.
    pub fn display(&self, m: &FtKripke, props: &ftsyn_ctl::PropTable) -> String {
        let mut parts: Vec<String> = Vec::new();
        for (i, &s) in self.states.iter().enumerate() {
            if Some(i) == self.loop_start {
                parts.push("(loop:".into());
            }
            parts.push(m.state(s).display(props));
        }
        if self.loop_start.is_some() {
            parts.push(")*".into());
        }
        parts.join(" -> ")
    }
}

impl<'m> Checker<'m> {
    fn path_successors(&self, s: StateId) -> Vec<StateId> {
        let include_faults = self.semantics() == Semantics::IncludeFaults;
        self.model()
            .succ(s)
            .iter()
            .filter(|e| include_faults || !e.kind.is_fault())
            .map(|e| e.to)
            .collect()
    }

    /// A witness fullpath for `E[g U h]` at `from`, if it holds: a
    /// finite path ending in an `h`-state with `g` before it.
    pub fn witness_eu(
        &mut self,
        arena: &FormulaArena,
        g: FormulaId,
        h: FormulaId,
        from: StateId,
    ) -> Option<EvidencePath> {
        let eu = {
            // Build the until formula in a scratch arena? The caller's
            // arena is borrowed immutably; instead evaluate components.
            (
                self.eval(arena, g).clone(),
                self.eval(arena, h).clone(),
            )
        };
        let (vg, vh) = eu;
        // BFS ranks toward h through g-states.
        let n = self.model().len();
        let mut rank = vec![u32::MAX; n];
        let mut work: Vec<StateId> = Vec::new();
        for s in self.model().state_ids() {
            if vh[s.index()] {
                rank[s.index()] = 0;
                work.push(s);
            }
        }
        let mut r = 0;
        while !work.is_empty() {
            r += 1;
            let mut next = Vec::new();
            for &t in &work {
                for e in self.model().pred(t) {
                    if self.semantics() == Semantics::FaultFree && e.kind.is_fault() {
                        continue;
                    }
                    let s = e.to;
                    if rank[s.index()] == u32::MAX && vg[s.index()] {
                        rank[s.index()] = r;
                        next.push(s);
                    }
                }
            }
            work = next;
        }
        if rank[from.index()] == u32::MAX {
            return None;
        }
        // Walk down the ranks.
        let mut path = vec![from];
        let mut cur = from;
        while rank[cur.index()] > 0 {
            let next = self
                .path_successors(cur)
                .into_iter()
                .min_by_key(|t| rank[t.index()])?;
            path.push(next);
            cur = next;
        }
        Some(EvidencePath {
            states: path,
            loop_start: None,
        })
    }

    /// A witness fullpath for `EF h` at `from`.
    pub fn witness_ef(
        &mut self,
        arena: &FormulaArena,
        h: FormulaId,
        from: StateId,
    ) -> Option<EvidencePath> {
        // g = true: reuse witness_eu with h's own id for g won't work;
        // inline a trivially-true vector by using h≡h — instead compute
        // with a constant-true formula if the arena has one interned.
        // `FormulaArena::new` pre-interns True at id 0.
        let t = ftsyn_ctl::FormulaId(0);
        debug_assert!(matches!(arena.get(t), Formula::True));
        self.witness_eu(arena, t, h, from)
    }

    /// A counterexample fullpath for `A[g U h]` at `from`, if it fails:
    /// either a finite path whose last state breaks the obligation (¬h
    /// and ¬g, or a ¬h dead end), or a lasso that avoids `h` forever.
    pub fn counterexample_au(
        &mut self,
        arena: &FormulaArena,
        g: FormulaId,
        h: FormulaId,
        from: StateId,
    ) -> Option<EvidencePath> {
        let vg = self.eval(arena, g).clone();
        let vh = self.eval(arena, h).clone();
        let au = {
            // Recompute AU membership with the checker's fixpoint by
            // evaluating the interned formula if present; otherwise
            // derive from the complement of the failure search below.
            // We avoid needing the interned AU: a state fails A[gUh]
            // iff it is in the largest set X with:
            //   ¬h ∧ (¬g ∨ dead-end ∨ ∃succ ∈ X).
            // That is a greatest fixpoint; compute it directly.
            let n = self.model().len();
            let mut x: Vec<bool> = (0..n).map(|i| !vh[i]).collect();
            let mut changed = true;
            while changed {
                changed = false;
                for s in self.model().state_ids() {
                    if !x[s.index()] {
                        continue;
                    }
                    let succs = self.path_successors(s);
                    let keeps = !vg[s.index()]
                        || succs.is_empty()
                        || succs.iter().any(|t| x[t.index()]);
                    if !keeps {
                        x[s.index()] = false;
                        changed = true;
                    }
                }
            }
            x
        };
        if !au[from.index()] {
            return None; // A[gUh] holds at `from`
        }
        // Walk inside the failure set, preferring an immediate breach.
        let mut path = vec![from];
        let mut pos: std::collections::HashMap<StateId, usize> =
            std::collections::HashMap::new();
        pos.insert(from, 0);
        let mut cur = from;
        loop {
            let i = cur.index();
            if !vg[i] && !vh[i] {
                return Some(EvidencePath {
                    states: path,
                    loop_start: None,
                });
            }
            let succs = self.path_successors(cur);
            if succs.is_empty() {
                return Some(EvidencePath {
                    states: path,
                    loop_start: None,
                });
            }
            let next = succs
                .iter()
                .copied()
                .find(|t| au[t.index()])
                .expect("failure set is closed under some successor");
            if let Some(&at) = pos.get(&next) {
                return Some(EvidencePath {
                    states: path,
                    loop_start: Some(at),
                });
            }
            pos.insert(next, path.len());
            path.push(next);
            cur = next;
        }
    }

    /// A counterexample path for `AG h` at `from` (a path to a `¬h`
    /// state), if `AG h` fails.
    pub fn counterexample_ag(
        &mut self,
        arena: &FormulaArena,
        h: FormulaId,
        from: StateId,
    ) -> Option<EvidencePath> {
        let vh = self.eval(arena, h).clone();
        // BFS to the nearest ¬h state.
        let n = self.model().len();
        let mut prev: Vec<Option<StateId>> = vec![None; n];
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(from);
        seen[from.index()] = true;
        let mut target = None;
        if !vh[from.index()] {
            target = Some(from);
        }
        while let Some(s) = queue.pop_front() {
            if target.is_some() {
                break;
            }
            for t in self.path_successors(s) {
                if !seen[t.index()] {
                    seen[t.index()] = true;
                    prev[t.index()] = Some(s);
                    if !vh[t.index()] {
                        target = Some(t);
                        break;
                    }
                    queue.push_back(t);
                }
            }
        }
        let mut cur = target?;
        let mut rev = vec![cur];
        while let Some(p) = prev[cur.index()] {
            rev.push(p);
            cur = p;
        }
        rev.reverse();
        Some(EvidencePath {
            states: rev,
            loop_start: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{PropSet, State};
    use crate::structure::TransKind;
    use ftsyn_ctl::{Owner, PropId, PropTable};

    fn fixture() -> (FormulaArena, PropTable, FtKripke, Vec<StateId>) {
        let mut props = PropTable::new();
        let a = props.add("a", Owner::Process(0)).unwrap();
        let b = props.add("b", Owner::Process(0)).unwrap();
        let c = props.add("c", Owner::Process(0)).unwrap();
        let arena = FormulaArena::new(1);
        let mut m = FtKripke::new();
        let mk = |ps: &[PropId]| State::new(PropSet::from_iter_with_capacity(3, ps.iter().copied()));
        // s0{a} → s1{b} → s2{c}; s1 → s1 (self-loop); s0 -fault→ s3{} (dead end)
        let s0 = m.intern_state(mk(&[a]));
        let s1 = m.intern_state(mk(&[b]));
        let s2 = m.intern_state(mk(&[c]));
        let s3 = m.intern_state(mk(&[]));
        m.add_init(s0);
        m.add_edge(s0, TransKind::Proc(0), s1);
        m.add_edge(s1, TransKind::Proc(0), s2);
        m.add_edge(s1, TransKind::Proc(0), s1);
        m.add_edge(s2, TransKind::Proc(0), s2);
        m.add_edge(s0, TransKind::Fault(0), s3);
        (arena, props, m, vec![s0, s1, s2, s3])
    }

    #[test]
    fn ef_witness_is_shortest_path() {
        let (mut arena, props, m, ids) = fixture();
        let c = arena.prop(props.id("c").unwrap());
        let mut ck = Checker::new(&m, Semantics::FaultFree);
        let w = ck.witness_ef(&arena, c, ids[0]).expect("EF c holds");
        assert_eq!(w.states, vec![ids[0], ids[1], ids[2]]);
        assert_eq!(w.loop_start, None);
    }

    #[test]
    fn eu_witness_respects_g() {
        let (mut arena, props, m, ids) = fixture();
        let a = arena.prop(props.id("a").unwrap());
        let b = arena.prop(props.id("b").unwrap());
        let c = arena.prop(props.id("c").unwrap());
        let ab = arena.or(a, b);
        let mut ck = Checker::new(&m, Semantics::FaultFree);
        let w = ck.witness_eu(&arena, ab, c, ids[0]).expect("holds");
        assert_eq!(*w.states.last().unwrap(), ids[2]);
        // And when g is too weak, no witness exists.
        let w2 = ck.witness_eu(&arena, a, c, ids[0]);
        assert!(w2.is_none(), "b-state breaks the g chain");
    }

    #[test]
    fn au_counterexample_finds_the_lasso() {
        let (mut arena, props, m, ids) = fixture();
        let c = arena.prop(props.id("c").unwrap());
        let af = arena.af(c);
        let mut ck = Checker::new(&m, Semantics::FaultFree);
        // AF c fails at s0: the s1 self-loop avoids c forever.
        assert!(!ck.holds(&arena, af, ids[0]));
        let t = arena.tru();
        let cex = ck
            .counterexample_au(&arena, t, c, ids[0])
            .expect("AF c fails");
        assert!(cex.loop_start.is_some(), "must be a lasso: {cex:?}");
        let lp = cex.loop_start.unwrap();
        // The loop avoids c.
        for &s in &cex.states[lp..] {
            assert_ne!(s, ids[2]);
        }
    }

    #[test]
    fn au_counterexample_none_when_holds() {
        let (mut arena, props, m, ids) = fixture();
        let b = arena.prop(props.id("b").unwrap());
        let mut ck = Checker::new(&m, Semantics::FaultFree);
        // AF b holds at s0 fault-free (s1 is on every path... actually
        // the only program path is s0→s1→…, so AF b holds).
        let t = arena.tru();
        assert!(ck.counterexample_au(&arena, t, b, ids[0]).is_none());
    }

    #[test]
    fn ag_counterexample_uses_fault_paths_when_asked() {
        let (mut arena, props, m, ids) = fixture();
        let a = arena.prop(props.id("a").unwrap());
        let b = arena.prop(props.id("b").unwrap());
        let c = arena.prop(props.id("c").unwrap());
        let bc = arena.or(b, c);
        let abc = arena.or(a, bc);
        // AG(a|b|c) holds fault-free but fails through the fault edge to
        // the empty state.
        let mut ckn = Checker::new(&m, Semantics::FaultFree);
        assert!(ckn.counterexample_ag(&arena, abc, ids[0]).is_none());
        let mut ckf = Checker::new(&m, Semantics::IncludeFaults);
        let cex = ckf
            .counterexample_ag(&arena, abc, ids[0])
            .expect("fails through the fault");
        assert_eq!(cex.states, vec![ids[0], ids[3]]);
    }

    #[test]
    fn display_renders_lassos() {
        let (mut arena, props, m, ids) = fixture();
        let c = arena.prop(props.id("c").unwrap());
        let t = arena.tru();
        let mut ck = Checker::new(&m, Semantics::FaultFree);
        let cex = ck.counterexample_au(&arena, t, c, ids[0]).unwrap();
        let txt = cex.display(&m, &props);
        assert!(txt.contains("(loop:"), "{txt}");
        assert!(txt.ends_with(")*"), "{txt}");
    }
}
