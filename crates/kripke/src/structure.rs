//! Fault-tolerant Kripke structures `M_F = (S0, S, A, A_F, L)`.
//!
//! The transition relation `A` is partitioned by process index (Section
//! 2.2); the disjoint fault-transition relation `A_F` is labeled by fault
//! action (Section 2.4). A plain Kripke structure is simply one with no
//! fault transitions.

use crate::state::{PropSet, State};
use ftsyn_ctl::PropTable;
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a state within an [`FtKripke`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct StateId(pub u32);

impl StateId {
    /// Index usable for direct vector addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// The label of a transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum TransKind {
    /// A program transition of the given 0-based process.
    Proc(usize),
    /// A fault transition caused by the fault action with this index in
    /// the fault specification.
    Fault(usize),
}

impl TransKind {
    /// Whether this is a fault transition.
    pub fn is_fault(self) -> bool {
        matches!(self, TransKind::Fault(_))
    }
}

/// An outgoing edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Edge {
    /// Transition label.
    pub kind: TransKind,
    /// Target state.
    pub to: StateId,
}

/// Role of a state with respect to faults (Section 2.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum StateRole {
    /// Lies on some fault-free initialized fullpath.
    Normal,
    /// Reached only via faults, and directly the target of a fault
    /// transition on some initialized path.
    Perturbed,
    /// Reachable, but neither normal nor perturbed.
    Recovery,
    /// Not reachable from any initial state (even via faults).
    Unreachable,
}

/// A fault-tolerant Kripke structure.
#[derive(Clone, Debug, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct FtKripke {
    states: Vec<State>,
    init: Vec<StateId>,
    succ: Vec<Vec<Edge>>,
    pred: Vec<Vec<Edge>>, // Edge.to here is the *source* of the transition
    index: HashMap<State, StateId>,
}

impl FtKripke {
    /// Creates an empty structure.
    pub fn new() -> FtKripke {
        FtKripke::default()
    }

    /// Adds (or finds) a state with the given content; returns its id.
    pub fn intern_state(&mut self, s: State) -> StateId {
        if let Some(&id) = self.index.get(&s) {
            return id;
        }
        let id = StateId(self.states.len() as u32);
        self.index.insert(s.clone(), id);
        self.states.push(s);
        self.succ.push(Vec::new());
        self.pred.push(Vec::new());
        id
    }

    /// Adds a state without interning (duplicates allowed). Used by the
    /// synthesis unraveling, where distinct states may share a valuation
    /// until shared variables are introduced.
    pub fn push_state(&mut self, s: State) -> StateId {
        let id = StateId(self.states.len() as u32);
        self.states.push(s);
        self.succ.push(Vec::new());
        self.pred.push(Vec::new());
        id
    }

    /// Marks a state as initial.
    pub fn add_init(&mut self, s: StateId) {
        if !self.init.contains(&s) {
            self.init.push(s);
        }
    }

    /// Adds a transition. Duplicate edges are ignored.
    pub fn add_edge(&mut self, from: StateId, kind: TransKind, to: StateId) {
        let e = Edge { kind, to };
        if !self.succ[from.index()].contains(&e) {
            self.succ[from.index()].push(e);
            self.pred[to.index()].push(Edge { kind, to: from });
        }
    }

    /// Returns a copy of this structure with state `from` merged into
    /// state `into` (edges redirected, `from` removed), plus the old→new
    /// state mapping. See [`FtKripke::merge_into`].
    ///
    /// # Panics
    ///
    /// Panics if `from == into`.
    pub fn merged(&self, from: StateId, into: StateId) -> (FtKripke, Vec<StateId>) {
        let mut out = FtKripke::new();
        let mut mapping = Vec::new();
        self.merge_into(from, into, &mut out, &mut mapping);
        (out, mapping)
    }

    /// [`FtKripke::merged`] writing into caller-owned buffers, reusing
    /// their allocations. The semantic minimizer builds one candidate
    /// structure per candidate merge — tens of thousands per run — so
    /// candidate construction must not pay per-state allocations.
    ///
    /// The output is element-identical to rebuilding from scratch with
    /// [`FtKripke::push_state`] / [`FtKripke::add_edge`] /
    /// [`FtKripke::add_init`] over the remapped states, sources in id
    /// order: state ids are dense, so the mapping is pure arithmetic
    /// (states above `from` shift down by one), and the `add_edge`
    /// duplicate scan is only needed for edges touching the merged state
    /// — a merge cannot collapse any other pair of edges.
    ///
    /// # Panics
    ///
    /// Panics if `from == into`.
    pub fn merge_into(
        &self,
        from: StateId,
        into: StateId,
        out: &mut FtKripke,
        mapping: &mut Vec<StateId>,
    ) {
        assert_ne!(from, into, "cannot merge a state with itself");
        let q = |s: StateId| -> StateId {
            let s = if s == from { into } else { s };
            StateId(s.0 - u32::from(s.0 > from.0))
        };
        let merged_id = q(into);
        let n = self.states.len() - 1;

        out.index.clear();
        out.init.clear();
        // States: element-wise clone_from reuses each slot's buffers.
        out.states.truncate(n);
        let mut src = self
            .states
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != from.index())
            .map(|(_, s)| s);
        for dst in out.states.iter_mut() {
            dst.clone_from(src.next().expect("n surviving states"));
        }
        out.states.extend(src.cloned());
        // Edge lists: clear in place to keep the inner capacities.
        out.succ.truncate(n);
        out.pred.truncate(n);
        for l in out.succ.iter_mut().chain(out.pred.iter_mut()) {
            l.clear();
        }
        out.succ.resize_with(n, Vec::new);
        out.pred.resize_with(n, Vec::new);

        for s in self.state_ids() {
            let ns = q(s);
            for e in &self.succ[s.index()] {
                let ne = Edge {
                    kind: e.kind,
                    to: q(e.to),
                };
                // Duplicates only arise where the two merged preimages
                // meet: at the merged source (its list combines `into`'s
                // and `from`'s edges) or on edges into the merged state
                // (a source pointing at both `from` and `into`).
                if (ns == merged_id || ne.to == merged_id)
                    && out.succ[ns.index()].contains(&ne)
                {
                    continue;
                }
                out.succ[ns.index()].push(ne);
                out.pred[ne.to.index()].push(Edge {
                    kind: e.kind,
                    to: ns,
                });
            }
        }
        for &i in &self.init {
            let ni = q(i);
            if !out.init.contains(&ni) {
                out.init.push(ni);
            }
        }
        mapping.clear();
        mapping.extend(self.state_ids().map(q));
    }

    /// The state content for an id.
    ///
    /// # Panics
    ///
    /// Panics if `s` does not belong to this structure.
    pub fn state(&self, s: StateId) -> &State {
        &self.states[s.index()]
    }

    /// Mutable access to a state's content (used when introducing shared
    /// variables during extraction). The interning index is invalidated.
    pub fn state_mut(&mut self, s: StateId) -> &mut State {
        self.index.clear();
        &mut self.states[s.index()]
    }

    /// Looks up an interned state by content.
    pub fn find_state(&self, s: &State) -> Option<StateId> {
        self.index.get(s).copied()
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the structure has no states.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The initial states.
    pub fn init_states(&self) -> &[StateId] {
        &self.init
    }

    /// Outgoing edges of `s`.
    pub fn succ(&self, s: StateId) -> &[Edge] {
        &self.succ[s.index()]
    }

    /// Incoming edges of `s` (the `to` field holds the *source*).
    pub fn pred(&self, s: StateId) -> &[Edge] {
        &self.pred[s.index()]
    }

    /// Iterates over all state ids.
    pub fn state_ids(&self) -> impl Iterator<Item = StateId> {
        (0..self.states.len() as u32).map(StateId)
    }

    /// Total number of transitions (program + fault).
    pub fn edge_count(&self) -> usize {
        self.succ.iter().map(Vec::len).sum()
    }

    /// Number of fault transitions.
    pub fn fault_edge_count(&self) -> usize {
        self.succ
            .iter()
            .flatten()
            .filter(|e| e.kind.is_fault())
            .count()
    }

    /// States reachable from the initial states via the given edge filter.
    fn reachable_where(&self, include_faults: bool) -> Vec<bool> {
        let mut seen = vec![false; self.states.len()];
        let mut stack: Vec<StateId> = self.init.clone();
        for &s in &self.init {
            seen[s.index()] = true;
        }
        while let Some(s) = stack.pop() {
            for e in &self.succ[s.index()] {
                if (include_faults || !e.kind.is_fault()) && !seen[e.to.index()] {
                    seen[e.to.index()] = true;
                    stack.push(e.to);
                }
            }
        }
        seen
    }

    /// Classifies every state per Section 2.4.
    pub fn classify(&self) -> Vec<StateRole> {
        let normal = self.reachable_where(false);
        let reachable = self.reachable_where(true);
        let mut roles = vec![StateRole::Unreachable; self.states.len()];
        for s in self.state_ids() {
            let i = s.index();
            if !reachable[i] {
                continue;
            }
            roles[i] = if normal[i] {
                StateRole::Normal
            } else {
                // Perturbed iff some fault edge from a reachable state
                // lands here; otherwise it is a recovery state.
                let hit_by_fault = self.pred[i]
                    .iter()
                    .any(|e| e.kind.is_fault() && reachable[e.to.index()]);
                if hit_by_fault {
                    StateRole::Perturbed
                } else {
                    StateRole::Recovery
                }
            };
        }
        roles
    }

    /// The set of perturbed states `S_F`.
    pub fn perturbed_states(&self) -> Vec<StateId> {
        self.classify()
            .iter()
            .enumerate()
            .filter(|(_, r)| **r == StateRole::Perturbed)
            .map(|(i, _)| StateId(i as u32))
            .collect()
    }

    /// Restriction of a state's valuation to `keep` (used to compare
    /// models over the problem propositions only).
    pub fn valuation_restricted(&self, s: StateId, keep: &PropSet) -> PropSet {
        self.state(s).props.intersect(keep)
    }

    /// Graphviz rendering: solid = program, dotted = fault transitions;
    /// perturbed states get a dashed border (mirroring Figure 8's
    /// conventions).
    pub fn to_dot(&self, props: &PropTable) -> String {
        let roles = self.classify();
        let mut out = String::from("digraph M {\n  rankdir=TB;\n");
        for s in self.state_ids() {
            let style = match roles[s.index()] {
                StateRole::Perturbed => ",style=dashed",
                StateRole::Recovery => ",style=dotted",
                _ => "",
            };
            out.push_str(&format!(
                "  s{} [label=\"{}\"{}];\n",
                s.0,
                self.state(s).display(props),
                style
            ));
        }
        for s in self.state_ids() {
            for e in self.succ(s) {
                match e.kind {
                    TransKind::Proc(i) => out.push_str(&format!(
                        "  s{} -> s{} [label=\"P{}\"];\n",
                        s.0,
                        e.to.0,
                        i + 1
                    )),
                    TransKind::Fault(a) => out.push_str(&format!(
                        "  s{} -> s{} [label=\"f{a}\",style=dotted];\n",
                        s.0, e.to.0
                    )),
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsyn_ctl::{Owner, PropId};

    fn mk_state(n: usize, props: &[u32]) -> State {
        State::new(PropSet::from_iter_with_capacity(
            n,
            props.iter().map(|&p| PropId(p)),
        ))
    }

    /// init → s1 → s2 (program), s1 -fault-> s3 → s4 (recovery chain).
    fn sample() -> FtKripke {
        let mut m = FtKripke::new();
        let s0 = m.intern_state(mk_state(4, &[0]));
        let s1 = m.intern_state(mk_state(4, &[1]));
        let s2 = m.intern_state(mk_state(4, &[2]));
        let s3 = m.intern_state(mk_state(4, &[3]));
        let s4 = m.intern_state(mk_state(4, &[0, 1]));
        let s5 = m.intern_state(mk_state(4, &[0, 2])); // unreachable
        m.add_init(s0);
        m.add_edge(s0, TransKind::Proc(0), s1);
        m.add_edge(s1, TransKind::Proc(1), s2);
        m.add_edge(s2, TransKind::Proc(0), s2);
        m.add_edge(s1, TransKind::Fault(0), s3);
        m.add_edge(s3, TransKind::Proc(0), s4);
        m.add_edge(s4, TransKind::Proc(0), s4);
        m.add_edge(s5, TransKind::Proc(0), s5);
        m
    }

    #[test]
    fn interning_dedups() {
        let mut m = FtKripke::new();
        let a = m.intern_state(mk_state(2, &[0]));
        let b = m.intern_state(mk_state(2, &[0]));
        assert_eq!(a, b);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn duplicate_edges_ignored() {
        let mut m = FtKripke::new();
        let a = m.intern_state(mk_state(2, &[0]));
        let b = m.intern_state(mk_state(2, &[1]));
        m.add_edge(a, TransKind::Proc(0), b);
        m.add_edge(a, TransKind::Proc(0), b);
        assert_eq!(m.edge_count(), 1);
        assert_eq!(m.pred(b).len(), 1);
    }

    #[test]
    fn classification_matches_paper_definitions() {
        let m = sample();
        let roles = m.classify();
        assert_eq!(roles[0], StateRole::Normal);
        assert_eq!(roles[1], StateRole::Normal);
        assert_eq!(roles[2], StateRole::Normal);
        assert_eq!(roles[3], StateRole::Perturbed);
        assert_eq!(roles[4], StateRole::Recovery);
        assert_eq!(roles[5], StateRole::Unreachable);
        assert_eq!(m.perturbed_states(), vec![StateId(3)]);
    }

    #[test]
    fn fault_target_on_normal_path_stays_normal() {
        // A state reachable both fault-free and via a fault is *normal*.
        let mut m = FtKripke::new();
        let s0 = m.intern_state(mk_state(2, &[0]));
        let s1 = m.intern_state(mk_state(2, &[1]));
        m.add_init(s0);
        m.add_edge(s0, TransKind::Proc(0), s1);
        m.add_edge(s0, TransKind::Fault(0), s1);
        m.add_edge(s1, TransKind::Proc(0), s1);
        assert_eq!(m.classify()[1], StateRole::Normal);
    }

    #[test]
    fn edge_counts() {
        let m = sample();
        assert_eq!(m.edge_count(), 7);
        assert_eq!(m.fault_edge_count(), 1);
    }

    #[test]
    fn dot_export_mentions_fault_style() {
        let mut props = PropTable::new();
        for n in ["a", "b", "c", "d"] {
            props.add(n, Owner::Process(0)).unwrap();
        }
        let m = sample();
        let dot = m.to_dot(&props);
        assert!(dot.contains("style=dotted"));
        assert!(dot.contains("digraph"));
    }
}
