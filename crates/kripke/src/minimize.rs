//! Bisimulation minimization of fault-tolerant Kripke structures.
//!
//! The unraveling step of the synthesis method (Section 5.2, step 4)
//! deliberately duplicates states — one copy per fragment occurrence —
//! which makes the extracted programs carry more disambiguating shared
//! variables than necessary. Quotienting by strong bisimulation over the
//! edge labels (process indices *and* fault actions) collapses the
//! copies while preserving the satisfaction of every CTL formula under
//! both the plain and the fault-free-relativized semantics, since both
//! are bisimulation-invariant for label-respecting bisimulations.
//!
//! States are initially partitioned by valuation (and shared values, if
//! any), then refined by successor signatures until stable — the naive
//! partition-refinement algorithm, adequate for the model sizes the
//! synthesis method produces.

use crate::state::State;
use crate::structure::{FtKripke, StateId, TransKind};
use std::collections::HashMap;

/// The result of minimization: the quotient structure and, for every
/// original state, its block (= quotient state index).
#[derive(Clone, Debug)]
pub struct Quotient {
    /// The minimized structure.
    pub model: FtKripke,
    /// `block_of[s]` is the quotient state id of original state `s`.
    pub block_of: Vec<StateId>,
    /// For every quotient state, one representative original state.
    pub representative: Vec<StateId>,
}

/// Successor signature: sorted, deduplicated `(kind-tag, index, block)`.
type Signature = Vec<(u8, usize, usize)>;

/// Computes the quotient of `m` by strong (labeled) bisimulation.
pub fn bisimulation_quotient(m: &FtKripke) -> Quotient {
    let n = m.len();
    // Initial partition: by state content (valuation + shared values).
    let mut block: Vec<usize> = vec![0; n];
    {
        let mut index: HashMap<&State, usize> = HashMap::new();
        for s in m.state_ids() {
            let next = index.len();
            let b = *index.entry(m.state(s)).or_insert(next);
            block[s.index()] = b;
        }
    }

    // Refine until stable.
    loop {
        let mut index: HashMap<(usize, Signature), usize> = HashMap::new();
        let mut next_block = vec![0usize; n];
        for s in m.state_ids() {
            let mut sig: Signature = m
                .succ(s)
                .iter()
                .map(|e| match e.kind {
                    TransKind::Proc(i) => (0u8, i, block[e.to.index()]),
                    TransKind::Fault(a) => (1u8, a, block[e.to.index()]),
                })
                .collect();
            sig.sort_unstable();
            sig.dedup();
            let key = (block[s.index()], sig);
            let next = index.len();
            let b = *index.entry(key).or_insert(next);
            next_block[s.index()] = b;
        }
        let stable = index.len() == block.iter().copied().collect::<std::collections::HashSet<_>>().len();
        block = next_block;
        if stable {
            break;
        }
    }

    // Build the quotient structure.
    let block_count = block.iter().copied().max().map_or(0, |b| b + 1);
    let mut representative: Vec<Option<StateId>> = vec![None; block_count];
    for s in m.state_ids() {
        let b = block[s.index()];
        if representative[b].is_none() {
            representative[b] = Some(s);
        }
    }
    let representative: Vec<StateId> = representative
        .into_iter()
        .map(|r| r.expect("every block has a member"))
        .collect();

    let mut q = FtKripke::new();
    let qids: Vec<StateId> = representative
        .iter()
        .map(|&r| q.push_state(m.state(r).clone()))
        .collect();
    for s in m.state_ids() {
        let from = qids[block[s.index()]];
        for e in m.succ(s) {
            q.add_edge(from, e.kind, qids[block[e.to.index()]]);
        }
    }
    for &i in m.init_states() {
        q.add_init(qids[block[i.index()]]);
    }

    Quotient {
        model: q,
        block_of: block.iter().map(|&b| qids[b]).collect(),
        representative,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::PropSet;
    use ftsyn_ctl::PropId;

    fn st(n: usize, props: &[u32]) -> State {
        State::new(PropSet::from_iter_with_capacity(
            n,
            props.iter().map(|&p| PropId(p)),
        ))
    }

    #[test]
    fn duplicate_chain_collapses() {
        // Two bisimilar copies of a two-state toggle collapse to one.
        let mut m = FtKripke::new();
        let a1 = m.push_state(st(2, &[0]));
        let b1 = m.push_state(st(2, &[1]));
        let a2 = m.push_state(st(2, &[0]));
        let b2 = m.push_state(st(2, &[1]));
        m.add_init(a1);
        m.add_edge(a1, TransKind::Proc(0), b1);
        m.add_edge(b1, TransKind::Proc(0), a2);
        m.add_edge(a2, TransKind::Proc(0), b2);
        m.add_edge(b2, TransKind::Proc(0), a1);
        let q = bisimulation_quotient(&m);
        assert_eq!(q.model.len(), 2);
        assert_eq!(q.model.edge_count(), 2);
    }

    #[test]
    fn different_behavior_not_merged() {
        // Same valuation, different futures: kept apart.
        let mut m = FtKripke::new();
        let a1 = m.push_state(st(2, &[0]));
        let a2 = m.push_state(st(2, &[0]));
        let b = m.push_state(st(2, &[1]));
        m.add_init(a1);
        m.add_edge(a1, TransKind::Proc(0), b);
        m.add_edge(a2, TransKind::Proc(0), a2);
        m.add_edge(b, TransKind::Proc(0), a2);
        let q = bisimulation_quotient(&m);
        assert_eq!(q.model.len(), 3);
    }

    #[test]
    fn edge_labels_distinguish() {
        // Same targets, different process indices: not merged.
        let mut m = FtKripke::new();
        let a1 = m.push_state(st(2, &[0]));
        let a2 = m.push_state(st(2, &[0]));
        let b = m.push_state(st(2, &[1]));
        m.add_init(a1);
        m.add_edge(a1, TransKind::Proc(0), b);
        m.add_edge(a2, TransKind::Proc(1), b);
        m.add_edge(b, TransKind::Proc(0), b);
        let q = bisimulation_quotient(&m);
        assert_eq!(q.model.len(), 3, "P1-move ≠ P2-move");
    }

    #[test]
    fn fault_edges_distinguish() {
        let mut m = FtKripke::new();
        let a1 = m.push_state(st(2, &[0]));
        let a2 = m.push_state(st(2, &[0]));
        let b = m.push_state(st(2, &[1]));
        m.add_init(a1);
        m.add_edge(a1, TransKind::Proc(0), b);
        m.add_edge(a2, TransKind::Proc(0), b);
        m.add_edge(a2, TransKind::Fault(0), b);
        m.add_edge(b, TransKind::Proc(0), b);
        let q = bisimulation_quotient(&m);
        assert_eq!(q.model.len(), 3, "extra fault edge distinguishes");
    }

    #[test]
    fn block_of_is_consistent() {
        let mut m = FtKripke::new();
        let a1 = m.push_state(st(2, &[0]));
        let b1 = m.push_state(st(2, &[1]));
        m.add_init(a1);
        m.add_edge(a1, TransKind::Proc(0), b1);
        m.add_edge(b1, TransKind::Proc(0), a1);
        let q = bisimulation_quotient(&m);
        assert_eq!(q.block_of.len(), 2);
        assert_eq!(q.representative.len(), q.model.len());
        for s in m.state_ids() {
            let qs = q.block_of[s.index()];
            assert_eq!(q.model.state(qs).props, m.state(s).props);
        }
    }
}
