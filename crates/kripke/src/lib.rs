//! Fault-tolerant Kripke structures and a CTL model checker.
//!
//! This crate provides the semantic substrate of the synthesis method of
//! *Attie, Arora, Emerson — Synthesis of Fault-Tolerant Concurrent
//! Programs* (TOPLAS 2004):
//!
//! * global states as proposition valuations plus shared-variable values
//!   ([`State`], [`PropSet`]);
//! * fault-tolerant Kripke structures `M_F = (S0, S, A, A_F, L)` with
//!   process-indexed program transitions and fault transitions
//!   ([`FtKripke`]), including the normal / perturbed / recovery state
//!   classification of Section 2.4 ([`StateRole`]);
//! * a memoizing CTL model checker for both the plain satisfaction
//!   relation and the fault-free-relativized `⊨ₙ` ([`Checker`],
//!   [`Semantics`]).
//!
//! The synthesis engine uses the checker to *verify* every model it
//! produces (the paper's Theorem 7.1.9 soundness statement is re-checked
//! at runtime on each synthesized structure).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod checker;
mod evidence;
mod minimize;
mod state;
mod structure;

pub use checker::{Checker, LabelCache, Semantics};
pub use evidence::EvidencePath;
pub use minimize::{bisimulation_quotient, Quotient};
pub use state::{PropSet, State};
pub use structure::{Edge, FtKripke, StateId, StateRole, TransKind};
