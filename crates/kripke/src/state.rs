//! Global states: proposition valuations plus shared-variable values.

use ftsyn_ctl::{PropId, PropTable};
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};
use std::fmt;

/// A set of atomic propositions, as a bitset over [`PropId`]s.
#[derive(PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct PropSet {
    bits: Vec<u64>,
}

// Manual impl so `clone_from` reuses the destination's buffer — the
// semantic minimizer rebuilds candidate models tens of thousands of
// times into the same scratch structure.
impl Clone for PropSet {
    fn clone(&self) -> PropSet {
        PropSet {
            bits: self.bits.clone(),
        }
    }

    fn clone_from(&mut self, source: &PropSet) {
        self.bits.clone_from(&source.bits);
    }
}

impl PropSet {
    /// Creates an empty set able to hold `n` propositions.
    pub fn with_capacity(n: usize) -> PropSet {
        PropSet {
            bits: vec![0; n.div_ceil(64).max(1)],
        }
    }

    /// Creates a set from an iterator of members, sized for `n` propositions.
    pub fn from_iter_with_capacity(n: usize, iter: impl IntoIterator<Item = PropId>) -> PropSet {
        let mut s = PropSet::with_capacity(n);
        for p in iter {
            s.insert(p);
        }
        s
    }

    /// Inserts a proposition. Returns `true` if newly added.
    ///
    /// # Panics
    ///
    /// Panics if `p` exceeds the capacity.
    pub fn insert(&mut self, p: PropId) -> bool {
        let (w, b) = (p.index() / 64, p.index() % 64);
        let mask = 1u64 << b;
        let fresh = self.bits[w] & mask == 0;
        self.bits[w] |= mask;
        fresh
    }

    /// Removes a proposition. Returns `true` if it was present.
    pub fn remove(&mut self, p: PropId) -> bool {
        let (w, b) = (p.index() / 64, p.index() % 64);
        let mask = 1u64 << b;
        let present = self.bits[w] & mask != 0;
        self.bits[w] &= !mask;
        present
    }

    /// Membership test. Out-of-capacity ids are reported absent.
    pub fn contains(&self, p: PropId) -> bool {
        let (w, b) = (p.index() / 64, p.index() % 64);
        self.bits.get(w).is_some_and(|word| word & (1u64 << b) != 0)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Iterates over members in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = PropId> + '_ {
        self.bits.iter().enumerate().flat_map(|(w, &word)| {
            (0..64)
                .filter(move |b| word & (1u64 << b) != 0)
                .map(move |b| PropId((w * 64 + b) as u32))
        })
    }

    /// Restricts to the propositions in `keep`.
    #[must_use]
    pub fn intersect(&self, keep: &PropSet) -> PropSet {
        PropSet {
            bits: self
                .bits
                .iter()
                .zip(keep.bits.iter().chain(std::iter::repeat(&0)))
                .map(|(a, b)| a & b)
                .collect(),
        }
    }

    /// Renders the set as `{name, name, …}` using `props` for names.
    pub fn display(&self, props: &PropTable) -> String {
        let names: Vec<&str> = self.iter().map(|p| props.name(p)).collect();
        format!("{{{}}}", names.join(", "))
    }
}

impl fmt::Debug for PropSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// A global state: a valuation of the atomic propositions plus the values
/// of any shared synchronization variables (empty until the extraction
/// step of the synthesis method introduces them).
#[derive(PartialEq, Eq, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct State {
    /// Propositions true in this state (closed world: absent = false).
    pub props: PropSet,
    /// Values of the shared synchronization variables, by variable index.
    pub shared: Vec<u32>,
}

// Manual impl for a buffer-reusing `clone_from` (see [`PropSet`]).
impl Clone for State {
    fn clone(&self) -> State {
        State {
            props: self.props.clone(),
            shared: self.shared.clone(),
        }
    }

    fn clone_from(&mut self, source: &State) {
        self.props.clone_from(&source.props);
        self.shared.clone_from(&source.shared);
    }
}

impl State {
    /// A state with the given valuation and no shared variables.
    pub fn new(props: PropSet) -> State {
        State {
            props,
            shared: Vec::new(),
        }
    }

    /// Human-readable rendering such as `[N1 N2] x=1`.
    pub fn display(&self, props: &PropTable) -> String {
        let names: Vec<&str> = self.props.iter().map(|p| props.name(p)).collect();
        let mut s = format!("[{}]", names.join(" "));
        for (i, v) in self.shared.iter().enumerate() {
            s.push_str(&format!(" x{i}={v}"));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsyn_ctl::Owner;

    #[test]
    fn insert_remove_contains() {
        let mut s = PropSet::with_capacity(70);
        assert!(s.insert(PropId(0)));
        assert!(s.insert(PropId(69)));
        assert!(!s.insert(PropId(69)));
        assert!(s.contains(PropId(69)));
        assert!(!s.contains(PropId(68)));
        assert!(s.remove(PropId(69)));
        assert!(!s.remove(PropId(69)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn iteration_in_order() {
        let s = PropSet::from_iter_with_capacity(100, [PropId(65), PropId(2), PropId(64)]);
        let v: Vec<u32> = s.iter().map(|p| p.0).collect();
        assert_eq!(v, vec![2, 64, 65]);
    }

    #[test]
    fn intersect_restricts() {
        let a = PropSet::from_iter_with_capacity(10, [PropId(1), PropId(2), PropId(3)]);
        let keep = PropSet::from_iter_with_capacity(10, [PropId(2), PropId(9)]);
        let r = a.intersect(&keep);
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![PropId(2)]);
    }

    #[test]
    fn display_uses_names() {
        let mut t = PropTable::new();
        let n1 = t.add("N1", Owner::Process(0)).unwrap();
        let n2 = t.add("N2", Owner::Process(1)).unwrap();
        let mut st = State::new(PropSet::from_iter_with_capacity(2, [n1, n2]));
        assert_eq!(st.display(&t), "[N1 N2]");
        st.shared.push(1);
        assert_eq!(st.display(&t), "[N1 N2] x0=1");
    }

    #[test]
    fn out_of_capacity_contains_is_false() {
        let s = PropSet::with_capacity(1);
        assert!(!s.contains(PropId(1000)));
    }
}
