//! Property-based validation of the CTL model checker on random
//! structures: fixpoint unfoldings, dualities, and the relationship
//! between the plain and fault-free-relativized semantics.

use ftsyn_ctl::{FormulaArena, Owner, PropId, PropTable};
use ftsyn_kripke::{Checker, FtKripke, PropSet, Semantics, State, StateId, TransKind};
use proptest::prelude::*;

const NUM_PROPS: usize = 3;
const NUM_PROCS: usize = 2;

#[derive(Clone, Debug)]
struct RandomModel {
    /// For each state: bitmask of true propositions.
    states: Vec<u8>,
    /// Edges `(from, proc_or_fault, to)`; kind >= NUM_PROCS means fault.
    edges: Vec<(usize, usize, usize)>,
}

fn model_strategy() -> impl Strategy<Value = RandomModel> {
    (2usize..7).prop_flat_map(|n| {
        let states = proptest::collection::vec(0u8..(1 << NUM_PROPS), n..=n);
        let edges = proptest::collection::vec(
            (0..n, 0..NUM_PROCS + 1, 0..n),
            0..(n * 3),
        );
        (states, edges).prop_map(|(states, edges)| RandomModel { states, edges })
    })
}

fn build_model(rm: &RandomModel, props: &PropTable) -> (FtKripke, Vec<StateId>) {
    let mut m = FtKripke::new();
    let ids: Vec<StateId> = rm
        .states
        .iter()
        .enumerate()
        .map(|(i, &mask)| {
            let mut ps = PropSet::with_capacity(NUM_PROPS + 1);
            for b in 0..NUM_PROPS {
                if mask & (1 << b) != 0 {
                    ps.insert(props.id(&format!("v{b}")).unwrap());
                }
            }
            // Disambiguate states with identical valuations using a
            // per-state dummy marker so interning keeps them distinct.
            let mut st = State::new(ps);
            st.shared.push(i as u32);
            m.push_state(st)
        })
        .collect();
    m.add_init(ids[0]);
    for &(from, kind, to) in &rm.edges {
        let k = if kind < NUM_PROCS {
            TransKind::Proc(kind)
        } else {
            TransKind::Fault(0)
        };
        m.add_edge(ids[from], k, ids[to]);
    }
    (m, ids)
}

fn setup() -> (FormulaArena, PropTable) {
    let mut props = PropTable::new();
    for b in 0..NUM_PROPS {
        props.add(format!("v{b}"), Owner::Process(b % NUM_PROCS)).unwrap();
    }
    (FormulaArena::new(NUM_PROCS), props)
}

fn pid(props: &PropTable, b: usize) -> PropId {
    props.id(&format!("v{b}")).unwrap()
}

proptest! {
    /// `E[gUh] ≡ h ∨ (g ∧ EX E[gUh])` state-wise (the β-expansion used
    /// by the decision procedure), where `EX` is the disjunction over
    /// process-indexed nexttimes — valid on fault-free path semantics
    /// only when fault edges are also excluded from `EXᵢ`, which they
    /// always are; so we check it under `FaultFree`.
    #[test]
    fn eu_unfolding(rm in model_strategy(), gb in 0..NUM_PROPS, hb in 0..NUM_PROPS) {
        let (mut arena, props) = setup();
        let (m, _) = build_model(&rm, &props);
        let g = arena.prop(pid(&props, gb));
        let h = arena.prop(pid(&props, hb));
        let eu = arena.eu(g, h);
        let ex_eu = arena.ex_all(eu);
        let g_and = arena.and(g, ex_eu);
        let rhs = arena.or(h, g_and);
        let mut ck = Checker::new(&m, Semantics::FaultFree);
        let l = ck.eval(&arena, eu).clone();
        let r = ck.eval(&arena, rhs).clone();
        prop_assert_eq!(l, r);
    }

    /// `A[gUh] ≡ h ∨ (g ∧ AX A[gUh] ∧ EX true)`: the extra `EX true`
    /// conjunct accounts for dead ends, where `AX` is vacuous but the
    /// single-state fullpath does not fulfill the eventuality.
    #[test]
    fn au_unfolding(rm in model_strategy(), gb in 0..NUM_PROPS, hb in 0..NUM_PROPS) {
        let (mut arena, props) = setup();
        let (m, _) = build_model(&rm, &props);
        let g = arena.prop(pid(&props, gb));
        let h = arena.prop(pid(&props, hb));
        let au = arena.au(g, h);
        let ax_au = arena.ax_all(au);
        let t = arena.tru();
        let ex_t = arena.ex_all(t);
        let tail = arena.and(ax_au, ex_t);
        let g_and = arena.and(g, tail);
        let rhs = arena.or(h, g_and);
        let mut ck = Checker::new(&m, Semantics::FaultFree);
        let l = ck.eval(&arena, au).clone();
        let r = ck.eval(&arena, rhs).clone();
        prop_assert_eq!(l, r);
    }

    /// `A[gWh] ≡ ¬E[¬gU¬h]` and `E[gWh] ≡ ¬A[¬gU¬h]` (the defining
    /// dualities), checked under both semantics.
    #[test]
    fn weak_until_dualities(rm in model_strategy(), gb in 0..NUM_PROPS, hb in 0..NUM_PROPS) {
        let (mut arena, props) = setup();
        let (m, _) = build_model(&rm, &props);
        let g = arena.prop(pid(&props, gb));
        let h = arena.prop(pid(&props, hb));
        let ng = arena.not(g);
        let nh = arena.not(h);
        let aw = arena.aw(g, h);
        let eu = arena.eu(ng, nh);
        let ew = arena.ew(g, h);
        let au = arena.au(ng, nh);
        for sem in [Semantics::FaultFree, Semantics::IncludeFaults] {
            let mut ck = Checker::new(&m, sem);
            let vaw = ck.eval(&arena, aw).clone();
            let veu = ck.eval(&arena, eu).clone();
            prop_assert!(vaw.iter().zip(veu.iter()).all(|(a, e)| *a != *e));
            let vew = ck.eval(&arena, ew).clone();
            let vau = ck.eval(&arena, au).clone();
            prop_assert!(vew.iter().zip(vau.iter()).all(|(a, e)| *a != *e));
        }
    }

    /// `A[gUh] ⇒ E[gUh]` wherever some fullpath exists, and in general
    /// AU implies EU on every state (on dead ends both reduce to `h`).
    #[test]
    fn au_implies_eu(rm in model_strategy(), gb in 0..NUM_PROPS, hb in 0..NUM_PROPS) {
        let (mut arena, props) = setup();
        let (m, _) = build_model(&rm, &props);
        let g = arena.prop(pid(&props, gb));
        let h = arena.prop(pid(&props, hb));
        let au = arena.au(g, h);
        let eu = arena.eu(g, h);
        let mut ck = Checker::new(&m, Semantics::FaultFree);
        let vau = ck.eval(&arena, au).clone();
        let veu = ck.eval(&arena, eu).clone();
        prop_assert!(vau.iter().zip(veu.iter()).all(|(a, e)| !*a || *e));
    }

    /// On structures without fault edges, the two semantics coincide.
    #[test]
    fn semantics_agree_without_faults(rm in model_strategy(), gb in 0..NUM_PROPS, hb in 0..NUM_PROPS) {
        let rm = RandomModel {
            states: rm.states.clone(),
            edges: rm.edges.iter().copied()
                .filter(|&(_, k, _)| k < NUM_PROCS).collect(),
        };
        let (mut arena, props) = setup();
        let (m, _) = build_model(&rm, &props);
        let g = arena.prop(pid(&props, gb));
        let h = arena.prop(pid(&props, hb));
        for f in [arena.au(g, h), arena.eu(g, h), arena.aw(g, h), arena.ew(g, h)] {
            let mut ck1 = Checker::new(&m, Semantics::FaultFree);
            let mut ck2 = Checker::new(&m, Semantics::IncludeFaults);
            let v1 = ck1.eval(&arena, f).clone();
            let v2 = ck2.eval(&arena, f).clone();
            prop_assert_eq!(v1, v2);
        }
    }

    /// `AG h` distributes over reachable program successors:
    /// if `AG h` holds at `s`, it holds at every program successor of `s`.
    #[test]
    fn ag_propagates(rm in model_strategy(), hb in 0..NUM_PROPS) {
        let (mut arena, props) = setup();
        let (m, _) = build_model(&rm, &props);
        let h = arena.prop(pid(&props, hb));
        let ag = arena.ag(h);
        let mut ck = Checker::new(&m, Semantics::FaultFree);
        let v = ck.eval(&arena, ag).clone();
        for s in m.state_ids() {
            if v[s.index()] {
                for e in m.succ(s) {
                    if !e.kind.is_fault() {
                        prop_assert!(v[e.to.index()]);
                    }
                }
            }
        }
    }
}
