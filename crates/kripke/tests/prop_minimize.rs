//! Property-based validation of bisimulation minimization and evidence
//! extraction on random structures.

use ftsyn_ctl::{FormulaArena, FormulaId, Owner, PropTable};
use ftsyn_kripke::{
    bisimulation_quotient, Checker, FtKripke, PropSet, Semantics, State, StateId, TransKind,
};
use proptest::prelude::*;

const NUM_PROPS: usize = 3;
const NUM_PROCS: usize = 2;

#[derive(Clone, Debug)]
struct RandomModel {
    states: Vec<u8>,
    edges: Vec<(usize, usize, usize)>,
}

fn model_strategy() -> impl Strategy<Value = RandomModel> {
    (2usize..7).prop_flat_map(|n| {
        let states = proptest::collection::vec(0u8..(1 << NUM_PROPS), n..=n);
        let edges = proptest::collection::vec((0..n, 0..NUM_PROCS + 1, 0..n), 0..(n * 3));
        (states, edges).prop_map(|(states, edges)| RandomModel { states, edges })
    })
}

fn build_model(rm: &RandomModel, props: &PropTable) -> (FtKripke, Vec<StateId>) {
    let mut m = FtKripke::new();
    let ids: Vec<StateId> = rm
        .states
        .iter()
        .map(|&mask| {
            let mut ps = PropSet::with_capacity(NUM_PROPS);
            for b in 0..NUM_PROPS {
                if mask & (1 << b) != 0 {
                    ps.insert(props.id(&format!("v{b}")).unwrap());
                }
            }
            m.push_state(State::new(ps))
        })
        .collect();
    m.add_init(ids[0]);
    for &(from, kind, to) in &rm.edges {
        let k = if kind < NUM_PROCS {
            TransKind::Proc(kind)
        } else {
            TransKind::Fault(0)
        };
        m.add_edge(ids[from], k, ids[to]);
    }
    (m, ids)
}

fn setup() -> (FormulaArena, PropTable) {
    let mut props = PropTable::new();
    for b in 0..NUM_PROPS {
        props
            .add(format!("v{b}"), Owner::Process(b % NUM_PROCS))
            .unwrap();
    }
    (FormulaArena::new(NUM_PROCS), props)
}

/// A small formula zoo for invariance checks.
fn formula_zoo(arena: &mut FormulaArena, props: &PropTable) -> Vec<FormulaId> {
    let v0 = arena.prop(props.id("v0").unwrap());
    let v1 = arena.prop(props.id("v1").unwrap());
    let v2 = arena.prop(props.id("v2").unwrap());
    let mut out = vec![arena.af(v0), arena.ef(v1)];
    out.push(arena.ag(v2));
    out.push(arena.eg(v0));
    out.push(arena.au(v0, v1));
    out.push(arena.eu(v1, v2));
    out.push(arena.aw(v0, v2));
    out.push(arena.ew(v2, v0));
    let e = arena.ex(0, v1);
    out.push(e);
    let a = arena.ax(1, v0);
    out.push(a);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The bisimulation quotient preserves the truth of every formula in
    /// the zoo, at every state, under both semantics.
    #[test]
    fn quotient_preserves_ctl(rm in model_strategy()) {
        let (mut arena, props) = setup();
        let (m, ids) = build_model(&rm, &props);
        let q = bisimulation_quotient(&m);
        let zoo = formula_zoo(&mut arena, &props);
        for sem in [Semantics::FaultFree, Semantics::IncludeFaults] {
            let mut ck_m = Checker::new(&m, sem);
            let mut ck_q = Checker::new(&q.model, sem);
            for &f in &zoo {
                let vm = ck_m.eval(&arena, f).clone();
                let vq = ck_q.eval(&arena, f).clone();
                for &s in &ids {
                    prop_assert_eq!(
                        vm[s.index()],
                        vq[q.block_of[s.index()].index()],
                        "formula {:?} differs between state {:?} and its block", f, s
                    );
                }
            }
        }
    }

    /// The quotient never grows and is idempotent.
    #[test]
    fn quotient_shrinks_and_is_idempotent(rm in model_strategy()) {
        let (_, props) = setup();
        let (m, _) = build_model(&rm, &props);
        let q1 = bisimulation_quotient(&m);
        prop_assert!(q1.model.len() <= m.len());
        let q2 = bisimulation_quotient(&q1.model);
        prop_assert_eq!(q2.model.len(), q1.model.len());
    }

    /// EF witnesses are genuine: each step is a path successor and the
    /// last state satisfies the target.
    #[test]
    fn ef_witnesses_are_valid_paths(rm in model_strategy(), target in 0..NUM_PROPS) {
        let (mut arena, props) = setup();
        let (m, ids) = build_model(&rm, &props);
        let p = props.id(&format!("v{target}")).unwrap();
        let fp = arena.prop(p);
        let ef = arena.ef(fp);
        let mut ck = Checker::new(&m, Semantics::FaultFree);
        let holds = ck.holds(&arena, ef, ids[0]);
        let witness = ck.witness_ef(&arena, fp, ids[0]);
        prop_assert_eq!(holds, witness.is_some());
        if let Some(w) = witness {
            prop_assert_eq!(w.states[0], ids[0]);
            prop_assert!(m.state(*w.states.last().unwrap()).props.contains(p));
            for pair in w.states.windows(2) {
                prop_assert!(
                    m.succ(pair[0]).iter().any(|e| !e.kind.is_fault() && e.to == pair[1]),
                    "witness steps must be program transitions"
                );
            }
        }
    }

    /// AG counterexamples are genuine: a real path from the start to a
    /// violating state, and they exist exactly when AG fails.
    #[test]
    fn ag_counterexamples_are_valid(rm in model_strategy(), target in 0..NUM_PROPS) {
        let (mut arena, props) = setup();
        let (m, ids) = build_model(&rm, &props);
        let p = props.id(&format!("v{target}")).unwrap();
        let fp = arena.prop(p);
        let ag = arena.ag(fp);
        let mut ck = Checker::new(&m, Semantics::IncludeFaults);
        let holds = ck.holds(&arena, ag, ids[0]);
        let cex = ck.counterexample_ag(&arena, fp, ids[0]);
        prop_assert_eq!(holds, cex.is_none());
        if let Some(c) = cex {
            prop_assert_eq!(c.states[0], ids[0]);
            prop_assert!(!m.state(*c.states.last().unwrap()).props.contains(p));
            for pair in c.states.windows(2) {
                prop_assert!(m.succ(pair[0]).iter().any(|e| e.to == pair[1]));
            }
        }
    }

    /// AU counterexamples exist exactly when AU fails, and lassos truly
    /// loop.
    #[test]
    fn au_counterexamples_match_the_checker(
        rm in model_strategy(),
        gb in 0..NUM_PROPS,
        hb in 0..NUM_PROPS,
    ) {
        let (mut arena, props) = setup();
        let (m, ids) = build_model(&rm, &props);
        let g = arena.prop(props.id(&format!("v{gb}")).unwrap());
        let h = arena.prop(props.id(&format!("v{hb}")).unwrap());
        let au = arena.au(g, h);
        let mut ck = Checker::new(&m, Semantics::FaultFree);
        let holds = ck.holds(&arena, au, ids[0]);
        let cex = ck.counterexample_au(&arena, g, h, ids[0]);
        prop_assert_eq!(holds, cex.is_none());
        if let Some(c) = cex {
            prop_assert_eq!(c.states[0], ids[0]);
            if let Some(lp) = c.loop_start {
                // The lasso closes: the last state has an edge back to
                // the loop head.
                let last = *c.states.last().unwrap();
                let head = c.states[lp];
                prop_assert!(
                    m.succ(last).iter().any(|e| !e.kind.is_fault() && e.to == head)
                );
                // The loop avoids h.
                let vh = ck.eval(&arena, h).clone();
                for &s in &c.states[lp..] {
                    prop_assert!(!vh[s.index()]);
                }
            }
        }
    }
}
