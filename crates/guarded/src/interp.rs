//! An interleaving interpreter: regenerates the global-state transition
//! structure of a program, optionally together with the fault
//! transitions of a fault specification.
//!
//! This inverts the extraction step of the synthesis method: integration
//! tests run the interpreter on an extracted program and compare the
//! resulting structure with the synthesized model (the argument of
//! Corollary 7.1 that "execution of the extracted program P does indeed
//! generate M_F").

use crate::action::{FaultAction, SharedCorruption};
use crate::program::Program;
use ftsyn_ctl::{Owner, PropTable};
use ftsyn_kripke::{FtKripke, PropSet, State, StateId, TransKind};
use std::collections::HashMap;
use std::fmt;

/// A runtime configuration: local-state indices plus shared values.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Config {
    /// Current local-state index of each process.
    pub locals: Vec<usize>,
    /// Current shared-variable values.
    pub shared: Vec<u32>,
}

/// Errors during exploration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExploreError {
    /// A fault produced a valuation that does not correspond to any local
    /// state of some process (fault-closure violation).
    UnmappableFaultOutcome {
        /// The offending fault action name.
        action: String,
        /// Index of the process whose local state could not be resolved.
        process: usize,
    },
    /// Two distinct configurations produced the same labeled state: the
    /// program lacks shared variables to disambiguate them.
    AmbiguousState,
    /// The state-space exceeded the exploration bound.
    StateSpaceTooLarge(usize),
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::UnmappableFaultOutcome { action, process } => write!(
                f,
                "fault `{action}` perturbed process {process} into a valuation matching no local state"
            ),
            ExploreError::AmbiguousState => {
                write!(f, "two configurations share one labeled state")
            }
            ExploreError::StateSpaceTooLarge(n) => {
                write!(f, "state space exceeded the bound of {n} states")
            }
        }
    }
}

impl std::error::Error for ExploreError {}

/// Upper bound on explored states (defensive; the synthesized systems in
/// this repository are far smaller).
const MAX_STATES: usize = 1_000_000;

/// Result of exploring a program: the generated structure plus the
/// configuration of every state.
#[derive(Clone, Debug)]
pub struct Exploration {
    /// The generated fault-tolerant Kripke structure.
    pub kripke: FtKripke,
    /// Configuration corresponding to each state id.
    pub configs: Vec<Config>,
}

/// Explores the reachable global-state space of `program` under
/// nondeterministic interleaving, adding fault transitions for every
/// enabled action in `faults`.
///
/// `props` supplies the proposition partition: after a fault perturbs the
/// valuation, each process's new local state is resolved by matching the
/// perturbed valuation restricted to that process's propositions.
///
/// # Errors
///
/// See [`ExploreError`].
pub fn explore(
    program: &Program,
    faults: &[FaultAction],
    props: &PropTable,
) -> Result<Exploration, ExploreError> {
    let mut kripke = FtKripke::new();
    let mut configs: Vec<Config> = Vec::new();
    let mut by_config: HashMap<Config, StateId> = HashMap::new();

    // Per-process proposition masks for fault-outcome mapping.
    let proc_masks: Vec<PropSet> = (0..program.processes.len())
        .map(|i| {
            PropSet::from_iter_with_capacity(
                props.len(),
                props.iter().filter(|&p| props.owner(p) == Owner::Process(i)),
            )
        })
        .collect();

    let init = Config {
        locals: program.init_locals.clone(),
        shared: program.init_shared.clone(),
    };
    let intern = |cfg: Config,
                      kripke: &mut FtKripke,
                      configs: &mut Vec<Config>,
                      by_config: &mut HashMap<Config, StateId>|
     -> Result<StateId, ExploreError> {
        if let Some(&id) = by_config.get(&cfg) {
            return Ok(id);
        }
        let st = State {
            props: program.valuation(&cfg.locals),
            shared: cfg.shared.clone(),
        };
        if kripke.find_state(&st).is_some() {
            return Err(ExploreError::AmbiguousState);
        }
        let id = kripke.intern_state(st);
        by_config.insert(cfg.clone(), id);
        configs.push(cfg);
        if configs.len() > MAX_STATES {
            return Err(ExploreError::StateSpaceTooLarge(MAX_STATES));
        }
        Ok(id)
    };

    let init_id = intern(init, &mut kripke, &mut configs, &mut by_config)?;
    kripke.add_init(init_id);
    let mut work = vec![init_id];

    while let Some(sid) = work.pop() {
        let cfg = configs[sid.index()].clone();
        let valuation = program.valuation(&cfg.locals);

        // Program transitions: any enabled arc of any process.
        for (pi, proc) in program.processes.iter().enumerate() {
            for arc in &proc.arcs {
                if arc.from != cfg.locals[pi] || !arc.guard.eval(&valuation, &cfg.shared) {
                    continue;
                }
                let mut next = cfg.clone();
                next.locals[pi] = arc.to;
                for &(v, k) in &arc.assigns {
                    if v < next.shared.len() {
                        next.shared[v] = k;
                    }
                }
                let before = configs.len();
                let tid = intern(next, &mut kripke, &mut configs, &mut by_config)?;
                if configs.len() > before {
                    work.push(tid);
                }
                kripke.add_edge(sid, TransKind::Proc(pi), tid);
            }
        }

        // Fault transitions.
        for (fi, action) in faults.iter().enumerate() {
            if !action.enabled(&valuation) {
                continue;
            }
            for outcome in action.outcomes(&valuation, props.len()) {
                // Resolve each process's new local state.
                let mut locals = Vec::with_capacity(program.processes.len());
                for (pi, proc) in program.processes.iter().enumerate() {
                    let local_val = outcome.intersect(&proc_masks[pi]);
                    match proc.state_by_props(&local_val) {
                        Some(li) => locals.push(li),
                        None => {
                            return Err(ExploreError::UnmappableFaultOutcome {
                                action: action.name().to_owned(),
                                process: pi,
                            })
                        }
                    }
                }
                // Shared-variable corruption branches (Section 5.3).
                let shared_branches = corrupt_branches(program, &cfg.shared, action);
                for shared in shared_branches {
                    let next = Config {
                        locals: locals.clone(),
                        shared,
                    };
                    let before = configs.len();
                    let tid = intern(next, &mut kripke, &mut configs, &mut by_config)?;
                    if configs.len() > before {
                        work.push(tid);
                    }
                    kripke.add_edge(sid, TransKind::Fault(fi), tid);
                }
            }
        }
    }

    Ok(Exploration { kripke, configs })
}

/// All shared-value vectors resulting from an action's corruption list,
/// with out-of-domain writes reinterpreted as the default value `1`.
///
/// Public because extraction's displacement analysis (core
/// `extract::refine_guards`) must predict exactly the shared vectors
/// this interpreter can produce under faults.
pub fn corrupt_branches(program: &Program, shared: &[u32], action: &FaultAction) -> Vec<Vec<u32>> {
    let mut branches = vec![shared.to_vec()];
    for &(var, ref how) in action.corrupt_shared() {
        if var >= shared.len() {
            continue;
        }
        match how {
            SharedCorruption::Value(k) => {
                for b in &mut branches {
                    b[var] = program.clamp_shared(var, *k);
                }
            }
            SharedCorruption::Arbitrary => {
                let dom = program.shared[var].domain;
                let mut next = Vec::with_capacity(branches.len() * dom as usize);
                for b in &branches {
                    for k in 1..=dom {
                        let mut nb = b.clone();
                        nb[var] = k;
                        next.push(nb);
                    }
                }
                branches = next;
            }
        }
    }
    branches.dedup();
    branches
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::PropAssign;
    use crate::expr::BoolExpr;
    use crate::program::{LocalState, ProcArc, Process, SharedVar};
    use ftsyn_ctl::PropId;

    /// A 2-process token ring: each process alternates a/b; P2 may move
    /// only when P1 is in b (guard), demonstrating guards.
    fn ring() -> (Program, PropTable) {
        let mut t = PropTable::new();
        let a1 = t.add("a1", Owner::Process(0)).unwrap();
        let b1 = t.add("b1", Owner::Process(0)).unwrap();
        let a2 = t.add("a2", Owner::Process(1)).unwrap();
        let b2 = t.add("b2", Owner::Process(1)).unwrap();
        let mk = |p: PropId| PropSet::from_iter_with_capacity(4, [p]);
        let p1 = Process {
            index: 0,
            states: vec![
                LocalState { name: "a1".into(), props: mk(a1) },
                LocalState { name: "b1".into(), props: mk(b1) },
            ],
            arcs: vec![
                ProcArc { from: 0, to: 1, guard: BoolExpr::tru(), assigns: vec![] },
                ProcArc { from: 1, to: 0, guard: BoolExpr::tru(), assigns: vec![] },
            ],
        };
        let p2 = Process {
            index: 1,
            states: vec![
                LocalState { name: "a2".into(), props: mk(a2) },
                LocalState { name: "b2".into(), props: mk(b2) },
            ],
            arcs: vec![ProcArc {
                from: 0,
                to: 1,
                guard: BoolExpr::Prop(b1),
                assigns: vec![],
            }],
        };
        let prog = Program {
            processes: vec![p1, p2],
            shared: vec![],
            init_locals: vec![0, 0],
            init_shared: vec![],
            num_props: 4,
        };
        (prog, t)
    }

    #[test]
    fn explores_reachable_states_only() {
        let (prog, t) = ring();
        let ex = explore(&prog, &[], &t).unwrap();
        // Reachable: (a1,a2),(b1,a2),(b1,b2),(a1,b2) = 4.
        assert_eq!(ex.kripke.len(), 4);
        assert_eq!(ex.kripke.fault_edge_count(), 0);
    }

    #[test]
    fn guards_are_respected() {
        let (prog, t) = ring();
        let ex = explore(&prog, &[], &t).unwrap();
        // In the initial state (a1,a2), P2 must not be able to move.
        let init = ex.kripke.init_states()[0];
        let p2_moves: Vec<_> = ex
            .kripke
            .succ(init)
            .iter()
            .filter(|e| e.kind == TransKind::Proc(1))
            .collect();
        assert!(p2_moves.is_empty());
    }

    #[test]
    fn fault_transitions_added_and_mapped() {
        let (prog, t) = ring();
        let b1 = t.id("b1").unwrap();
        let a1 = t.id("a1").unwrap();
        // Fault: reset P1 to local state a1.
        let f = FaultAction::new(
            "reset-P1",
            BoolExpr::Prop(b1),
            vec![(b1, PropAssign::False), (a1, PropAssign::True)],
        )
        .unwrap();
        let ex = explore(&prog, &[f], &t).unwrap();
        assert!(ex.kripke.fault_edge_count() > 0);
        // Every fault edge's target is a valid state (mapped).
        for s in ex.kripke.state_ids() {
            for e in ex.kripke.succ(s) {
                assert!(e.to.index() < ex.kripke.len());
            }
        }
    }

    #[test]
    fn unmappable_fault_is_an_error() {
        let (prog, t) = ring();
        let a1 = t.id("a1").unwrap();
        let b1 = t.id("b1").unwrap();
        // Fault that sets both a1 and b1: no local state matches.
        let f = FaultAction::new(
            "both",
            BoolExpr::tru(),
            vec![(a1, PropAssign::True), (b1, PropAssign::True)],
        )
        .unwrap();
        let err = explore(&prog, &[f], &t).unwrap_err();
        assert!(matches!(err, ExploreError::UnmappableFaultOutcome { .. }));
    }

    #[test]
    fn shared_corruption_branches_within_domain() {
        let (mut prog, t) = ring();
        prog.shared.push(SharedVar { name: "x".into(), domain: 3 });
        prog.init_shared.push(1);
        let a1 = t.id("a1").unwrap();
        let f = FaultAction::new("corrupt-x", BoolExpr::Prop(a1), vec![])
            .unwrap()
            .with_shared_corruption(vec![(0, SharedCorruption::Arbitrary)]);
        let ex = explore(&prog, &[f], &t).unwrap();
        // From the initial state the fault yields x ∈ {1,2,3}.
        let init = ex.kripke.init_states()[0];
        let fault_targets: Vec<u32> = ex
            .kripke
            .succ(init)
            .iter()
            .filter(|e| e.kind.is_fault())
            .map(|e| ex.kripke.state(e.to).shared[0])
            .collect();
        let mut sorted = fault_targets.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, vec![1, 2, 3]);
    }

    #[test]
    fn out_of_domain_write_defaults_to_one() {
        let (mut prog, t) = ring();
        prog.shared.push(SharedVar { name: "x".into(), domain: 2 });
        prog.init_shared.push(2);
        let f = FaultAction::new("smash-x", BoolExpr::tru(), vec![])
            .unwrap()
            .with_shared_corruption(vec![(0, SharedCorruption::Value(77))]);
        let ex = explore(&prog, &[f], &t).unwrap();
        let init = ex.kripke.init_states()[0];
        let target = ex
            .kripke
            .succ(init)
            .iter()
            .find(|e| e.kind.is_fault())
            .unwrap()
            .to;
        assert_eq!(ex.kripke.state(target).shared[0], 1);
    }
}
