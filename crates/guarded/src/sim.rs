//! A randomized fault-injection simulator for guarded-command programs.
//!
//! Runs a program under nondeterministic interleaving, occasionally
//! firing enabled fault actions, and records the trace. Utilities check
//! safety invariants along the trace and convergence after the last
//! fault — the runtime counterparts of masking and nonmasking tolerance.

use crate::action::{FaultAction, SharedCorruption};
use crate::interp::Config;
use crate::program::Program;
use ftsyn_ctl::{Owner, PropTable};
use ftsyn_kripke::PropSet;
use ftsyn_prng::XorShift64;

/// What happened at a trace step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimStep {
    /// Process `index` executed an arc.
    Proc {
        /// 0-based process index.
        index: usize,
    },
    /// Fault action `index` fired.
    Fault {
        /// Index into the fault-action list.
        index: usize,
    },
    /// No transition was enabled (deadlock); the run stopped here.
    Deadlock,
}

/// Simulation parameters.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of steps to attempt.
    pub steps: usize,
    /// Probability of choosing an enabled fault over a program move.
    pub fault_prob: f64,
    /// After this many faults, stop injecting (to observe convergence).
    pub max_faults: usize,
    /// RNG seed (deterministic runs).
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            steps: 200,
            fault_prob: 0.1,
            max_faults: 3,
            seed: 0xF7_57,
        }
    }
}

/// A recorded simulation trace.
#[derive(Clone, Debug)]
pub struct Trace {
    /// Valuation at each point (length = steps taken + 1).
    pub valuations: Vec<PropSet>,
    /// Shared-variable values at each point.
    pub shared: Vec<Vec<u32>>,
    /// The step taken from each point (length = steps taken).
    pub steps: Vec<SimStep>,
    /// Index (into `steps`) of the last fault, if any.
    pub last_fault: Option<usize>,
}

impl Trace {
    /// Whether `pred` holds at every point of the trace.
    pub fn always(&self, pred: impl FnMut(&PropSet) -> bool) -> bool {
        self.valuations.iter().all(pred)
    }

    /// Whether `pred` holds at every point strictly after the last fault
    /// and at least `settle` steps later (nonmasking convergence probe).
    /// Returns `None` when the post-fault suffix is shorter than
    /// `settle`.
    pub fn eventually_always_after_faults(
        &self,
        settle: usize,
        pred: impl FnMut(&PropSet) -> bool,
    ) -> Option<bool> {
        let start = self.last_fault.map_or(0, |i| i + 1) + settle;
        if start >= self.valuations.len() {
            return None;
        }
        Some(self.valuations[start..].iter().all(pred))
    }

    /// Number of faults injected.
    pub fn fault_count(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, SimStep::Fault { .. }))
            .count()
    }
}

/// Parameters of a seeded fault-injection *campaign*: `runs`
/// simulations whose per-run parameters (RNG seed, fault probability,
/// fault budget) are derived deterministically from `base_seed`, so a
/// campaign explores many distinct interleavings and fault patterns
/// while remaining exactly reproducible.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Number of simulations to run.
    pub runs: usize,
    /// Steps attempted per simulation.
    pub steps: usize,
    /// Master seed every per-run [`SimConfig`] is derived from.
    pub base_seed: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            runs: 16,
            steps: 400,
            base_seed: 0xCA_4F,
        }
    }
}

/// Derives the per-run simulation parameters of a campaign: run `i`
/// gets its own seed, a fault probability in `[0.05, 0.45)`, and a
/// fault budget in `1..=4` — all drawn from a generator seeded with
/// `base_seed`, so the whole schedule is a pure function of the config.
pub fn campaign_configs(cfg: &CampaignConfig) -> Vec<SimConfig> {
    let mut rng = XorShift64::new(cfg.base_seed);
    (0..cfg.runs)
        .map(|_| SimConfig {
            steps: cfg.steps,
            fault_prob: 0.05 + 0.4 * rng.next_f64(),
            max_faults: rng.range(1, 5),
            seed: rng.next_u64(),
        })
        .collect()
}

/// Runs a full campaign: one [`simulate`] call per derived config,
/// returning each run's parameters alongside its trace (so a failing
/// assertion downstream can name the exact `SimConfig` to replay).
pub fn campaign(
    program: &Program,
    faults: &[FaultAction],
    props: &PropTable,
    cfg: &CampaignConfig,
) -> Vec<(SimConfig, Trace)> {
    campaign_configs(cfg)
        .into_iter()
        .map(|c| {
            let trace = simulate(program, faults, props, &c);
            (c, trace)
        })
        .collect()
}

/// Runs a randomized simulation of `program` under `faults`.
///
/// Fault outcomes are resolved to local states exactly as in
/// [`crate::interp::explore`]; an unmappable fault outcome is skipped
/// (the injector simply does not take that branch).
pub fn simulate(
    program: &Program,
    faults: &[FaultAction],
    props: &PropTable,
    cfg: &SimConfig,
) -> Trace {
    let mut rng = XorShift64::new(cfg.seed);
    let proc_masks: Vec<PropSet> = (0..program.processes.len())
        .map(|i| {
            PropSet::from_iter_with_capacity(
                props.len(),
                props.iter().filter(|&p| props.owner(p) == Owner::Process(i)),
            )
        })
        .collect();

    let mut state = Config {
        locals: program.init_locals.clone(),
        shared: program.init_shared.clone(),
    };
    let mut trace = Trace {
        valuations: vec![program.valuation(&state.locals)],
        shared: vec![state.shared.clone()],
        steps: Vec::new(),
        last_fault: None,
    };
    let mut faults_fired = 0usize;

    for _ in 0..cfg.steps {
        let valuation = program.valuation(&state.locals);

        // Enabled program moves.
        let mut moves: Vec<(usize, usize)> = Vec::new(); // (process, arc idx)
        for (pi, proc) in program.processes.iter().enumerate() {
            for (ai, arc) in proc.arcs.iter().enumerate() {
                if arc.from == state.locals[pi] && arc.guard.eval(&valuation, &state.shared) {
                    moves.push((pi, ai));
                }
            }
        }
        // Enabled faults (only while budget remains).
        let enabled_faults: Vec<usize> = if faults_fired < cfg.max_faults {
            faults
                .iter()
                .enumerate()
                .filter(|(_, f)| f.enabled(&valuation))
                .map(|(i, _)| i)
                .collect()
        } else {
            Vec::new()
        };

        let take_fault =
            !enabled_faults.is_empty() && (moves.is_empty() || rng.chance(cfg.fault_prob));

        if take_fault {
            let fi = enabled_faults[rng.below(enabled_faults.len())];
            let action = &faults[fi];
            let outcomes = action.outcomes(&valuation, props.len());
            let outcome = &outcomes[rng.below(outcomes.len())];
            // Resolve local states; skip the fault if unmappable.
            let mut locals = Vec::with_capacity(program.processes.len());
            let mut ok = true;
            for (pi, proc) in program.processes.iter().enumerate() {
                match proc.state_by_props(&outcome.intersect(&proc_masks[pi])) {
                    Some(li) => locals.push(li),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                state.locals = locals;
                for &(var, ref how) in action.corrupt_shared() {
                    if var < state.shared.len() {
                        state.shared[var] = match how {
                            SharedCorruption::Value(k) => program.clamp_shared(var, *k),
                            SharedCorruption::Arbitrary => {
                                let dom = program.shared[var].domain.max(1);
                                rng.range(1, dom as usize + 1) as u32
                            }
                        };
                    }
                }
                trace.last_fault = Some(trace.steps.len());
                trace.steps.push(SimStep::Fault { index: fi });
                faults_fired += 1;
                trace.valuations.push(program.valuation(&state.locals));
                trace.shared.push(state.shared.clone());
                continue;
            }
        }

        if moves.is_empty() {
            trace.steps.push(SimStep::Deadlock);
            break;
        }
        let (pi, ai) = moves[rng.below(moves.len())];
        let arc = &program.processes[pi].arcs[ai];
        state.locals[pi] = arc.to;
        for &(v, k) in &arc.assigns {
            if v < state.shared.len() {
                state.shared[v] = k;
            }
        }
        trace.steps.push(SimStep::Proc { index: pi });
        trace.valuations.push(program.valuation(&state.locals));
        trace.shared.push(state.shared.clone());
    }

    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BoolExpr;
    use crate::program::{LocalState, ProcArc, Process};
    use ftsyn_ctl::PropId;

    fn toggler() -> (Program, PropTable, PropId, PropId) {
        let mut t = PropTable::new();
        let a = t.add("a", Owner::Process(0)).unwrap();
        let b = t.add("b", Owner::Process(0)).unwrap();
        let mk = |p: PropId| PropSet::from_iter_with_capacity(2, [p]);
        let prog = Program {
            processes: vec![Process {
                index: 0,
                states: vec![
                    LocalState { name: "a".into(), props: mk(a) },
                    LocalState { name: "b".into(), props: mk(b) },
                ],
                arcs: vec![
                    ProcArc { from: 0, to: 1, guard: BoolExpr::tru(), assigns: vec![] },
                    ProcArc { from: 1, to: 0, guard: BoolExpr::tru(), assigns: vec![] },
                ],
            }],
            shared: vec![],
            init_locals: vec![0],
            init_shared: vec![],
            num_props: 2,
        };
        (prog, t, a, b)
    }

    #[test]
    fn deterministic_given_seed() {
        let (prog, t, _, _) = toggler();
        let cfg = SimConfig { steps: 50, ..SimConfig::default() };
        let t1 = simulate(&prog, &[], &t, &cfg);
        let t2 = simulate(&prog, &[], &t, &cfg);
        assert_eq!(t1.steps, t2.steps);
        assert_eq!(t1.valuations.len(), 51);
    }

    #[test]
    fn invariant_checking() {
        let (prog, t, a, b) = toggler();
        let trace = simulate(&prog, &[], &t, &SimConfig::default());
        assert!(trace.always(|v| v.contains(a) ^ v.contains(b)));
        assert_eq!(trace.fault_count(), 0);
    }

    #[test]
    fn faults_fire_and_are_bounded() {
        let (prog, t, a, b) = toggler();
        let f = crate::faults::general_state(
            "P1",
            &[("a".to_owned(), a), ("b".to_owned(), b)],
        );
        let cfg = SimConfig {
            steps: 300,
            fault_prob: 0.5,
            max_faults: 4,
            seed: 7,
        };
        let trace = simulate(&prog, &f, &t, &cfg);
        assert!(trace.fault_count() >= 1);
        assert!(trace.fault_count() <= 4);
        assert!(trace.last_fault.is_some());
    }

    #[test]
    fn deadlock_detected() {
        let (mut prog, t, _, _) = toggler();
        prog.processes[0].arcs.clear();
        let trace = simulate(&prog, &[], &t, &SimConfig::default());
        assert_eq!(trace.steps, vec![SimStep::Deadlock]);
    }

    #[test]
    fn campaigns_are_reproducible_and_varied() {
        let cfg = CampaignConfig::default();
        let (c1, c2) = (campaign_configs(&cfg), campaign_configs(&cfg));
        assert_eq!(c1.len(), cfg.runs);
        for (a, b) in c1.iter().zip(&c2) {
            assert_eq!(a.seed, b.seed, "campaign schedule must be deterministic");
            assert_eq!(a.max_faults, b.max_faults);
            assert!((a.fault_prob - b.fault_prob).abs() < f64::EPSILON);
            assert!((0.05..0.45).contains(&a.fault_prob));
            assert!((1..=4).contains(&a.max_faults));
        }
        // Seeds must differ run to run (distinct interleavings).
        let distinct: std::collections::HashSet<u64> = c1.iter().map(|c| c.seed).collect();
        assert_eq!(distinct.len(), cfg.runs);
    }

    #[test]
    fn campaign_runs_every_config() {
        let (prog, t, a, b) = toggler();
        let f = crate::faults::general_state("P1", &[("a".to_owned(), a), ("b".to_owned(), b)]);
        let cfg = CampaignConfig {
            runs: 4,
            steps: 60,
            base_seed: 9,
        };
        let results = campaign(&prog, &f, &t, &cfg);
        assert_eq!(results.len(), 4);
        for (sc, trace) in &results {
            assert!(trace.fault_count() <= sc.max_faults);
            // Replaying the returned config reproduces the trace.
            let replay = simulate(&prog, &f, &t, sc);
            assert_eq!(replay.steps, trace.steps);
        }
    }

    #[test]
    fn convergence_probe() {
        let (prog, t, a, b) = toggler();
        let trace = simulate(&prog, &[], &t, &SimConfig { steps: 30, ..Default::default() });
        // No faults: convergence measured from the start.
        let conv = trace.eventually_always_after_faults(0, |v| v.contains(a) ^ v.contains(b));
        assert_eq!(conv, Some(true));
        // Settle longer than the trace yields None.
        let none = trace.eventually_always_after_faults(1000, |_| true);
        assert_eq!(none, None);
    }
}
