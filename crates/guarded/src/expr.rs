//! Boolean guard expressions over atomic propositions and shared
//! synchronization variables.

use ftsyn_ctl::{PropId, PropTable};
use ftsyn_kripke::PropSet;
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// A guard: a predicate on global states (Section 2.1 of the paper).
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum BoolExpr {
    /// A constant.
    Const(bool),
    /// An atomic proposition is true.
    Prop(PropId),
    /// Logical negation.
    Not(Box<BoolExpr>),
    /// `x_var = value` over a shared synchronization variable.
    VarEq(usize, u32),
    /// Conjunction of all members (empty = `true`).
    And(Vec<BoolExpr>),
    /// Disjunction of all members (empty = `false`).
    Or(Vec<BoolExpr>),
}

impl BoolExpr {
    /// The constant `true`.
    pub fn tru() -> BoolExpr {
        BoolExpr::Const(true)
    }

    /// The negation of a proposition.
    pub fn not_prop(p: PropId) -> BoolExpr {
        BoolExpr::Not(Box::new(BoolExpr::Prop(p)))
    }

    /// Evaluates against a valuation and shared-variable values.
    ///
    /// Closed world: a proposition not in `props` is false; a shared
    /// variable index beyond `shared` evaluates `VarEq` to false.
    pub fn eval(&self, props: &PropSet, shared: &[u32]) -> bool {
        match self {
            BoolExpr::Const(b) => *b,
            BoolExpr::Prop(p) => props.contains(*p),
            BoolExpr::Not(e) => !e.eval(props, shared),
            BoolExpr::VarEq(v, k) => shared.get(*v) == Some(k),
            BoolExpr::And(es) => es.iter().all(|e| e.eval(props, shared)),
            BoolExpr::Or(es) => es.iter().any(|e| e.eval(props, shared)),
        }
    }

    /// Whether the expression mentions any shared variable. Fault-action
    /// guards must not (Section 5.3: faults may overwrite but never read
    /// shared variables).
    pub fn reads_shared(&self) -> bool {
        match self {
            BoolExpr::Const(_) | BoolExpr::Prop(_) => false,
            BoolExpr::Not(e) => e.reads_shared(),
            BoolExpr::VarEq(_, _) => true,
            BoolExpr::And(es) | BoolExpr::Or(es) => es.iter().any(BoolExpr::reads_shared),
        }
    }

    /// Human-readable rendering using proposition names.
    pub fn display(&self, props: &PropTable) -> String {
        match self {
            BoolExpr::Const(b) => b.to_string(),
            BoolExpr::Prop(p) => props.name(*p).to_owned(),
            BoolExpr::Not(e) => match e.as_ref() {
                BoolExpr::Prop(p) => format!("~{}", props.name(*p)),
                inner => format!("~({})", inner.display(props)),
            },
            BoolExpr::VarEq(v, k) => format!("x{v}={k}"),
            BoolExpr::And(es) => {
                if es.is_empty() {
                    "true".to_owned()
                } else {
                    es.iter()
                        .map(|e| match e {
                            BoolExpr::Or(inner) if inner.len() > 1 => {
                                format!("({})", e.display(props))
                            }
                            _ => e.display(props),
                        })
                        .collect::<Vec<_>>()
                        .join(" & ")
                }
            }
            BoolExpr::Or(es) => {
                if es.is_empty() {
                    "false".to_owned()
                } else {
                    es.iter()
                        .map(|e| e.display(props))
                        .collect::<Vec<_>>()
                        .join(" | ")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsyn_ctl::Owner;

    fn table() -> (PropTable, PropId, PropId) {
        let mut t = PropTable::new();
        let a = t.add("a", Owner::Process(0)).unwrap();
        let b = t.add("b", Owner::Process(1)).unwrap();
        (t, a, b)
    }

    #[test]
    fn eval_closed_world() {
        let (_, a, b) = table();
        let ps = PropSet::from_iter_with_capacity(2, [a]);
        assert!(BoolExpr::Prop(a).eval(&ps, &[]));
        assert!(!BoolExpr::Prop(b).eval(&ps, &[]));
        assert!(BoolExpr::not_prop(b).eval(&ps, &[]));
    }

    #[test]
    fn eval_shared_vars() {
        let (_, a, _) = table();
        let ps = PropSet::from_iter_with_capacity(2, [a]);
        assert!(BoolExpr::VarEq(0, 2).eval(&ps, &[2]));
        assert!(!BoolExpr::VarEq(0, 1).eval(&ps, &[2]));
        assert!(!BoolExpr::VarEq(3, 1).eval(&ps, &[2]), "missing var is false");
    }

    #[test]
    fn and_or_semantics() {
        let (_, a, b) = table();
        let ps = PropSet::from_iter_with_capacity(2, [a]);
        let e = BoolExpr::And(vec![BoolExpr::Prop(a), BoolExpr::not_prop(b)]);
        assert!(e.eval(&ps, &[]));
        let e2 = BoolExpr::Or(vec![BoolExpr::Prop(b), BoolExpr::Const(false)]);
        assert!(!e2.eval(&ps, &[]));
        assert!(BoolExpr::And(vec![]).eval(&ps, &[]));
        assert!(!BoolExpr::Or(vec![]).eval(&ps, &[]));
    }

    #[test]
    fn reads_shared_detection() {
        let (_, a, _) = table();
        assert!(!BoolExpr::Prop(a).reads_shared());
        let e = BoolExpr::And(vec![BoolExpr::Prop(a), BoolExpr::VarEq(0, 1)]);
        assert!(e.reads_shared());
        let e2 = BoolExpr::Not(Box::new(BoolExpr::VarEq(1, 1)));
        assert!(e2.reads_shared());
    }

    #[test]
    fn display_is_readable() {
        let (t, a, b) = table();
        let e = BoolExpr::And(vec![
            BoolExpr::Or(vec![BoolExpr::Prop(a), BoolExpr::Prop(b)]),
            BoolExpr::VarEq(0, 1),
        ]);
        assert_eq!(e.display(&t), "(a | b) & x0=1");
    }
}
