//! Fault actions: guarded commands that perturb the program state
//! (Section 2.3 of the paper).
//!
//! A fault action has a guard over atomic propositions, a parallel
//! assignment to propositions (possibly nondeterministic, the paper's
//! `?`), and optionally an assignment corrupting shared synchronization
//! variables (Section 5.3). Guards must not *read* shared variables —
//! this restriction is required for completeness of the synthesis method
//! and is enforced at construction.

use crate::expr::BoolExpr;
use ftsyn_ctl::{PropId, PropTable};
use ftsyn_kripke::PropSet;
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};
use std::fmt;

/// Right-hand side of a proposition assignment in a fault action.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum PropAssign {
    /// Set to true.
    True,
    /// Set to false.
    False,
    /// The paper's `?`: a nondeterministically chosen boolean.
    NonDet,
}

/// Corruption of a shared synchronization variable by a fault
/// (Section 5.3: faults may overwrite, but never read, shared variables).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum SharedCorruption {
    /// Overwrite with a fixed value (possibly outside the domain; readers
    /// reinterpret out-of-domain values as the default `1`).
    Value(u32),
    /// Overwrite with an arbitrary value.
    Arbitrary,
}

/// Error constructing a fault action.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ActionError {
    /// The guard mentions a shared variable.
    GuardReadsShared,
    /// The same proposition is assigned twice.
    DuplicateAssignment(PropId),
}

impl fmt::Display for ActionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActionError::GuardReadsShared => {
                write!(f, "fault-action guards must not read shared variables")
            }
            ActionError::DuplicateAssignment(p) => {
                write!(f, "proposition {p:?} assigned more than once")
            }
        }
    }
}

impl std::error::Error for ActionError {}

/// A fault action (guarded command).
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct FaultAction {
    name: String,
    guard: BoolExpr,
    assigns: Vec<(PropId, PropAssign)>,
    corrupt_shared: Vec<(usize, SharedCorruption)>,
}

impl FaultAction {
    /// Creates a fault action.
    ///
    /// # Errors
    ///
    /// Fails if the guard reads a shared variable or a proposition is
    /// assigned twice.
    pub fn new(
        name: impl Into<String>,
        guard: BoolExpr,
        assigns: Vec<(PropId, PropAssign)>,
    ) -> Result<FaultAction, ActionError> {
        if guard.reads_shared() {
            return Err(ActionError::GuardReadsShared);
        }
        for (i, (p, _)) in assigns.iter().enumerate() {
            if assigns[..i].iter().any(|(q, _)| q == p) {
                return Err(ActionError::DuplicateAssignment(*p));
            }
        }
        Ok(FaultAction {
            name: name.into(),
            guard,
            assigns,
            corrupt_shared: Vec::new(),
        })
    }

    /// Adds corruption of shared variables to this fault action.
    #[must_use]
    pub fn with_shared_corruption(
        mut self,
        corrupt: Vec<(usize, SharedCorruption)>,
    ) -> FaultAction {
        self.corrupt_shared = corrupt;
        self
    }

    /// The action's name (for diagnostics and transition labels).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The guard.
    pub fn guard(&self) -> &BoolExpr {
        &self.guard
    }

    /// The proposition assignments.
    pub fn assigns(&self) -> &[(PropId, PropAssign)] {
        &self.assigns
    }

    /// The shared-variable corruptions.
    pub fn corrupt_shared(&self) -> &[(usize, SharedCorruption)] {
        &self.corrupt_shared
    }

    /// Whether the action is enabled in the given valuation.
    pub fn enabled(&self, props: &PropSet) -> bool {
        self.guard.eval(props, &[])
    }

    /// All possible outcome valuations `{ϕ}` of executing the body in
    /// `props` (the paper's `{L(c)↑AP} a.body {ϕ}`), enumerating the
    /// branches of nondeterministic assignments. The guard is *not*
    /// checked here.
    pub fn outcomes(&self, props: &PropSet, num_props: usize) -> Vec<PropSet> {
        let nondet: Vec<PropId> = self
            .assigns
            .iter()
            .filter(|(_, a)| *a == PropAssign::NonDet)
            .map(|(p, _)| *p)
            .collect();
        let mut base = PropSet::with_capacity(num_props);
        for p in props.iter() {
            base.insert(p);
        }
        for (p, a) in &self.assigns {
            match a {
                PropAssign::True => {
                    base.insert(*p);
                }
                PropAssign::False => {
                    base.remove(*p);
                }
                PropAssign::NonDet => {}
            }
        }
        let mut out = Vec::with_capacity(1 << nondet.len());
        for mask in 0..(1u32 << nondet.len()) {
            let mut v = base.clone();
            for (bit, p) in nondet.iter().enumerate() {
                if mask & (1 << bit) != 0 {
                    v.insert(*p);
                } else {
                    v.remove(*p);
                }
            }
            if !out.contains(&v) {
                out.push(v);
            }
        }
        out
    }

    /// The textual size `|a|` of the guarded command, used by the
    /// complexity analysis of Section 7.4 (`|F| = Σ|a|`).
    pub fn size(&self) -> usize {
        fn expr_size(e: &BoolExpr) -> usize {
            match e {
                BoolExpr::Const(_) | BoolExpr::Prop(_) | BoolExpr::VarEq(_, _) => 1,
                BoolExpr::Not(i) => 1 + expr_size(i),
                BoolExpr::And(es) | BoolExpr::Or(es) => {
                    1 + es.iter().map(expr_size).sum::<usize>()
                }
            }
        }
        expr_size(&self.guard) + 2 * self.assigns.len() + 2 * self.corrupt_shared.len()
    }

    /// Human-readable `guard → assignments` rendering.
    pub fn display(&self, props: &PropTable) -> String {
        let mut rhs: Vec<String> = self
            .assigns
            .iter()
            .map(|(p, a)| {
                let v = match a {
                    PropAssign::True => "true",
                    PropAssign::False => "false",
                    PropAssign::NonDet => "?",
                };
                format!("{} := {}", props.name(*p), v)
            })
            .collect();
        for (v, c) in &self.corrupt_shared {
            rhs.push(match c {
                SharedCorruption::Value(k) => format!("x{v} := {k}"),
                SharedCorruption::Arbitrary => format!("x{v} := ?"),
            });
        }
        format!(
            "{}: {} -> {}",
            self.name,
            self.guard.display(props),
            rhs.join(", ")
        )
    }
}

/// Total description size of a set of fault actions (`|F|`, Section 7.4).
pub fn fault_set_size(actions: &[FaultAction]) -> usize {
    actions.iter().map(FaultAction::size).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsyn_ctl::Owner;

    fn table() -> (PropTable, PropId, PropId, PropId) {
        let mut t = PropTable::new();
        let a = t.add("a", Owner::Process(0)).unwrap();
        let b = t.add("b", Owner::Process(0)).unwrap();
        let c = t.add_aux("broken", Owner::Process(0)).unwrap();
        (t, a, b, c)
    }

    #[test]
    fn guard_reading_shared_rejected() {
        let (_, a, _, _) = table();
        let r = FaultAction::new("f", BoolExpr::VarEq(0, 1), vec![(a, PropAssign::True)]);
        assert_eq!(r.unwrap_err(), ActionError::GuardReadsShared);
    }

    #[test]
    fn duplicate_assignment_rejected() {
        let (_, a, _, _) = table();
        let r = FaultAction::new(
            "f",
            BoolExpr::tru(),
            vec![(a, PropAssign::True), (a, PropAssign::False)],
        );
        assert_eq!(r.unwrap_err(), ActionError::DuplicateAssignment(a));
    }

    #[test]
    fn deterministic_outcome() {
        let (_, a, b, c) = table();
        let f = FaultAction::new(
            "fail",
            BoolExpr::not_prop(c),
            vec![(c, PropAssign::True), (a, PropAssign::False)],
        )
        .unwrap();
        let before = PropSet::from_iter_with_capacity(3, [a, b]);
        assert!(f.enabled(&before));
        let out = f.outcomes(&before, 3);
        assert_eq!(out.len(), 1);
        assert!(out[0].contains(c));
        assert!(out[0].contains(b), "unassigned props preserved");
        assert!(!out[0].contains(a));
    }

    #[test]
    fn nondet_outcomes_branch() {
        let (_, a, b, _) = table();
        let f = FaultAction::new(
            "corrupt",
            BoolExpr::tru(),
            vec![(a, PropAssign::NonDet), (b, PropAssign::NonDet)],
        )
        .unwrap();
        let before = PropSet::with_capacity(3);
        let out = f.outcomes(&before, 3);
        assert_eq!(out.len(), 4, "two ? props give four outcomes");
    }

    #[test]
    fn guard_disabled_state() {
        let (_, a, _, c) = table();
        let f = FaultAction::new("fail", BoolExpr::not_prop(c), vec![(a, PropAssign::True)])
            .unwrap();
        let down = PropSet::from_iter_with_capacity(3, [c]);
        assert!(!f.enabled(&down));
    }

    #[test]
    fn size_accounts_guard_and_assigns() {
        let (_, a, _, c) = table();
        let f = FaultAction::new(
            "fail",
            BoolExpr::not_prop(c),
            vec![(a, PropAssign::True), (c, PropAssign::False)],
        )
        .unwrap();
        assert_eq!(f.size(), 2 + 4);
        assert_eq!(fault_set_size(&[f.clone(), f]), 12);
    }

    #[test]
    fn display_shows_guarded_command() {
        let (t, a, _, c) = table();
        let f = FaultAction::new("fail", BoolExpr::not_prop(c), vec![(a, PropAssign::NonDet)])
            .unwrap()
            .with_shared_corruption(vec![(0, SharedCorruption::Arbitrary)]);
        assert_eq!(f.display(&t), "fail: ~broken -> a := ?, x0 := ?");
    }
}
