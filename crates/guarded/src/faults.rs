//! The paper's fault-class library (Section 2.3), expressed as
//! [`FaultAction`] constructors.
//!
//! Covered classes: stuck-at (with repair and bounded-count variants),
//! omission, timing, fail-stop with repair (Section 6.1), and general
//! state faults (Section 6.2). General state faults are modeled as one
//! action per local state of the victim process — i.e. every combination
//! of truth values of the process's propositions that corresponds to a
//! local state — which is how the paper's barrier-synchronization example
//! uses them (the tableau would delete any perturbed state whose
//! valuation matches no local state of any extractable program).

use crate::action::{FaultAction, PropAssign};
use crate::expr::BoolExpr;
use ftsyn_ctl::PropId;

/// The stuck-at-low-voltage fault of the wire example:
/// `¬broken → broken := true`.
pub fn stuck_at_low(broken: PropId) -> FaultAction {
    FaultAction::new(
        "stuck-at-low",
        BoolExpr::not_prop(broken),
        vec![(broken, PropAssign::True)],
    )
    .expect("valid by construction")
}

/// Repair of the wire: `broken → broken := false`. Together with
/// [`stuck_at_low`] this models intermittent stuck-at faults.
pub fn stuck_at_repair(broken: PropId) -> FaultAction {
    FaultAction::new(
        "stuck-at-repair",
        BoolExpr::Prop(broken),
        vec![(broken, PropAssign::False)],
    )
    .expect("valid by construction")
}

/// Bounded stuck-at: at most `k` occurrences, counted in unary by the
/// auxiliary propositions `count_props[0..k]` (the paper's
/// `brokencount < k` strengthening, with the counter encoded as
/// auxiliary atomic propositions as footnote 2 prescribes).
///
/// Returns one action per remaining budget level: action `j` fires when
/// exactly `j` previous faults have occurred.
///
/// # Panics
///
/// Panics if `count_props` is empty.
pub fn stuck_at_low_bounded(broken: PropId, count_props: &[PropId]) -> Vec<FaultAction> {
    assert!(!count_props.is_empty(), "need at least one counter bit");
    let k = count_props.len();
    (0..k)
        .map(|j| {
            // Guard: ¬broken ∧ count = j (unary: first j bits set).
            let mut conj = vec![BoolExpr::not_prop(broken)];
            for (i, &c) in count_props.iter().enumerate() {
                if i < j {
                    conj.push(BoolExpr::Prop(c));
                } else {
                    conj.push(BoolExpr::not_prop(c));
                }
            }
            FaultAction::new(
                format!("stuck-at-low[{j}]"),
                BoolExpr::And(conj),
                vec![
                    (broken, PropAssign::True),
                    (count_props[j], PropAssign::True),
                ],
            )
            .expect("valid by construction")
        })
        .collect()
}

/// Omission fault: a buffer loses its content,
/// `is_full → is_full := false`.
pub fn omission(is_full: PropId) -> FaultAction {
    FaultAction::new(
        "omission",
        BoolExpr::Prop(is_full),
        vec![(is_full, PropAssign::False)],
    )
    .expect("valid by construction")
}

/// Timing fault: access to a buffer's content is delayed. Two actions:
/// `is_full → is_full := false, is_delayed := true` and
/// `¬is_full ∧ is_delayed → is_full := true, is_delayed := false`.
pub fn timing(is_full: PropId, is_delayed: PropId) -> Vec<FaultAction> {
    vec![
        FaultAction::new(
            "timing-delay",
            BoolExpr::Prop(is_full),
            vec![
                (is_full, PropAssign::False),
                (is_delayed, PropAssign::True),
            ],
        )
        .expect("valid by construction"),
        FaultAction::new(
            "timing-release",
            BoolExpr::And(vec![
                BoolExpr::not_prop(is_full),
                BoolExpr::Prop(is_delayed),
            ]),
            vec![
                (is_full, PropAssign::True),
                (is_delayed, PropAssign::False),
            ],
        )
        .expect("valid by construction"),
    ]
}

/// Fail-stop of a process (Section 6.1): truthifies the auxiliary
/// "down" proposition `d` and falsifies all of the process's local
/// propositions. Guarded on the process being up.
pub fn fail_stop(proc_name: &str, local_props: &[PropId], d: PropId) -> FaultAction {
    let mut assigns = vec![(d, PropAssign::True)];
    for &p in local_props {
        assigns.push((p, PropAssign::False));
    }
    FaultAction::new(
        format!("fail-stop-{proc_name}"),
        BoolExpr::not_prop(d),
        assigns,
    )
    .expect("valid by construction")
}

/// Repair of a fail-stopped process into the local state `target`
/// (Section 6.1 uses one repair action per local state). `extra_guard`
/// lets the caller restrict when the repair may occur — the paper's
/// footnote 11 guards repair-into-`Cᵢ` on mutual exclusion not being
/// violated.
pub fn repair_to(
    proc_name: &str,
    target: PropId,
    target_name: &str,
    other_local_props: &[PropId],
    d: PropId,
    extra_guard: Option<BoolExpr>,
) -> FaultAction {
    let mut guard_parts = vec![BoolExpr::Prop(d)];
    if let Some(g) = extra_guard {
        guard_parts.push(g);
    }
    let mut assigns = vec![(d, PropAssign::False), (target, PropAssign::True)];
    for &p in other_local_props {
        if p != target {
            assigns.push((p, PropAssign::False));
        }
    }
    FaultAction::new(
        format!("repair-{proc_name}-to-{target_name}"),
        BoolExpr::And(guard_parts),
        assigns,
    )
    .expect("valid by construction")
}

/// General state faults for a process (Section 6.2): for every local
/// state of the process (given as `(name, one-hot proposition)` pairs
/// over `local_props`), an action that arbitrarily perturbs the process
/// into that local state. Undetectable (no auxiliary propositions) and
/// always enabled.
pub fn general_state(proc_name: &str, local_props: &[(String, PropId)]) -> Vec<FaultAction> {
    local_props
        .iter()
        .map(|(name, target)| {
            let mut assigns = vec![(*target, PropAssign::True)];
            for (_, p) in local_props {
                if p != target {
                    assigns.push((*p, PropAssign::False));
                }
            }
            FaultAction::new(
                format!("corrupt-{proc_name}-to-{name}"),
                BoolExpr::tru(),
                assigns,
            )
            .expect("valid by construction")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsyn_ctl::{Owner, PropTable};
    use ftsyn_kripke::PropSet;

    fn mutex_props() -> (PropTable, Vec<PropId>, PropId) {
        let mut t = PropTable::new();
        let n = t.add("N1", Owner::Process(0)).unwrap();
        let tt = t.add("T1", Owner::Process(0)).unwrap();
        let c = t.add("C1", Owner::Process(0)).unwrap();
        let d = t.add_aux("D1", Owner::Process(0)).unwrap();
        (t, vec![n, tt, c], d)
    }

    #[test]
    fn fail_stop_downs_the_process() {
        let (_, locals, d) = mutex_props();
        let f = fail_stop("P1", &locals, d);
        let before = PropSet::from_iter_with_capacity(4, [locals[1]]); // T1
        assert!(f.enabled(&before));
        let out = f.outcomes(&before, 4);
        assert_eq!(out.len(), 1);
        assert!(out[0].contains(d));
        for &p in &locals {
            assert!(!out[0].contains(p));
        }
        // Not enabled when already down.
        assert!(!f.enabled(&out[0]));
    }

    #[test]
    fn repair_restores_target_state() {
        let (_, locals, d) = mutex_props();
        let f = repair_to("P1", locals[0], "N1", &locals, d, None);
        let down = PropSet::from_iter_with_capacity(4, [d]);
        assert!(f.enabled(&down));
        let out = f.outcomes(&down, 4);
        assert_eq!(out.len(), 1);
        assert!(out[0].contains(locals[0]));
        assert!(!out[0].contains(d));
    }

    #[test]
    fn repair_extra_guard_respected() {
        let (mut t, locals, d) = mutex_props();
        let c2 = t.add("C2", Owner::Process(1)).unwrap();
        let f = repair_to(
            "P1",
            locals[2],
            "C1",
            &locals,
            d,
            Some(BoolExpr::not_prop(c2)),
        );
        let down_with_c2 = PropSet::from_iter_with_capacity(5, [d, c2]);
        assert!(!f.enabled(&down_with_c2), "cannot repair into C1 while C2");
        let down = PropSet::from_iter_with_capacity(5, [d]);
        assert!(f.enabled(&down));
    }

    #[test]
    fn general_state_covers_all_locals() {
        let mut t = PropTable::new();
        let names = ["SA1", "EA1", "SB1", "EB1"];
        let props: Vec<(String, PropId)> = names
            .iter()
            .map(|n| ((*n).to_owned(), t.add(*n, Owner::Process(0)).unwrap()))
            .collect();
        let fs = general_state("P1", &props);
        assert_eq!(fs.len(), 4);
        let before = PropSet::from_iter_with_capacity(4, [props[0].1]);
        for (k, f) in fs.iter().enumerate() {
            assert!(f.enabled(&before), "general state faults always enabled");
            let out = f.outcomes(&before, 4);
            assert_eq!(out.len(), 1);
            assert!(out[0].contains(props[k].1));
            assert_eq!(out[0].len(), 1, "one-hot outcome");
        }
    }

    #[test]
    fn bounded_stuck_at_respects_budget() {
        let mut t = PropTable::new();
        let broken = t.add_aux("broken", Owner::Env).unwrap();
        let c0 = t.add_aux("cnt0", Owner::Env).unwrap();
        let c1 = t.add_aux("cnt1", Owner::Env).unwrap();
        let fs = stuck_at_low_bounded(broken, &[c0, c1]);
        assert_eq!(fs.len(), 2);
        let fresh = PropSet::with_capacity(3);
        assert!(fs[0].enabled(&fresh));
        assert!(!fs[1].enabled(&fresh));
        // After one fault + repair: count = 1.
        let once = PropSet::from_iter_with_capacity(3, [c0]);
        assert!(!fs[0].enabled(&once));
        assert!(fs[1].enabled(&once));
        // Budget exhausted.
        let twice = PropSet::from_iter_with_capacity(3, [c0, c1]);
        assert!(!fs[0].enabled(&twice));
        assert!(!fs[1].enabled(&twice));
    }

    #[test]
    fn timing_round_trip() {
        let mut t = PropTable::new();
        let full = t.add("is_full", Owner::Env).unwrap();
        let delayed = t.add_aux("is_delayed", Owner::Env).unwrap();
        let fs = timing(full, delayed);
        let start = PropSet::from_iter_with_capacity(2, [full]);
        let out1 = &fs[0].outcomes(&start, 2)[0];
        assert!(!out1.contains(full));
        assert!(out1.contains(delayed));
        assert!(fs[1].enabled(out1));
        let out2 = &fs[1].outcomes(out1, 2)[0];
        assert!(out2.contains(full));
        assert!(!out2.contains(delayed));
    }

    #[test]
    fn omission_drops_content() {
        let mut t = PropTable::new();
        let full = t.add("is_full", Owner::Env).unwrap();
        let f = omission(full);
        let start = PropSet::from_iter_with_capacity(1, [full]);
        let out = f.outcomes(&start, 1);
        assert!(!out[0].contains(full));
        assert!(!f.enabled(&out[0]));
    }
}
