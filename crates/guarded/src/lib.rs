//! Guarded-command programs, fault actions, and execution machinery.
//!
//! This crate implements the computational model of *Attie, Arora,
//! Emerson — Synthesis of Fault-Tolerant Concurrent Programs* (TOPLAS
//! 2004):
//!
//! * guards and parallel assignments over atomic propositions and shared
//!   synchronization variables ([`BoolExpr`]);
//! * fault actions — nondeterministic guarded commands that perturb the
//!   program state (Section 2.3) — with the paper's fault-class library:
//!   stuck-at, omission, timing, fail-stop/repair and general state
//!   faults ([`FaultAction`], [`faults`]);
//! * synchronization skeletons and concurrent programs
//!   `P₁ ‖ … ‖ P_I` ([`Process`], [`Program`]);
//! * an interleaving interpreter that regenerates the global-state
//!   structure of a program, fault transitions included
//!   ([`interp::explore`]);
//! * a randomized fault-injection simulator with invariant and
//!   convergence probes ([`sim::simulate`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod action;
mod expr;
mod program;

pub mod faults;
pub mod interp;
pub mod sim;

pub use action::{fault_set_size, ActionError, FaultAction, PropAssign, SharedCorruption};
pub use expr::BoolExpr;
pub use program::{LocalState, ProcArc, Process, Program, SharedVar};
