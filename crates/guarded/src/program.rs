//! Synchronization skeletons and concurrent programs (Section 2.1).
//!
//! A process `Pᵢ` is a directed graph of named local states with arcs
//! labeled by guarded commands `B → A`, where the guard `B` reads other
//! processes' propositions and shared variables, and the statement `A`
//! is a parallel assignment to shared variables. A program is the
//! parallel composition `P₁ ‖ … ‖ P_I` plus shared-variable
//! declarations, executed by nondeterministic interleaving.

use crate::expr::BoolExpr;
use ftsyn_ctl::PropTable;
use ftsyn_kripke::PropSet;
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A named local state of a process, identified by the set of the
/// process's propositions that are true in it.
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct LocalState {
    /// Display name (e.g. `N1`, or `D1` for a fail-stopped state).
    pub name: String,
    /// The process-owned propositions true in this local state.
    pub props: PropSet,
}

/// An arc of a synchronization skeleton: `from --[guard → assigns]--> to`.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct ProcArc {
    /// Source local-state index.
    pub from: usize,
    /// Target local-state index.
    pub to: usize,
    /// Enabling condition over other processes' propositions and shared
    /// variables.
    pub guard: BoolExpr,
    /// Parallel assignment to shared variables `(var, value)`.
    pub assigns: Vec<(usize, u32)>,
}

/// A sequential process: a synchronization skeleton.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Process {
    /// 0-based process index.
    pub index: usize,
    /// Local states.
    pub states: Vec<LocalState>,
    /// Arcs.
    pub arcs: Vec<ProcArc>,
}

impl Process {
    /// Finds a local state by its proposition set.
    pub fn state_by_props(&self, props: &PropSet) -> Option<usize> {
        self.states.iter().position(|s| &s.props == props)
    }

    /// Renders the skeleton in the paper's Figure 9 style.
    pub fn display(&self, props: &PropTable) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "process P{}:", self.index + 1);
        for a in &self.arcs {
            let stmt = if a.assigns.is_empty() {
                String::from("skip")
            } else {
                a.assigns
                    .iter()
                    .map(|(v, k)| format!("x{v} := {k}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            let _ = writeln!(
                out,
                "  {} -> {}:  {}  /  {}",
                self.states[a.from].name,
                self.states[a.to].name,
                a.guard.display(props),
                stmt
            );
        }
        out
    }
}

/// A shared synchronization variable with domain `1..=domain`.
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct SharedVar {
    /// Display name.
    pub name: String,
    /// Largest value; the domain is `[1 : domain]` (Section 5.3).
    pub domain: u32,
}

/// A concurrent program `P₁ ‖ … ‖ P_I` with shared variables.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Program {
    /// The processes.
    pub processes: Vec<Process>,
    /// Shared synchronization variables.
    pub shared: Vec<SharedVar>,
    /// Initial local-state index of each process.
    pub init_locals: Vec<usize>,
    /// Initial shared-variable values.
    pub init_shared: Vec<u32>,
    /// Total number of atomic propositions (capacity for valuations).
    pub num_props: usize,
}

impl Program {
    /// The valuation of a configuration of local states.
    pub fn valuation(&self, locals: &[usize]) -> PropSet {
        let mut v = PropSet::with_capacity(self.num_props);
        for (p, &li) in self.processes.iter().zip(locals.iter()) {
            for prop in p.states[li].props.iter() {
                v.insert(prop);
            }
        }
        v
    }

    /// Clamps a shared-variable value into its domain, reinterpreting
    /// out-of-domain values as the default `1` (Section 5.3).
    pub fn clamp_shared(&self, var: usize, value: u32) -> u32 {
        let dom = self.shared.get(var).map_or(1, |v| v.domain);
        if (1..=dom).contains(&value) {
            value
        } else {
            1
        }
    }

    /// Renders all skeletons.
    pub fn display(&self, props: &PropTable) -> String {
        let mut out = String::new();
        for sv in &self.shared {
            let _ = writeln!(out, "shared {}: [1..{}]", sv.name, sv.domain);
        }
        for p in &self.processes {
            out.push_str(&p.display(props));
        }
        out
    }

    /// Number of arcs across all processes.
    pub fn arc_count(&self) -> usize {
        self.processes.iter().map(|p| p.arcs.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsyn_ctl::{Owner, PropId};

    fn two_state_process(t: &mut PropTable, idx: usize) -> (Process, PropId, PropId) {
        let a = t.add(format!("a{idx}"), Owner::Process(idx)).unwrap();
        let b = t.add(format!("b{idx}"), Owner::Process(idx)).unwrap();
        let mk = |p: PropId| PropSet::from_iter_with_capacity(8, [p]);
        let proc = Process {
            index: idx,
            states: vec![
                LocalState {
                    name: format!("a{idx}"),
                    props: mk(a),
                },
                LocalState {
                    name: format!("b{idx}"),
                    props: mk(b),
                },
            ],
            arcs: vec![
                ProcArc {
                    from: 0,
                    to: 1,
                    guard: BoolExpr::tru(),
                    assigns: vec![],
                },
                ProcArc {
                    from: 1,
                    to: 0,
                    guard: BoolExpr::tru(),
                    assigns: vec![(0, 2)],
                },
            ],
        };
        (proc, a, b)
    }

    #[test]
    fn valuation_unions_local_props() {
        let mut t = PropTable::new();
        let (p0, a0, _) = two_state_process(&mut t, 0);
        let (p1, _, b1) = two_state_process(&mut t, 1);
        let prog = Program {
            processes: vec![p0, p1],
            shared: vec![],
            init_locals: vec![0, 1],
            init_shared: vec![],
            num_props: 8,
        };
        let v = prog.valuation(&[0, 1]);
        assert!(v.contains(a0));
        assert!(v.contains(b1));
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn clamp_shared_defaults_out_of_domain() {
        let prog = Program {
            processes: vec![],
            shared: vec![SharedVar {
                name: "x".into(),
                domain: 2,
            }],
            init_locals: vec![],
            init_shared: vec![1],
            num_props: 0,
        };
        assert_eq!(prog.clamp_shared(0, 2), 2);
        assert_eq!(prog.clamp_shared(0, 0), 1);
        assert_eq!(prog.clamp_shared(0, 99), 1);
    }

    #[test]
    fn state_lookup_by_props() {
        let mut t = PropTable::new();
        let (p, a, b) = two_state_process(&mut t, 0);
        let pa = PropSet::from_iter_with_capacity(8, [a]);
        let pb = PropSet::from_iter_with_capacity(8, [b]);
        assert_eq!(p.state_by_props(&pa), Some(0));
        assert_eq!(p.state_by_props(&pb), Some(1));
        let none = PropSet::from_iter_with_capacity(8, [a, b]);
        assert_eq!(p.state_by_props(&none), None);
    }

    #[test]
    fn display_renders_arcs() {
        let mut t = PropTable::new();
        let (p, _, _) = two_state_process(&mut t, 0);
        let prog = Program {
            processes: vec![p],
            shared: vec![SharedVar {
                name: "x".into(),
                domain: 2,
            }],
            init_locals: vec![0],
            init_shared: vec![1],
            num_props: 8,
        };
        let txt = prog.display(&t);
        assert!(txt.contains("process P1:"));
        assert!(txt.contains("a0 -> b0:  true  /  skip"));
        assert!(txt.contains("b0 -> a0:  true  /  x0 := 2"));
        assert!(txt.contains("shared x: [1..2]"));
    }
}
