//! Shared helpers for the `ftsyn` benchmark suite and the paper
//! experiment harness (`cargo run -p ftsyn-bench --bin experiments`).

#![allow(missing_docs)]

use ftsyn::{problems::mutex, SynthesisProblem, Tolerance};

/// The fail-stop mutex problem restricted to the first `k` fault
/// actions (used for the |F|-scaling experiment, Section 7.4: runtime is
/// linear in the description size of the fault actions).
pub fn mutex_failstop_with_k_faults(k: usize) -> SynthesisProblem {
    let mut p = mutex::with_fail_stop(2, Tolerance::Masking);
    p.faults.truncate(k);
    p
}

/// Named problem builders for the spec-size scaling sweep.
pub fn scaling_problems() -> Vec<(String, Box<dyn Fn() -> SynthesisProblem>)> {
    let mut out: Vec<(String, Box<dyn Fn() -> SynthesisProblem>)> = Vec::new();
    for n in 2..=5 {
        out.push((
            format!("mutex{n}-fault-free"),
            Box::new(move || ftsyn::problems::mutex::fault_free(n)),
        ));
    }
    for n in 2..=4 {
        out.push((
            format!("barrier{n}-nonmasking"),
            Box::new(move || ftsyn::problems::barrier::with_general_state_faults(n)),
        ));
    }
    for n in 2..=4 {
        out.push((
            format!("mutex{n}-failstop-masking"),
            Box::new(move || ftsyn::problems::mutex::with_fail_stop(n, Tolerance::Masking)),
        ));
    }
    for n in 3..=5 {
        out.push((
            format!("philosophers{n}-fault-free"),
            Box::new(move || ftsyn::problems::mutex::dining_philosophers(n)),
        ));
    }
    for n in 1..=2 {
        out.push((
            format!("readers-writers-{n}R-writer-failstop"),
            Box::new(move || {
                ftsyn::problems::readers_writers::with_writer_fail_stop(n, Tolerance::Masking)
            }),
        ));
    }
    out
}
