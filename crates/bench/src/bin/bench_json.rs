//! Machine-readable benchmark trajectory: runs the five built-in
//! problem families (mutex, barrier, handshake, readers-writers, wire)
//! at scaled process counts and emits `BENCH_synthesis.json` at the
//! repository root.
//!
//! The JSON is hand-rolled (no serde — the offline build has no
//! external dependencies) and contains, per problem, the size and
//! per-phase timing statistics of one synthesis run plus the worklist,
//! scheduler, and minimization counters, and, for the largest
//! fault-prone instances, head-to-head timings of the worklist deletion
//! engine against the sweep-based reference, of the optimized build
//! kernel (cold and warm through the `Blocks`/`Tiles` memo cache)
//! against the pre-optimization reference kernel, of the
//! work-stealing expansion scheduler against the retained
//! level-synchronized engine at 8 worker threads, and of the
//! incremental semantic minimizer against the preserved per-attempt
//! greedy reference engine, and of the full tableau pipeline against
//! the CEGIS bounded-synthesis backend end to end — plus daemon
//! throughput (requests/sec) with a cold expansion cache against a
//! warmed shared one through `ftsyn-service`.
//!
//! ```text
//! cargo run --release -p ftsyn-bench --bin bench_json
//! ```

use ftsyn::ctl::Closure;
use ftsyn::guarded::interp::explore;
use ftsyn::guarded::sim::{simulate, SimConfig};
use ftsyn::problems::{barrier, handshake, mutex, readers_writers, wire};
use ftsyn::tableau::{
    apply_deletion_rules_mode, apply_deletion_rules_naive_mode, build, build_level_sync,
    build_reference, build_with_cache, build_with_threads, CertMode, ExpansionCache, FaultSpec,
    Tableau,
};
use ftsyn::{
    semantic_minimize_reference, semantic_minimize_with_threads, synthesize,
    synthesize_with_engine, unravel_mode, Budget, Engine, Governor, SynthesisOutcome,
    SynthesisProblem, SynthesisStats, ThreadPlan, Tolerance, Verification,
};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Escapes a string for a JSON literal (ASCII control, quote, backslash).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A hand-rolled JSON object/array builder: fields are appended in call
/// order, nesting is by string composition.
#[derive(Default)]
struct Obj {
    body: String,
}

impl Obj {
    fn raw(mut self, key: &str, value: &str) -> Obj {
        if !self.body.is_empty() {
            self.body.push(',');
        }
        let _ = write!(self.body, "\"{}\":{}", esc(key), value);
        self
    }

    fn str(self, key: &str, value: &str) -> Obj {
        let v = format!("\"{}\"", esc(value));
        self.raw(key, &v)
    }

    fn num(self, key: &str, value: usize) -> Obj {
        let v = value.to_string();
        self.raw(key, &v)
    }

    fn float(self, key: &str, value: f64) -> Obj {
        let v = if value.is_finite() {
            format!("{value:.3}")
        } else {
            "null".to_owned()
        };
        self.raw(key, &v)
    }

    fn bool(self, key: &str, value: bool) -> Obj {
        self.raw(key, if value { "true" } else { "false" })
    }

    fn ns(self, key: &str, d: Duration) -> Obj {
        let v = d.as_nanos().to_string();
        self.raw(key, &v)
    }

    fn build(self) -> String {
        format!("{{{}}}", self.body)
    }
}

fn arr(items: Vec<String>) -> String {
    format!("[{}]", items.join(","))
}

/// Serializes the statistics of one synthesis run.
fn stats_json(stats: &SynthesisStats, solved: bool) -> String {
    let bp = &stats.build_profile;
    let dp = &stats.deletion_profile;
    Obj::default()
        .bool("solved", solved)
        .num("spec_length", stats.spec_length)
        .num("fault_size", stats.fault_size)
        .num("closure_size", stats.closure_size)
        .num("tableau_nodes", stats.tableau_nodes)
        .num("alive_and", stats.alive_and)
        .num("alive_or", stats.alive_or)
        .raw(
            "deletions",
            &Obj::default()
                .num("prop_inconsistent", stats.deletion.prop_inconsistent)
                .num("or_without_children", stats.deletion.or_without_children)
                .num("and_missing_successor", stats.deletion.and_missing_successor)
                .num("au_unfulfilled", stats.deletion.au_unfulfilled)
                .num("eu_unfulfilled", stats.deletion.eu_unfulfilled)
                .num("unreachable", stats.deletion.unreachable)
                .build(),
        )
        .num("model_states", stats.model_states)
        .num("program_transitions", stats.program_transitions)
        .num("fault_transitions", stats.fault_transitions)
        .raw(
            "phase_ns",
            &Obj::default()
                .ns("build", stats.build_time)
                .ns("deletion", stats.deletion_time)
                .ns("unravel", stats.unravel_time)
                .ns("minimize", stats.minimize_time)
                .ns("extract", stats.extract_time)
                .ns("verify", stats.verify_time)
                .ns("residual", stats.residual_time)
                .ns("elapsed", stats.elapsed)
                .build(),
        )
        .raw(
            "build_profile",
            &Obj::default()
                .num("levels", bp.levels)
                .num("parallel_levels", bp.parallel_levels)
                .num("max_frontier", bp.max_frontier)
                .num("threads", bp.threads)
                .num("batches", bp.batches)
                .num("steals", bp.steals)
                .raw(
                    "worker_batches",
                    &arr(bp.worker_batches.iter().map(|n| n.to_string()).collect()),
                )
                .raw(
                    "worker_idle_ns",
                    &arr(bp
                        .worker_idle
                        .iter()
                        .map(|d| d.as_nanos().to_string())
                        .collect()),
                )
                .ns("expand_ns", bp.expand_time)
                .ns("apply_ns", bp.apply_time)
                .ns("intern_ns", bp.intern_time)
                .num("intern_probes", bp.intern_probes)
                .num("cache_hits", bp.cache_hits)
                .num("cache_misses", bp.cache_misses)
                .build(),
        )
        .raw(
            "minimize_profile",
            &Obj::default()
                .num("attempts", stats.minimize_profile.attempts)
                .num("merges", stats.minimize_profile.merges)
                .num("base_labelings", stats.minimize_profile.base_labelings)
                .num("full_checks", stats.minimize_profile.full_checks)
                .num("incremental_relabels", stats.minimize_profile.incremental_relabels)
                .num("pruned_candidates", stats.minimize_profile.pruned_candidates)
                .num("parallel_batches", stats.minimize_profile.parallel_batches)
                .num("parallel_steals", stats.minimize_profile.parallel_steals)
                .num("speculative_attempts", stats.minimize_profile.speculative_attempts)
                .num("threads", stats.minimize_profile.threads)
                .build(),
        )
        .raw(
            "extract_profile",
            &Obj::default()
                .num("model_states", stats.extract_profile.model_states)
                .num("shared_vars", stats.extract_profile.shared_vars)
                .num("explored_states", stats.extract_profile.explored_states)
                .num("off_model_states", stats.extract_profile.off_model_states)
                .num("refined_arcs", stats.extract_profile.refined_arcs)
                .num("refinement_rounds", stats.extract_profile.refinement_rounds)
                .bool("verified", stats.extract_profile.verified)
                .build(),
        )
        .raw(
            "deletion_profile",
            &Obj::default()
                .num("rounds", dp.rounds)
                .num("worklist_pops", dp.worklist_pops)
                .num("cert_builds", dp.cert_builds)
                .num("cert_reuses", dp.cert_reuses)
                .num("eventualities", dp.eventualities)
                .ns("delete_p_ns", dp.delete_p_time)
                .ns("structural_ns", dp.structural_time)
                .ns("eventuality_ns", dp.eventuality_time)
                .ns("reachability_ns", dp.reachability_time)
                .build(),
        )
        .build()
}

/// Serializes a verification outcome: overall verdict plus the failure
/// counts aggregated by [`ftsyn::FailureKind`].
fn verification_json(v: &Verification) -> String {
    let mut by_kind = Obj::default();
    for (kind, count) in v.failures_by_kind() {
        by_kind = by_kind.num(kind.name(), count);
    }
    Obj::default()
        .bool("ok", v.ok())
        .raw("failures_by_kind", &by_kind.build())
        .str("failure_summary", &v.failure_summary())
        .build()
}

/// Serializes an abort: the phase + structured reason, so the perf
/// trajectory distinguishes "slow" from "killed".
fn aborted_json(a: &ftsyn::AbortedSynthesis) -> String {
    Obj::default()
        .str("phase", a.phase.name())
        .str("reason", &a.reason.to_string())
        .str(
            "failures",
            &a.failures
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("; "),
        )
        .build()
}

/// Runs synthesis on one named problem and serializes the result. Every
/// row carries an `"aborted"` block: `null` for completed runs, the
/// phase/reason for governed runs that hit a budget.
fn run_problem(name: &str, procs: usize, mut problem: SynthesisProblem) -> String {
    eprintln!("synthesizing {name} ...");
    let (stats, solved, verification, aborted) = match synthesize(&mut problem) {
        SynthesisOutcome::Solved(s) => (s.stats.clone(), true, Some(s.verification.clone()), None),
        SynthesisOutcome::Impossible(imp) => (imp.stats, false, None, None),
        SynthesisOutcome::Aborted(a) => (a.stats.clone(), false, None, Some(a)),
    };
    let mut obj = Obj::default()
        .str("name", name)
        .num("procs", procs)
        .raw("stats", &stats_json(&stats, solved));
    if let Some(v) = verification {
        obj = obj.raw("verification", &verification_json(&v));
    }
    obj = match &aborted {
        Some(a) => obj.raw("aborted", &aborted_json(a)),
        None => obj.raw("aborted", "null"),
    };
    obj.build()
}

/// Runs one problem under an aggressive budget and serializes the
/// structured abort — a demonstration row showing what a budget-killed
/// run looks like in the trajectory (deterministic caps only, so the
/// row is stable across machines and thread counts).
fn run_budgeted(name: &str, procs: usize, mut problem: SynthesisProblem, budget: Budget) -> String {
    eprintln!("synthesizing {name} under a budget ...");
    let gov = Governor::with_budget(budget);
    let outcome = ftsyn::synthesize_governed(&mut problem, ftsyn::default_threads(), &gov);
    let (stats, solved, aborted) = match outcome {
        SynthesisOutcome::Solved(s) => (s.stats.clone(), true, None),
        SynthesisOutcome::Impossible(imp) => (imp.stats, false, None),
        SynthesisOutcome::Aborted(a) => (a.stats.clone(), false, Some(a)),
    };
    let mut obj = Obj::default()
        .str("name", name)
        .num("procs", procs)
        .raw("stats", &stats_json(&stats, solved));
    obj = match &aborted {
        Some(a) => obj.raw("aborted", &aborted_json(a)),
        None => obj.raw("aborted", "null"),
    };
    obj.build()
}

/// Builds the closure and tableau `T₀` of a problem (the input of the
/// deletion phase), exactly as the pipeline does.
fn tableau_of(problem: &mut SynthesisProblem) -> (Closure, Tableau) {
    let roots = problem.closure_roots();
    let spec = roots[0];
    let closure = Closure::build(&mut problem.arena, &problem.props, &roots);
    let tolerance_labels = problem.tolerance_label_sets(&closure);
    let fault_spec = FaultSpec {
        actions: problem.faults.clone(),
        tolerance_labels,
    };
    let mut root = closure.empty_label();
    root.insert(closure.index_of(spec).expect("spec is a closure root"));
    let t = build(&closure, &problem.props, root, &fault_spec);
    (closure, t)
}

/// Times `f` over `runs` runs on clones of `t0` and returns the best
/// wall-clock duration (best-of-n suppresses scheduler noise).
fn time_engine(t0: &Tableau, runs: usize, mut f: impl FnMut(&mut Tableau)) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..runs {
        let mut t = t0.clone();
        let tick = Instant::now();
        f(&mut t);
        best = best.min(tick.elapsed());
    }
    best
}

/// Head-to-head deletion-engine timing on one problem: worklist vs the
/// sweep-based reference, identical inputs, best of `runs`.
fn compare_engines(name: &str, procs: usize, mut problem: SynthesisProblem, runs: usize) -> String {
    eprintln!("comparing deletion engines on {name} ...");
    let (closure, t0) = tableau_of(&mut problem);
    let worklist = time_engine(&t0, runs, |t| {
        apply_deletion_rules_mode(t, &closure, CertMode::FaultFree);
    });
    let naive = time_engine(&t0, runs, |t| {
        apply_deletion_rules_naive_mode(t, &closure, CertMode::FaultFree);
    });
    let speedup = naive.as_secs_f64() / worklist.as_secs_f64();
    eprintln!(
        "  {name}: worklist {worklist:.2?}, naive {naive:.2?}, speedup {speedup:.2}x \
         ({} nodes)",
        t0.len()
    );
    Obj::default()
        .str("name", name)
        .num("procs", procs)
        .num("tableau_nodes", t0.len())
        .num("runs", runs)
        .ns("worklist_ns", worklist)
        .ns("naive_ns", naive)
        .float("speedup", speedup)
        .build()
}

/// Backend head-to-head: the full tableau pipeline against the CEGIS
/// bounded-synthesis engine on the same problem, end to end (problem
/// to verified program), best of `runs`. Outcome agreement is asserted
/// — a backend disagreement is a bug, not a data point.
fn compare_backends(
    name: &str,
    procs: usize,
    problem: impl Fn() -> SynthesisProblem,
    runs: usize,
) -> String {
    eprintln!("comparing synthesis backends on {name} ...");
    let mut tableau_best = Duration::MAX;
    let mut tableau_solved = false;
    let mut tableau_states = 0;
    for _ in 0..runs {
        let mut p = problem();
        let tick = Instant::now();
        let outcome = synthesize(&mut p);
        tableau_best = tableau_best.min(tick.elapsed());
        match &outcome {
            SynthesisOutcome::Solved(s) => {
                assert!(s.verification.ok(), "{name}: tableau verification failed");
                tableau_solved = true;
                tableau_states = s.stats.model_states;
            }
            SynthesisOutcome::Impossible(_) => tableau_solved = false,
            SynthesisOutcome::Aborted(a) => {
                panic!("{name}: ungoverned tableau run aborted: {}", a.reason)
            }
        }
    }
    let mut cegis_best = Duration::MAX;
    let mut cegis_solved = false;
    let mut cegis_states = 0;
    let mut candidates = 0;
    let mut solved_at_bound = None;
    for _ in 0..runs {
        let mut p = problem();
        let tick = Instant::now();
        let outcome = synthesize_with_engine(&mut p, Engine::Cegis, ThreadPlan::uniform(1), None);
        cegis_best = cegis_best.min(tick.elapsed());
        match &outcome {
            SynthesisOutcome::Solved(s) => {
                assert!(s.verification.ok(), "{name}: CEGIS verification failed");
                cegis_solved = true;
                cegis_states = s.stats.model_states;
                candidates = s.stats.cegis_profile.candidates;
                solved_at_bound = s.stats.cegis_profile.solved_at_bound;
            }
            SynthesisOutcome::Impossible(_) => cegis_solved = false,
            SynthesisOutcome::Aborted(a) => {
                panic!("{name}: ungoverned CEGIS run aborted: {}", a.reason)
            }
        }
    }
    assert_eq!(
        tableau_solved, cegis_solved,
        "{name}: the backends disagree on solvability"
    );
    let speedup = tableau_best.as_secs_f64() / cegis_best.as_secs_f64();
    eprintln!(
        "  {name}: tableau {tableau_best:.2?}, cegis {cegis_best:.2?} \
         ({candidates} candidates), speedup {speedup:.2}x"
    );
    Obj::default()
        .str("name", name)
        .num("procs", procs)
        .num("runs", runs)
        .bool("solved", tableau_solved)
        .ns("tableau_ns", tableau_best)
        .ns("cegis_ns", cegis_best)
        .num("tableau_states", tableau_states)
        .num("cegis_states", cegis_states)
        .num("cegis_candidates", candidates)
        .raw(
            "cegis_solved_at_bound",
            &solved_at_bound.map_or("null".to_owned(), |b| b.to_string()),
        )
        .float("speedup", speedup)
        .build()
}

/// Times `build_once` over `runs` runs and returns the last tableau
/// plus the best wall-clock duration.
fn time_build(runs: usize, mut build_once: impl FnMut() -> Tableau) -> (Tableau, Duration) {
    let mut best = Duration::MAX;
    let mut out = None;
    for _ in 0..runs {
        let tick = Instant::now();
        let t = build_once();
        best = best.min(tick.elapsed());
        out = Some(t);
    }
    (out.expect("runs >= 1"), best)
}

/// Panics unless the two tableaux are bit-identical: same node count
/// and, per node, same label, kind and successor list (edge order
/// included — downstream unraveling and program extraction are
/// deterministic functions of exactly this data, so equality here means
/// the synthesized programs agree too).
fn assert_identical(name: &str, what: &str, a: &Tableau, b: &Tableau) {
    assert_eq!(a.len(), b.len(), "{name}: {what} node count diverged");
    for id in a.node_ids() {
        assert_eq!(
            a.node(id).label,
            b.node(id).label,
            "{name}: {what} label diverged at {id:?}"
        );
        assert_eq!(a.node(id).kind, b.node(id).kind, "{name}: {what} {id:?}");
        assert_eq!(a.node(id).succ, b.node(id).succ, "{name}: {what} {id:?}");
        assert_eq!(
            a.alive(id),
            b.alive(id),
            "{name}: {what} alive flag diverged at {id:?}"
        );
    }
}

/// Head-to-head build-kernel timing on one problem: the optimized
/// expansion kernel — cold, and warm through a `Blocks`/`Tiles` memo
/// cache primed by a previous build — against the pre-optimization
/// reference kernel, identical inputs, single-threaded (so the ratio
/// measures the kernels, not parallelism), best of `runs`. The tableaux
/// must agree bit-for-bit, before and after the deletion phase.
fn compare_build(name: &str, procs: usize, mut problem: SynthesisProblem, runs: usize) -> String {
    eprintln!("comparing build kernels on {name} ...");
    let roots = problem.closure_roots();
    let spec = roots[0];
    let closure = Closure::build(&mut problem.arena, &problem.props, &roots);
    let fault_spec = FaultSpec {
        actions: problem.faults.clone(),
        tolerance_labels: problem.tolerance_label_sets(&closure),
    };
    let mut root = closure.empty_label();
    root.insert(closure.index_of(spec).expect("spec is a closure root"));

    let (t_ref, reference) = time_build(runs, || {
        build_reference(&closure, &problem.props, root.clone(), &fault_spec, 1).0
    });
    let (t_fast, fast) = time_build(runs, || {
        build_with_threads(&closure, &problem.props, root.clone(), &fault_spec, 1).0
    });
    let mut cache = ExpansionCache::new();
    build_with_cache(&closure, &problem.props, root.clone(), &fault_spec, 1, &mut cache);
    let (t_warm, warm) = time_build(runs, || {
        build_with_cache(&closure, &problem.props, root.clone(), &fault_spec, 1, &mut cache).0
    });
    let (_, warm_prof) =
        build_with_cache(&closure, &problem.props, root.clone(), &fault_spec, 1, &mut cache);

    assert_identical(name, "fast-vs-reference", &t_fast, &t_ref);
    assert_identical(name, "warm-vs-reference", &t_warm, &t_ref);

    // Run the deletion phase on both and require identical alive sets:
    // unraveling and extraction are deterministic in the alive tableau,
    // so this pins the synthesized program as well.
    let (mut da, mut db) = (t_fast.clone(), t_ref.clone());
    apply_deletion_rules_mode(&mut da, &closure, CertMode::FaultFree);
    apply_deletion_rules_mode(&mut db, &closure, CertMode::FaultFree);
    assert_identical(name, "post-deletion", &da, &db);
    let (alive_and, alive_or) = da.alive_counts();

    let speedup = reference.as_secs_f64() / fast.as_secs_f64();
    let warm_speedup = reference.as_secs_f64() / warm.as_secs_f64();
    eprintln!(
        "  {name}: reference {reference:.2?}, fast {fast:.2?} ({speedup:.2}x), \
         warm-cache {warm:.2?} ({warm_speedup:.2}x, {} hits) ({} nodes)",
        warm_prof.cache_hits,
        t_ref.len()
    );
    Obj::default()
        .str("kind", "kernel")
        .str("name", name)
        .num("procs", procs)
        .num("tableau_nodes", t_ref.len())
        .num("alive_and", alive_and)
        .num("alive_or", alive_or)
        .num("runs", runs)
        .ns("reference_ns", reference)
        .ns("fast_ns", fast)
        .ns("warm_cache_ns", warm)
        .num("warm_cache_hits", warm_prof.cache_hits)
        .float("speedup", speedup)
        .float("warm_speedup", warm_speedup)
        .bool("identical_tableaux", true)
        .build()
}

/// Head-to-head engine-generation timing on one problem: the
/// work-stealing expansion scheduler (with the current expansion
/// kernel) against the retained level-synchronized engine (which
/// freezes the previous generation's kernel, the same way
/// `build_reference` freezes the naive one), both at `threads` worker
/// threads on identical inputs, best of `runs`. The tableaux must agree
/// bit-for-bit — the engines differ only in scheduling and kernel
/// generation, never in output.
fn compare_scheduler(
    name: &str,
    procs: usize,
    mut problem: SynthesisProblem,
    threads: usize,
    runs: usize,
) -> String {
    eprintln!("comparing build engines on {name} at {threads} threads ...");
    let roots = problem.closure_roots();
    let spec = roots[0];
    let closure = Closure::build(&mut problem.arena, &problem.props, &roots);
    let fault_spec = FaultSpec {
        actions: problem.faults.clone(),
        tolerance_labels: problem.tolerance_label_sets(&closure),
    };
    let mut root = closure.empty_label();
    root.insert(closure.index_of(spec).expect("spec is a closure root"));

    let (t_ls, level_sync) = time_build(runs, || {
        build_level_sync(&closure, &problem.props, root.clone(), &fault_spec, threads).0
    });
    let (t_ws, work_stealing) = time_build(runs, || {
        build_with_threads(&closure, &problem.props, root.clone(), &fault_spec, threads).0
    });
    assert_identical(name, "ws-vs-levelsync", &t_ws, &t_ls);
    let (_, prof) =
        build_with_threads(&closure, &problem.props, root.clone(), &fault_spec, threads);

    let speedup = level_sync.as_secs_f64() / work_stealing.as_secs_f64();
    eprintln!(
        "  {name}: level-sync {level_sync:.2?}, work-stealing {work_stealing:.2?} \
         ({speedup:.2}x, {} batches, {} steals) ({} nodes)",
        prof.batches,
        prof.steals,
        t_ws.len()
    );
    Obj::default()
        .str("kind", "scheduler")
        .str("name", name)
        .num("procs", procs)
        .num("threads", threads)
        .num("tableau_nodes", t_ws.len())
        .num("runs", runs)
        .ns("level_sync_ns", level_sync)
        .ns("work_stealing_ns", work_stealing)
        .num("batches", prof.batches)
        .num("steals", prof.steals)
        .float("speedup", speedup)
        .bool("identical_tableaux", true)
        .build()
}

/// Head-to-head minimization-engine timing on one problem: the
/// incremental engine (labeling cache + transfer calculus + candidate
/// pruning, single-threaded so the ratio measures the algorithm, not
/// parallelism) against the preserved per-attempt greedy reference, on
/// the identical pre-minimization pipeline model, best of `runs`. The
/// minimized models and state mappings must agree byte-for-byte, and
/// the engines must commit the same merge sequence (same attempt and
/// merge counts).
fn compare_minimize(name: &str, procs: usize, mut problem: SynthesisProblem, runs: usize) -> String {
    eprintln!("comparing minimization engines on {name} ...");
    let mode = problem.mode;
    let (closure, mut tableau) = tableau_of(&mut problem);
    apply_deletion_rules_mode(&mut tableau, &closure, mode);
    assert!(tableau.alive(tableau.root()), "{name} is synthesizable");
    let c0 = tableau
        .alive_succ(tableau.root(), |_| true)
        .map(|(_, c)| c)
        .next()
        .expect("alive root has an alive AND child");
    let unraveled = unravel_mode(&tableau, &closure, &problem.props, c0, mode).model;
    // The pipeline quotients by bisimulation before minimizing.
    let model = ftsyn::kripke::bisimulation_quotient(&unraveled).model;

    let mut best = |f: &mut dyn FnMut(&mut SynthesisProblem) -> _| {
        let mut best = Duration::MAX;
        let mut out = None;
        for _ in 0..runs {
            let tick = Instant::now();
            let r = f(&mut problem);
            best = best.min(tick.elapsed());
            out = Some(r);
        }
        (out.expect("runs >= 1"), best)
    };
    let ((ref_model, ref_map, ref_prof), reference) =
        best(&mut |p| semantic_minimize_reference(p, model.clone()));
    let ((fast_model, fast_map, fast_prof), fast) =
        best(&mut |p| semantic_minimize_with_threads(p, model.clone(), 1));

    // `FtKripke` has no `PartialEq`; its `Debug` form renders every
    // state, valuation, role and edge deterministically, so string
    // equality is byte-identity.
    assert_eq!(
        format!("{fast_model:?}"),
        format!("{ref_model:?}"),
        "{name}: minimized models diverged"
    );
    assert_eq!(fast_map, ref_map, "{name}: state mappings diverged");
    assert_eq!(fast_prof.attempts, ref_prof.attempts, "{name}: attempts diverged");
    assert_eq!(fast_prof.merges, ref_prof.merges, "{name}: merges diverged");

    let speedup = reference.as_secs_f64() / fast.as_secs_f64();
    eprintln!(
        "  {name}: reference {reference:.2?}, incremental {fast:.2?} ({speedup:.2}x, \
         {} merges of {} tried, {} -> {} states)",
        fast_prof.merges,
        fast_prof.attempts,
        model.len(),
        fast_model.len()
    );
    Obj::default()
        .str("name", name)
        .num("procs", procs)
        .num("model_states", model.len())
        .num("minimized_states", fast_model.len())
        .num("runs", runs)
        .ns("reference_ns", reference)
        .ns("fast_ns", fast)
        .float("speedup", speedup)
        .num("attempts", fast_prof.attempts)
        .num("merges", fast_prof.merges)
        .num("full_checks", fast_prof.full_checks)
        .num("incremental_relabels", fast_prof.incremental_relabels)
        .num("pruned_candidates", fast_prof.pruned_candidates)
        .bool("identical_models", true)
        .build()
}

/// Daemon throughput on one corpus problem: requests per second with a
/// cold cache (every request hits a fresh [`Service`], nothing
/// memoized) against a warm one (a shared service primed by one
/// untimed request, so every timed request is served entirely from the
/// `Blocks`/`Tiles` memo). The replies are checked — warm requests
/// must report nonzero hits, zero misses, and solve — so the row
/// cannot silently measure error paths.
///
/// [`Service`]: ftsyn_service::Service
fn service_throughput(corpus_name: &str, requests: usize, threads: usize) -> String {
    use ftsyn_service::{Reply, Request, Service};
    eprintln!("measuring service throughput on {corpus_name} ...");

    let tick = Instant::now();
    for i in 0..requests {
        let svc = Service::new();
        let reply = svc.submit(Request::corpus(&format!("cold-{i}"), corpus_name, threads));
        assert!(
            matches!(reply, Reply::Solved { verified: true, .. }),
            "{corpus_name}: cold request failed: {reply:?}"
        );
    }
    let cold = tick.elapsed();

    let svc = Service::new();
    let prime = svc.submit(Request::corpus("prime", corpus_name, threads));
    assert!(matches!(prime, Reply::Solved { .. }));
    let tick = Instant::now();
    for i in 0..requests {
        let reply = svc.submit(Request::corpus(&format!("warm-{i}"), corpus_name, threads));
        let Reply::Solved {
            verified: true,
            cache_hits,
            cache_misses,
            ..
        } = reply
        else {
            panic!("{corpus_name}: warm request failed: {reply:?}")
        };
        assert!(cache_hits > 0, "{corpus_name}: warm request did not hit");
        assert_eq!(cache_misses, 0, "{corpus_name}: warm request missed");
    }
    let warm = tick.elapsed();

    let (cache_entries, cache_bytes, _, _) = svc.cache_stats();
    let (admitted, shed, _, _) = svc.admission_counters();

    // The same warm workload under a tight partition cap, so the
    // eviction path (satellite of the admission governor work) is
    // itself measured: entries are admitted, evicted in admission
    // order, and recomputed — replies must still solve identically.
    let capped_svc = Service::new().with_cache_limits(ftsyn::CacheLimits {
        max_entries: Some(32),
        max_bytes: None,
    });
    let prime = capped_svc.submit(Request::corpus("prime", corpus_name, threads));
    assert!(matches!(prime, Reply::Solved { .. }));
    let tick = Instant::now();
    for i in 0..requests {
        let reply = capped_svc.submit(Request::corpus(&format!("capped-{i}"), corpus_name, threads));
        assert!(
            matches!(reply, Reply::Solved { verified: true, .. }),
            "{corpus_name}: capped request failed: {reply:?}"
        );
    }
    let capped = tick.elapsed();
    let (_, _, evicted_entries, evicted_bytes) = capped_svc.cache_stats();

    let cold_rps = requests as f64 / cold.as_secs_f64();
    let warm_rps = requests as f64 / warm.as_secs_f64();
    let capped_rps = requests as f64 / capped.as_secs_f64();
    let speedup = warm_rps / cold_rps;
    eprintln!(
        "  {corpus_name}: cold {cold_rps:.2} req/s, warm {warm_rps:.2} req/s \
         ({speedup:.2}x), capped {capped_rps:.2} req/s \
         ({evicted_entries} evictions, {requests} requests, {threads} threads)"
    );
    Obj::default()
        .str("name", corpus_name)
        .num("requests", requests)
        .num("threads", threads)
        .ns("cold_ns", cold)
        .ns("warm_ns", warm)
        .ns("capped_ns", capped)
        .float("cold_requests_per_sec", cold_rps)
        .float("warm_requests_per_sec", warm_rps)
        .float("capped_requests_per_sec", capped_rps)
        .float("warm_speedup", speedup)
        .num("cache_entries", cache_entries)
        .num("cache_bytes", cache_bytes)
        .num("capped_evicted_entries", evicted_entries)
        .num("capped_evicted_bytes", evicted_bytes)
        .num("admitted", admitted)
        .num("shed", shed)
        .build()
}

/// Explores and simulates the (non-synthesis) wire system of
/// Section 2.3 — state-space size plus a deterministic fault-injection
/// trace summary.
fn run_wire(name: &str, bounded: Option<usize>) -> String {
    eprintln!("exploring {name} ...");
    let w = wire::build(bounded);
    let tick = Instant::now();
    let ex = explore(&w.program, &w.faults, &w.props).expect("wire explores");
    let explore_time = tick.elapsed();
    let trace = simulate(&w.program, &w.faults, &w.props, &SimConfig::default());
    Obj::default()
        .str("name", name)
        .num("procs", 2)
        .num("states", ex.kripke.len())
        .num("edges", ex.kripke.edge_count())
        .num("fault_edges", ex.kripke.fault_edge_count())
        .ns("explore_ns", explore_time)
        .num("sim_steps", trace.steps.len())
        .num("sim_faults", trace.fault_count())
        .build()
}

fn main() {
    let mut problems = Vec::new();

    // Mutual exclusion (Section 2.1 / E1–E2), fault-free and fail-stop.
    for n in 2..=4 {
        problems.push(run_problem(
            &format!("mutex{n}-fault-free"),
            n,
            mutex::fault_free(n),
        ));
    }
    // mutex4-failstop is the build-phase stress case: ~26k tableau
    // nodes. It entered the trajectory once incremental minimization
    // brought the end-to-end run down from ~35 s to seconds.
    for n in 2..=4 {
        problems.push(run_problem(
            &format!("mutex{n}-failstop-masking"),
            n,
            mutex::with_fail_stop(n, Tolerance::Masking),
        ));
    }

    // Multitolerance at three and four processes (Section 8.2 scaled
    // up): P1's fail-stop/repair actions only need nonmasking
    // tolerance, the other processes' faults stay masking. The
    // four-process row — formerly blocked by the extraction gap — runs
    // under deterministic governor caps and exercises the guard
    // refinement loop (see `extract_profile.refined_arcs`).
    problems.push(run_problem(
        "mutex3-failstop-multitolerance",
        3,
        mutex::with_fail_stop_multitolerance(3, |f| {
            if f.name().contains("P1") {
                Tolerance::Nonmasking
            } else {
                Tolerance::Masking
            }
        }),
    ));
    problems.push(run_budgeted(
        "mutex4-failstop-multitolerance",
        4,
        mutex::with_fail_stop_multitolerance(4, |f| {
            if f.name().contains("P1") {
                Tolerance::Nonmasking
            } else {
                Tolerance::Masking
            }
        }),
        Budget {
            max_states: Some(60_000),
            max_extract_refine_rounds: Some(4),
            ..Budget::default()
        },
    ));

    // Dining philosophers (fault-free), scaled to five processes. The
    // five-philosopher run is the pipeline's semantic-minimization
    // stress case: the build is milliseconds while minimization
    // dominates the wall-clock (see `minimize_profile.attempts`).
    for n in [3, 5] {
        problems.push(run_problem(
            &format!("philosophers{n}-fault-free"),
            n,
            mutex::dining_philosophers(n),
        ));
    }

    // Barrier synchronization with general state faults.
    for n in 2..=3 {
        problems.push(run_problem(
            &format!("barrier{n}-fault-free"),
            n,
            barrier::fault_free(n),
        ));
        problems.push(run_problem(
            &format!("barrier{n}-state-faults-nonmasking"),
            n,
            barrier::with_general_state_faults(n),
        ));
    }

    // Readers-writers with writer fail-stop.
    for readers in 1..=2 {
        problems.push(run_problem(
            &format!("readers-writers-{readers}R-writer-failstop"),
            readers + 1,
            readers_writers::with_writer_fail_stop(readers, Tolerance::Masking),
        ));
    }

    // Message-passing handshake under buffer faults.
    for (tag, fault) in [
        ("none", handshake::BufferFault::None),
        ("omission", handshake::BufferFault::Omission),
        ("timing", handshake::BufferFault::Timing),
    ] {
        problems.push(run_problem(
            &format!("handshake-{tag}-failsafe"),
            2,
            handshake::build(fault, Tolerance::FailSafe),
        ));
    }

    // Governed demonstration rows: the same problems killed by an
    // aggressive deterministic budget, so the trajectory shows what a
    // structured abort looks like (phase + counter-carrying reason).
    let budgeted = vec![
        run_budgeted(
            "mutex3-failstop-masking-state-cap",
            3,
            mutex::with_fail_stop(3, Tolerance::Masking),
            Budget {
                max_states: Some(2_000),
                ..Budget::default()
            },
        ),
        run_budgeted(
            "philosophers3-minimize-cap",
            3,
            mutex::dining_philosophers(3),
            Budget {
                max_minimize_attempts: Some(50),
                ..Budget::default()
            },
        ),
    ];

    // Daemon throughput: requests/sec against a cold vs a warmed
    // shared cache on the mutex family (the service's partitioned
    // memo serves repeat same-problem requests entirely from cache).
    let service_rows = vec![
        service_throughput("mutex2-failstop-masking", 10, 2),
        service_throughput("mutex3-failstop-masking", 5, 2),
    ];

    // The wire of Section 2.3 (interpreter + simulator, not synthesis).
    let wires = vec![
        run_wire("wire-unbounded", None),
        run_wire("wire-bounded-2", Some(2)),
    ];

    // Deletion-engine head-to-head: worklist vs the sweep-based
    // reference on fault-prone instances, scaled up in process count
    // (the worklist engine's advantage grows with tableau size).
    let comparisons = vec![
        compare_engines(
            "mutex2-failstop-masking",
            2,
            mutex::with_fail_stop(2, Tolerance::Masking),
            5,
        ),
        compare_engines(
            "mutex3-failstop-masking",
            3,
            mutex::with_fail_stop(3, Tolerance::Masking),
            3,
        ),
        compare_engines(
            "mutex4-failstop-masking",
            4,
            mutex::with_fail_stop(4, Tolerance::Masking),
            3,
        ),
        compare_engines(
            "mutex3-failstop-nonmasking",
            3,
            mutex::with_fail_stop(3, Tolerance::Nonmasking),
            3,
        ),
        compare_engines(
            "barrier3-state-faults",
            3,
            barrier::with_general_state_faults(3),
            3,
        ),
        compare_engines(
            "barrier3-failstop-impossible",
            3,
            barrier::with_fail_stop_impossible(3),
            3,
        ),
    ];

    // Backend head-to-head (Section 6 of DESIGN.md §13): the tableau
    // pipeline against the CEGIS bounded-synthesis engine, end to end.
    // mutex4-failstop is the headline row (the tableau's ~26k-node
    // build against a few hundred CEGIS candidates); philosophers4 is
    // the bound-wins case — a small deterministic solution the CEGIS
    // engine finds without ever building the conjoined-conflict
    // tableau.
    let backend_comparisons = vec![
        compare_backends(
            "mutex2-failstop-masking",
            2,
            || mutex::with_fail_stop(2, Tolerance::Masking),
            5,
        ),
        compare_backends(
            "mutex3-failstop-masking",
            3,
            || mutex::with_fail_stop(3, Tolerance::Masking),
            3,
        ),
        compare_backends(
            "mutex4-failstop-masking",
            4,
            || mutex::with_fail_stop(4, Tolerance::Masking),
            1,
        ),
        compare_backends(
            "barrier2-state-faults-nonmasking",
            2,
            || barrier::with_general_state_faults(2),
            5,
        ),
        compare_backends("philosophers3-fault-free", 3, || {
            mutex::dining_philosophers(3)
        }, 3),
        compare_backends("philosophers4-fault-free", 4, || {
            mutex::dining_philosophers(4)
        }, 3),
        compare_backends(
            "barrier2-failstop-impossible",
            2,
            || barrier::with_fail_stop_impossible(2),
            3,
        ),
    ];

    // Build-kernel head-to-head: optimized (cold and warm-cache)
    // expansion against the pre-optimization reference, bit-identical
    // outputs asserted ("kind": "kernel"), plus the work-stealing
    // scheduler against the retained level-synchronized engine at 8
    // worker threads ("kind": "scheduler").
    let build_comparisons = vec![
        compare_build(
            "mutex2-failstop-masking",
            2,
            mutex::with_fail_stop(2, Tolerance::Masking),
            5,
        ),
        compare_build(
            "mutex3-failstop-masking",
            3,
            mutex::with_fail_stop(3, Tolerance::Masking),
            3,
        ),
        compare_build(
            "barrier3-state-faults",
            3,
            barrier::with_general_state_faults(3),
            3,
        ),
        compare_scheduler(
            "mutex3-failstop-masking",
            3,
            mutex::with_fail_stop(3, Tolerance::Masking),
            8,
            3,
        ),
        compare_scheduler(
            "mutex4-failstop-masking",
            4,
            mutex::with_fail_stop(4, Tolerance::Masking),
            8,
            3,
        ),
    ];

    // Minimization-engine head-to-head: the incremental engine against
    // the preserved per-attempt greedy reference, byte-identical
    // outputs asserted. The two largest rows are exactly the
    // minimization-bound instances the incremental engine was built
    // for; the reference takes tens of seconds there, so they run once.
    let minimize_comparisons = vec![
        compare_minimize(
            "mutex2-failstop-masking",
            2,
            mutex::with_fail_stop(2, Tolerance::Masking),
            3,
        ),
        compare_minimize(
            "mutex3-failstop-masking",
            3,
            mutex::with_fail_stop(3, Tolerance::Masking),
            3,
        ),
        compare_minimize("philosophers3", 3, mutex::dining_philosophers(3), 3),
        compare_minimize(
            "mutex4-failstop-masking",
            4,
            mutex::with_fail_stop(4, Tolerance::Masking),
            1,
        ),
        compare_minimize("philosophers5", 5, mutex::dining_philosophers(5), 1),
    ];

    let doc = Obj::default()
        .str(
            "generated_by",
            "cargo run --release -p ftsyn-bench --bin bench_json",
        )
        .str("schema_version", "10")
        .raw("problems", &arr(problems))
        .raw("budgeted", &arr(budgeted))
        .raw("service_throughput", &arr(service_rows))
        .raw("wire", &arr(wires))
        .raw("backend_comparison", &arr(backend_comparisons))
        .raw("deletion_engine_comparison", &arr(comparisons))
        .raw("build_kernel_comparison", &arr(build_comparisons))
        .raw("minimize_kernel_comparison", &arr(minimize_comparisons))
        .build();

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_synthesis.json");
    std::fs::write(path, pretty(&doc)).expect("write BENCH_synthesis.json");
    eprintln!("wrote {path}");
}

/// Minimal pretty-printer for the emitted JSON (two-space indent) so
/// the committed file diffs readably. Operates on known-valid output of
/// [`Obj`]; strings are re-scanned for quotes/escapes only.
fn pretty(json: &str) -> String {
    let mut out = String::with_capacity(json.len() * 2);
    let mut indent = 0usize;
    let mut in_str = false;
    let mut escape = false;
    for c in json.chars() {
        if in_str {
            out.push(c);
            if escape {
                escape = false;
            } else if c == '\\' {
                escape = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                out.push(c);
            }
            '{' | '[' => {
                indent += 1;
                out.push(c);
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(c);
            }
            ',' => {
                out.push(c);
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            ':' => {
                out.push(c);
                out.push(' ');
            }
            c => out.push(c),
        }
    }
    out.push('\n');
    out
}
