//! Scaling benchmarks for the complexity claims of Section 7.4:
//! synthesis time is single-exponential in the specification size and
//! linear in the description size of the fault actions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftsyn::{problems::barrier, problems::mutex, synthesize, Tolerance};
use ftsyn_bench::mutex_failstop_with_k_faults;
use std::hint::black_box;

/// |spec| sweep: the mutex family over a growing number of processes.
/// |spec| grows roughly quadratically with the process count (pairwise
/// clauses), so the time column exhibits the exponential dependence.
fn bench_spec_scaling_mutex(c: &mut Criterion) {
    let mut g = c.benchmark_group("scaling/spec-mutex-fault-free");
    g.sample_size(10);
    for n in [2usize, 3, 4] {
        let spec_len = {
            let mut p = mutex::fault_free(n);
            let f = p.spec.formula(&mut p.arena);
            p.arena.length(f)
        };
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("I={n} (|spec|={spec_len})")),
            &n,
            |b, &n| {
                b.iter(|| {
                    let mut p = mutex::fault_free(n);
                    black_box(synthesize(&mut p).is_solved())
                })
            },
        );
    }
    g.finish();
}

/// |spec| sweep over the barrier family (with its full general-state
/// fault load, so |F| grows alongside the spec).
fn bench_spec_scaling_barrier(c: &mut Criterion) {
    let mut g = c.benchmark_group("scaling/spec-barrier-nonmasking");
    g.sample_size(10);
    for n in [2usize, 3] {
        g.bench_with_input(BenchmarkId::from_parameter(format!("I={n}")), &n, |b, &n| {
            b.iter(|| {
                let mut p = barrier::with_general_state_faults(n);
                black_box(synthesize(&mut p).is_solved())
            })
        });
    }
    g.finish();
}

/// |F| sweep at a fixed specification: the fail-stop mutex restricted to
/// its first k fault actions. Section 7.4 predicts linear growth.
fn bench_fault_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("scaling/faults-mutex2-failstop");
    g.sample_size(10);
    for k in [2usize, 4, 6, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(format!("k={k}")), &k, |b, &k| {
            b.iter(|| {
                let mut p = mutex_failstop_with_k_faults(k);
                black_box(synthesize(&mut p).is_solved())
            })
        });
    }
    g.finish();
}

/// Masking vs nonmasking vs fail-safe on the same problem: the tolerance
/// label changes the closure and the perturbed-state search space.
fn bench_tolerance_comparison(c: &mut Criterion) {
    let mut g = c.benchmark_group("scaling/tolerance-mutex2-failstop");
    g.sample_size(10);
    for (name, tol) in [
        ("masking", Tolerance::Masking),
        ("nonmasking", Tolerance::Nonmasking),
        ("failsafe", Tolerance::FailSafe),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &tol, |b, &tol| {
            b.iter(|| {
                let mut p = mutex::with_fail_stop(2, tol);
                black_box(synthesize(&mut p).is_solved())
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_spec_scaling_mutex,
    bench_spec_scaling_barrier,
    bench_fault_scaling,
    bench_tolerance_comparison
);
criterion_main!(benches);
