//! End-to-end synthesis benchmarks: one per headline experiment
//! (E3/E4 mutex+fail-stop, E5/E6 barrier, E7 impossibility, E9
//! multitolerance, plus the fault-free Emerson–Clarke baseline that the
//! paper extends).

use criterion::{criterion_group, criterion_main, Criterion};
use ftsyn::guarded::{BoolExpr, FaultAction, PropAssign};
use ftsyn::{
    problems::{barrier, mutex},
    synthesize, Tolerance, ToleranceAssignment,
};
use std::hint::black_box;

fn bench_mutex_fault_free(c: &mut Criterion) {
    c.bench_function("synthesis/mutex2-fault-free (EC82 baseline)", |b| {
        b.iter(|| {
            let mut p = mutex::fault_free(2);
            black_box(synthesize(&mut p).is_solved())
        })
    });
}

fn bench_mutex_failstop(c: &mut Criterion) {
    c.bench_function("synthesis/mutex2-failstop-masking (Fig 8-9)", |b| {
        b.iter(|| {
            let mut p = mutex::with_fail_stop(2, Tolerance::Masking);
            black_box(synthesize(&mut p).is_solved())
        })
    });
}

fn bench_barrier_nonmasking(c: &mut Criterion) {
    c.bench_function("synthesis/barrier2-nonmasking (Fig 10-11)", |b| {
        b.iter(|| {
            let mut p = barrier::with_general_state_faults(2);
            black_box(synthesize(&mut p).is_solved())
        })
    });
}

fn bench_impossibility(c: &mut Criterion) {
    c.bench_function("synthesis/barrier2-failstop-impossible (Sec 6.3)", |b| {
        b.iter(|| {
            let mut p = barrier::with_fail_stop_impossible(2);
            black_box(!synthesize(&mut p).is_solved())
        })
    });
}

fn bench_multitolerance(c: &mut Criterion) {
    c.bench_function("synthesis/mutex2-multitolerance (Sec 8.2)", |b| {
        b.iter(|| {
            let mut p = mutex::with_fail_stop(2, Tolerance::Masking);
            let n1 = p.props.id("N1").unwrap();
            let t1 = p.props.id("T1").unwrap();
            let c1 = p.props.id("C1").unwrap();
            let d1 = p.props.id("D1").unwrap();
            p.faults.push(
                FaultAction::new(
                    "corrupt-P1-to-C",
                    BoolExpr::tru(),
                    vec![
                        (c1, PropAssign::True),
                        (n1, PropAssign::False),
                        (t1, PropAssign::False),
                        (d1, PropAssign::False),
                    ],
                )
                .expect("valid"),
            );
            let k = p.faults.len();
            p.tolerance = ToleranceAssignment::PerFault(
                (0..k)
                    .map(|i| {
                        if i == k - 1 {
                            Tolerance::Nonmasking
                        } else {
                            Tolerance::Masking
                        }
                    })
                    .collect(),
            );
            black_box(synthesize(&mut p).is_solved())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_mutex_fault_free, bench_mutex_failstop,
              bench_barrier_nonmasking, bench_impossibility,
              bench_multitolerance
}
criterion_main!(benches);
