//! Micro-benchmarks of the substrates: tableau phases, the CTL model
//! checker, the interpreter and the simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use ftsyn::ctl::Closure;
use ftsyn::guarded::interp::explore;
use ftsyn::guarded::sim::{simulate, SimConfig};
use ftsyn::kripke::{Checker, Semantics};
use ftsyn::tableau::{apply_deletion_rules, blocks, build as build_tableau, FaultSpec};
use ftsyn::{problems::mutex, synthesize, Tolerance};
use std::hint::black_box;

/// `Blocks` on the mutex root label — the hot inner loop of tableau
/// construction.
fn bench_blocks(c: &mut Criterion) {
    let mut p = mutex::with_fail_stop(2, Tolerance::Masking);
    let roots = {
        let spec = p.spec.formula(&mut p.arena);
        vec![spec]
    };
    let closure = Closure::build(&mut p.arena, &p.props, &roots);
    let mut root_label = closure.empty_label();
    root_label.insert(closure.index_of(roots[0]).unwrap());
    c.bench_function("substrate/blocks-mutex-root", |b| {
        b.iter(|| black_box(blocks(&closure, &root_label).len()))
    });
}

/// Tableau construction + deletion for the fail-stop mutex (steps 1–2
/// of the method, isolated from unraveling and extraction).
fn bench_tableau_phases(c: &mut Criterion) {
    c.bench_function("substrate/tableau-build+delete-mutex-failstop", |b| {
        b.iter(|| {
            let mut p = mutex::with_fail_stop(2, Tolerance::Masking);
            let roots = p.closure_roots();
            let closure = Closure::build(&mut p.arena, &p.props, &roots);
            let tol = p.tolerance_label_sets(&closure);
            let fs = FaultSpec {
                actions: p.faults.clone(),
                tolerance_labels: tol,
            };
            let mut root_label = closure.empty_label();
            root_label.insert(closure.index_of(roots[0]).unwrap());
            let mut t = build_tableau(&closure, &p.props, root_label, &fs);
            black_box(apply_deletion_rules(&mut t, &closure).total())
        })
    });
}

/// Model checking the full mutex specification on its synthesized model.
fn bench_checker(c: &mut Criterion) {
    let mut p = mutex::with_fail_stop(2, Tolerance::Masking);
    let s = synthesize(&mut p).unwrap_solved();
    let spec = p.spec.formula(&mut p.arena);
    c.bench_function("substrate/model-check-mutex-spec", |b| {
        b.iter(|| {
            let mut ck = Checker::new(&s.model, Semantics::FaultFree);
            black_box(ck.holds(&p.arena, spec, s.model.init_states()[0]))
        })
    });
}

/// Interpreter: regenerate the mutex model from the extracted program
/// with all fault actions enabled.
fn bench_interpreter(c: &mut Criterion) {
    let mut p = mutex::with_fail_stop(2, Tolerance::Masking);
    let s = synthesize(&mut p).unwrap_solved();
    c.bench_function("substrate/interpret-mutex-program", |b| {
        b.iter(|| {
            black_box(
                explore(&s.program, &p.faults, &p.props)
                    .expect("explore")
                    .kripke
                    .len(),
            )
        })
    });
}

/// Simulator: 1000 steps of randomized fault injection.
fn bench_simulator(c: &mut Criterion) {
    let mut p = mutex::with_fail_stop(2, Tolerance::Masking);
    let s = synthesize(&mut p).unwrap_solved();
    let cfg = SimConfig {
        steps: 1000,
        fault_prob: 0.1,
        max_faults: 20,
        seed: 1,
    };
    c.bench_function("substrate/simulate-1000-steps", |b| {
        b.iter(|| black_box(simulate(&s.program, &p.faults, &p.props, &cfg).steps.len()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_blocks, bench_tableau_phases, bench_checker,
              bench_interpreter, bench_simulator
}
criterion_main!(benches);
