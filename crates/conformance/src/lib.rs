//! Conformance testing for the synthesis pipeline.
//!
//! The paper's method is sound and complete, and — since the pipeline
//! became fully deterministic — the synthesized synchronization
//! skeleton for a fixed problem is a *reproducible artifact*: the same
//! bytes on every run, every thread count, and every machine. This
//! crate locks that down from two directions:
//!
//! - **Golden snapshots** ([`golden`], `tests/golden.rs`): the rendered
//!   program for every example problem and `.ftsyn` spec is committed
//!   as a `.golden` file; a change to any pipeline stage that alters a
//!   program (or a state count) shows up as a reviewable diff.
//!   Regenerate with `UPDATE_GOLDEN=1 cargo test -p ftsyn-conformance`.
//! - **Seeded differential fuzzing** ([`generate`], [`differential`],
//!   `tests/fuzz.rs`): random problem instances (random region
//!   automata, invariants, fault actions, tolerance assignments) are
//!   synthesized *twice* per seed — run-to-run determinism is asserted
//!   byte-for-byte — and every synthesized program is re-checked by the
//!   `ftsyn-kripke` model checker as an independent oracle (`⊨` and
//!   `⊨ₙ`, via [`ftsyn::check_program`]). With the `slow-reference`
//!   feature, each case additionally cross-checks the optimized tableau
//!   build against the pre-optimization reference kernel.
//! - **Fault-injection campaigns** ([`campaign`], `tests/campaign.rs`):
//!   synthesized programs are *run* under seeded randomized simulation
//!   with injected faults, asserting the runtime counterpart of their
//!   tolerance — containment in the verified structure, safety `always`
//!   (masking/fail-safe), post-fault convergence (masking/nonmasking).
//!   Every fuzzer seed's program is simulation-checked the same way.
//! - **Budget-abort determinism** (`tests/budget.rs`): governed runs
//!   must abort at identical deterministic counters at every thread
//!   count, a governed-unlimited run must be byte-identical to an
//!   ungoverned one, and an injected worker panic must surface as a
//!   structured abort with no poisoned scheduler state left behind.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod campaign;
pub mod differential;
pub mod generate;
pub mod golden;
pub mod render;
