//! Runtime fault-injection conformance: a seeded simulation campaign
//! asserting the *runtime counterpart* of a synthesized program's
//! tolerance.
//!
//! The pipeline's verifier and the `ftsyn-kripke` model checker both
//! judge the program's generated structure; this module instead *runs*
//! the program — [`ftsyn::guarded::sim`] executes it under random
//! interleaving with randomly injected faults — and checks the traces:
//!
//! - **Containment** (every tolerance): each simulated state must be a
//!   state of the structure [`explore`] generated and the verifier
//!   approved. The simulator and the exploration interpreter share
//!   fault-outcome semantics, so a trace escaping the structure means
//!   one of them is wrong.
//! - **Safety `always`** (masking / fail-safe): `global–safety–spec`
//!   holds at *every* point of *every* trace, faults included.
//! - **Convergence after faults** (masking / nonmasking): once fault
//!   injection stops, the run re-enters and stays in the region where
//!   `AG(global–spec)` holds — the trace-level reading of the
//!   `AF AG(global)` recovery obligation, probed exactly like
//!   [`Trace::eventually_always_after_faults`] with a settle window of
//!   one structure diameter.

use ftsyn::guarded::interp::explore;
use ftsyn::guarded::sim::{campaign, CampaignConfig, SimConfig, Trace};
use ftsyn::guarded::Program;
use ftsyn::kripke::{Checker, Semantics, State, StateId};
use ftsyn::{CertMode, SynthesisProblem, Tolerance};

/// Tallies from one campaign (all assertions already passed).
#[derive(Clone, Copy, Debug)]
pub struct CampaignReport {
    /// Simulations run.
    pub runs: usize,
    /// Runs in which at least one fault actually fired.
    pub faulted_runs: usize,
    /// Whether safety-`always` was asserted (masking / fail-safe only).
    pub safety_checked: bool,
    /// Whether post-fault convergence was asserted (masking /
    /// nonmasking, and only when the problem has faults).
    pub convergence_checked: bool,
    /// Runs whose post-fault suffix was long enough to probe
    /// convergence (each probe must have succeeded).
    pub convergence_probes: usize,
}

/// Runs a seeded fault-injection campaign of `program` against
/// `problem` and asserts the runtime counterpart of its tolerance.
///
/// Returns a [`CampaignReport`] so the caller can additionally require
/// campaign *strength* (faults actually fired, convergence actually
/// probed) where the problem is known to warrant it — randomly
/// generated problems may have never-enabled faults or deadlocking
/// specs, so those tallies are reported rather than asserted here.
///
/// # Panics
///
/// Panics — naming the case and the per-run seed for replay — when a
/// trace escapes the explored structure, violates safety, or fails to
/// converge after its last fault.
pub fn assert_campaign(
    name: &str,
    problem: &mut SynthesisProblem,
    program: &Program,
    cfg: &CampaignConfig,
) -> CampaignReport {
    let ex = explore(program, &problem.faults, &problem.props)
        .unwrap_or_else(|e| panic!("{name}: synthesized program not executable: {e}"));

    // Settle window for the convergence probe: after the last fault,
    // any path avoiding the AG(global) region for more than |S| steps
    // would have to close a cycle outside it, contradicting AF AG.
    let settle = ex.kripke.len();
    let mut cfg = cfg.clone();
    cfg.steps = cfg.steps.max(2 * settle + 100);

    // Judge each explored state once; traces are then checked by state
    // lookup. (The judgments need the full state — shared variables
    // included — which is why the per-point checks below key on
    // [`State`] rather than using the valuation-only closures of
    // [`Trace::always`].)
    let safety = problem.spec.global_safety(&mut problem.arena);
    let ag_global = problem.spec.ag_global(&mut problem.arena);
    let semantics = match problem.mode {
        CertMode::FaultFree => Semantics::FaultFree,
        CertMode::FaultProne => Semantics::IncludeFaults,
    };
    let mut ck = Checker::new(&ex.kripke, semantics);
    let safe = ck.eval(&problem.arena, safety).clone();
    let good = ck.eval(&problem.arena, ag_global).clone();

    let tolerances = problem.tolerance.distinct();
    let safety_checked = tolerances
        .iter()
        .all(|t| matches!(t, Tolerance::Masking | Tolerance::FailSafe));
    let convergence_checked = !problem.faults.is_empty()
        && tolerances
            .iter()
            .all(|t| matches!(t, Tolerance::Masking | Tolerance::Nonmasking));

    let results = campaign(program, &problem.faults, &problem.props, &cfg);
    let mut report = CampaignReport {
        runs: results.len(),
        faulted_runs: 0,
        safety_checked,
        convergence_checked,
        convergence_probes: 0,
    };

    for (sc, trace) in &results {
        let ids = resolve_trace(name, &ex.kripke, sc, trace);
        if trace.fault_count() > 0 {
            report.faulted_runs += 1;
        }
        if safety_checked {
            for (i, id) in ids.iter().enumerate() {
                assert!(
                    safe[id.index()],
                    "{name} (seed {:#x}): safety violated at trace point {i} \
                     (state {})",
                    sc.seed,
                    ex.kripke.state(*id).display(&problem.props)
                );
            }
        }
        if convergence_checked {
            // The id-level counterpart of
            // `trace.eventually_always_after_faults(settle, ..)`.
            let start = trace.last_fault.map_or(0, |i| i + 1) + settle;
            if start < ids.len() {
                report.convergence_probes += 1;
                for (i, id) in ids.iter().enumerate().skip(start) {
                    assert!(
                        good[id.index()],
                        "{name} (seed {:#x}): no convergence — AG(global) \
                         still false at point {i}, {} steps after the last \
                         fault (state {})",
                        sc.seed,
                        i - trace.last_fault.map_or(0, |f| f + 1),
                        ex.kripke.state(*id).display(&problem.props)
                    );
                }
            }
        }
    }

    report
}

/// Maps every trace point to its state in the explored structure,
/// panicking (with the run's seed) if the simulation ever visited a
/// state the exploration did not.
fn resolve_trace(
    name: &str,
    kripke: &ftsyn::kripke::FtKripke,
    sc: &SimConfig,
    trace: &Trace,
) -> Vec<StateId> {
    trace
        .valuations
        .iter()
        .zip(&trace.shared)
        .enumerate()
        .map(|(i, (props, shared))| {
            let state = State {
                props: props.clone(),
                shared: shared.clone(),
            };
            kripke.find_state(&state).unwrap_or_else(|| {
                panic!(
                    "{name} (seed {:#x}): trace point {i} left the verified \
                     structure: no explored state matches {props:?} {shared:?}",
                    sc.seed
                )
            })
        })
        .collect()
}
