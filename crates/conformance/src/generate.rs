//! Seeded random synthesis-problem generation for differential fuzzing.
//!
//! Instances are small "region automaton" problems in the style of the
//! paper's examples: each process owns a one-hot block of region
//! propositions, the invariant keeps every process in exactly one
//! region, and optional conflict/liveness conjuncts plus corruption
//! fault actions (which teleport a process between regions, preserving
//! one-hotness) exercise every tolerance level and both certificate
//! modes. Everything is drawn from a caller-supplied [`XorShift64`], so
//! a seed fully determines the instance — the fuzzer builds the same
//! problem twice per seed to compare two independent synthesis runs.

use ftsyn::ctl::{FormulaArena, FormulaId, Owner, PropId, PropTable, Spec};
use ftsyn::guarded::{BoolExpr, FaultAction, PropAssign};
use ftsyn::{CertMode, SynthesisProblem, Tolerance, ToleranceAssignment};
use ftsyn_prng::XorShift64;

/// A generated instance: a descriptive name (stable per seed) plus the
/// problem itself.
pub struct GeneratedCase {
    /// Human-readable summary of the drawn structure, e.g.
    /// `procs2-regions3.2-conflict-live1-faults2-PerFault-FaultFree`.
    pub name: String,
    /// The synthesis problem.
    pub problem: SynthesisProblem,
}

const TOLERANCES: [Tolerance; 3] = [
    Tolerance::Masking,
    Tolerance::Nonmasking,
    Tolerance::FailSafe,
];

fn tolerance_tag(t: Tolerance) -> &'static str {
    match t {
        Tolerance::Masking => "mask",
        Tolerance::Nonmasking => "nonmask",
        Tolerance::FailSafe => "failsafe",
    }
}

/// Draws a random synthesis problem. The same RNG state always yields
/// the same problem (the generator consumes a fixed-per-branch number
/// of draws), so building twice from two RNGs seeded alike gives two
/// structurally identical problems with independent arenas.
pub fn random_problem(rng: &mut XorShift64) -> GeneratedCase {
    let n_procs = rng.range(1, 3);
    let regions: Vec<usize> = (0..n_procs).map(|_| rng.range(2, 4)).collect();

    let mut props = PropTable::new();
    let region_props: Vec<Vec<PropId>> = (0..n_procs)
        .map(|i| {
            (0..regions[i])
                .map(|j| {
                    props
                        .add(format!("p{i}r{j}"), Owner::Process(i))
                        .expect("generated names are fresh")
                })
                .collect()
        })
        .collect();

    let mut arena = FormulaArena::new(n_procs);

    // Init: every process sits in its region 0.
    let mut init_conj: Vec<FormulaId> = Vec::new();
    for rs in &region_props {
        for (j, &p) in rs.iter().enumerate() {
            init_conj.push(if j == 0 {
                arena.prop(p)
            } else {
                arena.neg_prop(p)
            });
        }
    }
    let init = arena.and_all(init_conj);

    // Model-of-computation clauses (the paper's Section 2.2, barrier
    // module idiom): one-hot regions per process and interleaving
    // ("other processes preserve my region"). These go in the
    // *coupling* spec, which every tolerance keeps under AG — putting
    // them in `global` instead lets a Nonmasking label (`AF AG global`)
    // suspend them during recovery, and the tableau then certifies
    // structures no concurrent program generates (a `Proc(i)` edge
    // changing process j's propositions), which the differential oracle
    // rejects.
    let mut coupling_conj: Vec<FormulaId> = Vec::new();
    for rs in &region_props {
        let any = {
            let ids: Vec<FormulaId> = rs.iter().map(|&p| arena.prop(p)).collect();
            arena.or_all(ids)
        };
        coupling_conj.push(any);
        for (a, &p) in rs.iter().enumerate() {
            for &q in &rs[a + 1..] {
                let both = {
                    let (fp, fq) = (arena.prop(p), arena.prop(q));
                    arena.and(fp, fq)
                };
                coupling_conj.push(arena.not(both));
            }
        }
    }
    for (i, rs) in region_props.iter().enumerate() {
        for j in 0..n_procs {
            if j == i {
                continue;
            }
            for &p in rs {
                let cur = arena.prop(p);
                let ax = arena.ax(j, cur);
                coupling_conj.push(arena.implies(cur, ax));
            }
        }
    }
    let coupling = arena.and_all(coupling_conj);

    // Problem requirements (tolerance-weakened at perturbed states):
    // optional progress possibility, conflict, and liveness conjuncts.
    let mut global_conj: Vec<FormulaId> = Vec::new();
    let mut tags: Vec<String> = Vec::new();
    for i in 0..n_procs {
        if rng.chance(0.7) {
            let t = arena.tru();
            global_conj.push(arena.ex(i, t));
        }
    }
    let conflict = n_procs == 2 && rng.chance(0.5);
    if conflict {
        // Region 1 is critical: both processes have one (regions ≥ 2).
        let both = {
            let a = arena.prop(region_props[0][1]);
            let b = arena.prop(region_props[1][1]);
            arena.and(a, b)
        };
        global_conj.push(arena.not(both));
        tags.push("conflict".into());
    }
    let mut live = 0;
    for rs in &region_props {
        if rng.chance(0.5) {
            let r0 = arena.prop(rs[0]);
            let af_r1 = {
                let r1 = arena.prop(rs[1]);
                arena.af(r1)
            };
            global_conj.push(arena.implies(r0, af_r1));
            live += 1;
        }
    }
    if live > 0 {
        tags.push(format!("live{live}"));
    }
    let global = arena.and_all(global_conj);
    let spec = Spec::with_coupling(init, global, coupling);

    // Corruption faults: teleport a process from one region to another
    // (one-hotness is preserved, so every outcome maps to a local state
    // of any program over these propositions).
    let mut faults: Vec<FaultAction> = Vec::new();
    for (i, rs) in region_props.iter().enumerate() {
        if !rng.chance(0.5) {
            continue;
        }
        let js = rng.below(rs.len());
        let jt = (js + rng.range(1, rs.len())) % rs.len();
        faults.push(
            FaultAction::new(
                format!("corrupt-P{i}-r{js}to{jt}"),
                BoolExpr::Prop(rs[js]),
                vec![(rs[js], PropAssign::False), (rs[jt], PropAssign::True)],
            )
            .expect("guard reads no shared variable"),
        );
    }

    let (tolerance, tol_tag) = if faults.len() >= 2 && rng.chance(0.5) {
        let tols: Vec<Tolerance> = faults
            .iter()
            .map(|_| *rng.choose(&TOLERANCES).expect("non-empty"))
            .collect();
        let tag = format!(
            "perfault.{}",
            tols.iter()
                .map(|&t| tolerance_tag(t))
                .collect::<Vec<_>>()
                .join(".")
        );
        (ToleranceAssignment::PerFault(tols), tag)
    } else {
        let t = *rng.choose(&TOLERANCES).expect("non-empty");
        (
            ToleranceAssignment::Uniform(t),
            tolerance_tag(t).to_owned(),
        )
    };

    let fault_prone = rng.chance(0.15);
    let name = format!(
        "procs{n_procs}-regions{}{}-faults{}-{}-{}",
        regions
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("."),
        tags.iter().map(|t| format!("-{t}")).collect::<String>(),
        faults.len(),
        tol_tag,
        if fault_prone { "faultprone" } else { "faultfree" },
    );

    let mut problem = SynthesisProblem::new(arena, props, spec, faults, Tolerance::Masking);
    problem.tolerance = tolerance;
    if fault_prone {
        problem.mode = CertMode::FaultProne;
    }
    GeneratedCase { name, problem }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_structure() {
        for seed in 1..=30 {
            let a = random_problem(&mut XorShift64::new(seed));
            let b = random_problem(&mut XorShift64::new(seed));
            assert_eq!(a.name, b.name, "seed {seed}");
            assert_eq!(a.problem.props.len(), b.problem.props.len(), "seed {seed}");
            assert_eq!(a.problem.faults.len(), b.problem.faults.len(), "seed {seed}");
            assert_eq!(a.problem.tolerance, b.problem.tolerance, "seed {seed}");
            assert_eq!(a.problem.mode, b.problem.mode, "seed {seed}");
        }
    }

    #[test]
    fn generator_covers_the_tolerance_and_mode_space() {
        let (mut per_fault, mut fault_prone, mut with_faults, mut fault_free_cases) =
            (0, 0, 0, 0);
        for seed in 1..=200 {
            let c = random_problem(&mut XorShift64::new(seed));
            match c.problem.tolerance {
                ToleranceAssignment::PerFault(_) => per_fault += 1,
                ToleranceAssignment::Uniform(_) => {}
            }
            if c.problem.mode == CertMode::FaultProne {
                fault_prone += 1;
            }
            if c.problem.faults.is_empty() {
                fault_free_cases += 1;
            } else {
                with_faults += 1;
            }
        }
        assert!(per_fault > 0, "multitolerance cases must occur");
        assert!(fault_prone > 0, "fault-prone certificate cases must occur");
        assert!(with_faults > 0 && fault_free_cases > 0, "both fault settings");
    }
}
