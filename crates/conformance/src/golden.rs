//! Golden-file comparison with an `UPDATE_GOLDEN=1` regeneration path.

use std::path::PathBuf;

/// The on-disk location of a committed golden file.
pub fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("goldens")
        .join(format!("{name}.golden"))
}

/// Whether this run regenerates goldens instead of checking them.
pub fn updating() -> bool {
    std::env::var_os("UPDATE_GOLDEN").is_some_and(|v| v == "1")
}

/// Compares `actual` against the committed golden `name`, or rewrites
/// the golden when `UPDATE_GOLDEN=1` is set.
///
/// # Panics
///
/// Panics when the golden is missing or differs (pointing at the first
/// diverging line), or when regeneration cannot write the file.
pub fn assert_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if updating() {
        let dir = path.parent().expect("goldens/ has a parent");
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| panic!("cannot create {}: {e}", dir.display()));
        std::fs::write(&path, actual)
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run `UPDATE_GOLDEN=1 cargo test -p \
             ftsyn-conformance` to create it",
            path.display()
        )
    });
    if expected != actual {
        panic!(
            "golden mismatch for `{name}` ({}):\n{}\nRun `UPDATE_GOLDEN=1 cargo test -p \
             ftsyn-conformance` to accept the new output.",
            path.display(),
            first_divergence(&expected, actual)
        );
    }
}

/// A human-readable description of the first line where two texts
/// diverge.
fn first_divergence(expected: &str, actual: &str) -> String {
    let (mut e, mut a) = (expected.lines(), actual.lines());
    let mut line = 1;
    loop {
        match (e.next(), a.next()) {
            (Some(x), Some(y)) if x == y => line += 1,
            (Some(x), Some(y)) => {
                return format!("line {line}:\n  expected: {x}\n  actual:   {y}")
            }
            (Some(x), None) => return format!("line {line}: actual ends early (expected: {x})"),
            (None, Some(y)) => return format!("line {line}: actual has extra line: {y}"),
            (None, None) => return "texts differ only in trailing whitespace".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divergence_points_at_first_differing_line() {
        let msg = first_divergence("a\nb\nc\n", "a\nX\nc\n");
        assert!(msg.contains("line 2"), "{msg}");
        assert!(msg.contains("expected: b"), "{msg}");
        assert!(msg.contains("actual:   X"), "{msg}");
    }

    #[test]
    fn divergence_reports_truncation() {
        let msg = first_divergence("a\nb\n", "a\n");
        assert!(msg.contains("ends early"), "{msg}");
        let msg = first_divergence("a\n", "a\nextra\n");
        assert!(msg.contains("extra line"), "{msg}");
    }

    #[test]
    fn golden_path_is_under_the_crate() {
        let p = golden_path("x");
        assert!(p.ends_with("goldens/x.golden"), "{}", p.display());
    }
}
