//! Canonical, timing-free rendering of synthesis results.
//!
//! The golden suite and the differential fuzzer both compare rendered
//! text byte-for-byte, so everything here must be a pure function of
//! the synthesized artifact — no timings, no environment.

use ftsyn::guarded::Program;
use ftsyn::kripke::StateRole;
use ftsyn::ctl::PropTable;
use ftsyn::{Synthesized, SynthesisOutcome, SynthesisProblem};
use std::fmt::Write as _;

/// Renders a solved synthesis: model-state counts by role, transition
/// counts, the verification verdict with per-kind failure counts, and
/// the extracted program.
pub fn render_solved(problem: &SynthesisProblem, s: &Synthesized) -> String {
    let roles = s.model.classify();
    let count = |r: StateRole| roles.iter().filter(|x| **x == r).count();
    let mut out = String::new();
    writeln!(
        out,
        "states: {} (normal {}, perturbed {}, recovery {})",
        s.stats.model_states,
        count(StateRole::Normal),
        count(StateRole::Perturbed),
        count(StateRole::Recovery),
    )
    .expect("writing to String");
    writeln!(
        out,
        "transitions: {} program + {} fault",
        s.stats.program_transitions, s.stats.fault_transitions
    )
    .expect("writing to String");
    let verdict = if s.verification.ok() {
        "PASS".to_owned()
    } else {
        format!("FAIL ({})", s.verification.failure_summary())
    };
    writeln!(out, "verification: {verdict}").expect("writing to String");
    out.push_str("program:\n");
    push_program(&mut out, &s.program, &problem.props);
    out
}

/// Renders either outcome of a synthesis run.
pub fn render_outcome(problem: &SynthesisProblem, outcome: &SynthesisOutcome) -> String {
    match outcome {
        SynthesisOutcome::Solved(s) => render_solved(problem, s),
        SynthesisOutcome::Impossible(imp) => format!(
            "impossible (tableau {} nodes, {} deleted)\n",
            imp.stats.tableau_nodes,
            imp.stats.deletion.total()
        ),
        // Deterministic caps render their counters; the reason text is
        // timing-free for every abort a conformance test can produce
        // (deadline aborts embed durations, but the suites never set
        // deadlines on compared runs).
        SynthesisOutcome::Aborted(a) => {
            format!("aborted in {} phase: {}\n", a.phase, a.reason)
        }
    }
}

/// Renders a concrete (hand-written) guarded-command program, as used
/// for the wire example's golden file.
pub fn render_program(program: &Program, props: &PropTable) -> String {
    let mut out = String::new();
    push_program(&mut out, program, props);
    out
}

fn push_program(out: &mut String, program: &Program, props: &PropTable) {
    let text = program.display(props).to_string();
    out.push_str(&text);
    if !text.ends_with('\n') {
        out.push('\n');
    }
}
