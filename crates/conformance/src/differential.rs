//! The differential-fuzzer case runner: synthesize twice, compare
//! byte-for-byte, and re-check every synthesized program with the model
//! checker as an independent oracle.

use crate::generate::{random_problem, GeneratedCase};
use crate::render::render_solved;
use ftsyn::{check_program, synthesize, SynthesisOutcome};
use ftsyn_prng::XorShift64;

/// The summarized result of one fuzzer case.
#[derive(Clone, Debug)]
pub struct CaseResult {
    /// The generated instance's descriptive name.
    pub name: String,
    /// Whether synthesis succeeded (`false`: proven impossible).
    pub solved: bool,
    /// Final model-state count (0 for impossible instances).
    pub model_states: usize,
}

/// Runs the full differential check for one seed:
///
/// 1. builds the seed's problem **twice** and synthesizes each copy;
/// 2. asserts the two runs agree — same outcome, identical model-state
///    counts, byte-identical rendered programs (run-to-run determinism);
/// 3. for solved cases, asserts the pipeline's own verification passed
///    and re-checks the extracted program against the specification,
///    tolerance labels, and fault closure with the `ftsyn-kripke` model
///    checker ([`check_program`]), which explores the program
///    independently of the tableau;
/// 4. with the `slow-reference` feature, cross-checks the optimized
///    tableau build against the reference kernel on a third copy.
///
/// # Panics
///
/// Panics on any divergence or oracle failure, naming the seed so the
/// case can be replayed.
pub fn run_seed(seed: u64) -> CaseResult {
    let GeneratedCase {
        name,
        problem: mut p1,
    } = random_problem(&mut XorShift64::new(seed));
    let GeneratedCase {
        problem: mut p2, ..
    } = random_problem(&mut XorShift64::new(seed));

    #[cfg(feature = "slow-reference")]
    {
        let GeneratedCase {
            problem: mut p3, ..
        } = random_problem(&mut XorShift64::new(seed));
        cross_check_build(seed, &name, &mut p3);
    }

    let o1 = synthesize(&mut p1);
    let o2 = synthesize(&mut p2);
    match (o1, o2) {
        (SynthesisOutcome::Solved(s1), SynthesisOutcome::Solved(s2)) => {
            assert_eq!(
                s1.stats.model_states, s2.stats.model_states,
                "seed {seed} ({name}): model-state counts diverged between runs"
            );
            let (r1, r2) = (render_solved(&p1, &s1), render_solved(&p2, &s2));
            assert_eq!(
                r1, r2,
                "seed {seed} ({name}): rendered programs diverged between runs"
            );
            assert!(
                s1.verification.ok(),
                "seed {seed} ({name}): pipeline verification failed: {}",
                s1.verification.failure_summary()
            );
            let report = check_program(&mut p1, &s1.program).unwrap_or_else(|e| {
                panic!("seed {seed} ({name}): synthesized program not executable: {e}")
            });
            assert!(
                report.tolerant(),
                "seed {seed} ({name}): model checker rejects the synthesized program: {}",
                report.verification.failure_summary()
            );
            CaseResult {
                name,
                solved: true,
                model_states: s1.stats.model_states,
            }
        }
        (SynthesisOutcome::Impossible(i1), SynthesisOutcome::Impossible(i2)) => {
            assert_eq!(
                i1.stats.tableau_nodes, i2.stats.tableau_nodes,
                "seed {seed} ({name}): tableau sizes diverged between runs"
            );
            assert_eq!(
                i1.stats.deletion, i2.stats.deletion,
                "seed {seed} ({name}): deletion statistics diverged between runs"
            );
            CaseResult {
                name,
                solved: false,
                model_states: 0,
            }
        }
        _ => panic!("seed {seed} ({name}): synthesis outcomes diverged between runs"),
    }
}

/// Asserts two tableaux are bit-identical: same nodes in the same
/// order, same labels, kinds, successor lists, and alive flags.
pub fn assert_tableaux_identical(
    what: &str,
    a: &ftsyn::tableau::Tableau,
    b: &ftsyn::tableau::Tableau,
) {
    assert_eq!(a.len(), b.len(), "{what}: node count diverged");
    for id in a.node_ids() {
        assert_eq!(a.node(id).label, b.node(id).label, "{what}: label at {id:?}");
        assert_eq!(a.node(id).kind, b.node(id).kind, "{what}: kind at {id:?}");
        assert_eq!(a.node(id).succ, b.node(id).succ, "{what}: edges at {id:?}");
        assert_eq!(a.alive(id), b.alive(id), "{what}: alive flag at {id:?}");
    }
}

/// Cross-checks the optimized build kernel against the pre-optimization
/// reference kernel on this problem's tableau (both single-threaded, so
/// the comparison isolates the kernels).
#[cfg(feature = "slow-reference")]
pub fn cross_check_build(seed: u64, name: &str, problem: &mut ftsyn::SynthesisProblem) {
    use ftsyn::ctl::Closure;
    use ftsyn::tableau::{build_reference, build_with_threads, FaultSpec};

    let roots = problem.closure_roots();
    let spec = roots[0];
    let closure = Closure::build(&mut problem.arena, &problem.props, &roots);
    let tolerance_labels = problem.tolerance_label_sets(&closure);
    let fault_spec = FaultSpec {
        actions: problem.faults.clone(),
        tolerance_labels,
    };
    let mut root = closure.empty_label();
    root.insert(closure.index_of(spec).expect("spec is a closure root"));
    let (fast, _) = build_with_threads(&closure, &problem.props, root.clone(), &fault_spec, 1);
    let (reference, _) = build_reference(&closure, &problem.props, root, &fault_spec, 1);
    assert_tableaux_identical(&format!("seed {seed} ({name}) build kernels"), &fast, &reference);
}
