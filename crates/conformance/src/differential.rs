//! The differential-fuzzer case runner: synthesize the same seed across
//! a whole thread-count matrix, compare byte-for-byte, and re-check
//! every synthesized program with the model checker as an independent
//! oracle.

use crate::campaign::assert_campaign;
use crate::generate::{random_problem, GeneratedCase};
use crate::render::render_solved;
use ftsyn::guarded::sim::CampaignConfig;
use ftsyn::{
    check_program, synthesize_with_engine, synthesize_with_threads, AbortReason, Engine,
    SynthesisOutcome, SynthesisProblem, ThreadPlan,
};
use ftsyn_prng::XorShift64;

/// Thread counts every seed is synthesized at. Programs must be
/// byte-identical across the whole matrix — this pins the work-stealing
/// scheduler's determinism the same way run-to-run determinism is
/// pinned (the runs are independent processes-worth of state anyway:
/// each gets a freshly generated problem copy).
pub const THREAD_MATRIX: [usize; 3] = [1, 2, 8];

/// The summarized result of one fuzzer case.
#[derive(Clone, Debug)]
pub struct CaseResult {
    /// The generated instance's descriptive name.
    pub name: String,
    /// Whether synthesis succeeded (`false`: proven impossible).
    pub solved: bool,
    /// Final model-state count (0 for impossible instances).
    pub model_states: usize,
}

/// Runs the full differential check for one seed:
///
/// 1. builds a fresh copy of the seed's problem per entry of
///    [`THREAD_MATRIX`] and synthesizes each at that thread count;
/// 2. asserts all runs agree — same outcome, identical model-state
///    counts, byte-identical rendered programs (covers both run-to-run
///    and scheduler determinism);
/// 3. for solved cases, asserts the pipeline's own verification passed
///    and re-checks the extracted program against the specification,
///    tolerance labels, and fault closure with the `ftsyn-kripke` model
///    checker ([`check_program`]), which explores the program
///    independently of the tableau, and runs a small seeded
///    fault-injection campaign ([`assert_campaign`]) so the program's
///    runtime traces are simulation-checked too;
/// 4. cross-checks the work-stealing build engine against the retained
///    level-synchronized engine on this seed's tableau, and — with the
///    `slow-reference` feature — both against the naive reference
///    kernel.
///
/// # Panics
///
/// Panics on any divergence or oracle failure, naming the seed so the
/// case can be replayed.
pub fn run_seed(seed: u64) -> CaseResult {
    let GeneratedCase {
        name,
        problem: mut p1,
    } = random_problem(&mut XorShift64::new(seed));

    #[cfg(feature = "slow-reference")]
    {
        let GeneratedCase {
            problem: mut p3, ..
        } = random_problem(&mut XorShift64::new(seed));
        cross_check_build(seed, &name, &mut p3);
    }
    cross_check_engines(seed, &name);

    let o1 = synthesize_with_threads(&mut p1, THREAD_MATRIX[0]);
    match o1 {
        SynthesisOutcome::Solved(s1) => {
            let r1 = render_solved(&p1, &s1);
            for &threads in &THREAD_MATRIX[1..] {
                let GeneratedCase {
                    problem: mut p, ..
                } = random_problem(&mut XorShift64::new(seed));
                let SynthesisOutcome::Solved(s) = synthesize_with_threads(&mut p, threads)
                else {
                    panic!("seed {seed} ({name}): outcome diverged at {threads} threads")
                };
                assert_eq!(
                    s1.stats.model_states, s.stats.model_states,
                    "seed {seed} ({name}): model-state counts diverged at {threads} threads"
                );
                assert_eq!(
                    r1,
                    render_solved(&p, &s),
                    "seed {seed} ({name}): rendered programs diverged at {threads} threads"
                );
            }
            assert!(
                s1.verification.ok(),
                "seed {seed} ({name}): pipeline verification failed: {}",
                s1.verification.failure_summary()
            );
            let report = check_program(&mut p1, &s1.program).unwrap_or_else(|e| {
                panic!("seed {seed} ({name}): synthesized program not executable: {e}")
            });
            assert!(
                report.tolerant(),
                "seed {seed} ({name}): model checker rejects the synthesized program: {}",
                report.verification.failure_summary()
            );
            // Runtime oracle: a small seeded fault-injection campaign
            // of the synthesized program (simulation-level counterpart
            // of the model check above — see [`crate::campaign`]).
            assert_campaign(
                &format!("seed {seed} ({name})"),
                &mut p1,
                &s1.program,
                &CampaignConfig {
                    runs: 4,
                    steps: 200,
                    base_seed: seed,
                },
            );
            CaseResult {
                name,
                solved: true,
                model_states: s1.stats.model_states,
            }
        }
        SynthesisOutcome::Impossible(i1) => {
            for &threads in &THREAD_MATRIX[1..] {
                let GeneratedCase {
                    problem: mut p, ..
                } = random_problem(&mut XorShift64::new(seed));
                let SynthesisOutcome::Impossible(i) = synthesize_with_threads(&mut p, threads)
                else {
                    panic!("seed {seed} ({name}): outcome diverged at {threads} threads")
                };
                assert_eq!(
                    i1.stats.tableau_nodes, i.stats.tableau_nodes,
                    "seed {seed} ({name}): tableau sizes diverged at {threads} threads"
                );
                assert_eq!(
                    i1.stats.deletion, i.stats.deletion,
                    "seed {seed} ({name}): deletion statistics diverged at {threads} threads"
                );
            }
            CaseResult {
                name,
                solved: false,
                model_states: 0,
            }
        }
        SynthesisOutcome::Aborted(a) => panic!(
            "seed {seed} ({name}): ungoverned synthesis aborted in {} phase: {}",
            a.phase, a.reason
        ),
    }
}

/// The summarized result of one backend-differential case.
#[derive(Clone, Debug)]
pub struct BackendCaseResult {
    /// The generated instance's descriptive name.
    pub name: String,
    /// The tableau engine's outcome (`true` = solved).
    pub tableau_solved: bool,
    /// Whether the CEGIS engine solved the instance within its bound
    /// (`false`: proven impossible, or bound-exhausted on a case the
    /// tableau solved).
    pub cegis_solved: bool,
}

/// Runs the backend-differential check for one fuzzer seed: the same
/// generated instance through the tableau engine and the CEGIS engine,
/// asserting the agreement contract —
///
/// - CEGIS `Solved` ⟹ tableau `Solved`, and the CEGIS program is
///   re-checked by the kripke oracle ([`check_program`]) and a seeded
///   fault-injection campaign, exactly like the tableau fuzzer;
/// - CEGIS `Impossible` ⟺ tableau `Impossible` (the CEGIS negative
///   path *is* a certificate — a propositionally empty universe or a
///   deleted tableau root — so this is an iff);
/// - CEGIS `Aborted(CegisBoundExhausted)` is legal only when the
///   tableau solved the case (satisfiable, but no program within the
///   queue bound); any other ungoverned abort panics —
///
/// and pinning CEGIS byte-determinism across [`THREAD_MATRIX`]: the
/// rendered outcome (program bytes, or the impossibility/exhaustion
/// counters) must be identical at every thread count.
///
/// # Panics
///
/// Panics on any contract violation or oracle failure, naming the seed
/// so the case can be replayed.
pub fn run_seed_cegis(seed: u64) -> BackendCaseResult {
    let GeneratedCase {
        name,
        problem: mut pt,
    } = random_problem(&mut XorShift64::new(seed));
    let tableau = synthesize_with_threads(&mut pt, 1);
    let tableau_solved = match &tableau {
        SynthesisOutcome::Solved(_) => true,
        SynthesisOutcome::Impossible(_) => false,
        SynthesisOutcome::Aborted(a) => panic!(
            "seed {seed} ({name}): ungoverned tableau run aborted in {} phase: {}",
            a.phase, a.reason
        ),
    };

    let fresh = |seed: u64| -> SynthesisProblem {
        random_problem(&mut XorShift64::new(seed)).problem
    };
    let mut pc = fresh(seed);
    let cegis = synthesize_with_engine(&mut pc, Engine::Cegis, ThreadPlan::uniform(1), None);

    // Thread-count determinism: the CEGIS search is sequential and the
    // certificate build is deterministic at every thread count, so the
    // rendered outcome must be byte-identical across the matrix.
    let rendered = render_backend_outcome(&pc, &cegis);
    for &threads in &THREAD_MATRIX[1..] {
        let mut p = fresh(seed);
        let o = synthesize_with_engine(&mut p, Engine::Cegis, ThreadPlan::uniform(threads), None);
        assert_eq!(
            rendered,
            render_backend_outcome(&p, &o),
            "seed {seed} ({name}): CEGIS outcome diverged at {threads} threads"
        );
    }

    let cegis_solved = match cegis {
        SynthesisOutcome::Solved(s) => {
            assert!(
                tableau_solved,
                "seed {seed} ({name}): CEGIS found a program on a case the tableau proved impossible"
            );
            assert!(
                s.verification.ok(),
                "seed {seed} ({name}): CEGIS verification failed: {}",
                s.verification.failure_summary()
            );
            assert!(
                s.artifacts.is_none(),
                "seed {seed} ({name}): CEGIS solved path must not carry tableau artifacts"
            );
            let report = check_program(&mut pc, &s.program).unwrap_or_else(|e| {
                panic!("seed {seed} ({name}): CEGIS program not executable: {e}")
            });
            assert!(
                report.tolerant(),
                "seed {seed} ({name}): model checker rejects the CEGIS program: {}",
                report.verification.failure_summary()
            );
            assert_campaign(
                &format!("seed {seed} ({name}) [cegis]"),
                &mut pc,
                &s.program,
                &CampaignConfig {
                    runs: 4,
                    steps: 200,
                    base_seed: seed,
                },
            );
            true
        }
        SynthesisOutcome::Impossible(_) => {
            assert!(
                !tableau_solved,
                "seed {seed} ({name}): CEGIS claimed impossible on a case the tableau solved"
            );
            false
        }
        SynthesisOutcome::Aborted(a) => {
            assert!(
                matches!(a.reason, AbortReason::CegisBoundExhausted { .. }),
                "seed {seed} ({name}): ungoverned CEGIS run aborted in {} phase: {}",
                a.phase,
                a.reason
            );
            assert!(
                tableau_solved,
                "seed {seed} ({name}): CEGIS exhausted its bound but the certificate \
                 should have proven impossibility (tableau agrees the case is impossible)"
            );
            false
        }
    };
    BackendCaseResult {
        name,
        tableau_solved,
        cegis_solved,
    }
}

/// Renders a synthesis outcome for byte comparison across the backend
/// thread matrix (programs for solved runs, deterministic counters for
/// negative ones).
fn render_backend_outcome(problem: &SynthesisProblem, outcome: &SynthesisOutcome) -> String {
    crate::render::render_outcome(problem, outcome)
}

/// Asserts two tableaux are bit-identical: same nodes in the same
/// order, same labels, kinds, successor lists, and alive flags.
pub fn assert_tableaux_identical(
    what: &str,
    a: &ftsyn::tableau::Tableau,
    b: &ftsyn::tableau::Tableau,
) {
    assert_eq!(a.len(), b.len(), "{what}: node count diverged");
    for id in a.node_ids() {
        assert_eq!(a.node(id).label, b.node(id).label, "{what}: label at {id:?}");
        assert_eq!(a.node(id).kind, b.node(id).kind, "{what}: kind at {id:?}");
        assert_eq!(a.node(id).succ, b.node(id).succ, "{what}: edges at {id:?}");
        assert_eq!(a.alive(id), b.alive(id), "{what}: alive flag at {id:?}");
    }
}

/// The closure, fault spec, and root label a problem's tableau is built
/// from — shared setup of the build cross-checks.
fn tableau_inputs(
    problem: &mut ftsyn::SynthesisProblem,
) -> (
    ftsyn::ctl::Closure,
    ftsyn::tableau::FaultSpec,
    ftsyn::ctl::LabelSet,
) {
    use ftsyn::ctl::Closure;
    use ftsyn::tableau::FaultSpec;

    let roots = problem.closure_roots();
    let spec = roots[0];
    let closure = Closure::build(&mut problem.arena, &problem.props, &roots);
    let tolerance_labels = problem.tolerance_label_sets(&closure);
    let fault_spec = FaultSpec {
        actions: problem.faults.clone(),
        tolerance_labels,
    };
    let mut root = closure.empty_label();
    root.insert(closure.index_of(spec).expect("spec is a closure root"));
    (closure, fault_spec, root)
}

/// Cross-checks the work-stealing engine against the retained
/// level-synchronized engine on this seed's tableau, both
/// multi-threaded so the scheduler actually runs.
pub fn cross_check_engines(seed: u64, name: &str) {
    use ftsyn::tableau::{build_level_sync, build_with_threads};

    let GeneratedCase {
        problem: mut p, ..
    } = random_problem(&mut XorShift64::new(seed));
    let (closure, fault_spec, root) = tableau_inputs(&mut p);
    let (ws, _) = build_with_threads(&closure, &p.props, root.clone(), &fault_spec, 2);
    let (ls, _) = build_level_sync(&closure, &p.props, root, &fault_spec, 2);
    assert_tableaux_identical(&format!("seed {seed} ({name}) build engines"), &ws, &ls);
}

/// Cross-checks the optimized build kernel against the pre-optimization
/// reference kernel on this problem's tableau (both single-threaded, so
/// the comparison isolates the kernels).
#[cfg(feature = "slow-reference")]
pub fn cross_check_build(seed: u64, name: &str, problem: &mut ftsyn::SynthesisProblem) {
    use ftsyn::tableau::{build_reference, build_with_threads};

    let (closure, fault_spec, root) = tableau_inputs(problem);
    let (fast, _) = build_with_threads(&closure, &problem.props, root.clone(), &fault_spec, 1);
    let (reference, _) = build_reference(&closure, &problem.props, root, &fault_spec, 1);
    assert_tableaux_identical(
        &format!("seed {seed} ({name}) build kernels"),
        &fast,
        &reference,
    );
}
