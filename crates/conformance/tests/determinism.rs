//! Run-to-run determinism regression tests.
//!
//! Before the pipeline was made deterministic, `HashMap` iteration
//! order leaked into the frontier queue of the unraveling and into the
//! greedy merge order of semantic minimization
//! (`minimize.rs`' group formation), so two syntheses of the same
//! problem could disagree on the final state count — 85 vs 86 on
//! mutex3-failstop — and print different-but-equivalent programs.
//! These tests fail on that seed behavior.

use ftsyn::problems::mutex;
use ftsyn::{synthesize, synthesize_with_threads, Tolerance};
use ftsyn_conformance::render::render_solved;

fn assert_two_runs_identical(name: &str, make: impl Fn() -> ftsyn::SynthesisProblem) {
    let mut p1 = make();
    let mut p2 = make();
    let s1 = synthesize(&mut p1).unwrap_solved();
    let s2 = synthesize(&mut p2).unwrap_solved();
    assert_eq!(
        s1.stats.model_states, s2.stats.model_states,
        "{name}: model-state counts diverged between two in-process syntheses"
    );
    assert_eq!(
        render_solved(&p1, &s1),
        render_solved(&p2, &s2),
        "{name}: rendered programs diverged between two in-process syntheses"
    );
}

/// Like [`assert_two_runs_identical`], but the runs pin explicit
/// tableau worker-thread counts, so the comparison covers both
/// run-to-run determinism and the work-stealing scheduler's
/// thread-count independence in one pass.
fn assert_runs_identical_across_threads(
    name: &str,
    make: impl Fn() -> ftsyn::SynthesisProblem,
    thread_counts: &[usize],
) {
    let mut p1 = make();
    let s1 = synthesize_with_threads(&mut p1, thread_counts[0]).unwrap_solved();
    let r1 = render_solved(&p1, &s1);
    for &threads in &thread_counts[1..] {
        let mut p = make();
        let s = synthesize_with_threads(&mut p, threads).unwrap_solved();
        assert_eq!(
            s1.stats.model_states, s.stats.model_states,
            "{name}: model-state counts diverged at {threads} threads"
        );
        assert_eq!(
            r1,
            render_solved(&p, &s),
            "{name}: rendered programs diverged at {threads} threads"
        );
    }
}

/// The historical nondeterminism witness: mutex3-failstop produced 85
/// or 86 states depending on `HashMap` iteration order (each map
/// instance gets a fresh `RandomState`, so even two syntheses inside
/// one process diverged).
#[test]
fn mutex3_failstop_is_run_to_run_deterministic() {
    assert_two_runs_identical("mutex3-failstop-masking", || {
        mutex::with_fail_stop(3, Tolerance::Masking)
    });
}

#[test]
fn mutex2_failstop_is_run_to_run_deterministic() {
    assert_two_runs_identical("mutex2-failstop-masking", || {
        mutex::with_fail_stop(2, Tolerance::Masking)
    });
}

#[test]
fn philosophers_are_run_to_run_deterministic() {
    assert_two_runs_identical("philosophers4-fault-free", || {
        mutex::dining_philosophers(4)
    });
}

/// Three-process multitolerance (P1 nonmasking, rest masking): the
/// per-fault tolerance assignment adds label sets to the closure and
/// tableau, a surface the masking-only regressions above never touch.
#[test]
fn multitolerance3_is_run_to_run_deterministic() {
    assert_two_runs_identical("multitolerance-mutex3-P1-nonmasking", || {
        mutex::with_fail_stop_multitolerance(3, |f| {
            if f.name().contains("P1") {
                Tolerance::Nonmasking
            } else {
                Tolerance::Masking
            }
        })
    });
}

/// The largest determinism regression: mutex4-failstop synthesized
/// fully at 1 worker thread and at 8 (the scheduler's steal paths
/// actually exercised), rendered programs compared byte-for-byte. This
/// is the slowest test in the suite — dominated by semantic
/// minimization, not the build (see EXPERIMENTS.md) — so it pins two
/// thread counts rather than the full matrix.
#[test]
fn mutex4_failstop_is_deterministic_across_thread_counts() {
    assert_runs_identical_across_threads(
        "mutex4-failstop-masking",
        || mutex::with_fail_stop(4, Tolerance::Masking),
        &[1, 8],
    );
}

/// The guard-refinement loop (counterexample-driven strengthening in
/// the extraction stage) must be as deterministic as every other
/// phase: two full syntheses of the 4-process multitolerance instance
/// — the case with the largest refined-arc count — byte-compared.
#[test]
fn multitolerance4_refinement_is_run_to_run_deterministic() {
    assert_two_runs_identical("multitolerance-mutex4-P1-nonmasking", || {
        mutex::with_fail_stop_multitolerance(4, |f| {
            if f.name().contains("P1") {
                Tolerance::Nonmasking
            } else {
                Tolerance::Masking
            }
        })
    });
}
