//! Run-to-run determinism regression tests.
//!
//! Before the pipeline was made deterministic, `HashMap` iteration
//! order leaked into the frontier queue of the unraveling and into the
//! greedy merge order of semantic minimization
//! (`minimize.rs`' group formation), so two syntheses of the same
//! problem could disagree on the final state count — 85 vs 86 on
//! mutex3-failstop — and print different-but-equivalent programs.
//! These tests fail on that seed behavior.

use ftsyn::problems::mutex;
use ftsyn::{synthesize, Tolerance};
use ftsyn_conformance::render::render_solved;

fn assert_two_runs_identical(name: &str, make: impl Fn() -> ftsyn::SynthesisProblem) {
    let mut p1 = make();
    let mut p2 = make();
    let s1 = synthesize(&mut p1).unwrap_solved();
    let s2 = synthesize(&mut p2).unwrap_solved();
    assert_eq!(
        s1.stats.model_states, s2.stats.model_states,
        "{name}: model-state counts diverged between two in-process syntheses"
    );
    assert_eq!(
        render_solved(&p1, &s1),
        render_solved(&p2, &s2),
        "{name}: rendered programs diverged between two in-process syntheses"
    );
}

/// The historical nondeterminism witness: mutex3-failstop produced 85
/// or 86 states depending on `HashMap` iteration order (each map
/// instance gets a fresh `RandomState`, so even two syntheses inside
/// one process diverged).
#[test]
fn mutex3_failstop_is_run_to_run_deterministic() {
    assert_two_runs_identical("mutex3-failstop-masking", || {
        mutex::with_fail_stop(3, Tolerance::Masking)
    });
}

#[test]
fn mutex2_failstop_is_run_to_run_deterministic() {
    assert_two_runs_identical("mutex2-failstop-masking", || {
        mutex::with_fail_stop(2, Tolerance::Masking)
    });
}

#[test]
fn philosophers_are_run_to_run_deterministic() {
    assert_two_runs_identical("philosophers4-fault-free", || {
        mutex::dining_philosophers(4)
    });
}
