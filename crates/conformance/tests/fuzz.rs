//! Seeded differential fuzzer: random problem instances, each
//! synthesized across the full worker-thread matrix (1, 2, and 8
//! threads; run-to-run and scheduler determinism asserted
//! byte-for-byte) and every synthesized program re-checked by the
//! model checker as an independent oracle. Every case also
//! cross-checks the work-stealing build engine against the retained
//! level-synchronized engine; with `--features slow-reference` both
//! are additionally checked against the naive reference kernel.
//!
//! The seed matrix is fixed (1..=60) so CI runs are reproducible; a
//! failing seed can be replayed with
//! `ftsyn_conformance::differential::run_seed(<seed>)`.

use ftsyn_conformance::differential::run_seed;

fn run_range(lo: u64, hi: u64) {
    for seed in lo..=hi {
        run_seed(seed);
    }
}

// Split into chunks so the libtest harness runs them in parallel.
#[test]
fn seeds_01_to_10() {
    run_range(1, 10);
}

#[test]
fn seeds_11_to_20() {
    run_range(11, 20);
}

#[test]
fn seeds_21_to_30() {
    run_range(21, 30);
}

#[test]
fn seeds_31_to_40() {
    run_range(31, 40);
}

#[test]
fn seeds_41_to_50() {
    run_range(41, 50);
}

#[test]
fn seeds_51_to_60() {
    run_range(51, 60);
}

/// The extraction-gap class must actually be exercised: at least one
/// seed in the matrix must carry a per-fault multitolerance assignment
/// *and* synthesize, so the model-checker re-check inside [`run_seed`]
/// judges an extracted multitolerant program — the class the fuzzer
/// was historically blind to because its per-fault seeds all proved
/// impossible or were never asserted against `check_program`.
#[test]
fn per_fault_multitolerance_seeds_are_exercised() {
    use ftsyn::ToleranceAssignment;
    use ftsyn_conformance::generate::random_problem;
    use ftsyn_prng::XorShift64;

    let per_fault: Vec<u64> = (1..=60)
        .filter(|&seed| {
            matches!(
                random_problem(&mut XorShift64::new(seed)).problem.tolerance,
                ToleranceAssignment::PerFault(_)
            )
        })
        .collect();
    assert!(
        !per_fault.is_empty(),
        "no per-fault multitolerance seed in the 1..=60 matrix"
    );
    // Lazy: stops at the first per-fault seed that synthesizes (each
    // run_seed already asserts check_program accepts the program).
    assert!(
        per_fault.iter().map(|&seed| run_seed(seed)).any(|r| r.solved),
        "no per-fault multitolerance seed synthesizes — the extraction \
         refinement path is never fuzzed: {per_fault:?}"
    );
}

/// The generator must produce both synthesizable and impossible
/// instances — a fuzzer that only ever sees one branch tests nothing.
#[test]
fn seed_matrix_covers_both_outcomes() {
    let results: Vec<_> = (1..=20).map(run_seed).collect();
    assert!(
        results.iter().any(|r| r.solved),
        "no solvable instance in seeds 1..=20: {results:?}"
    );
    assert!(
        results.iter().any(|r| !r.solved),
        "no impossible instance in seeds 1..=20: {results:?}"
    );
}
