//! Seeded differential fuzzer: random problem instances, each
//! synthesized across the full worker-thread matrix (1, 2, and 8
//! threads; run-to-run and scheduler determinism asserted
//! byte-for-byte) and every synthesized program re-checked by the
//! model checker as an independent oracle. Every case also
//! cross-checks the work-stealing build engine against the retained
//! level-synchronized engine; with `--features slow-reference` both
//! are additionally checked against the naive reference kernel.
//!
//! The seed matrix is fixed (1..=60) so CI runs are reproducible; a
//! failing seed can be replayed with
//! `ftsyn_conformance::differential::run_seed(<seed>)`.

use ftsyn_conformance::differential::run_seed;

fn run_range(lo: u64, hi: u64) {
    for seed in lo..=hi {
        run_seed(seed);
    }
}

// Split into chunks so the libtest harness runs them in parallel.
#[test]
fn seeds_01_to_10() {
    run_range(1, 10);
}

#[test]
fn seeds_11_to_20() {
    run_range(11, 20);
}

#[test]
fn seeds_21_to_30() {
    run_range(21, 30);
}

#[test]
fn seeds_31_to_40() {
    run_range(31, 40);
}

#[test]
fn seeds_41_to_50() {
    run_range(41, 50);
}

#[test]
fn seeds_51_to_60() {
    run_range(51, 60);
}

/// The generator must produce both synthesizable and impossible
/// instances — a fuzzer that only ever sees one branch tests nothing.
#[test]
fn seed_matrix_covers_both_outcomes() {
    let results: Vec<_> = (1..=20).map(run_seed).collect();
    assert!(
        results.iter().any(|r| r.solved),
        "no solvable instance in seeds 1..=20: {results:?}"
    );
    assert!(
        results.iter().any(|r| !r.solved),
        "no impossible instance in seeds 1..=20: {results:?}"
    );
}
