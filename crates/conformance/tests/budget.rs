//! Governor conformance: budget aborts must be *deterministic* — the
//! capped budgets (states, deletion work, minimize attempts) are
//! checked against deterministic work counters, so the same problem
//! with the same caps must abort in the identical phase with the
//! identical partial statistics at every worker-thread count — and a
//! governed run with no limits must be byte-identical to an ungoverned
//! one. Worker panics must be contained by the scheduler and surfaced
//! as a structured abort, never as a process abort or a poisoned mutex.

use ftsyn::problems::mutex;
use ftsyn::{
    synthesize, synthesize_governed, synthesize_planned, AbortReason, Budget, FailureKind,
    Governor, Phase, SynthesisOutcome, ThreadPlan, Tolerance,
};
use ftsyn_conformance::differential::THREAD_MATRIX;
use ftsyn_conformance::render::render_solved;

/// Runs mutex3-failstop-masking under `budget` at `threads` workers and
/// returns the abort, panicking if the run did not abort.
fn abort_of(budget: Budget, threads: usize) -> ftsyn::AbortedSynthesis {
    let mut p = mutex::with_fail_stop(3, Tolerance::Masking);
    let gov = Governor::with_budget(budget);
    match synthesize_governed(&mut p, threads, &gov) {
        SynthesisOutcome::Aborted(a) => *a,
        other => panic!(
            "expected an abort at {threads} threads, got {}",
            match other {
                SynthesisOutcome::Solved(_) => "Solved",
                SynthesisOutcome::Impossible(_) => "Impossible",
                SynthesisOutcome::Aborted(_) => unreachable!(),
            }
        ),
    }
}

#[test]
fn state_cap_abort_is_identical_across_thread_counts() {
    let budget = Budget {
        max_states: Some(500),
        ..Budget::default()
    };
    let first = abort_of(budget.clone(), THREAD_MATRIX[0]);
    assert_eq!(first.phase, Phase::Build);
    assert!(
        matches!(first.reason, AbortReason::StateCapExceeded { cap: 500, .. }),
        "{:?}",
        first.reason
    );
    // The partial profile is populated up to the abort point.
    assert!(first.stats.tableau_nodes >= 500);
    assert!(first.stats.build_profile.batches > 0);
    for &threads in &THREAD_MATRIX[1..] {
        let a = abort_of(budget.clone(), threads);
        assert_eq!(first.phase, a.phase, "phase diverged at {threads} threads");
        assert_eq!(
            first.reason, a.reason,
            "abort reason (incl. reached counter) diverged at {threads} threads"
        );
        assert_eq!(
            first.stats.tableau_nodes, a.stats.tableau_nodes,
            "partial tableau size diverged at {threads} threads"
        );
    }
}

#[test]
fn deletion_work_cap_abort_is_identical_across_thread_counts() {
    let budget = Budget {
        max_deletion_work: Some(100),
        ..Budget::default()
    };
    let first = abort_of(budget.clone(), THREAD_MATRIX[0]);
    assert_eq!(first.phase, Phase::Deletion);
    assert!(
        matches!(
            first.reason,
            AbortReason::DeletionWorkCapExceeded { cap: 100, .. }
        ),
        "{:?}",
        first.reason
    );
    // The build completed — its stats are final, not partial.
    assert!(first.stats.tableau_nodes > 0);
    assert!(
        first.stats.deletion_profile.worklist_pops + first.stats.deletion_profile.cert_builds
            >= 100
    );
    for &threads in &THREAD_MATRIX[1..] {
        let a = abort_of(budget.clone(), threads);
        assert_eq!(first.phase, a.phase, "phase diverged at {threads} threads");
        assert_eq!(first.reason, a.reason, "reason diverged at {threads} threads");
        assert_eq!(
            first.stats.deletion_profile.worklist_pops, a.stats.deletion_profile.worklist_pops,
            "worklist pops diverged at {threads} threads"
        );
        assert_eq!(
            first.stats.deletion_profile.cert_builds, a.stats.deletion_profile.cert_builds,
            "certificate builds diverged at {threads} threads"
        );
    }
}

#[test]
fn minimize_attempt_cap_abort_is_identical_across_thread_counts() {
    let budget = Budget {
        max_minimize_attempts: Some(5),
        ..Budget::default()
    };
    let first = abort_of(budget.clone(), THREAD_MATRIX[0]);
    assert_eq!(first.phase, Phase::Minimize);
    assert_eq!(
        first.reason,
        AbortReason::MinimizeAttemptCapExceeded { cap: 5, reached: 5 },
        "`max_minimize_attempts: Some(5)` permits exactly 5 attempts"
    );
    assert_eq!(first.stats.minimize_profile.attempts, 5);
    for &threads in &THREAD_MATRIX[1..] {
        let a = abort_of(budget.clone(), threads);
        assert_eq!(first.phase, a.phase, "phase diverged at {threads} threads");
        assert_eq!(first.reason, a.reason, "reason diverged at {threads} threads");
        assert_eq!(
            first.stats.minimize_profile.attempts, a.stats.minimize_profile.attempts,
            "minimize attempts diverged at {threads} threads"
        );
    }
}

/// The minimize-attempt cap must trip at the identical counter no
/// matter how many workers the *minimization scan itself* runs on: the
/// scan commits the lowest-index verified candidate and charges
/// attempts up to that index only, so speculative work on extra
/// workers never reaches the governor's ledger.
#[test]
fn minimize_attempt_cap_abort_is_identical_across_minimize_thread_plans() {
    let budget = Budget {
        max_minimize_attempts: Some(5),
        ..Budget::default()
    };
    let abort_at = |minimize: usize| -> ftsyn::AbortedSynthesis {
        let mut p = mutex::with_fail_stop(3, Tolerance::Masking);
        let gov = Governor::with_budget(budget.clone());
        let plan = ThreadPlan { build: 2, minimize };
        match synthesize_planned(&mut p, plan, Some(&gov)) {
            SynthesisOutcome::Aborted(a) => *a,
            _ => panic!("expected an abort at {minimize} minimize threads"),
        }
    };
    let first = abort_at(THREAD_MATRIX[0]);
    assert_eq!(first.phase, Phase::Minimize);
    assert_eq!(
        first.reason,
        AbortReason::MinimizeAttemptCapExceeded { cap: 5, reached: 5 }
    );
    for &minimize in &THREAD_MATRIX[1..] {
        let a = abort_at(minimize);
        assert_eq!(first.phase, a.phase, "phase diverged at {minimize} minimize threads");
        assert_eq!(
            first.reason, a.reason,
            "reason diverged at {minimize} minimize threads"
        );
        assert_eq!(
            first.stats.minimize_profile.deterministic_counters(),
            a.stats.minimize_profile.deterministic_counters(),
            "deterministic minimize counters diverged at {minimize} minimize threads"
        );
    }
}

/// A governed run whose budget never trips must be byte-identical to an
/// ungoverned run — the governed pipeline is the same code polling a
/// governor that always says "go".
#[test]
fn unlimited_governor_is_byte_identical_to_ungoverned() {
    let mut p1 = mutex::with_fail_stop(3, Tolerance::Masking);
    let mut p2 = mutex::with_fail_stop(3, Tolerance::Masking);
    let ungoverned = synthesize(&mut p1).unwrap_solved();
    let gov = Governor::unlimited();
    let governed = synthesize_governed(&mut p2, ftsyn::default_threads(), &gov).unwrap_solved();
    assert_eq!(
        ungoverned.stats.model_states,
        governed.stats.model_states
    );
    assert_eq!(
        render_solved(&p1, &ungoverned),
        render_solved(&p2, &governed),
        "governed-unlimited and ungoverned programs must be byte-identical"
    );
}

/// The CI budget scenario: mutex4-failstop under an aggressive state
/// cap aborts structurally in seconds instead of synthesizing for half
/// a minute — the whole point of the governor.
#[test]
fn aggressive_state_cap_on_mutex4_failstop_aborts_structurally() {
    let mut p = mutex::with_fail_stop(4, Tolerance::Masking);
    let gov = Governor::with_budget(Budget {
        max_states: Some(2_000),
        ..Budget::default()
    });
    let SynthesisOutcome::Aborted(a) = synthesize_governed(&mut p, ftsyn::default_threads(), &gov)
    else {
        panic!("mutex4-failstop under a 2k state cap must abort")
    };
    assert_eq!(a.phase, Phase::Build);
    assert!(matches!(
        a.reason,
        AbortReason::StateCapExceeded { cap: 2_000, .. }
    ));
    assert!(a.failures.is_empty(), "budget aborts carry no failures");
}

/// A pre-cancelled governor aborts at the first realtime poll.
#[test]
fn cancelled_governor_aborts_in_the_build_phase() {
    let mut p = mutex::with_fail_stop(3, Tolerance::Masking);
    let gov = Governor::unlimited();
    gov.cancel();
    let SynthesisOutcome::Aborted(a) = synthesize_governed(&mut p, 2, &gov) else {
        panic!("cancelled governor must abort")
    };
    assert_eq!(a.phase, Phase::Build);
    assert_eq!(a.reason, AbortReason::Cancelled);
}

/// External cancel landing mid-build: a deterministic cancel at the
/// build phase must abort cleanly at every thread count — structured
/// `Cancelled` reason, a resumable checkpoint (the build is the
/// checkpointable phase), and no leaked workers or poisoned locks
/// (proven by resuming to the full, byte-exact solution in the same
/// process).
#[test]
fn external_cancel_mid_build_aborts_cleanly_and_resumes_at_every_thread_count() {
    let mut baseline_problem = mutex::with_fail_stop(3, Tolerance::Masking);
    let baseline = synthesize(&mut baseline_problem).unwrap_solved();
    let expected = render_solved(&baseline_problem, &baseline);
    for &threads in &THREAD_MATRIX {
        let mut p = mutex::with_fail_stop(3, Tolerance::Masking);
        let gov = Governor::unlimited().cancel_at_phase(Phase::Build);
        let SynthesisOutcome::Aborted(a) = synthesize_governed(&mut p, threads, &gov) else {
            panic!("build-phase cancel must abort at {threads} threads")
        };
        assert_eq!(a.phase, Phase::Build, "at {threads} threads");
        assert_eq!(a.reason, AbortReason::Cancelled, "at {threads} threads");
        assert!(a.failures.is_empty(), "cancellation carries no failures");
        let ck = a
            .checkpoint
            .unwrap_or_else(|| panic!("build-phase cancel must leave a checkpoint at {threads} threads"));

        // The cancelled run's workers are gone and its partial state is
        // whole: resuming it in the same process completes and matches
        // the uninterrupted result byte for byte.
        let mut resumed = mutex::with_fail_stop(3, Tolerance::Masking);
        let SynthesisOutcome::Solved(s) =
            ftsyn::synthesize_resume(&mut resumed, ThreadPlan::uniform(threads), None, ck)
                .expect("a cancel checkpoint is valid")
        else {
            panic!("resume after cancel must solve at {threads} threads")
        };
        assert_eq!(
            expected,
            render_solved(&resumed, &s),
            "cancel→resume diverged at {threads} threads"
        );
    }
}

/// External cancel landing mid-minimize: the build and deletion phases
/// completed, so their profiles are final; the abort is structured, no
/// checkpoint is captured (only the build is checkpointable), and the
/// process stays healthy.
#[test]
fn external_cancel_mid_minimize_aborts_cleanly_at_every_thread_count() {
    for &threads in &THREAD_MATRIX {
        let mut p = mutex::with_fail_stop(3, Tolerance::Masking);
        let gov = Governor::unlimited().cancel_at_phase(Phase::Minimize);
        let SynthesisOutcome::Aborted(a) = synthesize_governed(&mut p, threads, &gov) else {
            panic!("minimize-phase cancel must abort at {threads} threads")
        };
        assert_eq!(a.phase, Phase::Minimize, "at {threads} threads");
        assert_eq!(a.reason, AbortReason::Cancelled, "at {threads} threads");
        assert_eq!(gov.current_phase(), Phase::Minimize, "at {threads} threads");
        // Earlier phases ran to completion before the cancel landed.
        assert!(a.stats.tableau_nodes > 0, "at {threads} threads");
        assert!(a.stats.build_profile.batches > 0, "at {threads} threads");
        assert!(
            a.stats.deletion_profile.worklist_pops > 0,
            "at {threads} threads"
        );
        assert!(
            a.checkpoint.is_none(),
            "only build-phase aborts are checkpointable"
        );

        // No worker leak, no poisoned lock: a full synthesis succeeds
        // in the same process right after.
        let mut p2 = mutex::with_fail_stop(3, Tolerance::Masking);
        let s = ftsyn::synthesize_with_threads(&mut p2, threads).unwrap_solved();
        assert!(
            s.verification.ok(),
            "post-cancel synthesis at {threads} threads must verify"
        );
    }
}

/// A genuinely asynchronous cancel from another thread — the race
/// lands wherever it lands, but the abort must still be structured
/// (`Cancelled`, a named phase) and leak-free.
#[test]
fn racing_external_cancel_from_another_thread_aborts_cleanly() {
    let mut p = mutex::with_fail_stop(4, Tolerance::Masking);
    let gov = Governor::unlimited();
    let outcome = std::thread::scope(|scope| {
        scope.spawn(|| gov.cancel());
        synthesize_governed(&mut p, 2, &gov)
    });
    let SynthesisOutcome::Aborted(a) = outcome else {
        panic!("a cancel sent at start must land before mutex4 completes")
    };
    assert_eq!(a.reason, AbortReason::Cancelled);
    assert!(a.failures.is_empty(), "cancellation carries no failures");
    // The phase is whatever the race produced, but it is a real phase
    // and the partial stats belong to it.
    assert_eq!(a.phase, gov.current_phase());

    // The aborted run left the process clean.
    let mut p2 = mutex::with_fail_stop(2, Tolerance::Masking);
    let s = synthesize(&mut p2).unwrap_solved();
    assert!(s.verification.ok(), "post-cancel synthesis must verify");
}

/// Panic containment: an injected worker panic during tableau expansion
/// must surface as a structured `Aborted` with a
/// [`FailureKind::WorkerPanic`] failure and partial profiles — at every
/// thread count, with the process alive and no mutex poisoned (proven
/// by running a full synthesis right after, in the same process).
#[test]
fn injected_worker_panic_yields_a_clean_abort_at_every_thread_count() {
    for &threads in &THREAD_MATRIX {
        let mut p = mutex::with_fail_stop(3, Tolerance::Masking);
        let gov = Governor::unlimited().inject_worker_panic_at_batch(2);
        let SynthesisOutcome::Aborted(a) = synthesize_governed(&mut p, threads, &gov) else {
            panic!("injected panic must abort at {threads} threads")
        };
        assert_eq!(a.phase, Phase::Build, "at {threads} threads");
        let AbortReason::WorkerPanic { message } = &a.reason else {
            panic!("expected WorkerPanic at {threads} threads, got {:?}", a.reason)
        };
        assert!(
            message.contains("injected worker panic at batch 2"),
            "panic payload must round-trip: {message:?}"
        );
        assert_eq!(a.failures.len(), 1, "at {threads} threads");
        assert_eq!(a.failures[0].kind, FailureKind::WorkerPanic);
        // Partial build profile: at least the batches committed before
        // the panic were accounted.
        assert!(a.stats.tableau_nodes > 0, "at {threads} threads");

        // No poison cascade: the same process can synthesize again.
        let mut p2 = mutex::with_fail_stop(3, Tolerance::Masking);
        let s = ftsyn::synthesize_with_threads(&mut p2, threads).unwrap_solved();
        assert!(
            s.verification.ok(),
            "post-panic synthesis at {threads} threads must verify"
        );
    }
}

/// Runs mutex3-failstop-masking through the CEGIS engine under
/// `budget` with the given thread plan and returns the abort.
fn cegis_abort_of(budget: Budget, threads: usize) -> ftsyn::AbortedSynthesis {
    use ftsyn::{synthesize_with_engine, Engine};
    let mut p = mutex::with_fail_stop(3, Tolerance::Masking);
    let gov = Governor::with_budget(budget);
    match synthesize_with_engine(&mut p, Engine::Cegis, ThreadPlan::uniform(threads), Some(&gov)) {
        SynthesisOutcome::Aborted(a) => *a,
        other => panic!(
            "expected a CEGIS abort at {threads} threads, got {}",
            match other {
                SynthesisOutcome::Solved(_) => "Solved",
                SynthesisOutcome::Impossible(_) => "Impossible",
                SynthesisOutcome::Aborted(_) => unreachable!(),
            }
        ),
    }
}

/// The CEGIS candidate cap aborts in `Phase::Cegis` at the identical
/// deterministic candidate counter — with the partial profile carried
/// in the stats — at every thread count. (mutex3 needs 10 candidates,
/// so a cap of 3 always trips.)
#[test]
fn cegis_candidate_cap_abort_is_identical_across_thread_counts() {
    let budget = Budget {
        max_cegis_candidates: Some(3),
        ..Budget::default()
    };
    let first = cegis_abort_of(budget.clone(), THREAD_MATRIX[0]);
    assert_eq!(first.phase, Phase::Cegis);
    assert_eq!(
        first.reason,
        AbortReason::CegisCandidateCapExceeded { cap: 3, reached: 3 },
        "`max_cegis_candidates: Some(3)` permits exactly 3 candidates"
    );
    assert_eq!(first.stats.cegis_profile.candidates, 3);
    assert!(first.stats.cegis_profile.universe > 0, "partial profile");
    assert!(first.checkpoint.is_none(), "CEGIS aborts carry no checkpoint");
    assert!(first.failures.is_empty(), "budget aborts carry no failures");
    for &threads in &THREAD_MATRIX[1..] {
        let a = cegis_abort_of(budget.clone(), threads);
        assert_eq!(first.phase, a.phase, "phase diverged at {threads} threads");
        assert_eq!(first.reason, a.reason, "reason diverged at {threads} threads");
        assert_eq!(
            first.stats.cegis_profile, a.stats.cegis_profile,
            "cegis profile diverged at {threads} threads"
        );
    }
}

/// An expired deadline aborts the CEGIS engine in `Phase::Cegis` at the
/// first realtime poll — the nondeterministic budget still names the
/// right phase.
#[test]
fn cegis_deadline_abort_names_the_cegis_phase() {
    let a = cegis_abort_of(
        Budget {
            deadline: Some(std::time::Duration::ZERO),
            ..Budget::default()
        },
        1,
    );
    assert_eq!(a.phase, Phase::Cegis);
    assert!(
        matches!(a.reason, AbortReason::DeadlineExceeded { .. }),
        "{:?}",
        a.reason
    );
}

/// A pre-cancelled governor aborts the CEGIS engine at its first poll,
/// and the engine leaves the process clean (a full CEGIS run succeeds
/// right after).
#[test]
fn cancelled_governor_aborts_cegis_cleanly() {
    use ftsyn::{synthesize_with_engine, Engine};
    let mut p = mutex::with_fail_stop(3, Tolerance::Masking);
    let gov = Governor::unlimited();
    gov.cancel();
    let SynthesisOutcome::Aborted(a) =
        synthesize_with_engine(&mut p, Engine::Cegis, ThreadPlan::uniform(1), Some(&gov))
    else {
        panic!("cancelled governor must abort the CEGIS engine")
    };
    assert_eq!(a.phase, Phase::Cegis);
    assert_eq!(a.reason, AbortReason::Cancelled);

    let mut p2 = mutex::with_fail_stop(3, Tolerance::Masking);
    let s = synthesize_with_engine(&mut p2, Engine::Cegis, ThreadPlan::uniform(1), None)
        .unwrap_solved();
    assert!(s.verification.ok(), "post-cancel CEGIS run must verify");
}

/// A CEGIS run under an unlimited governor is byte-identical to an
/// ungoverned CEGIS run (same polling code, a governor that always says
/// "go").
#[test]
fn unlimited_governor_cegis_is_byte_identical_to_ungoverned() {
    use ftsyn::{synthesize_with_engine, Engine};
    let mut p1 = mutex::with_fail_stop(3, Tolerance::Masking);
    let mut p2 = mutex::with_fail_stop(3, Tolerance::Masking);
    let ungoverned =
        synthesize_with_engine(&mut p1, Engine::Cegis, ThreadPlan::uniform(1), None)
            .unwrap_solved();
    let gov = Governor::unlimited();
    let governed =
        synthesize_with_engine(&mut p2, Engine::Cegis, ThreadPlan::uniform(1), Some(&gov))
            .unwrap_solved();
    assert_eq!(
        ungoverned.stats.cegis_profile,
        governed.stats.cegis_profile
    );
    assert_eq!(
        render_solved(&p1, &ungoverned),
        render_solved(&p2, &governed),
        "governed-unlimited and ungoverned CEGIS programs must be byte-identical"
    );
}

/// A refinement cap of zero must degrade to a *structured* extraction
/// gap (a `FailureKind::ExtractionGap` verification failure — the CLI's
/// exit-3 path), never a silently-wrong program: the three-process
/// multitolerance case needs one refinement round, so forbidding
/// refinement leaves the extracted program rejected by the model
/// checker at its fault-displaced configurations.
#[test]
fn zero_refine_round_cap_degrades_to_a_structured_extraction_gap() {
    let mut p = mutex::with_fail_stop_multitolerance(3, |f| {
        if f.name().contains("P1") {
            Tolerance::Nonmasking
        } else {
            Tolerance::Masking
        }
    });
    let gov = Governor::with_budget(Budget {
        max_extract_refine_rounds: Some(0),
        ..Budget::default()
    });
    let SynthesisOutcome::Solved(s) = synthesize_governed(&mut p, 1, &gov) else {
        panic!("expected a solved-but-rejected outcome")
    };
    assert!(!s.stats.extract_profile.verified);
    assert_eq!(s.stats.extract_profile.refinement_rounds, 0);
    assert!(!s.verification.extraction_ok);
    assert!(!s.verification.ok());
    assert!(
        s.verification
            .failures
            .iter()
            .any(|f| f.kind == FailureKind::ExtractionGap),
        "expected an ExtractionGap failure, got: {}",
        s.verification.failure_summary()
    );
}
