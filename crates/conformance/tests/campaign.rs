//! Fault-injection campaign suite: every golden case with faults is
//! synthesized and its program *run* under a seeded campaign of
//! randomized simulations, asserting the runtime counterpart of its
//! tolerance (see `ftsyn_conformance::campaign`). The golden suite pins
//! the program's text; this suite pins its behavior under injected
//! faults.

use ftsyn::guarded::sim::CampaignConfig;
use ftsyn::guarded::{BoolExpr, FaultAction, PropAssign};
use ftsyn::problems::{barrier, mutex, readers_writers};
use ftsyn::{
    synthesize, synthesize_governed, Budget, Governor, SynthesisProblem, Tolerance,
    ToleranceAssignment,
};
use ftsyn_conformance::campaign::assert_campaign;

fn run(name: &str, mut problem: SynthesisProblem) {
    let s = synthesize(&mut problem).unwrap_solved();
    assert!(s.verification.ok(), "{name}: {:?}", s.verification.failures);
    // The campaign judges traces against the program's own explored
    // structure, so that structure must itself pass the model checker
    // (fault-displaced configurations make it a strict superset of the
    // synthesized model; the in-pipeline refinement loop guarantees the
    // superset still satisfies every tolerance label).
    let checked = ftsyn::check_program(&mut problem, &s.program)
        .unwrap_or_else(|e| panic!("{name}: not executable: {e}"));
    assert!(
        checked.tolerant(),
        "{name}: model checker rejects the extracted program: {}",
        checked.verification.failure_summary()
    );
    let report = assert_campaign(name, &mut problem, &s.program, &CampaignConfig::default());
    // Campaign strength: these hand-picked cases must actually exercise
    // what they claim to (faults fired, convergence probed).
    assert_eq!(report.runs, 16, "{name}");
    if !problem.faults.is_empty() {
        assert!(report.faulted_runs > 0, "{name}: no faults injected");
    }
    if report.convergence_checked {
        assert!(
            report.convergence_probes > 0,
            "{name}: no run was long enough to probe convergence"
        );
    }
}

#[test]
fn mutex2_failstop_masking_holds_at_runtime() {
    // Masking: safety always + convergence after the last fault.
    run(
        "mutex2-failstop-masking",
        mutex::with_fail_stop(2, Tolerance::Masking),
    );
}

#[test]
fn mutex3_failstop_masking_holds_at_runtime() {
    run(
        "mutex3-failstop-masking",
        mutex::with_fail_stop(3, Tolerance::Masking),
    );
}

#[test]
fn barrier2_nonmasking_converges_at_runtime() {
    // Nonmasking: transient violations allowed, convergence required.
    run("barrier2-nonmasking", barrier::with_general_state_faults(2));
}

#[test]
fn readers_writers_writer_failstop_holds_at_runtime() {
    run(
        "readers-writers-1R-writer-failstop",
        readers_writers::with_writer_fail_stop(1, Tolerance::Masking),
    );
}

/// Formerly the pinned extraction gap: per-fault multitolerance
/// assignments used to explore more global states than the model and
/// fail their tolerance labels there. The counterexample-guided guard
/// refinement in the pipeline now strengthens the implicated guards, so
/// these cases run the full campaign like every other.
#[test]
fn multitolerance_mutex3_holds_at_runtime() {
    run(
        "multitolerance-mutex3-P1-nonmasking",
        mutex::with_fail_stop_multitolerance(3, |f| {
            if f.name().contains("P1") {
                Tolerance::Nonmasking
            } else {
                Tolerance::Masking
            }
        }),
    );
}

/// The 4-process scaling axis under the governor: synthesized with
/// deterministic caps, then put through the same campaign as every
/// other case. Shares its model/program shape with the pinned golden
/// (`multitolerance-mutex4-P1-nonmasking`).
#[test]
fn multitolerance_mutex4_holds_at_runtime() {
    let name = "multitolerance-mutex4-P1-nonmasking";
    let mut problem = mutex::with_fail_stop_multitolerance(4, |f| {
        if f.name().contains("P1") {
            Tolerance::Nonmasking
        } else {
            Tolerance::Masking
        }
    });
    let gov = Governor::with_budget(Budget {
        max_states: Some(60_000),
        max_extract_refine_rounds: Some(4),
        ..Budget::default()
    });
    let s = synthesize_governed(&mut problem, ftsyn::default_threads(), &gov).unwrap_solved();
    assert!(s.verification.ok(), "{name}: {:?}", s.verification.failures);
    let checked = ftsyn::check_program(&mut problem, &s.program)
        .unwrap_or_else(|e| panic!("{name}: not executable: {e}"));
    assert!(
        checked.tolerant(),
        "{name}: model checker rejects the extracted program: {}",
        checked.verification.failure_summary()
    );
    let report = assert_campaign(name, &mut problem, &s.program, &CampaignConfig::default());
    assert!(report.faulted_runs > 0, "{name}: no faults injected");
}

#[test]
fn multitolerance_mixed_holds_at_runtime() {
    // The E9 instance: fail-stop masked, an undetectable corruption of
    // P1 ridden out nonmasking.
    let mut problem = mutex::with_fail_stop(2, Tolerance::Masking);
    let (n1, t1, c1, d1) = (
        problem.props.id("N1").unwrap(),
        problem.props.id("T1").unwrap(),
        problem.props.id("C1").unwrap(),
        problem.props.id("D1").unwrap(),
    );
    problem.faults.push(
        FaultAction::new(
            "corrupt-P1-to-C",
            BoolExpr::tru(),
            vec![
                (c1, PropAssign::True),
                (n1, PropAssign::False),
                (t1, PropAssign::False),
                (d1, PropAssign::False),
            ],
        )
        .unwrap(),
    );
    let corrupt_idx = problem.faults.len() - 1;
    let tols: Vec<Tolerance> = (0..problem.faults.len())
        .map(|i| {
            if i == corrupt_idx {
                Tolerance::Nonmasking
            } else {
                Tolerance::Masking
            }
        })
        .collect();
    problem.tolerance = ToleranceAssignment::PerFault(tols);
    run("multitolerance-mutex2-mixed", problem);
}

/// Fault-free sanity: the campaign machinery still applies (pure
/// containment + safety, no fault ever fires, convergence not probed).
#[test]
fn philosophers3_fault_free_stays_contained() {
    let name = "philosophers3-fault-free";
    let mut problem = mutex::dining_philosophers(3);
    let s = synthesize(&mut problem).unwrap_solved();
    let report = assert_campaign(name, &mut problem, &s.program, &CampaignConfig::default());
    assert_eq!(report.faulted_runs, 0, "{name}: no faults exist to inject");
    assert!(!report.convergence_checked, "{name}");
}
