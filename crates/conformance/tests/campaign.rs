//! Fault-injection campaign suite: every golden case with faults is
//! synthesized and its program *run* under a seeded campaign of
//! randomized simulations, asserting the runtime counterpart of its
//! tolerance (see `ftsyn_conformance::campaign`). The golden suite pins
//! the program's text; this suite pins its behavior under injected
//! faults.

use ftsyn::guarded::sim::CampaignConfig;
use ftsyn::guarded::{BoolExpr, FaultAction, PropAssign};
use ftsyn::problems::{barrier, mutex, readers_writers};
use ftsyn::{synthesize, SynthesisProblem, Tolerance, ToleranceAssignment};
use ftsyn_conformance::campaign::assert_campaign;

fn run(name: &str, mut problem: SynthesisProblem) {
    let s = synthesize(&mut problem).unwrap_solved();
    assert!(s.verification.ok(), "{name}: {:?}", s.verification.failures);
    // The campaign judges traces against the program's own explored
    // structure, so that structure must itself pass the model checker
    // (it can over-approximate the synthesized model — see the pinned
    // multitolerance-mutex3 gap below).
    let checked = ftsyn::check_program(&mut problem, &s.program)
        .unwrap_or_else(|e| panic!("{name}: not executable: {e}"));
    assert!(
        checked.tolerant(),
        "{name}: model checker rejects the extracted program: {}",
        checked.verification.failure_summary()
    );
    let report = assert_campaign(name, &mut problem, &s.program, &CampaignConfig::default());
    // Campaign strength: these hand-picked cases must actually exercise
    // what they claim to (faults fired, convergence probed).
    assert_eq!(report.runs, 16, "{name}");
    if !problem.faults.is_empty() {
        assert!(report.faulted_runs > 0, "{name}: no faults injected");
    }
    if report.convergence_checked {
        assert!(
            report.convergence_probes > 0,
            "{name}: no run was long enough to probe convergence"
        );
    }
}

#[test]
fn mutex2_failstop_masking_holds_at_runtime() {
    // Masking: safety always + convergence after the last fault.
    run(
        "mutex2-failstop-masking",
        mutex::with_fail_stop(2, Tolerance::Masking),
    );
}

#[test]
fn mutex3_failstop_masking_holds_at_runtime() {
    run(
        "mutex3-failstop-masking",
        mutex::with_fail_stop(3, Tolerance::Masking),
    );
}

#[test]
fn barrier2_nonmasking_converges_at_runtime() {
    // Nonmasking: transient violations allowed, convergence required.
    run("barrier2-nonmasking", barrier::with_general_state_faults(2));
}

#[test]
fn readers_writers_writer_failstop_holds_at_runtime() {
    run(
        "readers-writers-1R-writer-failstop",
        readers_writers::with_writer_fail_stop(1, Tolerance::Masking),
    );
}

/// Known gap, surfaced by this suite: for *per-fault multitolerance*
/// assignments the extracted program reaches more global states than
/// the synthesized model it came from (e.g. 1944 explored vs 138 model
/// states for multitolerance-mutex3), and the `ftsyn-kripke` model
/// checker rejects the extra perturbed states' tolerance labels — so
/// the runtime campaign assertions cannot be expected to hold either.
/// The synthesized *model* verifies; the shared-variable extraction
/// over-approximates. Pinned so an extraction fix flips these tests;
/// tracked in ROADMAP.md.
fn extraction_gap_pin(name: &str, mut problem: SynthesisProblem) {
    let s = synthesize(&mut problem).unwrap_solved();
    assert!(
        s.verification.ok(),
        "{name}: the synthesized model itself verifies"
    );
    let checked = ftsyn::check_program(&mut problem, &s.program).expect("executable");
    assert!(
        !checked.tolerant(),
        "{name}: extraction gap fixed — move this case into the campaign \
         suite (use `run`) and delete its pin"
    );
}

#[test]
fn multitolerance_mutex3_extraction_gap_is_pinned() {
    extraction_gap_pin(
        "multitolerance-mutex3-P1-nonmasking",
        mutex::with_fail_stop_multitolerance(3, |f| {
            if f.name().contains("P1") {
                Tolerance::Nonmasking
            } else {
                Tolerance::Masking
            }
        }),
    );
}

#[test]
fn multitolerance_mixed_extraction_gap_is_pinned() {
    // The E9 instance: fail-stop masked, an undetectable corruption of
    // P1 ridden out nonmasking. Subject to the same extraction gap as
    // multitolerance-mutex3 above.
    let mut problem = mutex::with_fail_stop(2, Tolerance::Masking);
    let (n1, t1, c1, d1) = (
        problem.props.id("N1").unwrap(),
        problem.props.id("T1").unwrap(),
        problem.props.id("C1").unwrap(),
        problem.props.id("D1").unwrap(),
    );
    problem.faults.push(
        FaultAction::new(
            "corrupt-P1-to-C",
            BoolExpr::tru(),
            vec![
                (c1, PropAssign::True),
                (n1, PropAssign::False),
                (t1, PropAssign::False),
                (d1, PropAssign::False),
            ],
        )
        .unwrap(),
    );
    let corrupt_idx = problem.faults.len() - 1;
    let tols: Vec<Tolerance> = (0..problem.faults.len())
        .map(|i| {
            if i == corrupt_idx {
                Tolerance::Nonmasking
            } else {
                Tolerance::Masking
            }
        })
        .collect();
    problem.tolerance = ToleranceAssignment::PerFault(tols);
    extraction_gap_pin("multitolerance-mutex2-mixed", problem);
}

/// Fault-free sanity: the campaign machinery still applies (pure
/// containment + safety, no fault ever fires, convergence not probed).
#[test]
fn philosophers3_fault_free_stays_contained() {
    let name = "philosophers3-fault-free";
    let mut problem = mutex::dining_philosophers(3);
    let s = synthesize(&mut problem).unwrap_solved();
    let report = assert_campaign(name, &mut problem, &s.program, &CampaignConfig::default());
    assert_eq!(report.faulted_runs, 0, "{name}: no faults exist to inject");
    assert!(!report.convergence_checked, "{name}");
}
