//! Resume-identity conformance: a synthesis run that is aborted at a
//! state cap, checkpointed, serialized, deserialized, and resumed
//! under a raised budget must produce a program **byte-identical** to
//! an uninterrupted run — at every worker-thread count, and through
//! arbitrary abort→resume→abort→resume chains. Checkpoints that do not
//! match the problem (wrong spec, wrong format version, corrupted
//! bytes) must be refused with a structured error, never silently
//! resumed.

use ftsyn::problems::{barrier, mutex, readers_writers};
use ftsyn::{
    synthesize_governed, synthesize_resume, Budget, Checkpoint, CheckpointError, Governor,
    Phase, SynthesisOutcome, SynthesisProblem, ThreadPlan, Tolerance,
};
use ftsyn_conformance::differential::THREAD_MATRIX;
use ftsyn_conformance::render::render_solved;

/// One resume-corpus entry: (name, constructor, state cap that
/// interrupts its build).
type Case = (&'static str, fn() -> SynthesisProblem, usize);

/// The resume corpus: every golden case family that synthesizes fast
/// enough to run 1 + 3×2 pipelines per case in the suite.
fn corpus() -> Vec<Case> {
    fn mutex2() -> SynthesisProblem {
        mutex::with_fail_stop(2, Tolerance::Masking)
    }
    fn mutex3() -> SynthesisProblem {
        mutex::with_fail_stop(3, Tolerance::Masking)
    }
    fn multitolerance3() -> SynthesisProblem {
        mutex::with_fail_stop_multitolerance(3, |f| {
            if f.name().contains("P1") {
                Tolerance::Nonmasking
            } else {
                Tolerance::Masking
            }
        })
    }
    fn barrier2() -> SynthesisProblem {
        barrier::with_general_state_faults(2)
    }
    fn rw1() -> SynthesisProblem {
        readers_writers::with_writer_fail_stop(1, Tolerance::Masking)
    }
    vec![
        ("mutex2-failstop-masking", mutex2, 30),
        ("mutex3-failstop-masking", mutex3, 400),
        ("multitolerance-mutex3-P1-nonmasking", multitolerance3, 400),
        ("barrier2-nonmasking", barrier2, 60),
        ("readers-writers-1R-writer-failstop", rw1, 60),
    ]
}

/// Aborts `problem` at `max_states` on `threads` workers and returns
/// the checkpoint after an encode→decode round trip (so the suite
/// exercises the wire format, not just the in-memory structure).
fn abort_and_checkpoint(
    name: &str,
    problem: &mut SynthesisProblem,
    max_states: usize,
    threads: usize,
) -> Checkpoint {
    let gov = Governor::with_budget(Budget {
        max_states: Some(max_states),
        ..Budget::unlimited()
    });
    let SynthesisOutcome::Aborted(a) = synthesize_governed(problem, threads, &gov) else {
        panic!("{name}: expected an abort at cap {max_states} on {threads} threads")
    };
    assert_eq!(a.phase, Phase::Build, "{name}: abort phase");
    let ck = a
        .checkpoint
        .unwrap_or_else(|| panic!("{name}: build abort must carry a checkpoint"));
    Checkpoint::decode(&ck.encode())
        .unwrap_or_else(|e| panic!("{name}: round trip failed: {e}"))
}

/// The uninterrupted baseline rendering for a fresh instance of a case.
fn baseline(make: fn() -> SynthesisProblem, threads: usize) -> String {
    let mut p = make();
    let gov = Governor::unlimited();
    let s = synthesize_governed(&mut p, threads, &gov).unwrap_solved();
    assert!(s.verification.ok(), "baseline failed verification");
    render_solved(&p, &s)
}

#[test]
fn resumed_runs_are_byte_identical_to_uninterrupted_runs() {
    for (name, make, cap) in corpus() {
        // One baseline: thread count does not affect result bytes
        // (pinned by the determinism suite), so a single baseline
        // serves the whole matrix.
        let expected = baseline(make, THREAD_MATRIX[0]);
        for &threads in &THREAD_MATRIX {
            let mut victim = make();
            let ck = abort_and_checkpoint(name, &mut victim, cap, threads);
            let mut resumed_problem = make();
            let outcome = synthesize_resume(
                &mut resumed_problem,
                ThreadPlan::uniform(threads),
                None,
                ck,
            )
            .unwrap_or_else(|e| panic!("{name}: valid checkpoint refused: {e}"));
            let SynthesisOutcome::Solved(s) = outcome else {
                panic!("{name}: resume at {threads} threads did not solve")
            };
            assert!(
                s.verification.ok(),
                "{name}: resumed program failed verification at {threads} threads"
            );
            assert_eq!(
                expected,
                render_solved(&resumed_problem, &s),
                "{name}: resumed program diverged from the uninterrupted \
                 run at {threads} threads"
            );
        }
    }
}

/// An abort→resume→abort→resume chain: resume under a budget that is
/// itself too small, abort again, resume once more — the final program
/// must still match the uninterrupted run, and the intermediate
/// checkpoint must carry the larger partial tableau forward.
#[test]
fn abort_resume_chains_converge_to_the_uninterrupted_result() {
    let expected = baseline(|| mutex::with_fail_stop(3, Tolerance::Masking), 1);
    for &threads in &THREAD_MATRIX {
        let mut p1 = mutex::with_fail_stop(3, Tolerance::Masking);
        let ck1 = abort_and_checkpoint("mutex3 chain hop 1", &mut p1, 300, threads);
        let nodes1 = ck1.tableau_nodes();

        // Hop 2: resume under a cap that still aborts.
        let gov = Governor::with_budget(Budget {
            max_states: Some(800),
            ..Budget::unlimited()
        });
        let mut p2 = mutex::with_fail_stop(3, Tolerance::Masking);
        let SynthesisOutcome::Aborted(a) =
            synthesize_resume(&mut p2, ThreadPlan::uniform(threads), Some(&gov), ck1)
                .expect("hop-2 checkpoint is valid")
        else {
            panic!("hop 2 must abort again at cap 800")
        };
        let ck2 = Checkpoint::decode(&a.checkpoint.expect("hop-2 abort carries a checkpoint").encode())
            .expect("hop-2 round trip");
        assert!(
            ck2.tableau_nodes() > nodes1,
            "the chain must carry work forward: {} -> {}",
            nodes1,
            ck2.tableau_nodes()
        );

        // Hop 3: unlimited resume completes.
        let mut p3 = mutex::with_fail_stop(3, Tolerance::Masking);
        let SynthesisOutcome::Solved(s) =
            synthesize_resume(&mut p3, ThreadPlan::uniform(threads), None, ck2)
                .expect("hop-3 checkpoint is valid")
        else {
            panic!("hop 3 must solve")
        };
        assert_eq!(
            expected,
            render_solved(&p3, &s),
            "chained resume diverged at {threads} threads"
        );
    }
}

/// Cross-thread-count hand-off: a checkpoint taken on one thread count
/// must resume bit-identically on any other (the checkpoint pins the
/// deterministic work prefix, which is thread-count independent).
#[test]
fn checkpoints_resume_identically_across_thread_counts() {
    let expected = baseline(|| mutex::with_fail_stop(2, Tolerance::Masking), 1);
    let mut donor = mutex::with_fail_stop(2, Tolerance::Masking);
    let blob = abort_and_checkpoint("mutex2 hand-off", &mut donor, 30, 8).encode();
    for &threads in &THREAD_MATRIX {
        let ck = Checkpoint::decode(&blob).expect("blob decodes");
        let mut p = mutex::with_fail_stop(2, Tolerance::Masking);
        let SynthesisOutcome::Solved(s) =
            synthesize_resume(&mut p, ThreadPlan::uniform(threads), None, ck)
                .expect("hand-off checkpoint is valid")
        else {
            panic!("hand-off resume at {threads} threads did not solve")
        };
        assert_eq!(
            expected,
            render_solved(&p, &s),
            "8-thread checkpoint resumed on {threads} threads diverged"
        );
    }
}

/// Stale and corrupted checkpoints are refused with the structured
/// error naming the mismatch — never silently resumed into the wrong
/// problem.
#[test]
fn mismatched_checkpoints_are_refused_structurally() {
    let mut donor = mutex::with_fail_stop(3, Tolerance::Masking);
    let ck = abort_and_checkpoint("mutex3 donor", &mut donor, 300, 2);
    let blob = ck.encode();

    // Wrong problem: the spec fingerprint differs.
    let mut other = mutex::with_fail_stop(2, Tolerance::Masking);
    let ck = Checkpoint::decode(&blob).expect("blob decodes");
    match synthesize_resume(&mut other, ThreadPlan::uniform(2), None, ck) {
        Err(CheckpointError::SpecHashMismatch { .. }) => {}
        Err(other) => panic!("expected SpecHashMismatch, got {other}"),
        Ok(_) => panic!("a mutex3 checkpoint must not resume a mutex2 problem"),
    }

    // Unsupported format version.
    let mut tampered = blob.clone();
    tampered[8] = 0xEE;
    match Checkpoint::decode(&tampered) {
        Err(CheckpointError::UnsupportedVersion { found, .. }) => assert_eq!(found, 0xEE),
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }

    // Payload truncation: the checksum over the payload no longer
    // matches the one stored in the header.
    match Checkpoint::decode(&blob[..blob.len() - 1]) {
        Err(CheckpointError::ChecksumMismatch { .. }) => {}
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }

    // Header truncation: too short to even carry the checksum.
    match Checkpoint::decode(&blob[..12]) {
        Err(CheckpointError::Truncated) => {}
        other => panic!("expected Truncated, got {other:?}"),
    }
}
