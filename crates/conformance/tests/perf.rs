//! Performance smoke: the headline bottleneck of the original
//! minimizer — dining-philosophers(5), formerly ~43 s of wall clock,
//! ~90% of it in semantic minimization — must now synthesize well
//! inside a generous governed deadline. The test is a smoke alarm, not
//! a benchmark: the deadline is an order of magnitude looser than the
//! observed release-build time (~3 s), so it only fires on a
//! catastrophic regression (e.g. the incremental engine silently
//! falling back to per-attempt relabeling).
//!
//! Ignored by default because debug builds are 10–30× slower than
//! release; CI runs it as `cargo test --release … -- --ignored`.

use ftsyn::problems::mutex;
use ftsyn::{synthesize_governed, Budget, Governor, SynthesisOutcome};
use std::time::Duration;

#[test]
#[ignore = "perf smoke — run under --release (CI minimize-matrix job)"]
fn philosophers5_synthesizes_inside_a_generous_deadline() {
    let mut p = mutex::dining_philosophers(5);
    let gov = Governor::with_budget(Budget {
        deadline: Some(Duration::from_secs(60)),
        ..Budget::default()
    });
    match synthesize_governed(&mut p, ftsyn::default_threads(), &gov) {
        SynthesisOutcome::Solved(s) => {
            assert!(s.verification.ok(), "{:?}", s.verification.failures);
            assert!(
                s.stats.minimize_profile.merges > 0,
                "philosophers5 must actually exercise the minimizer"
            );
        }
        SynthesisOutcome::Aborted(a) => panic!(
            "philosophers5 blew the 60 s smoke deadline in the {} phase: {} \
             (minimize {:?}, {} attempts)",
            a.phase, a.reason, a.stats.minimize_time, a.stats.minimize_profile.attempts
        ),
        SynthesisOutcome::Impossible(_) => panic!("philosophers5 is synthesizable"),
    }
}
