//! Daemon crash-recovery conformance, in-process half: a service that
//! loses its process between an abort and the resume must hand back
//! byte-identical programs through the durable checkpoint store, at
//! every thread count in the matrix; the admission governor must shed
//! (never lose) requests; and a drain shutdown must leave every
//! in-build request resumable. The other half — fail-stopping the real
//! binary with `FTSYN_CRASH_POINT` and SIGKILL — lives in the CLI
//! crate's `crashsim` test, which drives `ftsyn serve` itself.

use ftsyn::{synthesize, Budget, CacheLimits, SynthesisOutcome};
use ftsyn_conformance::differential::THREAD_MATRIX;
use ftsyn_service::admission::AdmissionConfig;
use ftsyn_service::{corpus, Reply, Request, Service};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// A unique scratch directory per test, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "ftsyn-daemon-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

const PROBLEM: &str = "mutex2-failstop-masking";

fn direct_program() -> String {
    let mut problem = corpus::problem(PROBLEM).unwrap();
    match synthesize(&mut problem) {
        SynthesisOutcome::Solved(s) => {
            assert!(s.verification.ok());
            s.program.display(&problem.props).to_string()
        }
        other => panic!("direct run did not solve: {other:?}"),
    }
}

fn program_of(reply: &Reply) -> &str {
    match reply {
        Reply::Solved {
            program, verified, ..
        } => {
            assert!(verified);
            program
        }
        other => panic!("expected Solved, got {other:?}"),
    }
}

fn small_budget() -> Budget {
    Budget {
        max_states: Some(12),
        ..Budget::unlimited()
    }
}

/// The daemon-death round trip: abort durably, drop the entire service
/// (the in-memory map dies with it), recover a fresh service from the
/// same directory, resume — byte-identical to an uninterrupted run, at
/// every thread count in the conformance matrix.
#[test]
fn recovered_checkpoints_resume_byte_identically_across_the_thread_matrix() {
    let expected = direct_program();
    for &threads in &THREAD_MATRIX {
        let scratch = Scratch::new("restart");
        let svc = Service::new().with_checkpoint_dir(&scratch.0).unwrap();
        match svc.submit(Request::corpus("r1", PROBLEM, threads).with_budget(small_budget())) {
            Reply::Aborted {
                phase, resumable, ..
            } => {
                assert_eq!(phase, "build", "threads={threads}");
                assert!(resumable, "threads={threads}");
            }
            other => panic!("threads={threads}: expected Aborted, got {other:?}"),
        }
        drop(svc); // the daemon fail-stops; only the directory survives

        let svc = Service::new().with_checkpoint_dir(&scratch.0).unwrap();
        let recovery = svc.recovery().unwrap();
        assert_eq!(recovery.recovered.len(), 1, "threads={threads}");
        assert!(recovery.quarantined.is_empty(), "{:?}", recovery.quarantined);
        let listing = svc.list_checkpoints();
        assert_eq!(listing.len(), 1);
        assert_eq!(listing[0].id, "r1");
        assert_eq!(listing[0].source, format!("corpus:{PROBLEM}"));
        assert!(listing[0].nodes > 0);

        let resumed = svc.resume("r2", "r1", threads, None);
        assert_eq!(
            program_of(&resumed),
            expected,
            "threads={threads}: resumed-after-restart program differs"
        );
        assert!(
            svc.list_checkpoints().is_empty(),
            "consumed checkpoint must leave the durable store too"
        );
        drop(svc);
        // A third life sees a clean store: the consume was durable.
        let svc = Service::new().with_checkpoint_dir(&scratch.0).unwrap();
        assert!(svc.recovery().unwrap().recovered.is_empty());
    }
}

/// Occupies the service's single worker slot with a cancellable
/// request running on its own thread, runs `body`, then releases the
/// slot and checks the occupant checkpointed.
fn with_occupied_slot(svc: &Service, body: impl FnOnce(&Service)) {
    std::thread::scope(|s| {
        let occupant =
            s.spawn(|| svc.submit(Request::corpus("occupant", "mutex4-failstop-masking", 1)));
        let start = Instant::now();
        while svc.admission_counters().0 == 0 {
            assert!(
                start.elapsed() < Duration::from_secs(30),
                "occupant was never admitted"
            );
            std::thread::yield_now();
        }
        body(svc);
        assert!(svc.cancel("occupant"));
        match occupant.join().unwrap() {
            Reply::Aborted { resumable, .. } => assert!(resumable),
            other => panic!("expected the occupant to abort, got {other:?}"),
        }
    });
}

/// With one slot and no queue, a second request is shed with a
/// structured `overloaded` reply — it never runs, and nothing is lost:
/// the shed id can be submitted again after the slot frees.
#[test]
fn full_governor_sheds_with_a_retry_hint_and_loses_nothing() {
    let svc = Service::new().with_admission(AdmissionConfig::bounded(1, 0));
    with_occupied_slot(&svc, |svc| {
        match svc.submit(Request::corpus("shed-me", PROBLEM, 1)) {
            Reply::Overloaded { retry_after_ms } => assert!(retry_after_ms >= 1),
            other => panic!("expected Overloaded, got {other:?}"),
        }
    });
    // The shed request retries once the slot is free and succeeds.
    let retried = svc.submit(Request::corpus("shed-me", PROBLEM, 1));
    assert_eq!(program_of(&retried), direct_program());
    let (admitted, shed, expired, _) = svc.admission_counters();
    assert_eq!((admitted, shed, expired), (2, 1, 0), "occupant + retry");
}

/// A resume shed by a full governor consumes nothing: the checkpoint
/// must still be listed (and durable) after the `overloaded` reply,
/// and the retry must resume it byte-identically once a slot frees —
/// including from a fresh daemon life, proving the blob never left
/// the on-disk store.
#[test]
fn shed_resume_keeps_the_checkpoint_parked_and_durable() {
    let scratch = Scratch::new("shed-resume");
    let svc = Service::new()
        .with_admission(AdmissionConfig::bounded(1, 0))
        .with_checkpoint_dir(&scratch.0)
        .unwrap();
    // Park a durable checkpoint under "r1" (admission #1; the slot
    // frees again when the abort returns).
    match svc.submit(Request::corpus("r1", PROBLEM, 1).with_budget(small_budget())) {
        Reply::Aborted { resumable, .. } => assert!(resumable),
        other => panic!("expected Aborted, got {other:?}"),
    }
    std::thread::scope(|s| {
        let occupant =
            s.spawn(|| svc.submit(Request::corpus("occupant", "mutex4-failstop-masking", 1)));
        let start = Instant::now();
        while svc.admission_counters().0 < 2 {
            assert!(
                start.elapsed() < Duration::from_secs(30),
                "occupant was never admitted"
            );
            std::thread::yield_now();
        }
        match svc.resume("r2", "r1", 1, None) {
            Reply::Overloaded { retry_after_ms } => assert!(retry_after_ms >= 1),
            other => panic!("expected Overloaded, got {other:?}"),
        }
        // The shed resume consumed nothing: "r1" is still parked.
        assert!(
            svc.list_checkpoints().iter().any(|e| e.id == "r1"),
            "shed resume lost the checkpoint"
        );
        assert!(svc.cancel("occupant"));
        match occupant.join().unwrap() {
            Reply::Aborted { resumable, .. } => assert!(resumable),
            other => panic!("expected the occupant to abort, got {other:?}"),
        }
    });
    // Still durable: a fresh daemon life recovers it from disk and the
    // retried resume hands back the uninterrupted program.
    drop(svc);
    let svc = Service::new()
        .with_admission(AdmissionConfig::bounded(1, 0))
        .with_checkpoint_dir(&scratch.0)
        .unwrap();
    assert!(
        svc.list_checkpoints().iter().any(|e| e.id == "r1"),
        "shed resume must not have consumed the durable blob"
    );
    let resumed = svc.resume("r2", "r1", 1, None);
    assert_eq!(program_of(&resumed), direct_program());
    assert!(!svc.list_checkpoints().iter().any(|e| e.id == "r1"));
}

/// A resume whose deadline expires in the admission queue consumes
/// nothing either: the admission abort leaves the checkpoint parked
/// for a later retry.
#[test]
fn expired_resume_keeps_the_checkpoint_parked() {
    let svc = Service::new().with_admission(AdmissionConfig::bounded(1, 4));
    match svc.submit(Request::corpus("r1", PROBLEM, 1).with_budget(small_budget())) {
        Reply::Aborted { resumable, .. } => assert!(resumable),
        other => panic!("expected Aborted, got {other:?}"),
    }
    std::thread::scope(|s| {
        let occupant =
            s.spawn(|| svc.submit(Request::corpus("occupant", "mutex4-failstop-masking", 1)));
        let start = Instant::now();
        while svc.admission_counters().0 < 2 {
            assert!(
                start.elapsed() < Duration::from_secs(30),
                "occupant was never admitted"
            );
            std::thread::yield_now();
        }
        let hurried = Budget {
            deadline: Some(Duration::from_millis(50)),
            ..Budget::unlimited()
        };
        match svc.resume("r2", "r1", 1, Some(hurried)) {
            Reply::Aborted {
                phase, resumable, ..
            } => {
                assert_eq!(phase, "admission");
                assert!(!resumable, "nothing ran, nothing new to resume");
            }
            other => panic!("expected an admission abort, got {other:?}"),
        }
        assert!(
            svc.list_checkpoints().iter().any(|e| e.id == "r1"),
            "expired resume lost the checkpoint"
        );
        assert!(svc.cancel("occupant"));
        match occupant.join().unwrap() {
            Reply::Aborted { resumable, .. } => assert!(resumable),
            other => panic!("expected the occupant to abort, got {other:?}"),
        }
    });
    // With the slot free again the same resume succeeds.
    let resumed = svc.resume("r2", "r1", 1, None);
    assert_eq!(program_of(&resumed), direct_program());
}

/// A queued request whose own deadline passes while waiting is aborted
/// in the `admission` phase — queue time counts against the deadline.
#[test]
fn queued_requests_inherit_their_deadline() {
    let svc = Service::new().with_admission(AdmissionConfig::bounded(1, 4));
    with_occupied_slot(&svc, |svc| {
        let req = Request::corpus("hurried", PROBLEM, 1).with_budget(Budget {
            deadline: Some(Duration::from_millis(50)),
            ..Budget::unlimited()
        });
        match svc.submit(req) {
            Reply::Aborted {
                phase, resumable, ..
            } => {
                assert_eq!(phase, "admission");
                assert!(!resumable, "nothing ran, nothing to resume");
            }
            other => panic!("expected an admission abort, got {other:?}"),
        }
    });
}

/// A drain shutdown cancels the in-build request, which parks a
/// durable checkpoint on its way out; the next daemon life resumes it
/// byte-identically.
#[test]
fn drain_shutdown_checkpoints_in_flight_work_for_the_next_life() {
    let scratch = Scratch::new("drain");
    let svc = Service::new().with_checkpoint_dir(&scratch.0).unwrap();
    std::thread::scope(|s| {
        let worker = s.spawn(|| svc.submit(Request::corpus("inflight", PROBLEM, 2)));
        // Drain as soon as the request is running.
        let start = Instant::now();
        while svc.admission_counters().0 == 0 {
            assert!(start.elapsed() < Duration::from_secs(30), "never admitted");
            std::thread::yield_now();
        }
        svc.shutdown();
        match worker.join().unwrap() {
            // The cancel may land mid-build (checkpoint parked) or the
            // request may already have finished — both drain outcomes
            // lose nothing.
            Reply::Aborted { resumable, .. } => assert!(resumable),
            Reply::Solved { .. } => return,
            other => panic!("unexpected drain outcome: {other:?}"),
        }
        drop(svc.list_checkpoints());
    });
    let had_checkpoint = !svc.list_checkpoints().is_empty();
    drop(svc);

    let svc = Service::new().with_checkpoint_dir(&scratch.0).unwrap();
    if had_checkpoint {
        assert_eq!(svc.recovery().unwrap().recovered.len(), 1);
        let resumed = svc.resume("next-life", "inflight", 2, None);
        assert_eq!(program_of(&resumed), direct_program());
    }
}

/// Capped cache partitions evict but never change results: with room
/// for almost nothing, a warm second request still reproduces the cold
/// program byte for byte.
#[test]
fn cache_eviction_under_tiny_limits_preserves_byte_identity() {
    let svc = Service::new().with_cache_limits(CacheLimits {
        max_entries: Some(4),
        max_bytes: None,
    });
    let cold = svc.submit(Request::corpus("cold", PROBLEM, 2));
    let (entries, _, evicted_entries, evicted_bytes) = svc.cache_stats();
    assert!(entries <= 4, "cap enforced after fold-back, got {entries}");
    assert!(evicted_entries > 0, "the cap must actually evict");
    assert!(evicted_bytes > 0);
    let warm = svc.submit(Request::corpus("warm", PROBLEM, 2));
    assert_eq!(program_of(&cold), program_of(&warm));
    assert_eq!(program_of(&warm), direct_program());
}
