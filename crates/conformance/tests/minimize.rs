//! Minimization-engine conformance: the incremental + parallel
//! semantic minimizer must be a *drop-in* replacement for the original
//! greedy engine. Two properties are checked on real pipeline models
//! (built through closure → tableau → deletion → unraveling, exactly
//! the state the synthesis pipeline hands to minimization):
//!
//! 1. **Thread-matrix byte-identity** — the minimized model, the
//!    state mapping, and every deterministic profile counter are
//!    bit-identical at 1, 2 and 8 scan workers. The committed merge
//!    sequence is defined by the lowest-index verified candidate, not
//!    by scheduling.
//! 2. **Reference equivalence** (with `--features slow-reference`) —
//!    the fast engine's output is byte-identical to the preserved
//!    pre-optimization greedy engine on the same input.

use ftsyn::ctl::Closure;
use ftsyn::kripke::FtKripke;
use ftsyn::problems::mutex;
use ftsyn::tableau::{apply_deletion_rules_mode, build, FaultSpec};
use ftsyn::{semantic_minimize_with_threads, unravel_mode, SynthesisProblem, Tolerance};
use ftsyn_conformance::differential::THREAD_MATRIX;

/// Runs the pipeline up to (but not including) minimization — the
/// exact input `synthesize` hands to the minimizer.
fn pre_minimization_model(problem: &mut SynthesisProblem) -> FtKripke {
    let roots = problem.closure_roots();
    let spec_formula = roots[0];
    let closure = Closure::build(&mut problem.arena, &problem.props, &roots);
    let fault_spec = FaultSpec {
        actions: problem.faults.clone(),
        tolerance_labels: problem.tolerance_label_sets(&closure),
    };
    let mut root_label = closure.empty_label();
    root_label.insert(closure.index_of(spec_formula).unwrap());
    let mut tableau = build(&closure, &problem.props, root_label, &fault_spec);
    apply_deletion_rules_mode(&mut tableau, &closure, problem.mode);
    assert!(tableau.alive(tableau.root()), "problem is synthesizable");
    let c0 = tableau
        .alive_succ(tableau.root(), |_| true)
        .map(|(_, c)| c)
        .next()
        .expect("alive root has an alive AND child");
    let unraveled = unravel_mode(&tableau, &closure, &problem.props, c0, problem.mode).model;
    // The pipeline quotients by bisimulation before minimizing.
    ftsyn::kripke::bisimulation_quotient(&unraveled).model
}

/// `FtKripke` has no `PartialEq`; its `Debug` form is a complete,
/// deterministic rendering of states, valuations, roles and edges, so
/// string equality is byte-identity.
fn fingerprint(m: &FtKripke) -> String {
    format!("{m:?}")
}

fn pipeline_problems() -> Vec<(&'static str, SynthesisProblem)> {
    vec![
        ("mutex2-failstop-masking", mutex::with_fail_stop(2, Tolerance::Masking)),
        ("mutex3-failstop-masking", mutex::with_fail_stop(3, Tolerance::Masking)),
        ("philosophers3", mutex::dining_philosophers(3)),
    ]
}

#[test]
fn minimized_model_is_byte_identical_across_minimize_thread_counts() {
    for (name, mut problem) in pipeline_problems() {
        let model = pre_minimization_model(&mut problem);
        let (m0, map0, p0) =
            semantic_minimize_with_threads(&mut problem, model.clone(), THREAD_MATRIX[0]);
        for &threads in &THREAD_MATRIX[1..] {
            let (m, map, p) =
                semantic_minimize_with_threads(&mut problem, model.clone(), threads);
            assert_eq!(
                fingerprint(&m0),
                fingerprint(&m),
                "{name}: minimized model diverged at {threads} scan threads"
            );
            assert_eq!(map0, map, "{name}: state mapping diverged at {threads} threads");
            assert_eq!(
                p0.deterministic_counters(),
                p.deterministic_counters(),
                "{name}: deterministic counters diverged at {threads} threads"
            );
            assert_eq!(p.threads, threads, "{name}: profile must record the budget");
        }
    }
}

/// With `--features slow-reference`: the fast engine against the
/// preserved original. Identical model bytes, identical mapping, and
/// identical attempt/merge counts — the fast engine takes the same
/// greedy decisions, it just reaches them cheaper.
#[cfg(feature = "slow-reference")]
#[test]
fn fast_engine_is_byte_identical_to_reference_engine() {
    use ftsyn::semantic_minimize_reference;
    for (name, mut problem) in pipeline_problems() {
        let model = pre_minimization_model(&mut problem);
        let (fast, fast_map, fast_prof) =
            semantic_minimize_with_threads(&mut problem, model.clone(), 1);
        let (slow, slow_map, slow_prof) = semantic_minimize_reference(&mut problem, model);
        assert_eq!(
            fingerprint(&fast),
            fingerprint(&slow),
            "{name}: fast engine diverged from the reference engine"
        );
        assert_eq!(fast_map, slow_map, "{name}: state mapping diverged");
        assert_eq!(fast_prof.attempts, slow_prof.attempts, "{name}: attempts diverged");
        assert_eq!(fast_prof.merges, slow_prof.merges, "{name}: merges diverged");
    }
}
