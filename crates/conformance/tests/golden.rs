//! Golden-program snapshot suite: the synthesized skeleton for every
//! example problem and `.ftsyn` spec file is pinned byte-for-byte.
//!
//! Regenerate after an intentional pipeline change with
//! `UPDATE_GOLDEN=1 cargo test -p ftsyn-conformance --test golden`.

use ftsyn::guarded::{BoolExpr, FaultAction, PropAssign};
use ftsyn::problems::{barrier, mutex, readers_writers, wire};
use ftsyn::{
    synthesize, synthesize_governed, Budget, Governor, SynthesisProblem, Tolerance,
    ToleranceAssignment,
};
use ftsyn_conformance::golden::assert_golden;
use ftsyn_conformance::render::{render_program, render_solved};
use std::path::PathBuf;

fn check(name: &str, mut problem: SynthesisProblem) {
    let s = synthesize(&mut problem).unwrap_solved();
    assert!(s.verification.ok(), "{name}: {:?}", s.verification.failures);
    assert_golden(name, &render_solved(&problem, &s));
}

#[test]
fn mutex_fail_stop() {
    check(
        "mutex2-failstop-masking",
        mutex::with_fail_stop(2, Tolerance::Masking),
    );
}

/// The largest pinned masking instance: four processes under fail-stop
/// faults. Minimization dominates this synthesis (tens of seconds — see
/// EXPERIMENTS.md), so it is pinned once here; the thread-matrix
/// determinism regression for the same instance lives in
/// `determinism.rs`.
#[test]
fn mutex4_fail_stop() {
    check(
        "mutex4-failstop-masking",
        mutex::with_fail_stop(4, Tolerance::Masking),
    );
}

/// Three-process multitolerance: P1's fail-stop is ridden out
/// nonmasking while every other fault (including repairs) stays
/// masked. Extends the pinned multitolerance coverage beyond the
/// two-process E9 instance below.
#[test]
fn multitolerance_mutex4() {
    // The §8.2 scaling axis the extraction gap used to block: four
    // processes under a per-fault assignment, synthesized under
    // deterministic governor caps (the tableau runs ~45k nodes and the
    // refinement loop is bounded) so a regression that blows up either
    // aborts instead of hanging the suite.
    let mut problem = mutex::with_fail_stop_multitolerance(4, |f| {
        if f.name().contains("P1") {
            Tolerance::Nonmasking
        } else {
            Tolerance::Masking
        }
    });
    let gov = Governor::with_budget(Budget {
        max_states: Some(60_000),
        max_extract_refine_rounds: Some(4),
        ..Budget::default()
    });
    let s = synthesize_governed(&mut problem, ftsyn::default_threads(), &gov).unwrap_solved();
    assert!(
        s.verification.ok(),
        "multitolerance-mutex4: {:?}",
        s.verification.failures
    );
    assert!(s.stats.extract_profile.verified);
    assert_golden(
        "multitolerance-mutex4-P1-nonmasking",
        &ftsyn_conformance::render::render_solved(&problem, &s),
    );
}

#[test]
fn multitolerance_mutex3() {
    check(
        "multitolerance-mutex3-P1-nonmasking",
        mutex::with_fail_stop_multitolerance(3, |f| {
            if f.name().contains("P1") {
                Tolerance::Nonmasking
            } else {
                Tolerance::Masking
            }
        }),
    );
}

#[test]
fn barrier_state_faults() {
    check("barrier2-nonmasking", barrier::with_general_state_faults(2));
}

#[test]
fn readers_writers_writer_fail_stop() {
    check(
        "readers-writers-1R-writer-failstop",
        readers_writers::with_writer_fail_stop(1, Tolerance::Masking),
    );
}

#[test]
fn dining_philosophers() {
    check("philosophers3-fault-free", mutex::dining_philosophers(3));
}

#[test]
fn multitolerance_mixed() {
    // The E9 instance: fail-stop faults masked, an undetectable
    // corruption of P1 ridden out nonmasking (Section 8.2).
    let mut problem = mutex::with_fail_stop(2, Tolerance::Masking);
    let (n1, t1, c1, d1) = (
        problem.props.id("N1").unwrap(),
        problem.props.id("T1").unwrap(),
        problem.props.id("C1").unwrap(),
        problem.props.id("D1").unwrap(),
    );
    problem.faults.push(
        FaultAction::new(
            "corrupt-P1-to-C",
            BoolExpr::tru(),
            vec![
                (c1, PropAssign::True),
                (n1, PropAssign::False),
                (t1, PropAssign::False),
                (d1, PropAssign::False),
            ],
        )
        .unwrap(),
    );
    let corrupt_idx = problem.faults.len() - 1;
    let tols: Vec<Tolerance> = (0..problem.faults.len())
        .map(|i| {
            if i == corrupt_idx {
                Tolerance::Nonmasking
            } else {
                Tolerance::Masking
            }
        })
        .collect();
    problem.tolerance = ToleranceAssignment::PerFault(tols);
    check("multitolerance-mutex2-mixed", problem);
}

#[test]
fn wire_stuck_at() {
    // Not a synthesis problem: the Section 2.3 wire is a concrete
    // guarded-command system. Its program rendering and explored
    // state-space size are pinned instead.
    let w = wire::build(None);
    let ex = ftsyn::guarded::interp::explore(&w.program, &w.faults, &w.props).expect("explore");
    let text = format!(
        "states: {} ({} fault edges)\nprogram:\n{}",
        ex.kripke.len(),
        ex.kripke.fault_edge_count(),
        render_program(&w.program, &w.props)
    );
    assert_golden("wire-stuck-at", &text);
}

fn spec_file(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../specs")
        .join(name)
}

fn check_spec(golden: &str, file: &str) {
    let src = std::fs::read_to_string(spec_file(file))
        .unwrap_or_else(|e| panic!("cannot read {file}: {e}"));
    let problem = ftsyn_cli::parse_problem(&src).unwrap_or_else(|e| panic!("{file}: {e}"));
    check(golden, problem);
}

#[test]
fn spec_mutex_failstop() {
    check_spec("spec-mutex_failstop", "mutex_failstop.ftsyn");
}

#[test]
fn spec_reset_task() {
    check_spec("spec-reset_task", "reset_task.ftsyn");
}
