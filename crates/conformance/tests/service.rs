//! Service-path conformance: requests answered by the shared-cache
//! daemon must be byte-identical to direct [`ftsyn::synthesize`] calls
//! — cold, warm, concurrent, through abort→resume hops, and across the
//! differential fuzzer's generated problems routed through the inline
//! spec path.

use ftsyn::{
    synthesize, synthesize_with_engine, Budget, Engine, SynthesisOutcome, SynthesisProblem,
    ThreadPlan,
};
use ftsyn_conformance::differential::THREAD_MATRIX;
use ftsyn_conformance::generate::random_problem;
use ftsyn_prng::XorShift64;
use ftsyn_service::json::{self, Value};
use ftsyn_service::{corpus, serve, Reply, Request, Service};

/// What a direct, ungoverned, in-process run of `problem` produces, in
/// the exact fields the service reports.
struct Direct {
    states: usize,
    transitions: usize,
    program: String,
    solved: bool,
}

fn direct(mut problem: SynthesisProblem) -> Direct {
    match synthesize(&mut problem) {
        SynthesisOutcome::Solved(s) => {
            assert!(s.verification.ok(), "direct run failed verification");
            Direct {
                states: s.stats.model_states,
                transitions: s.stats.program_transitions,
                program: s.program.display(&problem.props).to_string(),
                solved: true,
            }
        }
        SynthesisOutcome::Impossible(_) => Direct {
            states: 0,
            transitions: 0,
            program: String::new(),
            solved: false,
        },
        SynthesisOutcome::Aborted(a) => panic!("direct ungoverned run aborted: {}", a.reason),
    }
}

/// Asserts a service reply matches the direct run of the same problem,
/// byte for byte on the program text.
fn assert_matches(context: &str, reply: &Reply, expected: &Direct) {
    match reply {
        Reply::Solved {
            states,
            transitions,
            verified,
            program,
            ..
        } => {
            assert!(expected.solved, "{context}: service solved, direct did not");
            assert!(*verified, "{context}: service program failed verification");
            assert_eq!(*states, expected.states, "{context}: state count");
            assert_eq!(
                *transitions, expected.transitions,
                "{context}: transition count"
            );
            assert_eq!(
                *program, expected.program,
                "{context}: service program diverged from the direct run"
            );
        }
        Reply::Impossible => {
            assert!(
                !expected.solved,
                "{context}: service says impossible, direct run solved"
            );
        }
        other => panic!("{context}: unexpected reply {other:?}"),
    }
}

/// A warmed shared cache changes hit counters, never result bytes:
/// the second identical request must report nonzero hits, zero misses,
/// and a program byte-identical to both the cold request and a direct
/// in-process run.
#[test]
fn warm_cache_requests_are_byte_identical_to_cold_and_direct_runs() {
    let svc = Service::new();
    for name in ["mutex2-failstop-masking", "barrier2-nonmasking"] {
        let expected = direct(corpus::problem(name).expect("corpus name"));
        let cold = svc.submit(Request::corpus(&format!("{name}-cold"), name, 2));
        let warm = svc.submit(Request::corpus(&format!("{name}-warm"), name, 2));
        assert_matches(&format!("{name} cold"), &cold, &expected);
        assert_matches(&format!("{name} warm"), &warm, &expected);
        let Reply::Solved {
            cache_hits: cold_hits,
            cache_misses: cold_misses,
            ..
        } = cold
        else {
            unreachable!()
        };
        let Reply::Solved {
            cache_hits: warm_hits,
            cache_misses: warm_misses,
            ..
        } = warm
        else {
            unreachable!()
        };
        assert_eq!(cold_hits, 0, "{name}: a cold cache cannot hit");
        assert!(cold_misses > 0, "{name}: a cold build must miss");
        assert!(warm_hits > 0, "{name}: a warmed cache must hit");
        assert_eq!(warm_misses, 0, "{name}: a fully warmed cache cannot miss");
    }
}

/// Every corpus problem submitted concurrently against one shared
/// service — interleaving cache fills and reads across worker threads —
/// answers byte-identically to its own direct run.
#[test]
fn concurrent_requests_against_one_service_match_direct_synthesis() {
    // mutex4 is the long pole; keep the fast families and submit each
    // twice so same-family requests race on the shared cache.
    let names = [
        "mutex2-failstop-masking",
        "mutex3-failstop-masking",
        "multitolerance-mutex3-P1-nonmasking",
        "barrier2-nonmasking",
        "readers-writers-1R-writer-failstop",
        "philosophers3-fault-free",
    ];
    let expected: Vec<Direct> = names
        .iter()
        .map(|n| direct(corpus::problem(n).expect("corpus name")))
        .collect();

    let svc = Service::new();
    let replies: Vec<(String, Reply)> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for round in 0..2 {
            for (i, name) in names.iter().enumerate() {
                let svc = &svc;
                let threads = THREAD_MATRIX[(round + i) % THREAD_MATRIX.len()];
                handles.push(scope.spawn(move || {
                    let id = format!("{name}-r{round}");
                    let reply = svc.submit(Request::corpus(&id, name, threads));
                    (id, reply)
                }));
            }
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert_eq!(replies.len(), 2 * names.len());
    for (id, reply) in &replies {
        let i = names
            .iter()
            .position(|n| id.starts_with(n))
            .expect("id names its case");
        assert_matches(id, reply, &expected[i]);
    }
    let (entries, _) = svc.cache_entries();
    assert!(entries > 0, "the shared cache must have been populated");
}

/// Service-path resume identity: a request aborted at a state cap and
/// resumed through the service's checkpoint store yields the same
/// bytes as the direct run, at every thread count.
#[test]
fn service_resume_is_byte_identical_to_direct_runs_at_every_thread_count() {
    let name = "mutex3-failstop-masking";
    let expected = direct(corpus::problem(name).expect("corpus name"));
    for &threads in &THREAD_MATRIX {
        // A fresh service per thread count keeps every run cold, so the
        // comparison pins resume identity, not cache warmth.
        let svc = Service::new();
        let id = format!("abort-{threads}");
        let reply = svc.submit(Request::corpus(&id, name, threads).with_budget(Budget {
            max_states: Some(400),
            ..Budget::unlimited()
        }));
        let Reply::Aborted {
            phase, resumable, ..
        } = reply
        else {
            panic!("expected an abort at cap 400, got {reply:?}")
        };
        assert_eq!(phase, "build");
        assert!(resumable, "build aborts must leave a checkpoint");
        let resumed = svc.resume(&format!("resume-{threads}"), &id, threads, None);
        assert_matches(&format!("{name} resumed at {threads} threads"), &resumed, &expected);
    }
}

/// A slice of the differential fuzzer's seed space routed through the
/// service's inline-spec path: the injected parser maps a seed string
/// to the generated problem, and every reply must match the direct run
/// — including the seeds whose specification is impossible.
#[test]
fn fuzz_seeds_through_the_service_match_direct_runs() {
    let svc = Service::new().with_spec_parser(Box::new(|text: &str| {
        let seed: u64 = text
            .trim()
            .parse()
            .map_err(|e| format!("not a seed: {e}"))?;
        Ok(random_problem(&mut XorShift64::new(seed)).problem)
    }));

    let seeds: Vec<u64> = (1..=10).collect();
    let expected: Vec<Direct> = seeds
        .iter()
        .map(|&s| direct(random_problem(&mut XorShift64::new(s)).problem))
        .collect();
    let mut solved = 0;
    let mut impossible = 0;

    let replies: Vec<Reply> = std::thread::scope(|scope| {
        let handles: Vec<_> = seeds
            .iter()
            .enumerate()
            .map(|(i, &seed)| {
                let svc = &svc;
                let threads = THREAD_MATRIX[i % THREAD_MATRIX.len()];
                scope.spawn(move || {
                    svc.submit(Request {
                        id: format!("seed-{seed}"),
                        source: ftsyn_service::ProblemSource::Spec(seed.to_string()),
                        threads,
                        budget: None,
                        engine: Engine::default(),
                    })
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for ((seed, reply), exp) in seeds.iter().zip(&replies).zip(&expected) {
        assert_matches(&format!("seed {seed}"), reply, exp);
        match exp.solved {
            true => solved += 1,
            false => impossible += 1,
        }
    }
    // The slice must exercise both outcomes, or the comparison is weaker
    // than it claims.
    assert!(solved > 0, "no fuzz seed in the slice solved");
    assert!(impossible > 0, "no fuzz seed in the slice was impossible");
}

/// What a direct, ungoverned CEGIS run of `problem` produces.
fn direct_cegis(mut problem: SynthesisProblem) -> Direct {
    match synthesize_with_engine(&mut problem, Engine::Cegis, ThreadPlan::uniform(1), None) {
        SynthesisOutcome::Solved(s) => {
            assert!(s.verification.ok(), "direct CEGIS run failed verification");
            Direct {
                states: s.stats.model_states,
                transitions: s.stats.program_transitions,
                program: s.program.display(&problem.props).to_string(),
                solved: true,
            }
        }
        SynthesisOutcome::Impossible(_) => Direct {
            states: 0,
            transitions: 0,
            program: String::new(),
            solved: false,
        },
        SynthesisOutcome::Aborted(a) => panic!("direct ungoverned CEGIS run aborted: {}", a.reason),
    }
}

/// The same inline-spec seed slice routed through the service with
/// `engine: cegis`: every reply must be byte-identical to a direct
/// CEGIS run of the generated problem, and the solved/impossible split
/// must match the tableau engine's split seed by seed.
#[test]
fn fuzz_seeds_through_the_service_cegis_engine_match_direct_cegis_runs() {
    let svc = Service::new().with_spec_parser(Box::new(|text: &str| {
        let seed: u64 = text
            .trim()
            .parse()
            .map_err(|e| format!("not a seed: {e}"))?;
        Ok(random_problem(&mut XorShift64::new(seed)).problem)
    }));

    let seeds: Vec<u64> = (1..=10).collect();
    let expected: Vec<Direct> = seeds
        .iter()
        .map(|&s| direct_cegis(random_problem(&mut XorShift64::new(s)).problem))
        .collect();
    let tableau_split: Vec<bool> = seeds
        .iter()
        .map(|&s| direct(random_problem(&mut XorShift64::new(s)).problem).solved)
        .collect();

    let replies: Vec<Reply> = std::thread::scope(|scope| {
        let handles: Vec<_> = seeds
            .iter()
            .enumerate()
            .map(|(i, &seed)| {
                let svc = &svc;
                let threads = THREAD_MATRIX[i % THREAD_MATRIX.len()];
                scope.spawn(move || {
                    svc.submit(
                        Request {
                            id: format!("cegis-seed-{seed}"),
                            source: ftsyn_service::ProblemSource::Spec(seed.to_string()),
                            threads,
                            budget: None,
                            engine: Engine::Cegis,
                        },
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (((seed, reply), exp), &tableau_solved) in
        seeds.iter().zip(&replies).zip(&expected).zip(&tableau_split)
    {
        assert_matches(&format!("cegis seed {seed}"), reply, exp);
        assert_eq!(
            exp.solved, tableau_solved,
            "seed {seed}: the engines disagree on solvability"
        );
        if let Reply::Solved {
            cache_hits,
            cache_misses,
            ..
        } = reply
        {
            assert_eq!(*cache_hits, 0, "seed {seed}: CEGIS bypasses the cache");
            assert_eq!(*cache_misses, 0, "seed {seed}: CEGIS bypasses the cache");
        }
    }
}

/// One serve-pipe request per engine over the wire protocol: both
/// solve the same corpus problem, the CEGIS reply carries zero cache
/// counters, and a wire-level `engine:"cegis"` resume is rejected.
#[test]
fn serve_pipe_answers_one_request_per_engine() {
    let svc = Service::new();
    let input = concat!(
        r#"{"id":"t1","op":"synthesize","problem":"mutex2-failstop-masking","threads":1,"engine":"tableau"}"#,
        "\n",
        r#"{"id":"c1","op":"synthesize","problem":"mutex2-failstop-masking","threads":1,"engine":"cegis"}"#,
        "\n",
        r#"{"id":"bad","op":"synthesize","problem":"mutex2-failstop-masking","engine":"magic"}"#,
        "\n",
        r#"{"id":"r1","op":"resume","from":"t1","engine":"cegis"}"#,
        "\n",
        r#"{"id":"end","op":"shutdown"}"#,
        "\n",
    );
    let mut output = Vec::new();
    serve(&svc, input.as_bytes(), &mut output).unwrap();
    let text = String::from_utf8(output).unwrap();
    let mut by_id = std::collections::HashMap::new();
    for line in text.lines() {
        let v = json::parse(line).unwrap();
        by_id.insert(
            v.get("id").and_then(Value::as_str).unwrap().to_owned(),
            v,
        );
    }

    let expected = direct_cegis(corpus::problem("mutex2-failstop-masking").expect("corpus name"));
    for id in ["t1", "c1"] {
        let v = &by_id[id];
        assert_eq!(v.get("status").and_then(Value::as_str), Some("solved"), "{id}");
        assert_eq!(v.get("verified"), Some(&Value::Bool(true)), "{id}");
    }
    assert_eq!(
        by_id["c1"].get("program").and_then(Value::as_str),
        Some(expected.program.as_str()),
        "the wire CEGIS program must match a direct CEGIS run"
    );
    assert_eq!(by_id["c1"].get("cache_hits").and_then(Value::as_u64), Some(0));
    assert_eq!(by_id["c1"].get("cache_misses").and_then(Value::as_u64), Some(0));

    let bad = by_id["bad"].get("message").and_then(Value::as_str).unwrap();
    assert!(bad.contains("unknown engine"), "{bad}");
    let r1 = by_id["r1"].get("message").and_then(Value::as_str).unwrap();
    assert!(r1.contains("tableau-only"), "{r1}");
}
