//! Backend-differential suite: the CEGIS bounded-synthesis engine
//! cross-checked against the tableau engine.
//!
//! Two layers:
//!
//! - **Corpus**: every synthesizable golden-corpus case must solve via
//!   CEGIS, with the program accepted by the kripke oracle
//!   ([`check_program`]) and a seeded fault-injection campaign — the
//!   acceptance bar of the tableau goldens, applied to the second
//!   engine.
//! - **Fuzz**: the full 60-seed differential matrix routed through
//!   [`run_seed_cegis`], which asserts the outcome-agreement contract
//!   (CEGIS solved ⟹ tableau solved; impossible ⟺ impossible;
//!   bound-exhaustion legal only on tableau-solvable cases), re-checks
//!   every CEGIS program with both oracles, and pins byte determinism
//!   of the CEGIS engine across the 1/2/8 thread matrix.

use ftsyn::guarded::sim::CampaignConfig;
use ftsyn::problems::{barrier, mutex, readers_writers};
use ftsyn::{
    cegis_synthesize, check_program, synthesize_with_engine, Engine, SynthesisOutcome,
    SynthesisProblem, ThreadPlan, Tolerance, ToleranceAssignment,
};
use ftsyn_conformance::campaign::assert_campaign;
use ftsyn_conformance::differential::{run_seed_cegis, BackendCaseResult};

/// Synthesizes `problem` with the CEGIS engine and holds the result to
/// the same bar as the tableau goldens: solved, internally verified,
/// oracle-rechecked, campaign-simulated.
fn check_cegis(name: &str, mut problem: SynthesisProblem) {
    let outcome = cegis_synthesize(&mut problem, ThreadPlan::uniform(1), None);
    let SynthesisOutcome::Solved(s) = outcome else {
        let what = match outcome {
            SynthesisOutcome::Impossible(_) => "impossible".to_owned(),
            SynthesisOutcome::Aborted(a) => format!("aborted: {}", a.reason),
            SynthesisOutcome::Solved(_) => unreachable!(),
        };
        panic!("{name}: CEGIS did not solve ({what})");
    };
    assert!(
        s.verification.ok(),
        "{name}: CEGIS verification failed: {:?}",
        s.verification.failures
    );
    assert!(
        s.artifacts.is_none(),
        "{name}: CEGIS solved path must not carry tableau artifacts"
    );
    assert!(
        s.stats.cegis_profile.solved_at_bound.is_some(),
        "{name}: solved run must record its bound"
    );
    let report = check_program(&mut problem, &s.program)
        .unwrap_or_else(|e| panic!("{name}: CEGIS program not executable: {e}"));
    assert!(
        report.tolerant(),
        "{name}: model checker rejects the CEGIS program: {}",
        report.verification.failure_summary()
    );
    assert_campaign(
        &format!("{name} [cegis]"),
        &mut problem,
        &s.program,
        &CampaignConfig {
            runs: 4,
            steps: 200,
            base_seed: 0xCE615,
        },
    );
}

#[test]
fn cegis_mutex2_fail_stop() {
    check_cegis("mutex2-failstop", mutex::with_fail_stop(2, Tolerance::Masking));
}

#[test]
fn cegis_mutex3_fail_stop() {
    check_cegis("mutex3-failstop", mutex::with_fail_stop(3, Tolerance::Masking));
}

/// The instance the tableau engine spends seconds on (26k nodes, then
/// minimization): CEGIS solves it from a 189-valuation universe in
/// about a hundred candidates. The head-to-head lives in bench JSON
/// (`backend_comparison`).
#[test]
fn cegis_mutex4_fail_stop() {
    check_cegis("mutex4-failstop", mutex::with_fail_stop(4, Tolerance::Masking));
}

#[test]
fn cegis_barrier2_nonmasking() {
    check_cegis("barrier2-nonmasking", barrier::with_general_state_faults(2));
}

#[test]
fn cegis_readers_writers() {
    check_cegis(
        "readers-writers-1R-writer-failstop",
        readers_writers::with_writer_fail_stop(1, Tolerance::Masking),
    );
}

#[test]
fn cegis_philosophers3() {
    check_cegis("philosophers3-fault-free", mutex::dining_philosophers(3));
}

#[test]
fn cegis_multitolerance_mutex3() {
    check_cegis(
        "multitolerance-mutex3-P1-nonmasking",
        mutex::with_fail_stop_multitolerance(3, |f| {
            if f.name().contains("P1") {
                Tolerance::Nonmasking
            } else {
                Tolerance::Masking
            }
        }),
    );
}

#[test]
fn cegis_multitolerance_mutex4() {
    check_cegis(
        "multitolerance-mutex4-P1-nonmasking",
        mutex::with_fail_stop_multitolerance(4, |f| {
            if f.name().contains("P1") {
                Tolerance::Nonmasking
            } else {
                Tolerance::Masking
            }
        }),
    );
}

/// The E9 mixed-tolerance instance (fail-stop masked, corruption ridden
/// out nonmasking).
#[test]
fn cegis_multitolerance_mixed() {
    use ftsyn::guarded::{BoolExpr, FaultAction, PropAssign};
    let mut problem = mutex::with_fail_stop(2, Tolerance::Masking);
    let (n1, t1, c1, d1) = (
        problem.props.id("N1").unwrap(),
        problem.props.id("T1").unwrap(),
        problem.props.id("C1").unwrap(),
        problem.props.id("D1").unwrap(),
    );
    problem.faults.push(
        FaultAction::new(
            "corrupt-P1-to-C",
            BoolExpr::tru(),
            vec![
                (c1, PropAssign::True),
                (n1, PropAssign::False),
                (t1, PropAssign::False),
                (d1, PropAssign::False),
            ],
        )
        .unwrap(),
    );
    let corrupt_idx = problem.faults.len() - 1;
    let tols: Vec<Tolerance> = (0..problem.faults.len())
        .map(|i| {
            if i == corrupt_idx {
                Tolerance::Nonmasking
            } else {
                Tolerance::Masking
            }
        })
        .collect();
    problem.tolerance = ToleranceAssignment::PerFault(tols);
    check_cegis("multitolerance-mutex2-mixed", problem);
}

/// Both `.ftsyn` spec files synthesize via CEGIS too (the CLI's
/// `--engine cegis` path end-to-end, minus the binary).
#[test]
fn cegis_spec_files() {
    let spec_dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../specs");
    for file in ["mutex_failstop.ftsyn", "reset_task.ftsyn"] {
        let src = std::fs::read_to_string(spec_dir.join(file))
            .unwrap_or_else(|e| panic!("cannot read {file}: {e}"));
        let problem = ftsyn_cli::parse_problem(&src).unwrap_or_else(|e| panic!("{file}: {e}"));
        check_cegis(file, problem);
    }
}

/// `--engine` dispatch: the same entry point runs either backend, and
/// on a case both solve, both outcomes verify (the models may differ —
/// only outcome agreement is contractual, and the oracle judges each).
#[test]
fn engine_dispatch_runs_both_backends() {
    for engine in [Engine::Tableau, Engine::Cegis] {
        let mut problem = mutex::with_fail_stop(2, Tolerance::Masking);
        let outcome = synthesize_with_engine(&mut problem, engine, ThreadPlan::uniform(1), None);
        let s = outcome.unwrap_solved();
        assert!(s.verification.ok(), "{}: {:?}", engine.name(), s.verification.failures);
        assert_eq!(s.artifacts.is_some(), engine == Engine::Tableau);
    }
}

// ---------------------------------------------------------------------
// Differential fuzz matrix
// ---------------------------------------------------------------------

fn run_range(lo: u64, hi: u64) -> Vec<BackendCaseResult> {
    (lo..=hi).map(run_seed_cegis).collect()
}

// Split into chunks so the libtest harness runs them in parallel
// (mirrors tests/fuzz.rs).
#[test]
fn cegis_seeds_01_to_10() {
    run_range(1, 10);
}

#[test]
fn cegis_seeds_11_to_20() {
    run_range(11, 20);
}

#[test]
fn cegis_seeds_21_to_30() {
    run_range(21, 30);
}

#[test]
fn cegis_seeds_31_to_40() {
    run_range(31, 40);
}

#[test]
fn cegis_seeds_41_to_50() {
    run_range(41, 50);
}

#[test]
fn cegis_seeds_51_to_60() {
    run_range(51, 60);
}

/// The matrix must genuinely exercise the CEGIS engine: a healthy
/// majority of seeds solved *by CEGIS* (not merely agreed-impossible),
/// both outcomes present, and bound-exhaustion a rare tail — if the
/// enumerator regresses into exhausting everywhere (outcomes would
/// still "agree" vacuously), this trips.
#[test]
fn cegis_seed_matrix_is_meaningful() {
    let results = run_range(1, 20);
    let solved = results.iter().filter(|r| r.cegis_solved).count();
    let impossible = results.iter().filter(|r| !r.tableau_solved).count();
    let exhausted = results
        .iter()
        .filter(|r| r.tableau_solved && !r.cegis_solved)
        .count();
    assert!(solved >= 8, "only {solved}/20 seeds CEGIS-solved: {results:?}");
    assert!(impossible >= 5, "only {impossible}/20 impossible: {results:?}");
    assert!(
        exhausted <= 2,
        "{exhausted}/20 seeds bound-exhausted — the enumerator lost its corpus: {results:?}"
    );
}
