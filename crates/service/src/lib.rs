//! Synthesis-as-a-service: a daemon engine that accepts many
//! concurrent synthesis requests, shares warm [`ExpansionCache`]s
//! across them, and turns budget aborts into resumable checkpoints
//! instead of lost work.
//!
//! # Architecture
//!
//! [`Service`] is the engine; it owns
//!
//! - a shared expansion cache, **partitioned by problem source**: the
//!   cache keys are label bitsets, which index into a
//!   problem's closure, so an entry is only meaningful to builds of
//!   the same problem — one partition per [`ProblemSource`] makes
//!   cross-request sharing sound. Each partition sits behind its own
//!   `RwLock`: every request builds under a read guard of its
//!   partition (many builders in parallel) and the cache fills it
//!   discovers are folded back under a brief write lock after the
//!   pipeline finishes, without ever blocking requests for *other*
//!   problems;
//! - a checkpoint store keyed by request id, holding the **encoded**
//!   checkpoint blob (not the live structure) plus the problem
//!   source, so every abort→resume hop exercises the serialization
//!   format end-to-end exactly like an on-disk blob would;
//! - an active-request registry mapping ids to their [`Governor`]s,
//!   giving `cancel` and `shutdown` a handle to every in-flight run.
//!
//! Determinism: a request's result bytes depend only on the problem
//! and the thread plan — never on what else the daemon is doing. The
//! shared cache can only change *which* expansions are recomputed,
//! not their values, and the per-task hit/miss accounting in the
//! build engine keeps profiles deterministic even when another
//! request warms the cache mid-build.
//!
//! The wire protocol is line-delimited JSON (see [`serve`]): one
//! request object per input line, one response object per output
//! line, matched by `id`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod admission;
pub mod corpus;
pub mod json;
pub mod store;

use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Duration;

use ftsyn::{
    synthesize_session, synthesize_with_engine, Budget, CacheLimits, Engine, ExpansionCache,
    Governor, SynthesisOutcome, SynthesisProblem, SynthesisSession, ThreadPlan,
};

use admission::{Admission, AdmissionConfig, AdmissionGovernor};
use json::{ObjBuilder, Value};
use store::{CheckpointStore, Recovery, StoreError};

/// Callback that turns an inline spec-file text into a problem.
///
/// The concrete parser lives in the CLI crate (which depends on this
/// one), so the daemon receives it by injection instead of linking it.
pub type SpecParser = Box<dyn Fn(&str) -> Result<SynthesisProblem, String> + Send + Sync>;

/// Where a request's problem comes from. Kept alongside stored
/// checkpoints so a resume can rebuild the identical problem.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ProblemSource {
    /// A named problem from the built-in [`corpus`].
    Corpus(String),
    /// An inline spec-file text, parsed by the injected [`SpecParser`].
    Spec(String),
}

/// One synthesis request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Client-chosen id; response lines echo it, and a checkpoint left
    /// by a budget abort is stored under it.
    pub id: String,
    /// Problem to synthesize.
    pub source: ProblemSource,
    /// Worker threads for this request's build/minimize phases.
    pub threads: usize,
    /// Per-request budget; `None` uses the service default.
    pub budget: Option<Budget>,
    /// Synthesis backend. The CEGIS engine bypasses the shared cache
    /// and the checkpoint store (its aborts are never resumable).
    pub engine: Engine,
}

impl Request {
    /// A corpus-backed request.
    pub fn corpus(id: &str, name: &str, threads: usize) -> Request {
        Request {
            id: id.to_owned(),
            source: ProblemSource::Corpus(name.to_owned()),
            threads,
            budget: None,
            engine: Engine::default(),
        }
    }

    /// Sets a per-request budget.
    pub fn with_budget(mut self, budget: Budget) -> Request {
        self.budget = Some(budget);
        self
    }

    /// Selects the synthesis backend.
    pub fn with_engine(mut self, engine: Engine) -> Request {
        self.engine = engine;
        self
    }
}

/// The outcome of a request, ready to serialize onto the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reply {
    /// Synthesis succeeded.
    Solved {
        /// States in the synthesized model.
        states: usize,
        /// Program (non-fault) transitions.
        transitions: usize,
        /// Did the built-in verifier pass?
        verified: bool,
        /// Shared-cache hits during the build.
        cache_hits: usize,
        /// Shared-cache misses during the build.
        cache_misses: usize,
        /// The synthesized program, pretty-printed.
        program: String,
    },
    /// A mechanical impossibility result.
    Impossible,
    /// The run hit its budget (or was cancelled).
    Aborted {
        /// Phase the abort happened in (`build`, `minimize`, ...).
        phase: String,
        /// Human-readable abort reason.
        reason: String,
        /// `true` when a checkpoint was captured; `resume` with
        /// `from` set to this request's id continues the run.
        resumable: bool,
    },
    /// The request could not be served (bad name, stale checkpoint,
    /// duplicate id, ...).
    Error {
        /// Stable machine-readable error code (see the module docs'
        /// error table): `bad-request`, `unknown-problem`, `bad-spec`,
        /// `unknown-checkpoint`, `checkpoint-rejected`, `duplicate-id`,
        /// `no-active-request`, or `shutting-down`.
        code: String,
        /// What went wrong, for humans.
        message: String,
    },
    /// The admission governor shed this request: every worker slot is
    /// busy and the wait queue is full. Nothing ran; retry later.
    Overloaded {
        /// Suggested client back-off, in milliseconds.
        retry_after_ms: u64,
    },
    /// The durable/in-memory checkpoint store listing (the
    /// `list-checkpoints` op).
    Checkpoints {
        /// One entry per stored checkpoint, sorted by id.
        entries: Vec<CheckpointEntry>,
    },
    /// A `cancel` op was delivered to a live request.
    Cancelled,
    /// A `shutdown` op was accepted.
    ShuttingDown {
        /// `true` for `mode:"drain"`: in-flight requests were
        /// cancelled so each checkpoints and exits instead of running
        /// to completion.
        drain: bool,
    },
}

/// One row of the `list-checkpoints` response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointEntry {
    /// Request id the checkpoint is stored under (`resume` with
    /// `from` set to this id continues the run).
    pub id: String,
    /// Problem source: `corpus:<name>` or `spec`.
    pub source: String,
    /// Tableau nodes captured in the checkpoint.
    pub nodes: usize,
}

impl Reply {
    /// An error reply with its stable code.
    fn error(code: &str, message: String) -> Reply {
        Reply::Error {
            code: code.to_owned(),
            message,
        }
    }

    /// Serializes the reply as one JSON response line for `id`.
    pub fn to_line(&self, id: &str) -> String {
        let b = ObjBuilder::new().str("id", id);
        match self {
            Reply::Solved {
                states,
                transitions,
                verified,
                cache_hits,
                cache_misses,
                program,
            } => b
                .str("status", "solved")
                .num("states", *states)
                .num("transitions", *transitions)
                .bool("verified", *verified)
                .num("cache_hits", *cache_hits)
                .num("cache_misses", *cache_misses)
                .str("program", program)
                .build(),
            Reply::Impossible => b.str("status", "impossible").build(),
            Reply::Aborted {
                phase,
                reason,
                resumable,
            } => b
                .str("status", "aborted")
                .str("phase", phase)
                .str("reason", reason)
                .bool("resumable", *resumable)
                .build(),
            Reply::Error { code, message } => b
                .str("status", "error")
                .str("code", code)
                .str("message", message)
                .build(),
            Reply::Overloaded { retry_after_ms } => b
                .str("status", "overloaded")
                .num("retry_after_ms", *retry_after_ms as usize)
                .build(),
            Reply::Checkpoints { entries } => {
                let rows: Vec<String> = entries
                    .iter()
                    .map(|e| {
                        ObjBuilder::new()
                            .str("id", &e.id)
                            .str("source", &e.source)
                            .num("nodes", e.nodes)
                            .build()
                    })
                    .collect();
                b.str("status", "checkpoints")
                    .raw("checkpoints", &format!("[{}]", rows.join(",")))
                    .build()
            }
            Reply::Cancelled => b.str("status", "cancelled").build(),
            Reply::ShuttingDown { drain } => b
                .str("status", "shutting-down")
                .str("mode", if *drain { "drain" } else { "graceful" })
                .build(),
        }
    }
}

/// What [`Service::run`] executes once admission grants a slot. A
/// resume carries only the checkpoint *id*: the blob is consumed from
/// the store post-admission, so shedding or expiring in the admission
/// queue leaves it parked (and durable) for the retry.
enum Work {
    Fresh {
        source: ProblemSource,
        problem: Box<SynthesisProblem>,
        engine: Engine,
    },
    Resume {
        from: String,
    },
}

/// A checkpoint parked in the store between an abort and its resume.
struct Stored {
    /// The **encoded** blob — resume decodes and validates it, so the
    /// wire format is exercised on every hop.
    blob: Vec<u8>,
    source: ProblemSource,
    /// Tableau nodes in the blob (for `list-checkpoints`).
    nodes: usize,
}

/// The checkpoint map: the in-memory view, optionally mirrored to a
/// durable [`CheckpointStore`]. Disk failures degrade durability, not
/// correctness — they are reported on stderr and the in-memory entry
/// stands.
#[derive(Default)]
struct CheckpointMap {
    mem: HashMap<String, Stored>,
    disk: Option<CheckpointStore>,
}

impl CheckpointMap {
    fn park(&mut self, id: &str, source: &ProblemSource, blob: Vec<u8>, nodes: usize) {
        if let Some(store) = &mut self.disk {
            if let Err(e) = store.persist(id, source, &blob) {
                eprintln!("warning: checkpoint for \"{id}\" is not durable: {e}");
            }
        }
        self.mem.insert(
            id.to_owned(),
            Stored {
                blob,
                source: source.clone(),
                nodes,
            },
        );
    }

    fn contains(&self, id: &str) -> bool {
        self.mem.contains_key(id)
    }

    fn take(&mut self, id: &str) -> Option<Stored> {
        let stored = self.mem.remove(id)?;
        if let Some(store) = &mut self.disk {
            if let Err(e) = store.remove(id) {
                eprintln!("warning: consumed checkpoint \"{id}\" not removed from disk: {e}");
            }
        }
        Some(stored)
    }
}

/// The daemon engine. See the crate docs for the architecture.
pub struct Service {
    /// Expansion-cache partitions, one per problem source (cache keys
    /// are closure-relative, so entries are only sound within one
    /// problem). The outer lock is held briefly to find or create a
    /// partition; builds hold a read guard on their partition only.
    cache: RwLock<HashMap<ProblemSource, Arc<RwLock<ExpansionCache>>>>,
    /// Per-partition size caps, enforced after each fill fold-back.
    cache_limits: CacheLimits,
    checkpoints: Mutex<CheckpointMap>,
    active: Mutex<HashMap<String, Arc<Governor>>>,
    /// Signalled whenever a request leaves `active`; pipelined `resume`
    /// ops wait here for their `from` request to finish.
    idle: Condvar,
    /// Global admission control: worker slots, bounded wait queue,
    /// load shedding.
    admission: AdmissionGovernor,
    /// What startup recovery found, when a checkpoint dir is attached.
    recovery: Option<Recovery>,
    default_budget: Budget,
    spec_parser: Option<SpecParser>,
    /// Refuse new work ([`Service::quiesce`] and [`Service::shutdown`]).
    shutting_down: AtomicBool,
    /// Additionally cancel work racing with [`Service::shutdown`]'s
    /// cascade (registered after the cascade walked `active`).
    hard_shutdown: AtomicBool,
}

impl Default for Service {
    fn default() -> Service {
        Service::new()
    }
}

/// Lock helpers that ride through poisoning: a worker panic inside
/// one request must not wedge the whole daemon.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn read<T>(m: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    m.read().unwrap_or_else(|e| e.into_inner())
}

fn write<T>(m: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    m.write().unwrap_or_else(|e| e.into_inner())
}

impl Service {
    /// A fresh service with a cold cache and an unlimited default
    /// budget.
    pub fn new() -> Service {
        Service {
            cache: RwLock::new(HashMap::new()),
            cache_limits: CacheLimits::unlimited(),
            checkpoints: Mutex::new(CheckpointMap::default()),
            active: Mutex::new(HashMap::new()),
            idle: Condvar::new(),
            admission: AdmissionGovernor::new(AdmissionConfig::default()),
            recovery: None,
            default_budget: Budget::unlimited(),
            spec_parser: None,
            shutting_down: AtomicBool::new(false),
            hard_shutdown: AtomicBool::new(false),
        }
    }

    /// Sets the budget applied to requests that do not carry their own.
    pub fn with_default_budget(mut self, budget: Budget) -> Service {
        self.default_budget = budget;
        self
    }

    /// Applies admission limits (worker slots, bounded queue, load
    /// shedding). The default admits everything immediately.
    pub fn with_admission(mut self, config: AdmissionConfig) -> Service {
        self.admission = AdmissionGovernor::new(config);
        self
    }

    /// Caps every expansion-cache partition; oldest-admitted entries
    /// are evicted after each fill fold-back.
    pub fn with_cache_limits(mut self, limits: CacheLimits) -> Service {
        self.cache_limits = limits;
        self
    }

    /// Attaches a durable checkpoint store at `dir`, running startup
    /// recovery: validated checkpoints from a previous daemon life are
    /// re-offered (see [`Service::list_checkpoints`] and the
    /// `list-checkpoints` op), damaged files are quarantined. The
    /// [`Recovery`] report is kept on the service
    /// ([`Service::recovery`]).
    ///
    /// # Errors
    ///
    /// [`StoreError`] when the directory itself is unusable (cannot be
    /// created, read, or indexed). Damaged records are never fatal.
    pub fn with_checkpoint_dir(mut self, dir: &Path) -> Result<Service, StoreError> {
        let (store, recovery) = CheckpointStore::open(dir)?;
        {
            let map = lock(&self.checkpoints);
            let mut map = map;
            for rec in &recovery.recovered {
                map.mem.insert(
                    rec.id.clone(),
                    Stored {
                        blob: rec.blob.clone(),
                        source: rec.source.clone(),
                        nodes: rec.nodes,
                    },
                );
            }
            map.disk = Some(store);
        }
        self.recovery = Some(recovery);
        Ok(self)
    }

    /// The startup recovery report, when a checkpoint dir is attached.
    pub fn recovery(&self) -> Option<&Recovery> {
        self.recovery.as_ref()
    }

    /// Admission counters `(admitted, shed, expired, peak_queued)`.
    pub fn admission_counters(&self) -> (usize, usize, usize, usize) {
        self.admission.counters()
    }

    /// Injects the inline-spec parser (normally the CLI's spec-file
    /// front end). Without one, `"spec"` requests are rejected.
    pub fn with_spec_parser(mut self, parser: SpecParser) -> Service {
        self.spec_parser = Some(parser);
        self
    }

    /// `(blocks, tiles)` entry counts summed over every cache
    /// partition.
    pub fn cache_entries(&self) -> (usize, usize) {
        read(&self.cache)
            .values()
            .fold((0, 0), |(blocks, tiles), partition| {
                let (b, t) = read(partition).len();
                (blocks + b, tiles + t)
            })
    }

    /// Cache size and eviction accounting summed over every partition:
    /// `(entries, bytes, evicted_entries, evicted_bytes)`.
    pub fn cache_stats(&self) -> (usize, usize, usize, usize) {
        read(&self.cache)
            .values()
            .fold((0, 0, 0, 0), |(entries, bytes, ee, eb), partition| {
                let p = read(partition);
                let (blocks, tiles) = p.len();
                let (pe, pb) = p.eviction_counters();
                (entries + blocks + tiles, bytes + p.bytes(), ee + pe, eb + pb)
            })
    }

    /// The encoded checkpoint blob stored for `id`, if any.
    pub fn export_checkpoint(&self, id: &str) -> Option<Vec<u8>> {
        lock(&self.checkpoints).mem.get(id).map(|s| s.blob.clone())
    }

    /// Parks an externally produced checkpoint blob (e.g. one a CLI
    /// run wrote to disk) so a later `resume` can pick it up. The blob
    /// is validated on resume, not here (a best-effort decode fills
    /// the listing's node count).
    pub fn import_checkpoint(&self, id: &str, blob: Vec<u8>, source: ProblemSource) {
        let nodes = ftsyn::Checkpoint::decode(&blob)
            .map(|ck| ck.tableau_nodes())
            .unwrap_or(0);
        lock(&self.checkpoints).park(id, &source, blob, nodes);
    }

    /// Every stored checkpoint (in-memory and recovered), sorted by
    /// id — the `list-checkpoints` op.
    pub fn list_checkpoints(&self) -> Vec<CheckpointEntry> {
        let map = lock(&self.checkpoints);
        let mut entries: Vec<CheckpointEntry> = map
            .mem
            .iter()
            .map(|(id, s)| CheckpointEntry {
                id: id.clone(),
                source: match &s.source {
                    ProblemSource::Corpus(name) => format!("corpus:{name}"),
                    ProblemSource::Spec(_) => "spec".to_owned(),
                },
                nodes: s.nodes,
            })
            .collect();
        entries.sort_by(|a, b| a.id.cmp(&b.id));
        entries
    }

    /// Has [`Service::quiesce`] or [`Service::shutdown`] been called?
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }

    /// Rejects new work but lets in-flight requests run to completion.
    /// This is what the protocol's `shutdown` op does, so pipelined
    /// requests queued before the shutdown line still get real answers.
    pub fn quiesce(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
    }

    /// Rejects new work and cancels every in-flight request (each
    /// aborts at its next governor poll).
    pub fn shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        self.hard_shutdown.store(true, Ordering::SeqCst);
        for gov in lock(&self.active).values() {
            gov.cancel();
        }
    }

    /// Cancels the in-flight request `target`. Returns `false` when no
    /// such request is active.
    pub fn cancel(&self, target: &str) -> bool {
        match lock(&self.active).get(target) {
            Some(gov) => {
                gov.cancel();
                true
            }
            None => false,
        }
    }

    fn build_problem(&self, source: &ProblemSource) -> Result<SynthesisProblem, Reply> {
        match source {
            ProblemSource::Corpus(name) => corpus::problem(name).ok_or_else(|| {
                Reply::error("unknown-problem", format!("unknown corpus problem \"{name}\""))
            }),
            ProblemSource::Spec(text) => match &self.spec_parser {
                Some(parse) => parse(text).map_err(|m| Reply::error("bad-spec", m)),
                None => Err(Reply::error(
                    "bad-spec",
                    "this service has no spec parser; use a corpus problem".to_owned(),
                )),
            },
        }
    }

    /// Runs a synthesis request to completion (or abort) on the
    /// calling thread.
    pub fn submit(&self, req: Request) -> Reply {
        self.submit_admitted(req, false)
    }

    /// [`Service::submit`] with the admission decision already made:
    /// the serve loop admits requests in line order, so a request read
    /// before the shutdown line runs even if quiescing has begun by
    /// the time its worker thread gets scheduled.
    fn submit_admitted(&self, req: Request, admitted: bool) -> Reply {
        if !admitted && self.is_shutting_down() {
            return Reply::error("shutting-down", "service is shutting down".to_owned());
        }
        let problem = match self.build_problem(&req.source) {
            Ok(p) => p,
            Err(reply) => return reply,
        };
        let budget = req.budget.unwrap_or_else(|| self.default_budget.clone());
        self.run(
            &req.id,
            req.threads,
            budget,
            Work::Fresh {
                source: req.source,
                problem: Box::new(problem),
                engine: req.engine,
            },
        )
    }

    /// Blocks until no request named `id` is active. Requests park
    /// their checkpoint in the store *before* deregistering, so once
    /// this returns the store reflects `id`'s final state.
    fn wait_for(&self, id: &str) {
        let mut active = lock(&self.active);
        while active.contains_key(id) {
            active = self
                .idle
                .wait(active)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Resumes the checkpoint stored under `from`, publishing any new
    /// checkpoint (another abort) under `id`.
    ///
    /// If the `from` request is still in flight (a pipelined client
    /// sent the resume line without waiting for the abort response),
    /// this blocks until it finishes.
    pub fn resume(&self, id: &str, from: &str, threads: usize, budget: Option<Budget>) -> Reply {
        self.resume_admitted(id, from, threads, budget, false)
    }

    /// [`Service::resume`] with the admission decision already made
    /// (see [`Service::submit_admitted`]).
    fn resume_admitted(
        &self,
        id: &str,
        from: &str,
        threads: usize,
        budget: Option<Budget>,
        admitted: bool,
    ) -> Reply {
        if !admitted && self.is_shutting_down() {
            return Reply::error("shutting-down", "service is shutting down".to_owned());
        }
        self.wait_for(from);
        // Fail a miss fast, but do NOT consume the checkpoint yet: it
        // stays parked (and durable) until admission actually grants a
        // slot, so a shed or expired resume loses nothing — the retry
        // finds the blob exactly where it was.
        if !lock(&self.checkpoints).contains(from) {
            // The distinct code for a resume miss: the id never
            // aborted resumably, was already consumed, or its
            // checkpoint did not survive (e.g. quarantined on
            // recovery).
            return Reply::error(
                "unknown-checkpoint",
                format!(
                    "no checkpoint stored for request \"{from}\" \
                     (unknown, already consumed, or lost)"
                ),
            );
        }
        let budget = budget.unwrap_or_else(|| self.default_budget.clone());
        self.run(
            id,
            threads,
            budget,
            Work::Resume {
                from: from.to_owned(),
            },
        )
    }

    fn run(&self, id: &str, threads: usize, budget: Budget, work: Work) -> Reply {
        // The governor starts its clock *before* admission, so time
        // spent in the admission queue counts against the request's
        // own deadline, and cancel/shutdown reach queued requests too.
        let gov = Arc::new(Governor::with_budget(budget));
        {
            let mut active = lock(&self.active);
            if active.contains_key(id) {
                return Reply::error(
                    "duplicate-id",
                    format!("request id \"{id}\" is already active"),
                );
            }
            active.insert(id.to_owned(), Arc::clone(&gov));
        }
        // Close the race with a hard shutdown whose cancel cascade ran
        // between our shutting-down check and the registration above.
        if self.hard_shutdown.load(Ordering::SeqCst) {
            gov.cancel();
        }
        let reply = match self.admission.admit(&gov) {
            Admission::Admitted(_permit) => {
                // `_permit` releases the worker slot when this scope
                // ends, whatever the pipeline outcome.
                match work {
                    Work::Fresh {
                        source,
                        mut problem,
                        engine,
                    } => self.execute(id, source, &mut problem, threads, &gov, engine, None),
                    // The resume's checkpoint is consumed only now,
                    // with a slot in hand — a shed/expired resume
                    // below never touched it.
                    Work::Resume { from } => self.execute_resume(id, &from, threads, &gov),
                }
            }
            Admission::Shed { retry_after_ms } => Reply::Overloaded { retry_after_ms },
            Admission::Expired { reason } => Reply::Aborted {
                phase: "admission".to_owned(),
                reason,
                resumable: false,
            },
        };
        {
            let mut active = lock(&self.active);
            active.remove(id);
            self.idle.notify_all();
        }
        reply
    }

    /// The admitted half of a resume: claims the checkpoint from the
    /// store (the single consume point), decodes it, and runs the
    /// pipeline. A resume that cannot start — the blob vanished while
    /// queued, fails to decode, or its problem no longer builds — does
    /// not consume: the claim is parked right back, so only a resume
    /// that actually begins executing takes the checkpoint out of the
    /// store.
    fn execute_resume(&self, id: &str, from: &str, threads: usize, gov: &Governor) -> Reply {
        let stored = match lock(&self.checkpoints).take(from) {
            Some(s) => s,
            // Consumed by a concurrent resume while this one queued.
            None => {
                return Reply::error(
                    "unknown-checkpoint",
                    format!(
                        "no checkpoint stored for request \"{from}\" \
                         (unknown, already consumed, or lost)"
                    ),
                )
            }
        };
        let checkpoint = match ftsyn::Checkpoint::decode(&stored.blob) {
            Ok(ck) => ck,
            Err(e) => {
                let reply = Reply::error("checkpoint-rejected", format!("checkpoint rejected: {e}"));
                lock(&self.checkpoints).park(from, &stored.source, stored.blob, stored.nodes);
                return reply;
            }
        };
        let mut problem = match self.build_problem(&stored.source) {
            Ok(p) => p,
            Err(reply) => {
                lock(&self.checkpoints).park(from, &stored.source, stored.blob, stored.nodes);
                return reply;
            }
        };
        // Checkpoints only exist on the tableau path, so a resume is
        // always a tableau run regardless of how the original aborted.
        self.execute(
            id,
            stored.source,
            &mut problem,
            threads,
            gov,
            Engine::Tableau,
            Some(checkpoint),
        )
    }

    /// The pipeline proper: runs while the request is registered in
    /// `active`; any checkpoint is parked before [`Service::run`]
    /// deregisters, preserving the [`Service::wait_for`] invariant.
    #[allow(clippy::too_many_arguments)]
    fn execute(
        &self,
        id: &str,
        source: ProblemSource,
        problem: &mut SynthesisProblem,
        threads: usize,
        gov: &Governor,
        engine: Engine,
        resume: Option<ftsyn::Checkpoint>,
    ) -> Reply {
        if engine == Engine::Cegis {
            // The CEGIS engine has no expansion cache to share and no
            // checkpoint format: run it directly, with the governor
            // still wired in for cancel/budget. Its aborts discard the
            // candidate enumeration state, so they are not resumable.
            let outcome = synthesize_with_engine(
                problem,
                Engine::Cegis,
                ThreadPlan::uniform(threads),
                Some(gov),
            );
            return match outcome {
                SynthesisOutcome::Solved(s) => Reply::Solved {
                    states: s.stats.model_states,
                    transitions: s.stats.program_transitions,
                    verified: s.verification.ok(),
                    cache_hits: 0,
                    cache_misses: 0,
                    program: s.program.display(&problem.props).to_string(),
                },
                SynthesisOutcome::Impossible(_) => Reply::Impossible,
                SynthesisOutcome::Aborted(a) => Reply::Aborted {
                    phase: a.phase.name().to_owned(),
                    reason: a.reason.to_string(),
                    resumable: false,
                },
            };
        }
        let partition = Arc::clone(write(&self.cache).entry(source.clone()).or_default());
        // Parks an abort's checkpoint from *inside* the pipeline, the
        // moment it is captured: with a durable store attached, the
        // blob hits disk before the abort even propagates to a reply,
        // so a daemon crash in that window loses nothing.
        let sink = |ck: &ftsyn::Checkpoint| {
            lock(&self.checkpoints).park(id, &source, ck.encode(), ck.tableau_nodes());
        };
        let result = {
            // Hold the partition's read guard across the whole
            // pipeline: same-problem builders share it concurrently,
            // and fills are only folded back (under the write lock)
            // after this guard drops.
            let cache = read(&partition);
            synthesize_session(
                problem,
                ThreadPlan::uniform(threads),
                Some(gov),
                SynthesisSession {
                    cache: Some(&cache),
                    resume,
                    on_checkpoint: Some(&sink),
                },
            )
        };
        let (outcome, fills) = match result {
            Ok(pair) => pair,
            Err(e) => {
                return Reply::error("checkpoint-rejected", format!("checkpoint rejected: {e}"))
            }
        };
        if !fills.is_empty() {
            let mut cache = write(&partition);
            for fill in fills {
                cache.apply_fill(fill);
            }
            cache.evict_to(self.cache_limits);
        }
        match outcome {
            SynthesisOutcome::Solved(s) => Reply::Solved {
                states: s.stats.model_states,
                transitions: s.stats.program_transitions,
                verified: s.verification.ok(),
                cache_hits: s.stats.build_profile.cache_hits,
                cache_misses: s.stats.build_profile.cache_misses,
                program: s.program.display(&problem.props).to_string(),
            },
            SynthesisOutcome::Impossible(_) => Reply::Impossible,
            SynthesisOutcome::Aborted(a) => Reply::Aborted {
                // The checkpoint (when one was captured) was already
                // parked by the sink above, durably when a store is
                // attached.
                phase: a.phase.name().to_owned(),
                reason: a.reason.to_string(),
                resumable: a.checkpoint.is_some(),
            },
        }
    }
}

/// A parsed protocol operation.
#[derive(Clone, Debug)]
pub enum Op {
    /// Run a synthesis request.
    Synthesize(Request),
    /// Resume a stored checkpoint.
    Resume {
        /// Id for the resumed run (new checkpoints land here).
        id: String,
        /// Id whose stored checkpoint to resume.
        from: String,
        /// Worker threads.
        threads: usize,
        /// Budget override.
        budget: Option<Budget>,
    },
    /// Cancel an in-flight request.
    Cancel {
        /// Id of this cancel op itself.
        id: String,
        /// Id of the request to cancel.
        target: String,
    },
    /// List every stored checkpoint (in-memory and recovered).
    ListCheckpoints {
        /// Id of the listing op.
        id: String,
    },
    /// Stop accepting work.
    Shutdown {
        /// Id of the shutdown op.
        id: String,
        /// `mode:"drain"`: additionally cancel in-flight requests so
        /// each checkpoints and answers promptly instead of running to
        /// completion.
        drain: bool,
    },
}

impl Op {
    /// The request id the response line should echo.
    pub fn id(&self) -> &str {
        match self {
            Op::Synthesize(r) => &r.id,
            Op::Resume { id, .. }
            | Op::Cancel { id, .. }
            | Op::ListCheckpoints { id }
            | Op::Shutdown { id, .. } => id,
        }
    }
}

fn parse_budget(v: &Value) -> Result<Budget, String> {
    let mut budget = Budget::unlimited();
    let members = match v {
        Value::Obj(members) => members,
        _ => return Err("\"budget\" must be an object".to_owned()),
    };
    for (key, val) in members {
        let n = val
            .as_u64()
            .ok_or_else(|| format!("budget field \"{key}\" must be a non-negative integer"))?;
        match key.as_str() {
            "deadline_ms" => budget.deadline = Some(Duration::from_millis(n)),
            "max_states" => budget.max_states = Some(n as usize),
            "max_deletion_work" => budget.max_deletion_work = Some(n as usize),
            "max_minimize_attempts" => budget.max_minimize_attempts = Some(n as usize),
            "max_extract_refine_rounds" => budget.max_extract_refine_rounds = Some(n as usize),
            other => return Err(format!("unknown budget field \"{other}\"")),
        }
    }
    Ok(budget)
}

/// Parses one request line into an [`Op`].
///
/// # Errors
///
/// `(id, message)` — the id extracted from the line when possible
/// (empty otherwise), so the error response can still be correlated.
pub fn parse_op(line: &str) -> Result<Op, (String, String)> {
    let v = json::parse(line).map_err(|e| (String::new(), format!("bad request: {e}")))?;
    let id = v
        .get("id")
        .and_then(Value::as_str)
        .unwrap_or_default()
        .to_owned();
    if id.is_empty() {
        return Err((id, "request is missing a non-empty \"id\"".to_owned()));
    }
    let fail = |msg: String| (id.clone(), msg);
    let op = v
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| fail("request is missing \"op\"".to_owned()))?;
    let threads = match v.get("threads") {
        None => ftsyn::default_threads(),
        Some(t) => t
            .as_usize()
            .filter(|&t| t >= 1)
            .ok_or_else(|| fail("\"threads\" must be a positive integer".to_owned()))?,
    };
    let budget = match v.get("budget") {
        None => None,
        Some(b) => Some(parse_budget(b).map_err(fail)?),
    };
    let engine = match v.get("engine") {
        None => Engine::default(),
        Some(e) => {
            let name = e
                .as_str()
                .ok_or_else(|| fail("\"engine\" must be a string".to_owned()))?;
            Engine::parse(name).ok_or_else(|| {
                fail(format!(
                    "unknown engine \"{name}\" (expected tableau or cegis)"
                ))
            })?
        }
    };
    match op {
        "synthesize" => {
            let source = match (
                v.get("problem").and_then(Value::as_str),
                v.get("spec").and_then(Value::as_str),
            ) {
                (Some(name), None) => ProblemSource::Corpus(name.to_owned()),
                (None, Some(text)) => ProblemSource::Spec(text.to_owned()),
                (Some(_), Some(_)) => {
                    return Err(fail(
                        "give either \"problem\" or \"spec\", not both".to_owned(),
                    ))
                }
                (None, None) => {
                    return Err(fail(
                        "synthesize needs a \"problem\" name or an inline \"spec\"".to_owned(),
                    ))
                }
            };
            Ok(Op::Synthesize(Request {
                id,
                source,
                threads,
                budget,
                engine,
            }))
        }
        "resume" => {
            if engine == Engine::Cegis {
                return Err(fail(
                    "resume is tableau-only (the CEGIS engine has no checkpoint format)"
                        .to_owned(),
                ));
            }
            let from = v
                .get("from")
                .and_then(Value::as_str)
                .unwrap_or(&id)
                .to_owned();
            Ok(Op::Resume {
                id,
                from,
                threads,
                budget,
            })
        }
        "cancel" => {
            let target = v
                .get("target")
                .and_then(Value::as_str)
                .ok_or_else(|| fail("cancel needs a \"target\" request id".to_owned()))?
                .to_owned();
            Ok(Op::Cancel { id, target })
        }
        "list-checkpoints" => Ok(Op::ListCheckpoints { id }),
        "shutdown" => {
            let drain = match v.get("mode").map(|m| m.as_str()) {
                None => false,
                Some(Some("graceful")) => false,
                Some(Some("drain")) => true,
                Some(_) => {
                    return Err(fail(
                        "shutdown \"mode\" must be \"graceful\" or \"drain\"".to_owned(),
                    ))
                }
            };
            Ok(Op::Shutdown { id, drain })
        }
        other => Err(fail(format!("unknown op \"{other}\""))),
    }
}

/// Executes a parsed operation against the service.
pub fn dispatch(service: &Service, op: Op) -> Reply {
    dispatch_admitted(service, op, false)
}

/// [`dispatch`] with the admission decision made by the caller: the
/// serve loop admits ops in read order, before spawning the worker.
fn dispatch_admitted(service: &Service, op: Op, admitted: bool) -> Reply {
    match op {
        Op::Synthesize(req) => service.submit_admitted(req, admitted),
        Op::Resume {
            id,
            from,
            threads,
            budget,
        } => service.resume_admitted(&id, &from, threads, budget, admitted),
        Op::Cancel { target, .. } => {
            if service.cancel(&target) {
                Reply::Cancelled
            } else {
                Reply::error(
                    "no-active-request",
                    format!("no active request \"{target}\""),
                )
            }
        }
        Op::ListCheckpoints { .. } => Reply::Checkpoints {
            entries: service.list_checkpoints(),
        },
        Op::Shutdown { drain, .. } => {
            if drain {
                // Drain: cancel everything in flight so each request
                // aborts at its next governor poll, checkpoints
                // (durably, when a store is attached), and answers —
                // the fast path to a restartable exit.
                service.shutdown();
            } else {
                // Graceful: stop accepting work, let in-flight
                // requests finish (pipelined clients still get real
                // answers).
                service.quiesce();
            }
            Reply::ShuttingDown { drain }
        }
    }
}

/// Handles one request line synchronously, returning the response
/// line. Exposed for tests and single-shot embedding; [`serve`] is the
/// concurrent loop.
pub fn handle_line(service: &Service, line: &str) -> String {
    match parse_op(line) {
        Err((id, message)) => Reply::error("bad-request", message).to_line(&id),
        Ok(op) => {
            let id = op.id().to_owned();
            dispatch(service, op).to_line(&id)
        }
    }
}

/// The daemon loop: reads one JSON request per line from `input`,
/// serves each request on its own thread (sharing the service's warm
/// cache), and writes one JSON response line per request to `output`.
/// Response order follows completion, not submission — correlate by
/// `id`. A `shutdown` op stops the read loop and drains in-flight
/// requests (they finish and answer normally); `cancel` is the hard
/// stop for individual requests.
///
/// # Errors
///
/// Propagates read errors on `input`; write errors on `output` are
/// swallowed (there is nowhere left to report them).
pub fn serve<R: BufRead, W: Write + Send>(
    service: &Service,
    input: R,
    output: W,
) -> std::io::Result<()> {
    let out = Mutex::new(output);
    let mut read_error = None;
    std::thread::scope(|scope| {
        for line in input.lines() {
            let line = match line {
                Ok(l) => l,
                Err(e) => {
                    read_error = Some(e);
                    break;
                }
            };
            if line.trim().is_empty() {
                continue;
            }
            match parse_op(&line) {
                Err((id, message)) => {
                    let mut w = lock(&out);
                    let _ = writeln!(w, "{}", Reply::error("bad-request", message).to_line(&id));
                    let _ = w.flush();
                }
                Ok(op @ Op::Shutdown { .. }) => {
                    let id = op.id().to_owned();
                    let reply = dispatch(service, op);
                    let mut w = lock(&out);
                    let _ = writeln!(w, "{}", reply.to_line(&id));
                    let _ = w.flush();
                    // Stop reading; the scope joins the in-flight
                    // workers, which run to completion and answer.
                    break;
                }
                Ok(op) => {
                    // Admission is decided here, in read order: every
                    // line read before a shutdown line runs even if
                    // quiescing begins before its worker is scheduled.
                    if service.is_shutting_down() {
                        let reply =
                            Reply::error("shutting-down", "service is shutting down".to_owned());
                        let mut w = lock(&out);
                        let _ = writeln!(w, "{}", reply.to_line(op.id()));
                        let _ = w.flush();
                        continue;
                    }
                    let out = &out;
                    scope.spawn(move || {
                        let id = op.id().to_owned();
                        let reply = dispatch_admitted(service, op, true);
                        let mut w = lock(out);
                        let _ = writeln!(w, "{}", reply.to_line(&id));
                        let _ = w.flush();
                    });
                }
            }
        }
    });
    match read_error {
        Some(e) => Err(e),
        None => {
            let mut w = lock(&out);
            w.flush()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solved(reply: &Reply) -> (&str, usize, usize, bool) {
        match reply {
            Reply::Solved {
                program,
                cache_hits,
                cache_misses,
                verified,
                ..
            } => (program.as_str(), *cache_hits, *cache_misses, *verified),
            other => panic!("expected Solved, got {other:?}"),
        }
    }

    #[test]
    fn warm_cache_reproduces_the_cold_result_with_hits() {
        let svc = Service::new();
        let cold = svc.submit(Request::corpus("cold", "mutex2-failstop-masking", 2));
        let (cold_program, cold_hits, cold_misses, cold_ok) = solved(&cold);
        assert!(cold_ok);
        assert_eq!(cold_hits, 0, "first request sees an empty cache");
        assert!(cold_misses > 0);
        assert!(svc.cache_entries().0 > 0, "fills were folded back");

        let warm = svc.submit(Request::corpus("warm", "mutex2-failstop-masking", 2));
        let (warm_program, warm_hits, warm_misses, warm_ok) = solved(&warm);
        assert!(warm_ok);
        assert!(warm_hits > 0, "second request hits the shared cache");
        assert_eq!(warm_misses, 0, "nothing left to recompute");
        assert_eq!(cold_program, warm_program, "cache must not change results");
    }

    #[test]
    fn abort_resume_round_trips_through_the_encoded_blob() {
        let svc = Service::new();
        let aborted = svc.submit(
            Request::corpus("r1", "mutex2-failstop-masking", 1).with_budget(Budget {
                max_states: Some(12),
                ..Budget::unlimited()
            }),
        );
        match &aborted {
            Reply::Aborted {
                phase, resumable, ..
            } => {
                assert_eq!(phase, "build");
                assert!(*resumable);
            }
            other => panic!("expected Aborted, got {other:?}"),
        }
        assert!(svc.export_checkpoint("r1").is_some());

        let resumed = svc.resume("r2", "r1", 1, None);
        let (resumed_program, _, _, resumed_ok) = solved(&resumed);
        assert!(resumed_ok);
        assert!(
            svc.export_checkpoint("r1").is_none(),
            "a consumed checkpoint leaves the store"
        );

        // The resumed run must match an uninterrupted one end to end.
        let baseline_svc = Service::new();
        let baseline = baseline_svc.submit(Request::corpus("b", "mutex2-failstop-masking", 1));
        let (baseline_program, _, _, _) = solved(&baseline);
        assert_eq!(resumed_program, baseline_program);
    }

    #[test]
    fn corrupted_and_missing_checkpoints_are_structured_errors() {
        let svc = Service::new();
        // A resume against an id that never parked a checkpoint gets
        // the *distinct* unknown-checkpoint code, not a generic error.
        match svc.resume("x", "never-ran", 1, None) {
            Reply::Error { code, message } => {
                assert_eq!(code, "unknown-checkpoint");
                assert!(message.contains("no checkpoint"));
            }
            other => panic!("expected Error, got {other:?}"),
        }

        svc.import_checkpoint(
            "garbage",
            b"not a checkpoint".to_vec(),
            ProblemSource::Corpus("mutex2-failstop-masking".to_owned()),
        );
        match svc.resume("y", "garbage", 1, None) {
            Reply::Error { code, message } => {
                assert_eq!(code, "checkpoint-rejected");
                assert!(message.contains("checkpoint rejected"), "{message}")
            }
            other => panic!("expected Error, got {other:?}"),
        }
        // A rejected blob is NOT consumed — only a resume that starts
        // executing takes the checkpoint out of the store, so the
        // retry gets the same structured rejection, not a misleading
        // unknown-checkpoint.
        match svc.resume("y2", "garbage", 1, None) {
            Reply::Error { code, .. } => assert_eq!(code, "checkpoint-rejected"),
            other => panic!("expected Error, got {other:?}"),
        }
        assert!(
            svc.export_checkpoint("garbage").is_some(),
            "a rejected blob stays parked"
        );

        // A blob from one spec must not resume under another: the
        // validation inside the pipeline rejects the spec-hash
        // mismatch before any work happens.
        let donor = Service::new();
        let _ = donor.submit(
            Request::corpus("d", "mutex3-failstop-masking", 1).with_budget(Budget {
                max_states: Some(12),
                ..Budget::unlimited()
            }),
        );
        let blob = donor.export_checkpoint("d").expect("abort left a blob");
        svc.import_checkpoint(
            "stale",
            blob,
            ProblemSource::Corpus("mutex2-failstop-masking".to_owned()),
        );
        match svc.resume("z", "stale", 1, None) {
            Reply::Error { code, message } => {
                assert_eq!(code, "checkpoint-rejected");
                assert!(message.contains("checkpoint rejected"), "{message}")
            }
            other => panic!("expected Error, got {other:?}"),
        }
    }

    #[test]
    fn protocol_lines_round_trip() {
        let svc = Service::new();
        let resp = handle_line(
            &svc,
            r#"{"id":"p1","op":"synthesize","problem":"mutex2-failstop-masking","threads":1}"#,
        );
        let v = json::parse(&resp).unwrap();
        assert_eq!(v.get("id").and_then(Value::as_str), Some("p1"));
        assert_eq!(v.get("status").and_then(Value::as_str), Some("solved"));
        assert_eq!(v.get("verified"), Some(&Value::Bool(true)));
        assert!(v
            .get("program")
            .and_then(Value::as_str)
            .is_some_and(|p| p.contains("process")));

        // Abort under a budget, then resume over the wire.
        let resp = handle_line(
            &svc,
            r#"{"id":"p2","op":"synthesize","problem":"mutex3-failstop-masking",
                "threads":1,"budget":{"max_states":20}}"#,
        );
        let v = json::parse(&resp).unwrap();
        assert_eq!(v.get("status").and_then(Value::as_str), Some("aborted"));
        assert_eq!(v.get("resumable"), Some(&Value::Bool(true)));
        let resp = handle_line(&svc, r#"{"id":"p3","op":"resume","from":"p2","threads":1}"#);
        let v = json::parse(&resp).unwrap();
        assert_eq!(v.get("status").and_then(Value::as_str), Some("solved"));

        // The full error table: every row asserts its stable code next
        // to the human message.
        for (line, code, needle) in [
            ("not json", "bad-request", "bad request"),
            (
                r#"{"op":"synthesize"}"#,
                "bad-request",
                "missing a non-empty \"id\"",
            ),
            (r#"{"id":"q","op":"noop"}"#, "bad-request", "unknown op"),
            (
                r#"{"id":"q","op":"synthesize"}"#,
                "bad-request",
                "needs a \"problem\"",
            ),
            (
                r#"{"id":"q","op":"synthesize","problem":"nope"}"#,
                "unknown-problem",
                "unknown corpus problem",
            ),
            (
                r#"{"id":"q","op":"synthesize","spec":"whatever"}"#,
                "bad-spec",
                "no spec parser",
            ),
            (
                r#"{"id":"q","op":"synthesize","problem":"x","threads":0}"#,
                "bad-request",
                "positive integer",
            ),
            (
                r#"{"id":"q","op":"synthesize","problem":"x","budget":{"max_bananas":1}}"#,
                "bad-request",
                "unknown budget field",
            ),
            (r#"{"id":"q","op":"cancel"}"#, "bad-request", "needs a \"target\""),
            (
                r#"{"id":"q","op":"cancel","target":"ghost"}"#,
                "no-active-request",
                "no active request",
            ),
            (
                r#"{"id":"q","op":"resume","from":"never-aborted"}"#,
                "unknown-checkpoint",
                "no checkpoint stored",
            ),
            (
                r#"{"id":"q","op":"shutdown","mode":"violent"}"#,
                "bad-request",
                "\"graceful\" or \"drain\"",
            ),
            (
                r#"{"id":"q","op":"synthesize","problem":"x","engine":"magic"}"#,
                "bad-request",
                "unknown engine",
            ),
            (
                r#"{"id":"q","op":"synthesize","problem":"x","engine":7}"#,
                "bad-request",
                "\"engine\" must be a string",
            ),
            (
                r#"{"id":"q","op":"resume","from":"p","engine":"cegis"}"#,
                "bad-request",
                "tableau-only",
            ),
        ] {
            let v = json::parse(&handle_line(&svc, line)).unwrap();
            assert_eq!(v.get("status").and_then(Value::as_str), Some("error"));
            assert_eq!(
                v.get("code").and_then(Value::as_str),
                Some(code),
                "code for {line}"
            );
            let msg = v.get("message").and_then(Value::as_str).unwrap();
            assert!(msg.contains(needle), "{line} => {msg}");
        }
    }

    #[test]
    fn the_engine_field_selects_the_cegis_backend_on_the_wire() {
        let svc = Service::new();
        let resp = handle_line(
            &svc,
            r#"{"id":"e1","op":"synthesize","problem":"mutex2-failstop-masking",
                "threads":1,"engine":"cegis"}"#,
        );
        let v = json::parse(&resp).unwrap();
        assert_eq!(v.get("status").and_then(Value::as_str), Some("solved"));
        assert_eq!(v.get("verified"), Some(&Value::Bool(true)));
        // The CEGIS path never touches the shared expansion cache.
        assert_eq!(v.get("cache_hits").and_then(Value::as_u64), Some(0));
        assert_eq!(v.get("cache_misses").and_then(Value::as_u64), Some(0));
        assert_eq!(svc.cache_entries().0, 0, "no fills were folded back");

        // A CEGIS budget abort is not resumable: no checkpoint format.
        let resp = handle_line(
            &svc,
            r#"{"id":"e2","op":"synthesize","problem":"mutex4-failstop-masking",
                "threads":1,"engine":"cegis","budget":{"deadline_ms":1}}"#,
        );
        let v = json::parse(&resp).unwrap();
        assert_eq!(v.get("status").and_then(Value::as_str), Some("aborted"));
        assert_eq!(v.get("resumable"), Some(&Value::Bool(false)));
        assert!(svc.export_checkpoint("e2").is_none(), "nothing was parked");
    }

    #[test]
    fn request_builders_default_to_the_tableau_engine() {
        let req = Request::corpus("r", "mutex2-failstop-masking", 1);
        assert_eq!(req.engine, Engine::Tableau);
        let req = req.with_engine(Engine::Cegis);
        assert_eq!(req.engine, Engine::Cegis);
    }

    #[test]
    fn pipelined_abort_resume_shutdown_works_in_one_stream() {
        // A client that writes its whole session without waiting for
        // responses: the resume op must wait for the abort it resumes,
        // and the shutdown must not cancel either of them.
        let svc = Service::new();
        let input = concat!(
            r#"{"id":"r1","op":"synthesize","problem":"mutex2-failstop-masking","threads":2,"budget":{"max_states":40}}"#,
            "\n",
            r#"{"id":"r2","op":"resume","from":"r1","threads":2}"#,
            "\n",
            r#"{"id":"end","op":"shutdown"}"#,
            "\n",
        );
        let mut output = Vec::new();
        serve(&svc, input.as_bytes(), &mut output).unwrap();
        let text = String::from_utf8(output).unwrap();
        let mut statuses = HashMap::new();
        for line in text.lines() {
            let v = json::parse(line).unwrap();
            statuses.insert(
                v.get("id").and_then(Value::as_str).unwrap().to_owned(),
                v.get("status").and_then(Value::as_str).unwrap().to_owned(),
            );
        }
        assert_eq!(statuses.get("r1").map(String::as_str), Some("aborted"));
        assert_eq!(statuses.get("r2").map(String::as_str), Some("solved"));
        assert_eq!(
            statuses.get("end").map(String::as_str),
            Some("shutting-down")
        );
    }

    #[test]
    fn serve_loop_answers_every_line_and_honors_shutdown() {
        fn statuses_of(text: &str) -> HashMap<String, String> {
            let mut statuses = HashMap::new();
            for line in text.lines() {
                let v = json::parse(line).unwrap();
                statuses.insert(
                    v.get("id").and_then(Value::as_str).unwrap().to_owned(),
                    v.get("status").and_then(Value::as_str).unwrap().to_owned(),
                );
            }
            statuses
        }

        let svc = Service::new();
        let input = concat!(
            r#"{"id":"a","op":"synthesize","problem":"mutex2-failstop-masking","threads":1}"#,
            "\n",
            r#"{"id":"b","op":"synthesize","problem":"philosophers3-fault-free","threads":2}"#,
            "\n\n",
        );
        let mut output = Vec::new();
        serve(&svc, input.as_bytes(), &mut output).unwrap();
        let statuses = statuses_of(&String::from_utf8(output).unwrap());
        assert_eq!(statuses.get("a").map(String::as_str), Some("solved"));
        assert_eq!(statuses.get("b").map(String::as_str), Some("solved"));

        // A shutdown line stops the read loop; later lines are never
        // seen, and subsequent submits are refused.
        let input = concat!(
            r#"{"id":"end","op":"shutdown"}"#,
            "\n",
            r#"{"id":"late","op":"synthesize","problem":"mutex2-failstop-masking"}"#,
            "\n",
        );
        let mut output = Vec::new();
        serve(&svc, input.as_bytes(), &mut output).unwrap();
        let statuses = statuses_of(&String::from_utf8(output).unwrap());
        assert_eq!(
            statuses.get("end").map(String::as_str),
            Some("shutting-down")
        );
        assert!(
            !statuses.contains_key("late"),
            "lines after shutdown are not read"
        );
        assert!(svc.is_shutting_down());
        match svc.submit(Request::corpus("post", "mutex2-failstop-masking", 1)) {
            Reply::Error { code, message } => {
                assert_eq!(code, "shutting-down");
                assert!(message.contains("shutting down"));
            }
            other => panic!("expected Error, got {other:?}"),
        }
    }
}
