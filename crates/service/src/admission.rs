//! Global admission control: one service-level arbiter deciding which
//! requests may *work* at any moment, instead of first-come threads.
//!
//! The [`AdmissionGovernor`] holds a fixed number of worker **slots**
//! and a bounded **wait queue**. A request acquires a slot before its
//! pipeline runs; when every slot is busy it waits in the queue, and
//! when the queue is full it is **shed** immediately with a
//! structured `overloaded` reply carrying a retry-after hint — the
//! service's load never exceeds `slots` concurrent pipelines plus
//! `queue` parked waiters, no matter how many requests arrive.
//!
//! Admission is FIFO-fair: freed slots are granted to waiters in
//! arrival (ticket) order, and a new arrival takes the fast path only
//! when the queue is empty — under sustained pressure arrivals cannot
//! starve a parked waiter out of its deadline.
//!
//! Deadline inheritance: a request's [`Governor`] starts its clock
//! *before* admission, so time spent queued counts against the
//! request's own deadline — a queued request whose deadline passes is
//! aborted in the `admission` phase without ever running, and an
//! external `cancel` or a shutdown cascade is honored while queued for
//! the same reason.

use ftsyn::Governor;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Admission limits. The default is fully permissive (every request
/// gets a slot immediately), preserving the pre-governor behavior.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Concurrent pipelines allowed to run.
    pub slots: usize,
    /// Requests allowed to wait for a slot before shedding begins.
    pub queue: usize,
    /// Base of the retry-after hint on shed replies, in milliseconds.
    /// The hint scales with the queue length at shed time.
    pub retry_after_ms: u64,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            slots: usize::MAX,
            queue: 0,
            retry_after_ms: 250,
        }
    }
}

impl AdmissionConfig {
    /// Caps concurrent pipelines at `slots` with a wait queue of
    /// `queue`.
    pub fn bounded(slots: usize, queue: usize) -> AdmissionConfig {
        AdmissionConfig {
            slots: slots.max(1),
            queue,
            ..AdmissionConfig::default()
        }
    }
}

/// How an admission attempt ended.
#[derive(Debug)]
pub enum Admission {
    /// A slot was reserved; drop the permit to release it.
    Admitted(Permit),
    /// Slots and queue are full: shed with this retry-after hint.
    Shed {
        /// Suggested client back-off, in milliseconds.
        retry_after_ms: u64,
    },
    /// The request's deadline passed or it was cancelled while queued.
    /// The reason string is the governor's own abort phrasing.
    Expired {
        /// Why the wait ended (`deadline`/`cancelled` phrasing from
        /// the request governor).
        reason: String,
    },
}

#[derive(Debug, Default)]
struct State {
    running: usize,
    /// Tickets of the waiters parked in the queue, oldest first.
    /// Freed slots are granted strictly in ticket order, so a new
    /// arrival can never jump ahead of a queued waiter.
    wait_order: VecDeque<u64>,
    /// The next ticket to hand out.
    next_ticket: u64,
    /// Lifetime counters for stats/bench.
    admitted: usize,
    shed: usize,
    expired: usize,
    peak_queued: usize,
}

impl State {
    fn queued(&self) -> usize {
        self.wait_order.len()
    }

    fn leave_queue(&mut self, ticket: u64) {
        if self.wait_order.front() == Some(&ticket) {
            self.wait_order.pop_front();
        } else {
            self.wait_order.retain(|&t| t != ticket);
        }
    }
}

/// Shared slot accounting, co-owned by the governor and every live
/// permit (so a permit can release its slot wherever it is dropped).
#[derive(Debug, Default)]
struct Inner {
    state: Mutex<State>,
    freed: Condvar,
}

/// The service-wide admission arbiter. See the module docs.
#[derive(Debug)]
pub struct AdmissionGovernor {
    config: AdmissionConfig,
    inner: Arc<Inner>,
}

/// A held worker slot; dropping it releases the slot and wakes one
/// queued waiter.
#[derive(Debug)]
pub struct Permit {
    inner: Arc<Inner>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        state.running -= 1;
        drop(state);
        // Wake every waiter: only the head-of-queue ticket may claim
        // the slot, and notify_one could wake a younger waiter that
        // would just park again.
        self.inner.freed.notify_all();
    }
}

impl AdmissionGovernor {
    /// A governor enforcing `config`.
    pub fn new(config: AdmissionConfig) -> AdmissionGovernor {
        AdmissionGovernor {
            config,
            inner: Arc::default(),
        }
    }

    /// The enforced limits.
    pub fn config(&self) -> AdmissionConfig {
        self.config
    }

    /// Tries to admit a request, blocking in the bounded queue when
    /// every slot is busy. `gov` is the *request's* governor: its
    /// deadline and cancel flag are polled while queued, so queue time
    /// counts against the request's own budget.
    pub fn admit(&self, gov: &Governor) -> Admission {
        let permit = || Permit {
            inner: Arc::clone(&self.inner),
        };
        let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        // FIFO fairness: the fast path applies only when nobody is
        // queued — while waiters exist, a free slot belongs to the
        // oldest ticket, and arrivals line up behind it.
        if state.running < self.config.slots && state.queued() == 0 {
            state.running += 1;
            state.admitted += 1;
            return Admission::Admitted(permit());
        }
        if state.queued() >= self.config.queue {
            state.shed += 1;
            let hint = self.config.retry_after_ms.max(1) * (state.queued() as u64 + 1);
            return Admission::Shed {
                retry_after_ms: hint,
            };
        }
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        state.wait_order.push_back(ticket);
        state.peak_queued = state.peak_queued.max(state.queued());
        loop {
            if let Err(reason) = gov.check_realtime() {
                state.leave_queue(ticket);
                state.expired += 1;
                return Admission::Expired {
                    reason: reason.to_string(),
                };
            }
            if state.running < self.config.slots && state.wait_order.front() == Some(&ticket) {
                state.leave_queue(ticket);
                state.running += 1;
                state.admitted += 1;
                return Admission::Admitted(permit());
            }
            // Short waits so deadline/cancel are honored promptly even
            // when no slot frees up.
            (state, _) = self
                .inner
                .freed
                .wait_timeout(state, Duration::from_millis(10))
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Lifetime counters `(admitted, shed, expired, peak_queued)`.
    pub fn counters(&self) -> (usize, usize, usize, usize) {
        let state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        (state.admitted, state.shed, state.expired, state.peak_queued)
    }

    /// Requests currently `(running, queued)`.
    pub fn load(&self) -> (usize, usize) {
        let state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        (state.running, state.queued())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsyn::Budget;
    use std::time::Instant;

    fn governor() -> Governor {
        Governor::with_budget(Budget::unlimited())
    }

    #[test]
    fn default_config_admits_everything_immediately() {
        let adm = AdmissionGovernor::new(AdmissionConfig::default());
        let gov = governor();
        let mut permits = Vec::new();
        for _ in 0..64 {
            match adm.admit(&gov) {
                Admission::Admitted(p) => permits.push(p),
                other => panic!("expected Admitted, got {other:?}"),
            }
        }
        assert_eq!(adm.load(), (64, 0));
        drop(permits);
        assert_eq!(adm.load(), (0, 0));
        assert_eq!(adm.counters(), (64, 0, 0, 0));
    }

    #[test]
    fn full_slots_and_queue_shed_with_a_hint() {
        let adm = AdmissionGovernor::new(AdmissionConfig::bounded(2, 0));
        let gov = governor();
        let p1 = match adm.admit(&gov) {
            Admission::Admitted(p) => p,
            other => panic!("{other:?}"),
        };
        let _p2 = match adm.admit(&gov) {
            Admission::Admitted(p) => p,
            other => panic!("{other:?}"),
        };
        match adm.admit(&gov) {
            Admission::Shed { retry_after_ms } => assert!(retry_after_ms >= 1),
            other => panic!("expected Shed, got {other:?}"),
        }
        assert_eq!(adm.counters(), (2, 1, 0, 0));

        // Releasing a slot readmits.
        drop(p1);
        match adm.admit(&gov) {
            Admission::Admitted(_) => {}
            other => panic!("expected Admitted after release, got {other:?}"),
        }
    }

    #[test]
    fn queued_request_gets_the_freed_slot() {
        let adm = AdmissionGovernor::new(AdmissionConfig::bounded(1, 1));
        let gov = governor();
        let p1 = match adm.admit(&gov) {
            Admission::Admitted(p) => p,
            other => panic!("{other:?}"),
        };
        std::thread::scope(|s| {
            let waiter = s.spawn(|| {
                let gov = governor();
                adm.admit(&gov)
            });
            // Wait until the waiter is actually queued, then free the
            // slot.
            while adm.load().1 == 0 {
                std::thread::yield_now();
            }
            drop(p1);
            match waiter.join().unwrap() {
                Admission::Admitted(_) => {}
                other => panic!("expected the waiter to be admitted, got {other:?}"),
            }
        });
        let (admitted, shed, expired, peak) = adm.counters();
        assert_eq!((admitted, shed, expired), (2, 0, 0));
        assert_eq!(peak, 1);
    }

    #[test]
    fn queue_wait_counts_against_the_request_deadline() {
        let adm = AdmissionGovernor::new(AdmissionConfig::bounded(1, 4));
        let slow = governor();
        let _held = match adm.admit(&slow) {
            Admission::Admitted(p) => p,
            other => panic!("{other:?}"),
        };
        // The queued request's own deadline expires while it waits.
        let gov = Governor::with_budget(Budget {
            deadline: Some(Duration::from_millis(30)),
            ..Budget::unlimited()
        });
        let start = Instant::now();
        match adm.admit(&gov) {
            Admission::Expired { reason } => {
                assert!(reason.contains("deadline"), "{reason}")
            }
            other => panic!("expected Expired, got {other:?}"),
        }
        assert!(start.elapsed() < Duration::from_secs(5));
        assert_eq!(adm.counters().2, 1);
    }

    #[test]
    fn arrivals_cannot_jump_a_queued_waiter() {
        let adm = AdmissionGovernor::new(AdmissionConfig::bounded(1, 1));
        let gov = governor();
        let held = match adm.admit(&gov) {
            Admission::Admitted(p) => p,
            other => panic!("{other:?}"),
        };
        std::thread::scope(|s| {
            let waiter = s.spawn(|| {
                let gov = governor();
                match adm.admit(&gov) {
                    // Release the slot from here so no interleaving
                    // can leave the arrival below parked forever.
                    Admission::Admitted(p) => drop(p),
                    other => panic!("expected the waiter to be admitted, got {other:?}"),
                }
            });
            while adm.load().1 == 0 {
                std::thread::yield_now();
            }
            // The slot frees with the waiter still parked. Whatever
            // the arrival below races into, it must never hold a slot
            // while the older waiter is still queued.
            drop(held);
            match adm.admit(&gov) {
                // Queue full, waiter not yet through: correctly shed.
                Admission::Shed { .. } => {}
                // Only legal once the waiter is out of the queue.
                Admission::Admitted(_) => {
                    assert_eq!(adm.load().1, 0, "arrival jumped the queued waiter")
                }
                other => panic!("{other:?}"),
            }
            waiter.join().unwrap();
        });
    }

    #[test]
    fn freed_slots_are_granted_in_arrival_order() {
        let adm = AdmissionGovernor::new(AdmissionConfig::bounded(1, 2));
        let gov = governor();
        let held = match adm.admit(&gov) {
            Admission::Admitted(p) => p,
            other => panic!("{other:?}"),
        };
        std::thread::scope(|s| {
            let first = s.spawn(|| {
                let gov = governor();
                adm.admit(&gov)
            });
            while adm.load().1 != 1 {
                std::thread::yield_now();
            }
            let second = s.spawn(|| {
                let gov = governor();
                adm.admit(&gov)
            });
            while adm.load().1 != 2 {
                std::thread::yield_now();
            }
            drop(held);
            // Exactly the older waiter runs; the younger stays parked.
            let first_permit = match first.join().unwrap() {
                Admission::Admitted(p) => p,
                other => panic!("expected the older waiter first, got {other:?}"),
            };
            assert_eq!(adm.load(), (1, 1), "younger waiter must still be queued");
            drop(first_permit);
            match second.join().unwrap() {
                Admission::Admitted(_) => {}
                other => panic!("expected the younger waiter next, got {other:?}"),
            }
        });
        assert_eq!(adm.counters().0, 3);
    }

    #[test]
    fn cancel_is_honored_while_queued() {
        let adm = AdmissionGovernor::new(AdmissionConfig::bounded(1, 4));
        let slow = governor();
        let _held = match adm.admit(&slow) {
            Admission::Admitted(p) => p,
            other => panic!("{other:?}"),
        };
        let gov = governor();
        std::thread::scope(|s| {
            let waiter = s.spawn(|| adm.admit(&gov));
            while adm.load().1 == 0 {
                std::thread::yield_now();
            }
            gov.cancel();
            match waiter.join().unwrap() {
                Admission::Expired { reason } => {
                    assert!(reason.contains("cancel"), "{reason}")
                }
                other => panic!("expected Expired on cancel, got {other:?}"),
            }
        });
    }
}
