//! A minimal line-delimited JSON reader/writer for the service
//! protocol. Hand-rolled (the build must succeed offline with no
//! registry crates); supports exactly the JSON subset the protocol
//! uses: objects, arrays, strings with the standard escapes,
//! numbers, booleans, and null.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (the protocol only uses non-negative integers).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source key order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as a `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Num(n) if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 => {
                Some(n as u64)
            }
            _ => None,
        }
    }

    /// [`Value::as_u64`] narrowed to `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }
}

/// Parses one JSON document, rejecting trailing garbage.
///
/// # Errors
///
/// A human-readable message with the byte offset of the problem.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected character '{}' at byte {}",
                other as char, self.pos
            )),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn literal(&mut self, text: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| {
                                    format!("bad \\u escape at byte {}", self.pos)
                                })?;
                            // The protocol never emits surrogate pairs;
                            // lone surrogates map to the replacement char.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so the
                    // byte stream is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe_free_next_char(rest);
                    out.push_str(s);
                    self.pos += s.len();
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }
}

/// The first UTF-8 scalar of `rest` as a subslice (no unsafe: uses the
/// str machinery on a validity-checked prefix).
fn unsafe_free_next_char(rest: &[u8]) -> &str {
    for n in 1..=4.min(rest.len()) {
        if let Ok(s) = std::str::from_utf8(&rest[..n]) {
            return s;
        }
    }
    "\u{fffd}" // unreachable for input derived from &str
}

/// Escapes `s` for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Builds one response object line member-by-member (insertion order is
/// emission order).
#[derive(Default)]
pub struct ObjBuilder {
    body: String,
}

impl ObjBuilder {
    /// An empty object.
    pub fn new() -> ObjBuilder {
        ObjBuilder::default()
    }

    fn sep(&mut self) {
        if !self.body.is_empty() {
            self.body.push(',');
        }
    }

    /// Adds a string member.
    pub fn str(mut self, key: &str, value: &str) -> ObjBuilder {
        self.sep();
        let _ = write!(self.body, "\"{}\":\"{}\"", escape(key), escape(value));
        self
    }

    /// Adds an integer member.
    pub fn num(mut self, key: &str, value: usize) -> ObjBuilder {
        self.sep();
        let _ = write!(self.body, "\"{}\":{}", escape(key), value);
        self
    }

    /// Adds a boolean member.
    pub fn bool(mut self, key: &str, value: bool) -> ObjBuilder {
        self.sep();
        let _ = write!(self.body, "\"{}\":{}", escape(key), value);
        self
    }

    /// Adds a pre-serialized JSON value verbatim (e.g. a nested array
    /// of objects each built with its own [`ObjBuilder`]).
    pub fn raw(mut self, key: &str, json: &str) -> ObjBuilder {
        self.sep();
        let _ = write!(self.body, "\"{}\":{}", escape(key), json);
        self
    }

    /// Finishes the object.
    pub fn build(self) -> String {
        format!("{{{}}}", self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_protocol_shapes() {
        let v = parse(
            r#"{"id":"r1","op":"synthesize","problem":"mutex2","threads":2,
                "budget":{"max_states":100},"flags":[true,null,1.5]}"#,
        )
        .unwrap();
        assert_eq!(v.get("id").and_then(Value::as_str), Some("r1"));
        assert_eq!(v.get("threads").and_then(Value::as_usize), Some(2));
        assert_eq!(
            v.get("budget")
                .and_then(|b| b.get("max_states"))
                .and_then(Value::as_usize),
            Some(100)
        );
        match v.get("flags") {
            Some(Value::Arr(items)) => {
                assert_eq!(items[0], Value::Bool(true));
                assert_eq!(items[1], Value::Null);
                assert_eq!(items[2], Value::Num(1.5));
                assert_eq!(items[2].as_u64(), None, "1.5 is not an integer");
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "a\"b\\c\nd\te\u{1f}π";
        let doc = format!("{{\"k\":\"{}\"}}", escape(original));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").and_then(Value::as_str), Some(original));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{\"a\":01x}").is_err());
    }

    #[test]
    fn obj_builder_emits_parseable_lines() {
        let line = ObjBuilder::new()
            .str("id", "r\"1")
            .str("status", "solved")
            .num("states", 85)
            .bool("verified", true)
            .build();
        let v = parse(&line).unwrap();
        assert_eq!(v.get("id").and_then(Value::as_str), Some("r\"1"));
        assert_eq!(v.get("states").and_then(Value::as_usize), Some(85));
        assert_eq!(v.get("verified"), Some(&Value::Bool(true)));
    }
}
