//! The built-in problem corpus: named constructors for the golden
//! benchmark family, so service requests can name a problem instead of
//! shipping a spec file. Names match the conformance golden cases.

use ftsyn::{problems, SynthesisProblem, Tolerance};

/// All corpus names, in a stable order (the bench harness iterates
/// this list).
pub const NAMES: &[&str] = &[
    "mutex2-failstop-masking",
    "mutex3-failstop-masking",
    "mutex4-failstop-masking",
    "multitolerance-mutex3-P1-nonmasking",
    "barrier2-nonmasking",
    "readers-writers-1R-writer-failstop",
    "philosophers3-fault-free",
];

/// Constructs a fresh problem instance for a corpus `name`, or `None`
/// if the name is unknown. Every call builds a new instance — requests
/// must never share mutable problem state.
pub fn problem(name: &str) -> Option<SynthesisProblem> {
    Some(match name {
        "mutex2-failstop-masking" => problems::mutex::with_fail_stop(2, Tolerance::Masking),
        "mutex3-failstop-masking" => problems::mutex::with_fail_stop(3, Tolerance::Masking),
        "mutex4-failstop-masking" => problems::mutex::with_fail_stop(4, Tolerance::Masking),
        "multitolerance-mutex3-P1-nonmasking" => {
            problems::mutex::with_fail_stop_multitolerance(3, |f| {
                if f.name().contains("P1") {
                    Tolerance::Nonmasking
                } else {
                    Tolerance::Masking
                }
            })
        }
        "barrier2-nonmasking" => problems::barrier::with_general_state_faults(2),
        "readers-writers-1R-writer-failstop" => {
            problems::readers_writers::with_writer_fail_stop(1, Tolerance::Masking)
        }
        "philosophers3-fault-free" => problems::mutex::dining_philosophers(3),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_name_constructs() {
        for name in NAMES {
            assert!(problem(name).is_some(), "corpus name {name} did not build");
        }
        assert!(problem("no-such-problem").is_none());
    }
}
