//! Durable checkpoint store: the on-disk half of the service's
//! checkpoint map (`--checkpoint-dir`), built so the daemon survives
//! its own fail-stop.
//!
//! # Layout
//!
//! One record file per checkpoint, `ckpt-<seq:016x>.blob`, where `seq`
//! is a monotonically increasing admission number (the recovery sort
//! key). A record wraps the already-versioned-and-checksummed
//! [`Checkpoint`] wire blob with the request id and problem source,
//! under its own magic/version/checksum header (see [`encode_record`]).
//! A separate versioned index file (`index.ftsynidx`) records the
//! committed id→seq set plus the next sequence number.
//!
//! # Atomicity and fsync discipline
//!
//! Every file (record and index alike) is written to a `.tmp` sibling,
//! fsynced, renamed into place, and the directory fsynced — a reader
//! never observes a half-written file under its final name. Mutations
//! order blob-then-index on persist and blob-then-index on remove, so
//! a fail-stop between the two steps leaves either an *orphan* record
//! (persisted blob the index missed — adopted on recovery) or a
//! *dangling* index entry (removed blob the index still names —
//! dropped on recovery). Both are healed, never fatal.
//!
//! # Recovery
//!
//! [`CheckpointStore::open`] scans the directory, validates every
//! record end-to-end (wrapper checksum, then a full
//! [`Checkpoint::decode`] of the inner blob, exercising the same
//! magic/version/fingerprint refusals a resume would), and reports a
//! [`Recovery`]: valid checkpoints to re-offer, corrupt or partial
//! files moved to a `quarantine/` subdirectory with a structured
//! reason, and bookkeeping notes (stale tmps, superseded duplicates,
//! dangling index entries). Damage is *contained*: a bad blob is
//! quarantined and reported, and recovery of the rest proceeds.
//!
//! # Fault injection
//!
//! Named crash points ([`crash_point`]) let the conformance harness
//! fail-stop the real daemon at the exact seams the atomicity argument
//! depends on (before a rename, between blob and index, after commit).

use crate::ProblemSource;
use ftsyn::{blob_checksum, Checkpoint};
use std::collections::HashMap;
use std::fmt;
use std::fs::{self, File};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Magic bytes of a store record file.
const RECORD_MAGIC: &[u8; 8] = b"FTSYNSTO";

/// Store record format version.
pub const RECORD_FORMAT_VERSION: u32 = 1;

/// Magic bytes of the store index file.
const INDEX_MAGIC: &[u8; 8] = b"FTSYNIDX";

/// Store index format version.
pub const INDEX_FORMAT_VERSION: u32 = 1;

/// File name of the index inside the store directory.
const INDEX_FILE: &str = "index.ftsynidx";

/// Subdirectory corrupt records are moved into.
const QUARANTINE_DIR: &str = "quarantine";

/// A structured store failure: the filesystem operation that failed
/// and where. Store failures degrade durability (the in-memory map is
/// still correct) — callers report them and continue.
#[derive(Debug)]
pub struct StoreError {
    /// What the store was doing (`"create dir"`, `"write"`, …).
    pub op: &'static str,
    /// The path involved.
    pub path: PathBuf,
    /// The underlying I/O error.
    pub error: std::io::Error,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "checkpoint store: {} {}: {}",
            self.op,
            self.path.display(),
            self.error
        )
    }
}

impl std::error::Error for StoreError {}

/// A checkpoint brought back by recovery, ready to re-offer.
#[derive(Clone, Debug)]
pub struct RecoveredCheckpoint {
    /// Request id the checkpoint was parked under.
    pub id: String,
    /// Problem source a resume rebuilds the problem from.
    pub source: ProblemSource,
    /// The encoded [`Checkpoint`] wire blob (already validated).
    pub blob: Vec<u8>,
    /// Tableau nodes in the checkpoint (from the validating decode).
    pub nodes: usize,
}

/// What [`CheckpointStore::open`] found: the survivors, the damage,
/// and the bookkeeping it healed.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Valid checkpoints, in admission (sequence) order.
    pub recovered: Vec<RecoveredCheckpoint>,
    /// `(file name, reason)` for every record moved to `quarantine/`.
    pub quarantined: Vec<(String, String)>,
    /// Healed bookkeeping: stale tmps removed, superseded duplicate
    /// records dropped, index entries whose record was missing.
    pub notes: Vec<String>,
}

/// The on-disk store. All methods take `&mut self`; the service
/// serializes access behind its checkpoint-map mutex.
pub struct CheckpointStore {
    dir: PathBuf,
    next_seq: u64,
    /// id → (seq, record path) for every committed record.
    files: HashMap<String, (u64, PathBuf)>,
}

/// Fail-stop injection for the crash-recovery conformance harness:
/// when `FTSYN_CRASH_POINT` names this point, the process dies here —
/// no unwinding, no destructors, exactly the state already on disk.
fn crash_point(name: &str) {
    if std::env::var("FTSYN_CRASH_POINT").as_deref() == Ok(name) {
        eprintln!("crash injection: fail-stop at {name}");
        std::process::abort();
    }
}

fn io_err<'p>(op: &'static str, path: &'p Path) -> impl FnOnce(std::io::Error) -> StoreError + 'p {
    move |error| StoreError {
        op,
        path: path.to_path_buf(),
        error,
    }
}

/// Flushes directory metadata (the rename) to disk. Best-effort: some
/// filesystems refuse to fsync a directory handle, and the rename
/// itself is already atomic.
fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

/// Writes `bytes` under `dir/name` atomically: tmp sibling → fsync →
/// rename → directory fsync. `pre_rename` names the injection point
/// right before the rename (tmp durable, final name absent).
fn write_atomic(
    dir: &Path,
    name: &str,
    bytes: &[u8],
    pre_rename: &str,
) -> Result<(), StoreError> {
    let tmp = dir.join(format!("{name}.tmp"));
    let target = dir.join(name);
    {
        let mut f = File::create(&tmp).map_err(io_err("create", &tmp))?;
        f.write_all(bytes).map_err(io_err("write", &tmp))?;
        f.sync_all().map_err(io_err("fsync", &tmp))?;
    }
    crash_point(pre_rename);
    fs::rename(&tmp, &target).map_err(io_err("rename", &target))?;
    sync_dir(dir);
    Ok(())
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

/// Minimal structured reader for record/index decoding; errors are
/// human-readable reasons destined for the quarantine report.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.pos + n > self.bytes.len() {
            return Err("truncated".to_owned());
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn bytes(&mut self) -> Result<&'a [u8], String> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    fn string(&mut self) -> Result<String, String> {
        String::from_utf8(self.bytes()?.to_vec()).map_err(|_| "non-UTF-8 string".to_owned())
    }
}

/// Checks a `magic | version | checksum | payload` header and returns
/// the verified payload.
fn checked_payload<'a>(
    bytes: &'a [u8],
    magic: &[u8; 8],
    version: u32,
    what: &str,
) -> Result<&'a [u8], String> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(magic.len())? != magic {
        return Err(format!("not a {what} (bad magic)"));
    }
    let found = r.u32()?;
    if found != version {
        return Err(format!(
            "unsupported {what} version {found} (this build reads {version})"
        ));
    }
    let stored = r.u64()?;
    let payload = &bytes[r.pos..];
    let computed = blob_checksum(payload);
    if stored != computed {
        return Err(format!(
            "{what} checksum {computed:#018x} does not match stored {stored:#018x}"
        ));
    }
    Ok(payload)
}

fn with_header(magic: &[u8; 8], version: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 20);
    out.extend_from_slice(magic);
    put_u32(&mut out, version);
    put_u64(&mut out, blob_checksum(payload));
    out.extend_from_slice(payload);
    out
}

/// Encodes one record file: id, problem source, and the checkpoint
/// wire blob, under the record header.
fn encode_record(id: &str, source: &ProblemSource, blob: &[u8]) -> Vec<u8> {
    let mut p = Vec::with_capacity(blob.len() + id.len() + 64);
    put_bytes(&mut p, id.as_bytes());
    let (kind, text) = match source {
        ProblemSource::Corpus(name) => (0u8, name.as_str()),
        ProblemSource::Spec(text) => (1, text.as_str()),
    };
    p.push(kind);
    put_bytes(&mut p, text.as_bytes());
    put_bytes(&mut p, blob);
    with_header(RECORD_MAGIC, RECORD_FORMAT_VERSION, &p)
}

/// Decodes and fully validates one record file, including a
/// [`Checkpoint::decode`] of the inner blob (the same refusals a
/// resume would hit). The error string is the quarantine reason.
fn decode_record(bytes: &[u8]) -> Result<RecoveredCheckpoint, String> {
    let payload = checked_payload(bytes, RECORD_MAGIC, RECORD_FORMAT_VERSION, "store record")?;
    let mut r = Reader {
        bytes: payload,
        pos: 0,
    };
    let id = r.string()?;
    if id.is_empty() {
        return Err("record has an empty request id".to_owned());
    }
    let kind = r.take(1)?[0];
    let text = r.string()?;
    let source = match kind {
        0 => ProblemSource::Corpus(text),
        1 => ProblemSource::Spec(text),
        other => return Err(format!("unknown problem-source kind {other}")),
    };
    let blob = r.bytes()?.to_vec();
    if r.pos != payload.len() {
        return Err("trailing bytes after the record payload".to_owned());
    }
    let nodes = Checkpoint::decode(&blob)
        .map_err(|e| format!("inner checkpoint blob rejected: {e}"))?
        .tableau_nodes();
    Ok(RecoveredCheckpoint {
        id,
        source,
        blob,
        nodes,
    })
}

fn record_name(seq: u64) -> String {
    format!("ckpt-{seq:016x}.blob")
}

/// Parses the sequence number out of a `ckpt-<seq>.blob` file name.
fn parse_record_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("ckpt-")?.strip_suffix(".blob")?;
    (hex.len() == 16).then(|| u64::from_str_radix(hex, 16).ok())?
}

impl CheckpointStore {
    /// Opens (or creates) the store at `dir`, running full recovery:
    /// scan, validate, quarantine, heal the index. Only I/O failures on
    /// the directory itself are fatal; damaged records never are.
    pub fn open(dir: &Path) -> Result<(CheckpointStore, Recovery), StoreError> {
        fs::create_dir_all(dir).map_err(io_err("create dir", dir))?;
        let mut recovery = Recovery::default();

        // The committed set according to the index, if it is readable.
        // The index is advisory — the scan below is ground truth for
        // which records exist — but it distinguishes a dangling entry
        // (heal silently) from an orphan record (adopt).
        let mut index_ids: Option<Vec<(u64, String)>> = None;
        let mut index_next_seq = 0u64;
        let index_path = dir.join(INDEX_FILE);
        match fs::read(&index_path) {
            Ok(bytes) => match decode_index(&bytes) {
                Ok((next_seq, ids)) => {
                    index_next_seq = next_seq;
                    index_ids = Some(ids);
                }
                Err(reason) => {
                    quarantine(dir, INDEX_FILE, &reason, &mut recovery);
                }
            },
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(error) => {
                return Err(StoreError {
                    op: "read",
                    path: index_path,
                    error,
                })
            }
        }

        // Scan the directory: clean stale tmps, validate every record,
        // quarantine damage.
        let mut records: Vec<(u64, String, RecoveredCheckpoint)> = Vec::new();
        let entries = fs::read_dir(dir).map_err(io_err("read dir", dir))?;
        for entry in entries {
            let entry = entry.map_err(io_err("read dir", dir))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.ends_with(".tmp") {
                // A tmp never reached its rename: the write it belonged
                // to was not committed, so the bytes carry no promise.
                let _ = fs::remove_file(entry.path());
                recovery.notes.push(format!("removed stale tmp {name}"));
                continue;
            }
            let Some(seq) = parse_record_name(&name) else {
                continue; // the index, quarantine/, or foreign files
            };
            let bytes = match fs::read(entry.path()) {
                Ok(b) => b,
                Err(e) => {
                    quarantine(dir, &name, &format!("unreadable: {e}"), &mut recovery);
                    continue;
                }
            };
            match decode_record(&bytes) {
                Ok(rec) => records.push((seq, name, rec)),
                Err(reason) => quarantine(dir, &name, &reason, &mut recovery),
            }
        }
        records.sort_by_key(|(seq, ..)| *seq);

        // Duplicate ids keep the highest sequence number: a replace
        // that crashed between writing the new record and deleting the
        // old one resolves to the newer checkpoint.
        let mut files: HashMap<String, (u64, PathBuf)> = HashMap::new();
        let mut survivors: Vec<(u64, RecoveredCheckpoint)> = Vec::new();
        for (seq, name, rec) in records {
            if let Some((old_seq, old_path)) = files.get(&rec.id) {
                let old_name = record_name(*old_seq);
                let _ = fs::remove_file(old_path);
                survivors.retain(|(s, _)| s != old_seq);
                recovery
                    .notes
                    .push(format!("dropped superseded record {old_name}"));
            }
            files.insert(rec.id.clone(), (seq, dir.join(&name)));
            survivors.push((seq, rec));
        }
        survivors.sort_by_key(|(seq, _)| *seq);

        // Dangling index entries (record deleted, index rewrite lost to
        // the crash) are healed by the index rewrite below.
        if let Some(ids) = index_ids {
            for (seq, id) in ids {
                if files.get(&id).map(|(s, _)| *s) != Some(seq) {
                    recovery.notes.push(format!(
                        "dropped dangling index entry {id} (seq {seq})"
                    ));
                }
            }
        }

        let max_seq = files.values().map(|(s, _)| *s).max();
        let store = CheckpointStore {
            dir: dir.to_path_buf(),
            next_seq: index_next_seq.max(max_seq.map_or(0, |s| s + 1)),
            files,
        };
        // Rewrite the index to match the healed reality, so the next
        // recovery starts from a clean committed set.
        store.write_index()?;
        recovery.recovered = survivors.into_iter().map(|(_, rec)| rec).collect();
        Ok((store, recovery))
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of committed records.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Persists a checkpoint blob under `id`, replacing any record the
    /// id already has. Ordering: new record durable → old record
    /// removed → index rewritten; every intermediate state recovers.
    pub fn persist(
        &mut self,
        id: &str,
        source: &ProblemSource,
        blob: &[u8],
    ) -> Result<(), StoreError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let name = record_name(seq);
        let record = encode_record(id, source, blob);
        write_atomic(&self.dir, &name, &record, "ckpt-blob-pre-rename")?;
        crash_point("ckpt-blob-durable");
        if let Some((_, old_path)) = self.files.remove(id) {
            let _ = fs::remove_file(old_path);
        }
        self.files.insert(id.to_owned(), (seq, self.dir.join(&name)));
        self.write_index()?;
        crash_point("ckpt-store-complete");
        Ok(())
    }

    /// Removes the record for `id` (a consumed or discarded
    /// checkpoint). Record first, then index; a crash in between
    /// leaves a dangling index entry recovery heals.
    pub fn remove(&mut self, id: &str) -> Result<(), StoreError> {
        let Some((_, path)) = self.files.remove(id) else {
            return Ok(());
        };
        match fs::remove_file(&path) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(error) => {
                return Err(StoreError {
                    op: "remove",
                    path,
                    error,
                })
            }
        }
        crash_point("ckpt-remove-before-index");
        self.write_index()
    }

    fn write_index(&self) -> Result<(), StoreError> {
        let mut entries: Vec<(&u64, &String)> = self
            .files
            .iter()
            .map(|(id, (seq, _))| (seq, id))
            .collect();
        entries.sort();
        let mut p = Vec::new();
        put_u64(&mut p, self.next_seq);
        put_u32(&mut p, entries.len() as u32);
        for (seq, id) in entries {
            put_u64(&mut p, *seq);
            put_bytes(&mut p, id.as_bytes());
        }
        let bytes = with_header(INDEX_MAGIC, INDEX_FORMAT_VERSION, &p);
        write_atomic(&self.dir, INDEX_FILE, &bytes, "ckpt-index-pre-rename")
    }
}

/// Decodes the index into `(next_seq, [(seq, id)])`.
fn decode_index(bytes: &[u8]) -> Result<(u64, Vec<(u64, String)>), String> {
    let payload = checked_payload(bytes, INDEX_MAGIC, INDEX_FORMAT_VERSION, "store index")?;
    let mut r = Reader {
        bytes: payload,
        pos: 0,
    };
    let next_seq = r.u64()?;
    let count = r.u32()? as usize;
    let mut ids = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let seq = r.u64()?;
        let id = r.string()?;
        ids.push((seq, id));
    }
    if r.pos != payload.len() {
        return Err("trailing bytes after the index payload".to_owned());
    }
    Ok((next_seq, ids))
}

/// Moves a damaged file into `quarantine/` and records the structured
/// reason. Never fails recovery: if even the move fails, the file is
/// left behind and the failure itself is reported.
fn quarantine(dir: &Path, name: &str, reason: &str, recovery: &mut Recovery) {
    let qdir = dir.join(QUARANTINE_DIR);
    let moved = fs::create_dir_all(&qdir)
        .and_then(|()| fs::rename(dir.join(name), qdir.join(name)))
        .is_ok();
    let reason = if moved {
        reason.to_owned()
    } else {
        format!("{reason} (left in place: quarantine move failed)")
    };
    recovery.quarantined.push((name.to_owned(), reason));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A unique scratch directory per test, removed on drop.
    struct Scratch(PathBuf);

    impl Scratch {
        fn new(tag: &str) -> Scratch {
            static N: AtomicUsize = AtomicUsize::new(0);
            let dir = std::env::temp_dir().join(format!(
                "ftsyn-store-{tag}-{}-{}",
                std::process::id(),
                N.fetch_add(1, Ordering::Relaxed)
            ));
            let _ = fs::remove_dir_all(&dir);
            Scratch(dir)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    /// A real checkpoint blob from an aborted governed build.
    fn real_blob() -> Vec<u8> {
        let mut problem = crate::corpus::problem("mutex2-failstop-masking").unwrap();
        let gov = ftsyn::Governor::with_budget(ftsyn::Budget {
            max_states: Some(12),
            ..ftsyn::Budget::unlimited()
        });
        let (outcome, _) = ftsyn::synthesize_session(
            &mut problem,
            ftsyn::ThreadPlan::uniform(1),
            Some(&gov),
            ftsyn::SynthesisSession::default(),
        )
        .unwrap();
        match outcome {
            ftsyn::SynthesisOutcome::Aborted(a) => a.checkpoint.unwrap().encode(),
            other => panic!("expected an abort, got {other:?}"),
        }
    }

    fn source() -> ProblemSource {
        ProblemSource::Corpus("mutex2-failstop-masking".to_owned())
    }

    #[test]
    fn persist_survives_reopen_byte_identically() {
        let scratch = Scratch::new("roundtrip");
        let blob = real_blob();
        let (mut store, recovery) = CheckpointStore::open(&scratch.0).unwrap();
        assert!(recovery.recovered.is_empty());
        assert!(recovery.quarantined.is_empty());
        store.persist("r1", &source(), &blob).unwrap();
        assert_eq!(store.len(), 1);
        drop(store);

        let (store, recovery) = CheckpointStore::open(&scratch.0).unwrap();
        assert_eq!(store.len(), 1);
        assert!(recovery.quarantined.is_empty(), "{:?}", recovery.quarantined);
        let rec = &recovery.recovered[0];
        assert_eq!(rec.id, "r1");
        assert_eq!(rec.source, source());
        assert_eq!(rec.blob, blob, "the blob round-trips byte-identically");
        assert!(rec.nodes > 0);
    }

    #[test]
    fn replace_keeps_only_the_newest_record_for_an_id() {
        let scratch = Scratch::new("replace");
        let blob = real_blob();
        let (mut store, _) = CheckpointStore::open(&scratch.0).unwrap();
        store.persist("r1", &source(), &blob).unwrap();
        store.persist("r1", &source(), &blob).unwrap();
        assert_eq!(store.len(), 1);
        drop(store);
        let (_, recovery) = CheckpointStore::open(&scratch.0).unwrap();
        assert_eq!(recovery.recovered.len(), 1);
    }

    #[test]
    fn remove_is_durable_and_idempotent() {
        let scratch = Scratch::new("remove");
        let blob = real_blob();
        let (mut store, _) = CheckpointStore::open(&scratch.0).unwrap();
        store.persist("r1", &source(), &blob).unwrap();
        store.remove("r1").unwrap();
        store.remove("r1").unwrap();
        assert!(store.is_empty());
        drop(store);
        let (_, recovery) = CheckpointStore::open(&scratch.0).unwrap();
        assert!(recovery.recovered.is_empty());
        assert!(recovery.quarantined.is_empty());
    }

    /// An orphan record (present on disk, absent from the index — the
    /// crash window between blob rename and index rewrite) is adopted.
    #[test]
    fn orphan_records_are_adopted() {
        let scratch = Scratch::new("orphan");
        let blob = real_blob();
        let (mut store, _) = CheckpointStore::open(&scratch.0).unwrap();
        store.persist("kept", &source(), &blob).unwrap();
        // Simulate the crash: write a record directly, bypassing the
        // index.
        let record = encode_record("orphan", &source(), &blob);
        write_atomic(&scratch.0, &record_name(99), &record, "-").unwrap();
        drop(store);

        let (store, recovery) = CheckpointStore::open(&scratch.0).unwrap();
        assert_eq!(store.len(), 2);
        let ids: Vec<&str> = recovery.recovered.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, ["kept", "orphan"], "admission order, orphan adopted");
        // next_seq moved past the orphan's sequence number.
        assert!(store.next_seq > 99);
    }

    /// Torn, truncated, or garbage records are quarantined with a
    /// structured reason; recovery of the rest proceeds.
    #[test]
    fn damaged_records_are_quarantined_not_fatal() {
        let scratch = Scratch::new("quarantine");
        let blob = real_blob();
        let (mut store, _) = CheckpointStore::open(&scratch.0).unwrap();
        store.persist("good", &source(), &blob).unwrap();

        // Torn record: a valid prefix of a real record.
        let record = encode_record("torn", &source(), &blob);
        fs::write(scratch.0.join(record_name(50)), &record[..record.len() / 2]).unwrap();
        // Garbage record.
        fs::write(scratch.0.join(record_name(51)), b"not a record").unwrap();
        // Record whose wrapper is valid but whose inner blob is damaged.
        let mut bad_blob = blob.clone();
        let n = bad_blob.len();
        bad_blob[n / 2] ^= 1;
        let record = encode_record("badblob", &source(), &bad_blob);
        fs::write(scratch.0.join(record_name(52)), record).unwrap();
        // A stale tmp from an interrupted write.
        fs::write(scratch.0.join("ckpt-00000000000000ff.blob.tmp"), b"half").unwrap();
        drop(store);

        let (store, recovery) = CheckpointStore::open(&scratch.0).unwrap();
        assert_eq!(store.len(), 1, "only the good record survives");
        assert_eq!(recovery.recovered[0].id, "good");
        assert_eq!(recovery.quarantined.len(), 3, "{:?}", recovery.quarantined);
        let reasons: HashMap<&str, &str> = recovery
            .quarantined
            .iter()
            .map(|(f, r)| (f.as_str(), r.as_str()))
            .collect();
        assert!(reasons[record_name(50).as_str()].contains("checksum"));
        assert!(reasons[record_name(51).as_str()].contains("bad magic"));
        assert!(reasons[record_name(52).as_str()].contains("inner checkpoint blob rejected"));
        assert!(recovery
            .notes
            .iter()
            .any(|n| n.contains("stale tmp")));
        // The damage is preserved for post-mortem, out of the way.
        assert!(scratch.0.join(QUARANTINE_DIR).join(record_name(51)).exists());

        // Recovery healed the index: a second open is clean.
        drop(store);
        let (_, recovery) = CheckpointStore::open(&scratch.0).unwrap();
        assert!(recovery.quarantined.is_empty());
        assert_eq!(recovery.recovered.len(), 1);
    }

    /// A corrupt index is quarantined; the scan still recovers every
    /// valid record (the index is advisory, records are ground truth).
    #[test]
    fn corrupt_index_does_not_lose_records() {
        let scratch = Scratch::new("badindex");
        let blob = real_blob();
        let (mut store, _) = CheckpointStore::open(&scratch.0).unwrap();
        store.persist("r1", &source(), &blob).unwrap();
        drop(store);
        fs::write(scratch.0.join(INDEX_FILE), b"scrambled").unwrap();

        let (store, recovery) = CheckpointStore::open(&scratch.0).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(recovery.recovered[0].id, "r1");
        assert_eq!(recovery.quarantined.len(), 1);
        assert_eq!(recovery.quarantined[0].0, INDEX_FILE);
    }

    /// A dangling index entry (record removed, index rewrite lost) is
    /// healed silently with a note.
    #[test]
    fn dangling_index_entries_are_healed() {
        let scratch = Scratch::new("dangling");
        let blob = real_blob();
        let (mut store, _) = CheckpointStore::open(&scratch.0).unwrap();
        store.persist("gone", &source(), &blob).unwrap();
        // Simulate the crash between record delete and index rewrite.
        let (_, path) = store.files["gone"].clone();
        fs::remove_file(path).unwrap();
        drop(store);

        let (store, recovery) = CheckpointStore::open(&scratch.0).unwrap();
        assert!(store.is_empty());
        assert!(recovery
            .notes
            .iter()
            .any(|n| n.contains("dangling index entry")));
    }
}
