//! Semantic model minimization.
//!
//! The bisimulation quotient (crate `ftsyn-kripke`) collapses copies
//! with *identical* behavior, but the unraveling also produces copies
//! of a valuation whose behaviors differ in ways the specification does
//! not care about (e.g. a recovery copy whose label carries `AF AG
//! global` instead of the full normal label). This pass greedily merges
//! pairs of states with the same valuation and keeps a merge exactly
//! when the resulting model still satisfies the requirements of the
//! synthesis problem statement (Section 3) — checked mechanically with
//! the model checker. The result is a smaller correct model, typically
//! with far fewer disambiguating shared variables, matching the paper's
//! hand-drawn figures much more closely.

use crate::problem::SynthesisProblem;
use crate::verify::verify_semantic_ok;
use ftsyn_kripke::{FtKripke, PropSet, StateId};
use ftsyn_tableau::{AbortReason, Governor};
use std::collections::HashMap;

/// Work counters of one [`semantic_minimize`] run. Minimization
/// dominates the pipeline on the larger instances (every candidate
/// merge costs one semantic verification of the whole candidate model),
/// so the counters that explain the wall-clock — how many candidates
/// were tried, how many survived — are first-class measurements,
/// surfaced in `SynthesisStats` and the bench JSON.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MinimizeProfile {
    /// Candidate merges verified (accepted or rejected). Each attempt
    /// model-checks a full copy of the candidate model, so this count —
    /// not the state count — is the phase's cost driver.
    pub attempts: usize,
    /// Candidate merges accepted. Each accepted merge removes one state
    /// and restarts the greedy scan.
    pub merges: usize,
}

/// Returns a copy of `m` with state `from` merged into state `into`
/// (edges redirected, `from` removed), plus the old→new state mapping.
fn merged(m: &FtKripke, from: StateId, into: StateId) -> (FtKripke, Vec<StateId>) {
    let mut out = FtKripke::new();
    // Old id -> new id (from maps to into's new id).
    let mut map: HashMap<StateId, StateId> = HashMap::new();
    for s in m.state_ids() {
        if s == from {
            continue;
        }
        let n = out.push_state(m.state(s).clone());
        map.insert(s, n);
    }
    map.insert(from, map[&into]);
    for s in m.state_ids() {
        let ns = map[&s];
        for e in m.succ(s) {
            out.add_edge(ns, e.kind, map[&e.to]);
        }
    }
    for &i in m.init_states() {
        out.add_init(map[&i]);
    }
    let mapping = m.state_ids().map(|s| map[&s]).collect();
    (out, mapping)
}

/// Greedily merges same-valuation states while the model keeps passing
/// the semantic verification. Returns the minimized model together with
/// the mapping from the input model's state ids to the output's.
pub fn semantic_minimize(
    problem: &mut SynthesisProblem,
    model: FtKripke,
) -> (FtKripke, Vec<StateId>) {
    let (model, map, _) = semantic_minimize_profiled(problem, model);
    (model, map)
}

/// [`semantic_minimize`] plus the [`MinimizeProfile`] work counters of
/// the run (same model, same mapping — the profile is observational).
pub fn semantic_minimize_profiled(
    problem: &mut SynthesisProblem,
    model: FtKripke,
) -> (FtKripke, Vec<StateId>, MinimizeProfile) {
    minimize_core(problem, model, None)
        .unwrap_or_else(|a| panic!("ungoverned minimize aborted: {}", a.reason))
}

/// Partial results of a governed minimization that exceeded its budget.
#[derive(Clone, Debug)]
pub struct MinimizeAbort {
    /// Which limit tripped.
    pub reason: AbortReason,
    /// Attempts/merges performed up to the abort point.
    pub profile: MinimizeProfile,
}

/// [`semantic_minimize_profiled`] under a [`Governor`]: the attempt cap
/// and the deadline/cancel flag are polled before every candidate
/// verification (each attempt model-checks a full candidate model, so
/// per-attempt polling is cheap relative to the work it bounds).
/// `max_minimize_attempts: Some(n)` performs exactly `n` attempts.
pub fn semantic_minimize_governed(
    problem: &mut SynthesisProblem,
    model: FtKripke,
    gov: &Governor,
) -> Result<(FtKripke, Vec<StateId>, MinimizeProfile), MinimizeAbort> {
    minimize_core(problem, model, Some(gov))
}

fn minimize_core(
    problem: &mut SynthesisProblem,
    model: FtKripke,
    gov: Option<&Governor>,
) -> Result<(FtKripke, Vec<StateId>, MinimizeProfile), MinimizeAbort> {
    let mut profile = MinimizeProfile::default();
    let mut model = model;
    let mut total_map: Vec<StateId> = model.state_ids().collect();
    'outer: loop {
        // Group state ids by (valuation, normality). Merging a normal
        // with a non-normal copy would enlarge the fault-free reachable
        // region — correct, but it would lose the paper's Section 6.2
        // observation that recovery transitions generate no new states
        // under normal operation — so merges stay within a class.
        // Groups are kept in first-occurrence (state-id) order: iterating
        // a `HashMap<(PropSet, bool), _>` here was the pipeline's last
        // source of run-to-run nondeterminism (the greedy merge order
        // changed, and with it the final state count — 85 vs 86 on
        // mutex3-failstop).
        let roles = model.classify();
        let mut group_index: HashMap<(PropSet, bool), usize> = HashMap::new();
        let mut groups: Vec<Vec<StateId>> = Vec::new();
        for s in model.state_ids() {
            let normal = roles[s.index()] == ftsyn_kripke::StateRole::Normal;
            let key = (model.state(s).props.clone(), normal);
            let gi = *group_index.entry(key).or_insert_with(|| {
                groups.push(Vec::new());
                groups.len() - 1
            });
            groups[gi].push(s);
        }
        let mut candidates: Vec<(StateId, StateId)> = Vec::new();
        for members in &groups {
            for (i, &a) in members.iter().enumerate() {
                for &b in &members[i + 1..] {
                    candidates.push((b, a)); // merge later copy into earlier
                }
            }
        }
        for (from, into) in candidates {
            if let Some(g) = gov {
                if let Err(reason) = g
                    .check_minimize_attempts(profile.attempts)
                    .and_then(|()| g.check_realtime())
                {
                    return Err(MinimizeAbort { reason, profile });
                }
            }
            let (cand, step_map) = merged(&model, from, into);
            profile.attempts += 1;
            // Early-exit verdict: same predicates as `verify_semantic`,
            // but a rejected candidate stops at its first violation.
            if verify_semantic_ok(problem, &cand) {
                profile.merges += 1;
                model = cand;
                for t in total_map.iter_mut() {
                    *t = step_map[t.index()];
                }
                continue 'outer;
            }
        }
        break;
    }
    Ok((model, total_map, profile))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::mutex;
    use crate::synthesize;
    use crate::verify::verify_semantic;
    use ftsyn_kripke::TransKind;

    #[test]
    fn merged_redirects_edges() {
        use ftsyn_kripke::State;
        let mut m = FtKripke::new();
        let mk = |bits: &[u32]| {
            State::new(PropSet::from_iter_with_capacity(
                4,
                bits.iter().map(|&b| ftsyn_ctl::PropId(b)),
            ))
        };
        let a = m.push_state(mk(&[0]));
        let b1 = m.push_state(mk(&[1]));
        let b2 = m.push_state(mk(&[1]));
        m.add_init(a);
        m.add_edge(a, TransKind::Proc(0), b1);
        m.add_edge(b1, TransKind::Proc(0), b2);
        m.add_edge(b2, TransKind::Proc(0), a);
        let (out, mapping) = merged(&m, b2, b1);
        assert_eq!(out.len(), 2);
        assert_eq!(mapping.len(), 3);
        assert_eq!(mapping[1], mapping[2], "b2 merged into b1");
        // b1 now has a self-loop (the b1→b2 edge redirected).
        let nb1 = out
            .state_ids()
            .find(|&s| out.state(s).props.contains(ftsyn_ctl::PropId(1)))
            .unwrap();
        assert!(out.succ(nb1).iter().any(|e| e.to == nb1));
    }

    #[test]
    fn minimization_keeps_the_model_correct_and_small() {
        let mut problem = mutex::with_fail_stop(2, crate::Tolerance::Masking);
        let solved = synthesize(&mut problem).unwrap_solved();
        // synthesize already minimizes; minimizing again is a fixpoint.
        let before = solved.model.len();
        let (again, mapping, profile) =
            semantic_minimize_profiled(&mut problem, solved.model.clone());
        assert_eq!(again.len(), before, "minimization is a fixpoint");
        assert_eq!(mapping.len(), before);
        assert!(verify_semantic(&mut problem, &again).ok());
        // On a fixpoint every candidate is tried once and rejected.
        assert_eq!(profile.merges, 0, "no merge survives on a fixpoint");
        assert!(profile.attempts > 0, "candidates were actually tried");
    }

    /// Minimization stays verification-guarded: the synthesized model is
    /// a greedy fixpoint, so *every* remaining same-(valuation, role)
    /// merge candidate must fail the semantic verification — none was
    /// left unmerged for any reason other than the guard rejecting it.
    /// Vacuity is ruled out by requiring that such candidates exist: the
    /// guard is load-bearing, not idle.
    #[test]
    fn every_remaining_merge_candidate_is_semantically_invalid() {
        let mut problem = mutex::with_fail_stop(2, crate::Tolerance::Masking);
        let solved = synthesize(&mut problem).unwrap_solved();
        let model = &solved.model;
        let roles = model.classify();
        let ids: Vec<_> = model.state_ids().collect();
        let mut candidates = 0;
        for (i, &a) in ids.iter().enumerate() {
            for &b in &ids[i + 1..] {
                // Same candidate classes as the minimizer: valuation
                // plus the Normal/non-Normal split.
                let normal =
                    |s: StateId| roles[s.index()] == ftsyn_kripke::StateRole::Normal;
                if model.state(a).props != model.state(b).props || normal(a) != normal(b) {
                    continue;
                }
                candidates += 1;
                let (cand, _) = merged(model, b, a);
                assert!(
                    !verify_semantic(&mut problem, &cand).ok(),
                    "merging {b:?} into {a:?} passes verification, so \
                     minimization should have taken it"
                );
            }
        }
        assert!(
            candidates > 0,
            "no same-valuation candidate pairs left — the guard was never exercised"
        );
    }
}
