//! Semantic model minimization.
//!
//! The bisimulation quotient (crate `ftsyn-kripke`) collapses copies
//! with *identical* behavior, but the unraveling also produces copies
//! of a valuation whose behaviors differ in ways the specification does
//! not care about (e.g. a recovery copy whose label carries `AF AG
//! global` instead of the full normal label). This pass greedily merges
//! pairs of states with the same valuation and keeps a merge exactly
//! when the resulting model still satisfies the requirements of the
//! synthesis problem statement (Section 3). The result is a smaller
//! correct model, typically with far fewer disambiguating shared
//! variables, matching the paper's hand-drawn figures much more
//! closely.
//!
//! # Engine
//!
//! The naive engine (kept as [`semantic_minimize_reference`] behind the
//! `slow-reference` feature) re-labels the *entire* candidate model for
//! every candidate merge — a full CTL fixpoint pass over every formula
//! of the requirement closure, tens of thousands of times. That made
//! minimization ~90% of end-to-end synthesis wall-clock. This engine
//! commits the **same merge sequence** (verified bit-for-bit by the
//! conformance layer) through three levers:
//!
//! 1. **Incremental re-verification.** Each greedy round labels the
//!    accepted base model once ([`RoundCtx`]) and keeps the per-state
//!    satisfaction vectors. Per candidate, a *transfer calculus*
//!    ([`Transfer`]) proves most requirement conjuncts on the candidate
//!    directly from the base labeling (merging only redirects edges
//!    into the surviving state, so truths whose witnessing structure is
//!    preserved carry over). Requirements it cannot transfer are
//!    decided from the base labeling when the needed state lies outside
//!    the merge's *dirty region* ([`dirty_region`]), and only the
//!    leftovers pay for exact evaluation on the candidate — restricted
//!    to the few "dirty" conjuncts, not the whole closure.
//! 2. **Parallel candidate verification.** Candidates of a round are
//!    independent, so they fan out over
//!    [`ftsyn_tableau::earliest_success`], which commits the
//!    lowest-index success at every thread count — the exact candidate
//!    the sequential greedy scan would take.
//! 3. **Candidate pruning.** Fault-closure violations are detected from
//!    a per-round signature scan ([`RoundCtx::uncovered`]) in O(1) per
//!    candidate, rejecting provably unmergeable pairs without building
//!    the candidate.
//!
//! Transfers only ever prove *satisfaction*; every rejection comes from
//! an exact evaluation (base labeling lookup outside the dirty region,
//! or a model-checker run on the candidate). Hence the accept/reject
//! verdict per candidate — and with it the greedy merge sequence and
//! the final model — is identical to the reference engine's.

use crate::problem::SynthesisProblem;
use crate::verify::semantics_of;
use ftsyn_ctl::{Formula, FormulaArena, FormulaId};
use ftsyn_guarded::FaultAction;
use ftsyn_kripke::{
    Checker, FtKripke, LabelCache, PropSet, Semantics, StateId, StateRole, TransKind,
};
use ftsyn_tableau::{earliest_success, AbortReason, Governor};
use std::collections::HashMap;

/// Work counters of one [`semantic_minimize`] run. Minimization
/// dominates the pipeline on the larger instances, so the counters
/// that explain the wall-clock — how many candidates were tried, how
/// each was decided, how many survived — are first-class measurements,
/// surfaced in `SynthesisStats` and the bench JSON.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MinimizeProfile {
    /// Candidate merges decided (accepted or rejected). The greedy scan
    /// order is fixed, so this count is identical at every thread count.
    pub attempts: usize,
    /// Candidate merges accepted. Each accepted merge removes one state
    /// and restarts the greedy scan.
    pub merges: usize,
    /// Full labelings of an accepted base model (one per greedy round).
    /// The reference engine instead pays one full labeling per attempt.
    pub base_labelings: usize,
    /// Attempts that needed at least one exact formula evaluation on
    /// the whole candidate model (the expensive path; evaluation is
    /// still restricted to the dirty requirement conjuncts).
    pub full_checks: usize,
    /// Attempts decided purely from the base-model labeling: every
    /// requirement either transferred onto the candidate or was read
    /// off the cache outside the merge's dirty region.
    pub incremental_relabels: usize,
    /// Attempts rejected by the fault-closure signature prune without
    /// building a candidate model.
    pub pruned_candidates: usize,
    /// Work chunks claimed by parallel candidate scans (zero when the
    /// scan runs on one thread). Not deterministic across thread counts.
    pub parallel_batches: usize,
    /// Chunks executed off their round-robin home worker — the scan
    /// analogue of a work steal. Not deterministic across thread counts.
    pub parallel_steals: usize,
    /// Candidates tested beyond the committed one by speculating
    /// parallel workers. Their verdicts carry no decision weight and
    /// are excluded from every deterministic counter.
    pub speculative_attempts: usize,
    /// Thread count the run was configured with.
    pub threads: usize,
}

impl MinimizeProfile {
    /// The counters guaranteed to be bit-identical across thread counts
    /// (in declaration order: attempts, merges, base labelings, full
    /// checks, incremental relabels, pruned candidates). The conformance
    /// thread-matrix tests compare exactly this slice.
    pub fn deterministic_counters(&self) -> [usize; 6] {
        [
            self.attempts,
            self.merges,
            self.base_labelings,
            self.full_checks,
            self.incremental_relabels,
            self.pruned_candidates,
        ]
    }

    fn count(&mut self, kind: Kind) {
        match kind {
            Kind::Pruned => self.pruned_candidates += 1,
            Kind::Incremental => self.incremental_relabels += 1,
            Kind::Full => self.full_checks += 1,
        }
    }
}

/// Returns a copy of `m` with state `from` merged into state `into`
/// (edges redirected, `from` removed), plus the old→new state mapping.
///
/// State ids are dense, so the mapping is pure arithmetic: states above
/// `from` shift down by one, `from` maps to `into`'s image. Output
/// states, edges, and initial states are emitted in the same order as
/// the reference engine's map-based construction, so the produced
/// structure is byte-identical to its output.
fn merged(m: &FtKripke, from: StateId, into: StateId) -> (FtKripke, Vec<StateId>) {
    m.merged(from, into)
}

/// The base-model preimage of candidate state `c` when `c` is not the
/// merged state (whose preimages are `from` *and* `into`).
fn preimage(c: StateId, from: StateId) -> StateId {
    if c.0 < from.0 {
        c
    } else {
        StateId(c.0 + 1)
    }
}

/// One conjunct of the synthesis requirements, pre-analyzed for the
/// candidate decision procedure.
enum Req {
    /// `AG h` (encoded `A[false W h]`). `AG` distributes over `∧`, so
    /// the conjuncts of `h` are checked individually: conjuncts the
    /// transfer calculus proves to hold everywhere on the candidate
    /// need no evaluation at all.
    Ag {
        /// The `A[false W h]` formula itself (cached on the base model).
        whole: FormulaId,
        /// The conjuncts of `h`.
        parts: Vec<FormulaId>,
    },
    /// Any other requirement — checked as one formula.
    Plain {
        /// The requirement formula.
        whole: FormulaId,
    },
}

impl Req {
    fn of(arena: &FormulaArena, f: FormulaId) -> Req {
        if let Formula::Aw(g, h) = arena.get(f) {
            if arena.get(g) == Formula::False {
                return Req::Ag {
                    whole: f,
                    parts: arena.conjuncts(h),
                };
            }
        }
        Req::Plain { whole: f }
    }
}

/// The requirements of the synthesis problem statement, decomposed once
/// per run. Building this performs every formula-arena mutation up
/// front, so the arena is immutable (and thread-shareable) for the rest
/// of the run.
struct Requirements {
    semantics: Semantics,
    /// Conjuncts of the temporal specification, checked at the initial
    /// state.
    spec: Vec<Req>,
    /// Requirements of each distinct tolerance, checked at perturbed
    /// states.
    tol_reqs: Vec<Vec<Req>>,
    /// Fault action index → index into `tol_reqs`.
    tol_of_action: Vec<usize>,
    /// All whole requirement formulae, labeled on each accepted model.
    roots: Vec<FormulaId>,
    num_props: usize,
}

impl Requirements {
    fn new(problem: &mut SynthesisProblem) -> Requirements {
        let semantics = semantics_of(problem.mode);
        let spec_formula = problem.spec.formula(&mut problem.arena);
        let distinct = problem.tolerance.distinct();
        let mut roots = vec![spec_formula];
        let mut tol_reqs = Vec::new();
        for &tol in &distinct {
            let fs = problem.label_tol_formulas(tol);
            roots.extend(fs.iter().copied());
            tol_reqs.push(fs.iter().map(|&f| Req::of(&problem.arena, f)).collect());
        }
        let tol_of_action = (0..problem.faults.len())
            .map(|i| {
                let t = problem.tolerance.of(i);
                distinct.iter().position(|&d| d == t).expect("distinct() covers every action")
            })
            .collect();
        let spec = problem
            .arena
            .conjuncts(spec_formula)
            .into_iter()
            .map(|c| Req::of(&problem.arena, c))
            .collect();
        Requirements {
            semantics,
            spec,
            tol_reqs,
            tol_of_action,
            roots,
            num_props: problem.props.len(),
        }
    }
}

/// Shared read-only inputs of one minimization run.
struct Env<'a> {
    arena: &'a FormulaArena,
    faults: &'a [FaultAction],
    reqs: &'a Requirements,
}

/// Per-round context: the full CTL labeling of the current accepted
/// model plus derived facts the per-candidate decision procedure reads.
struct RoundCtx {
    /// Satisfaction vectors of every requirement formula and all of its
    /// subformulae on the base model.
    cache: LabelCache,
    /// Dense by formula id: whether the cached vector is all-true.
    all_true: Vec<bool>,
    /// Whether every base state has a path successor (merging never
    /// removes successors, so this carries to every candidate).
    no_dead_ends: bool,
    /// Base states missing a fault transition for some enabled outcome.
    /// Empty on fault-closed models, which makes the per-candidate
    /// closure check O(1).
    uncovered: Vec<StateId>,
    /// Dense by base state: reachability including fault transitions.
    /// When a candidate merges two states of equal reachability, the
    /// reachable set — and with it every state's role — carries over to
    /// the candidate verbatim (see [`decide_on`]).
    reach: Vec<bool>,
    /// The perturbed base states with the distinct tolerance indices of
    /// the fault actions reaching each — the obligation sites every
    /// candidate inherits, computed once per round instead of
    /// re-classifying every candidate.
    perturbed: Vec<(StateId, Vec<usize>)>,
}

fn whether_covered(model: &FtKripke, s: StateId, ai: usize, phi: &PropSet) -> bool {
    model
        .succ(s)
        .iter()
        .any(|e| e.kind == TransKind::Fault(ai) && model.state(e.to).props == *phi)
}

fn uncovered_states(faults: &[FaultAction], num_props: usize, model: &FtKripke) -> Vec<StateId> {
    let mut out = Vec::new();
    'states: for s in model.state_ids() {
        let valuation = &model.state(s).props;
        for (ai, action) in faults.iter().enumerate() {
            if !action.enabled(valuation) {
                continue;
            }
            for phi in action.outcomes(valuation, num_props) {
                if !whether_covered(model, s, ai, &phi) {
                    out.push(s);
                    continue 'states;
                }
            }
        }
    }
    out
}

/// Reachability over all transitions, faults included — the same set
/// [`FtKripke::classify`] computes internally.
fn reachable_with_faults(model: &FtKripke) -> Vec<bool> {
    let mut seen = vec![false; model.len()];
    let mut stack: Vec<StateId> = Vec::new();
    for &i in model.init_states() {
        if !seen[i.index()] {
            seen[i.index()] = true;
            stack.push(i);
        }
    }
    while let Some(s) = stack.pop() {
        for e in model.succ(s) {
            if !seen[e.to.index()] {
                seen[e.to.index()] = true;
                stack.push(e.to);
            }
        }
    }
    seen
}

fn round_ctx(env: &Env<'_>, model: &FtKripke, roles: &[StateRole]) -> RoundCtx {
    let mut ck = Checker::new(model, env.reqs.semantics);
    for &r in &env.reqs.roots {
        ck.eval(env.arena, r);
    }
    let no_dead_ends = ck.dead_end_free();
    let cache = ck.into_cache();
    let mut all_true = vec![false; env.arena.len()];
    for f in cache.formulas() {
        all_true[f.index()] = cache.all_true(f);
    }
    let mut perturbed = Vec::new();
    for s in model.state_ids() {
        if roles[s.index()] != StateRole::Perturbed {
            continue;
        }
        let mut tols: Vec<usize> = Vec::new();
        for e in model.pred(s) {
            if let TransKind::Fault(a) = e.kind {
                let t = env.reqs.tol_of_action[a];
                if !tols.contains(&t) {
                    tols.push(t);
                }
            }
        }
        perturbed.push((s, tols));
    }
    RoundCtx {
        cache,
        all_true,
        no_dead_ends,
        uncovered: uncovered_states(env.faults, env.reqs.num_props, model),
        reach: reachable_with_faults(model),
        perturbed,
    }
}

/// Exact fault-closure verdict for the candidate `merged(model, from,
/// into)` from base-model signatures alone.
///
/// Merging preserves every state's valuation and every fault edge's
/// target valuation, so a state other than `from`/`into` is closed in
/// the candidate iff it is closed in the base; the merged state is
/// closed iff each enabled outcome is covered by `from` *or* `into`
/// (its successor set is the union of theirs). The O(1) fast path:
/// `RoundCtx::uncovered` is empty — every candidate is closed.
fn closure_ok(
    env: &Env<'_>,
    round: &RoundCtx,
    model: &FtKripke,
    from: StateId,
    into: StateId,
) -> bool {
    let mut pair_uncovered = false;
    for &s in &round.uncovered {
        if s == from || s == into {
            pair_uncovered = true;
        } else {
            return false;
        }
    }
    if pair_uncovered {
        let valuation = &model.state(into).props;
        for (ai, action) in env.faults.iter().enumerate() {
            if !action.enabled(valuation) {
                continue;
            }
            for phi in action.outcomes(valuation, env.reqs.num_props) {
                if !whether_covered(model, from, ai, &phi)
                    && !whether_covered(model, into, ai, &phi)
                {
                    return false;
                }
            }
        }
    }
    true
}

/// The transfer calculus: sound per-formula proofs that base-model
/// truths survive the merge `q : base → cand` (where `q` collapses
/// `from`/`into` and is the identity elsewhere).
///
/// * `pt(f)` — *pointwise transfer*: `base, s ⊨ f` implies
///   `cand, q(s) ⊨ f` for **every** state `s`. Sound because every base
///   transition maps to a candidate transition of the same kind with
///   valuation-identical endpoints; only universal path/next operators
///   can be invalidated (the merged state may gain successors), so
///   `AU`/`AW` never transfer pointwise and `AXᵢ` transfers only when
///   `from` and `into` agree on it (then the merged state's obligation
///   set is the union of two sets that both satisfied it).
/// * `skip(f)` — `cand, c ⊨ f` for **every** candidate state `c`.
///   Every candidate state is the image of a base state with the same
///   valuation, so base-wide truths (`all_true`) combine with `pt` of
///   the subformulae; `h`-everywhere makes any until/unless of `h`
///   hold everywhere outright.
///
/// Both memoize densely by formula id; hash-consing guarantees children
/// have smaller ids, so recursion terminates and `skip(f)` never
/// re-enters `pt(f)` on the same id.
///
/// Neither direction can *refute*: a `false` answer means "not proven",
/// and the caller falls through to an exact check. `E[gWh]`
/// additionally needs the base to be dead-end free: its witness may be
/// a finite maximal path whose image could become extendable, but on a
/// dead-end-free base every witness fullpath is infinite and maps to an
/// infinite candidate fullpath.
struct Transfer<'a> {
    arena: &'a FormulaArena,
    round: &'a RoundCtx,
    from: StateId,
    into: StateId,
    pt_memo: Vec<i8>,
    skip_memo: Vec<i8>,
}

impl<'a> Transfer<'a> {
    fn new(arena: &'a FormulaArena, round: &'a RoundCtx, from: StateId, into: StateId) -> Self {
        Transfer {
            arena,
            round,
            from,
            into,
            pt_memo: vec![-1; arena.len()],
            skip_memo: vec![-1; arena.len()],
        }
    }

    fn all_true(&self, f: FormulaId) -> bool {
        self.round.all_true[f.index()]
    }

    fn pt(&mut self, f: FormulaId) -> bool {
        let m = self.pt_memo[f.index()];
        if m >= 0 {
            return m == 1;
        }
        let structural = match self.arena.get(f) {
            Formula::True | Formula::False | Formula::Prop(_) | Formula::NegProp(_) => true,
            Formula::And(a, b) | Formula::Or(a, b) => self.pt(a) && self.pt(b),
            Formula::Ex(_, g) => self.pt(g),
            Formula::Ax(_, g) => {
                // The merged state's AXᵢ obligations are the union of
                // from's and into's; transfer needs both to agree.
                let bf = self.round.cache.holds(f, self.from);
                let bi = self.round.cache.holds(f, self.into);
                bf.is_some() && bf == bi && self.pt(g)
            }
            Formula::Eu(g, h) => self.pt(g) && self.pt(h),
            Formula::Ew(g, h) => self.round.no_dead_ends && self.pt(g) && self.pt(h),
            Formula::Au(_, _) | Formula::Aw(_, _) => false,
        };
        let v = structural || self.skip(f);
        self.pt_memo[f.index()] = i8::from(v);
        v
    }

    fn skip(&mut self, f: FormulaId) -> bool {
        let m = self.skip_memo[f.index()];
        if m >= 0 {
            return m == 1;
        }
        let v = match self.arena.get(f) {
            Formula::True => true,
            Formula::False => false,
            Formula::Prop(_) | Formula::NegProp(_) => self.all_true(f),
            Formula::And(a, b) => {
                (self.skip(a) && self.skip(b))
                    || (self.all_true(f) && self.pt(a) && self.pt(b))
            }
            Formula::Or(a, b) => {
                self.skip(a)
                    || self.skip(b)
                    || (self.all_true(f) && self.pt(a) && self.pt(b))
            }
            Formula::Ax(_, g) | Formula::Ex(_, g) => {
                self.all_true(f) && (self.skip(g) || self.pt(g))
            }
            Formula::Au(_, h) | Formula::Aw(_, h) => self.skip(h),
            Formula::Eu(g, h) => {
                self.skip(h) || (self.all_true(f) && self.pt(g) && self.pt(h))
            }
            Formula::Ew(g, h) => {
                self.skip(h)
                    || (self.all_true(f)
                        && self.round.no_dead_ends
                        && self.pt(g)
                        && self.pt(h))
            }
        };
        self.skip_memo[f.index()] = i8::from(v);
        v
    }

}

/// How a candidate's verdict was reached (profiled per attempt).
#[derive(Clone, Copy, Debug)]
enum Kind {
    Pruned,
    Incremental,
    Full,
}

/// Per-candidate verdict plus its cost class. Deliberately tiny: the
/// parallel scan retains one per tested candidate, and the winning
/// candidate's model is rebuilt (cheaply) after the scan commits.
#[derive(Clone, Copy, Debug)]
struct Decision {
    ok: bool,
    kind: Kind,
}

/// Bounded backward closure of the merged state over path-relevant
/// edges of the candidate — the *dirty region*: the only states whose
/// labeling can differ from the base model's. A state outside it cannot
/// reach the merged state, so its path-relevant forward subgraph is
/// valuation- and edge-isomorphic to its preimage's, and every formula
/// keeps its base value there verbatim. Under `⊨ₙ` fault edges are
/// invisible to every operator, so only fault-free edges propagate
/// dirtiness. Returns `None` when the region escapes a quarter of the
/// candidate — the incremental lookup only pays off when the merge's
/// influence is local, and the caller falls back to the full check.
fn dirty_region(cand: &FtKripke, semantics: Semantics, seed: StateId) -> Option<Vec<bool>> {
    // The constant cap bounds the cost of a futile expansion (strongly
    // connected protocol graphs escape every bound); the verdict stays a
    // pure function of the candidate, hence thread-count independent.
    let bound = (cand.len() / 4).clamp(2, 64);
    let include_faults = semantics == Semantics::IncludeFaults;
    let mut in_region = vec![false; cand.len()];
    in_region[seed.index()] = true;
    let mut count = 1usize;
    let mut stack = vec![seed];
    while let Some(t) = stack.pop() {
        for e in cand.pred(t) {
            if !include_faults && e.kind.is_fault() {
                continue;
            }
            let s = e.to; // source
            if !in_region[s.index()] {
                in_region[s.index()] = true;
                count += 1;
                if count > bound {
                    return None;
                }
                stack.push(s);
            }
        }
    }
    Some(in_region)
}

/// Decides one candidate merge: the exact `verify_semantic` verdict on
/// `merged(model, from, into)`, computed through the cheap paths first.
fn decide(
    env: &Env<'_>,
    model: &FtKripke,
    round: &RoundCtx,
    from: StateId,
    into: StateId,
) -> Decision {
    // Lever 3: signature prune (exact, no candidate build).
    if !closure_ok(env, round, model, from, into) {
        return Decision {
            ok: false,
            kind: Kind::Pruned,
        };
    }

    // The candidate structure is needed for role classification (which
    // states are perturbed) and for any exact evaluation. It is built
    // into a per-worker scratch buffer: candidate construction runs
    // once per attempt, so it must not pay per-state allocations.
    thread_local! {
        static SCRATCH: std::cell::RefCell<(FtKripke, Vec<StateId>)> =
            std::cell::RefCell::new((FtKripke::new(), Vec::new()));
    }
    SCRATCH.with(|scratch| {
        let mut guard = scratch.borrow_mut();
        let (cand, step_map) = &mut *guard;
        model.merge_into(from, into, cand, step_map);
        decide_on(env, round, from, into, cand)
    })
}

/// State-independent resolution of one requirement against one
/// candidate, computed once per distinct requirement formula per
/// candidate (the same requirement recurs at every perturbed state).
enum ReqRes {
    /// The transfer calculus proves the requirement on every candidate
    /// state — no obligation anywhere.
    Discharged,
    /// Transfers pointwise: discharged wherever the base labeling holds
    /// at the obligation state's preimage(s).
    Pt,
    /// Needs exact evaluation at each obligation state.
    OpenPlain,
    /// `AG` requirement with undischarged conjuncts: index into the
    /// candidate's open-`AG` groups.
    OpenAg(usize),
}

fn decide_on(
    env: &Env<'_>,
    round: &RoundCtx,
    from: StateId,
    into: StateId,
    cand: &FtKripke,
) -> Decision {
    let merged_state = StateId(into.0 - u32::from(into.0 > from.0));
    let init_c = cand.init_states()[0];
    let mut tr = Transfer::new(env.arena, round, from, into);

    // Requirement obligations: spec conjuncts at the initial state,
    // tolerance labels at each perturbed state (per the tolerances of
    // the fault actions reaching it) — exactly `verify_semantic`'s
    // predicate set. The transfer calculus discharges most of them; the
    // rest stay open, grouped by requirement so the state-independent
    // work (skip/pt proofs, the dirty-conjunct split) runs once per
    // requirement instead of once per obligation.
    let mut open_plain: Vec<(FormulaId, StateId)> = Vec::new();
    // Open `AG` groups: (dirty conjuncts, obligation states).
    let mut ag_open: Vec<(FormulaId, Vec<FormulaId>, Vec<StateId>)> = Vec::new();
    let mut res_memo: HashMap<FormulaId, ReqRes> = HashMap::new();
    let mut add = |tr: &mut Transfer<'_>,
                   open_plain: &mut Vec<(FormulaId, StateId)>,
                   ag_open: &mut Vec<(FormulaId, Vec<FormulaId>, Vec<StateId>)>,
                   r: &Req,
                   c: StateId| {
        let whole = match r {
            Req::Plain { whole } | Req::Ag { whole, .. } => *whole,
        };
        let res = res_memo.entry(whole).or_insert_with(|| match r {
            Req::Plain { whole } => {
                if tr.skip(*whole) {
                    ReqRes::Discharged
                } else if tr.pt(*whole) {
                    ReqRes::Pt
                } else {
                    ReqRes::OpenPlain
                }
            }
            Req::Ag { whole, parts } => {
                // `pt(A[false W h]) = skip(A[false W h])` (no structural
                // rule), so `skip` is the whole transfer story here.
                if tr.skip(*whole) {
                    ReqRes::Discharged
                } else {
                    // AG distributes over ∧: conjuncts that hold
                    // everywhere on the candidate are discharged; the
                    // rest are dirty.
                    let dirty: Vec<FormulaId> =
                        parts.iter().copied().filter(|&p| !tr.skip(p)).collect();
                    if dirty.is_empty() {
                        ReqRes::Discharged
                    } else {
                        ag_open.push((*whole, dirty, Vec::new()));
                        ReqRes::OpenAg(ag_open.len() - 1)
                    }
                }
            }
        });
        match res {
            ReqRes::Discharged => {}
            ReqRes::Pt => {
                let proven = if c == merged_state {
                    round.cache.holds(whole, from) == Some(true)
                        || round.cache.holds(whole, into) == Some(true)
                } else {
                    round.cache.holds(whole, preimage(c, from)) == Some(true)
                };
                if !proven {
                    open_plain.push((whole, c));
                }
            }
            ReqRes::OpenPlain => open_plain.push((whole, c)),
            ReqRes::OpenAg(i) => ag_open[*i].2.push(c),
        }
    };
    for r in &env.reqs.spec {
        add(&mut tr, &mut open_plain, &mut ag_open, r, init_c);
    }
    // Obligation sites. When `from` and `into` have equal reachability,
    // merging preserves the reachable set exactly (a candidate path
    // lifts to a base path segment-wise; crossing the merged state
    // lands on `from` or `into`, and equal reachability lets the lift
    // continue from either), and — since candidates merge within a
    // (valuation, normality) class — the fault-free-reachable set too.
    // Fault predecessors map through the quotient with their sources'
    // reachability intact, so every non-merged state keeps its role
    // verbatim and the merged state is perturbed iff either preimage
    // is, with the union of their tolerance obligations. The round's
    // precomputed site list therefore *is* the candidate's. Unequal
    // reachability (rare: the pair's class spans reachable and
    // unreachable states) falls back to classifying the candidate.
    if round.reach[from.index()] == round.reach[into.index()] {
        let mut merged_tols: Vec<usize> = Vec::new();
        for (s, tols) in &round.perturbed {
            if *s == from || *s == into {
                for &t in tols {
                    if !merged_tols.contains(&t) {
                        merged_tols.push(t);
                    }
                }
                continue;
            }
            let c = StateId(s.0 - u32::from(s.0 > from.0));
            for &t in tols {
                for r in &env.reqs.tol_reqs[t] {
                    add(&mut tr, &mut open_plain, &mut ag_open, r, c);
                }
            }
        }
        for &t in &merged_tols {
            for r in &env.reqs.tol_reqs[t] {
                add(&mut tr, &mut open_plain, &mut ag_open, r, merged_state);
            }
        }
    } else {
        let roles = cand.classify();
        for s in cand.state_ids() {
            if roles[s.index()] != StateRole::Perturbed {
                continue;
            }
            let mut tols: Vec<usize> = Vec::new();
            for e in cand.pred(s) {
                if let TransKind::Fault(a) = e.kind {
                    let t = env.reqs.tol_of_action[a];
                    if !tols.contains(&t) {
                        tols.push(t);
                    }
                }
            }
            for t in tols {
                for r in &env.reqs.tol_reqs[t] {
                    add(&mut tr, &mut open_plain, &mut ag_open, r, s);
                }
            }
        }
    }
    if open_plain.is_empty() && ag_open.iter().all(|g| g.2.is_empty()) {
        return Decision {
            ok: true,
            kind: Kind::Incremental,
        };
    }

    // Lever 1b: needed states outside the dirty region keep their base
    // labeling verbatim — an exact (possibly rejecting) lookup. The
    // merged state seeds the region, so an outside state has a unique
    // preimage.
    if let Some(region) = dirty_region(cand, env.reqs.semantics, merged_state) {
        let mut reject = false;
        let mut filter = |whole: FormulaId, c: StateId| -> bool {
            if region[c.index()] {
                return true;
            }
            match round.cache.holds(whole, preimage(c, from)) {
                Some(true) => false,
                Some(false) => {
                    reject = true;
                    true
                }
                // Safety net — requirement roots are always cached.
                None => true,
            }
        };
        open_plain.retain(|&(whole, c)| filter(whole, c));
        for (whole, _, sites) in &mut ag_open {
            let w = *whole;
            sites.retain(|&c| filter(w, c));
        }
        if reject {
            return Decision {
                ok: false,
                kind: Kind::Incremental,
            };
        }
        if open_plain.is_empty() && ag_open.iter().all(|g| g.2.is_empty()) {
            return Decision {
                ok: true,
                kind: Kind::Incremental,
            };
        }
    }

    // Full fallback: exact evaluation on the candidate, restricted to
    // the open obligations. Dirty AG conjuncts share one `AG part`
    // vector across requirements and obligation states, and are tried
    // killers-first: conjuncts that rejected recent candidates are
    // evaluated before ones that always pass. The scores live in
    // worker-thread-local storage and only order the conjuncts of a
    // conjunction, so they steer cost, never the verdict — the decision
    // and its cost class stay bit-identical at every thread count.
    thread_local! {
        static KILLS: std::cell::RefCell<HashMap<FormulaId, u32>> =
            std::cell::RefCell::new(HashMap::new());
    }
    let mut ck = Checker::new(cand, env.reqs.semantics);
    let mut ag_memo: HashMap<FormulaId, Vec<bool>> = HashMap::new();
    let verdict = KILLS.with(|kills| {
        let mut kills = kills.borrow_mut();
        for (_, parts, sites) in &mut ag_open {
            if sites.is_empty() {
                continue;
            }
            parts.sort_by_key(|p| {
                (std::cmp::Reverse(kills.get(p).copied().unwrap_or(0)), p.index())
            });
            for &p in parts.iter() {
                let ag = ag_memo.entry(p).or_insert_with(|| {
                    let vp = ck.eval(env.arena, p).clone();
                    ck.ag_of(&vp)
                });
                if sites.iter().any(|&c| !ag[c.index()]) {
                    *kills.entry(p).or_insert(0) += 1;
                    return false;
                }
            }
        }
        open_plain.iter().all(|&(whole, c)| ck.holds(env.arena, whole, c))
    });
    Decision {
        ok: verdict,
        kind: Kind::Full,
    }
}

/// Greedily merges same-valuation states while the model keeps passing
/// the semantic verification. Returns the minimized model together with
/// the mapping from the input model's state ids to the output's.
pub fn semantic_minimize(
    problem: &mut SynthesisProblem,
    model: FtKripke,
) -> (FtKripke, Vec<StateId>) {
    let (model, map, _) = semantic_minimize_profiled(problem, model);
    (model, map)
}

/// [`semantic_minimize`] plus the [`MinimizeProfile`] work counters of
/// the run (same model, same mapping — the profile is observational).
pub fn semantic_minimize_profiled(
    problem: &mut SynthesisProblem,
    model: FtKripke,
) -> (FtKripke, Vec<StateId>, MinimizeProfile) {
    semantic_minimize_with_threads(problem, model, 1)
}

/// [`semantic_minimize_profiled`] with candidate verification fanned
/// out over `threads` worker threads. The committed merge sequence —
/// and therefore the minimized model, the mapping, and every
/// deterministic profile counter — is bit-identical at every thread
/// count (see [`MinimizeProfile::deterministic_counters`]).
pub fn semantic_minimize_with_threads(
    problem: &mut SynthesisProblem,
    model: FtKripke,
    threads: usize,
) -> (FtKripke, Vec<StateId>, MinimizeProfile) {
    minimize_core(problem, model, threads, None)
        .unwrap_or_else(|a| panic!("ungoverned minimize aborted: {}", a.reason))
}

/// Partial results of a governed minimization that exceeded its budget.
#[derive(Clone, Debug)]
pub struct MinimizeAbort {
    /// Which limit tripped.
    pub reason: AbortReason,
    /// Attempts/merges performed up to the abort point.
    pub profile: MinimizeProfile,
}

/// [`semantic_minimize_with_threads`] under a [`Governor`]: the attempt
/// cap bounds each round's candidate scan so that exactly `cap`
/// candidates are decided in scan order before the abort — bit-identical
/// counters at every thread count — and the deadline/cancel flag is
/// polled before every candidate verification.
/// `max_minimize_attempts: Some(n)` performs exactly `n` attempts.
pub fn semantic_minimize_governed(
    problem: &mut SynthesisProblem,
    model: FtKripke,
    threads: usize,
    gov: &Governor,
) -> Result<(FtKripke, Vec<StateId>, MinimizeProfile), MinimizeAbort> {
    minimize_core(problem, model, threads, Some(gov))
}

fn minimize_core(
    problem: &mut SynthesisProblem,
    model: FtKripke,
    threads: usize,
    gov: Option<&Governor>,
) -> Result<(FtKripke, Vec<StateId>, MinimizeProfile), MinimizeAbort> {
    let threads = threads.max(1);
    let mut profile = MinimizeProfile {
        threads,
        ..MinimizeProfile::default()
    };
    // All arena mutations happen here; afterwards the problem is only
    // read, so candidate workers can share it.
    let reqs = Requirements::new(problem);
    let env = Env {
        arena: &problem.arena,
        faults: &problem.faults,
        reqs: &reqs,
    };
    let mut model = model;
    let mut total_map: Vec<StateId> = model.state_ids().collect();
    'outer: loop {
        // Group state ids by (valuation, normality). Merging a normal
        // with a non-normal copy would enlarge the fault-free reachable
        // region — correct, but it would lose the paper's Section 6.2
        // observation that recovery transitions generate no new states
        // under normal operation — so merges stay within a class.
        // Groups are kept in first-occurrence (state-id) order: iterating
        // a `HashMap<(PropSet, bool), _>` here was the pipeline's last
        // source of run-to-run nondeterminism (the greedy merge order
        // changed, and with it the final state count — 85 vs 86 on
        // mutex3-failstop).
        let roles = model.classify();
        let mut group_index: HashMap<(PropSet, bool), usize> = HashMap::new();
        let mut groups: Vec<Vec<StateId>> = Vec::new();
        for s in model.state_ids() {
            let normal = roles[s.index()] == StateRole::Normal;
            let key = (model.state(s).props.clone(), normal);
            let gi = *group_index.entry(key).or_insert_with(|| {
                groups.push(Vec::new());
                groups.len() - 1
            });
            groups[gi].push(s);
        }
        let mut candidates: Vec<(StateId, StateId)> = Vec::new();
        for members in &groups {
            for (i, &a) in members.iter().enumerate() {
                for &b in &members[i + 1..] {
                    candidates.push((b, a)); // merge later copy into earlier
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        if let Some(g) = gov {
            if let Err(reason) = g.check_minimize_attempts(profile.attempts) {
                return Err(MinimizeAbort { reason, profile });
            }
        }
        // One labeling of the accepted model serves the whole round;
        // the grouping's role vector doubles as its obligation map.
        let round = round_ctx(&env, &model, &roles);
        profile.base_labelings += 1;
        // The attempt cap bounds the scan length, so the round decides
        // exactly the candidates the cap admits, in scan order.
        let allowance = gov
            .and_then(|g| g.budget().max_minimize_attempts)
            .map_or(usize::MAX, |cap| cap - profile.attempts);
        let n_scan = candidates.len().min(allowance);
        // Lever 2: fan the candidate verdicts out; the committed index
        // is the lowest passing one at every thread count.
        let scan = earliest_success(n_scan, threads, |i| {
            if let Some(g) = gov {
                g.check_realtime()?;
            }
            let (from, into) = candidates[i];
            let d = decide(&env, &model, &round, from, into);
            Ok((d.ok, d))
        });
        let (found, outcomes, stats) = match scan {
            Ok(r) => r,
            Err(reason) => return Err(MinimizeAbort { reason, profile }),
        };
        if threads > 1 {
            profile.parallel_batches += stats.batches;
            profile.parallel_steals += stats.steals;
        }
        match found {
            Some(j) => {
                // Deterministic accounting: only the committed prefix
                // counts; speculative verdicts are tallied separately.
                profile.attempts += j + 1;
                profile.speculative_attempts += stats.tested - (j + 1);
                for d in outcomes.iter().take(j + 1).flatten() {
                    profile.count(d.kind);
                }
                profile.merges += 1;
                let (from, into) = candidates[j];
                let (next, step_map) = merged(&model, from, into);
                model = next;
                for t in total_map.iter_mut() {
                    *t = step_map[t.index()];
                }
                continue 'outer;
            }
            None => {
                profile.attempts += n_scan;
                for d in outcomes.iter().flatten() {
                    profile.count(d.kind);
                }
                if n_scan < candidates.len() {
                    // The cap cut the scan short with candidates left:
                    // the reference engine aborts here too, with the
                    // same attempt count.
                    let cap = gov
                        .and_then(|g| g.budget().max_minimize_attempts)
                        .expect("scan only shortened by the attempt cap");
                    return Err(MinimizeAbort {
                        reason: AbortReason::MinimizeAttemptCapExceeded {
                            cap,
                            reached: profile.attempts,
                        },
                        profile,
                    });
                }
                break;
            }
        }
    }
    Ok((model, total_map, profile))
}

/// The pre-optimization greedy engine, kept verbatim as the oracle the
/// fast engine is byte-compared against (conformance `minimize` suite;
/// enabled for tests and under the `slow-reference` feature). One full
/// semantic verification per candidate merge.
#[cfg(any(test, feature = "slow-reference"))]
mod reference {
    use super::{MinimizeAbort, MinimizeProfile};
    use crate::problem::SynthesisProblem;
    use crate::verify::verify_semantic_ok;
    use ftsyn_kripke::{FtKripke, PropSet, StateId};
    use ftsyn_tableau::Governor;
    use std::collections::HashMap;

    pub(super) fn merged(
        m: &FtKripke,
        from: StateId,
        into: StateId,
    ) -> (FtKripke, Vec<StateId>) {
        let mut out = FtKripke::new();
        // Old id -> new id (from maps to into's new id).
        let mut map: HashMap<StateId, StateId> = HashMap::new();
        for s in m.state_ids() {
            if s == from {
                continue;
            }
            let n = out.push_state(m.state(s).clone());
            map.insert(s, n);
        }
        map.insert(from, map[&into]);
        for s in m.state_ids() {
            let ns = map[&s];
            for e in m.succ(s) {
                out.add_edge(ns, e.kind, map[&e.to]);
            }
        }
        for &i in m.init_states() {
            out.add_init(map[&i]);
        }
        let mapping = m.state_ids().map(|s| map[&s]).collect();
        (out, mapping)
    }

    /// Reference form of [`super::semantic_minimize_profiled`]: same
    /// model, same mapping, same attempts/merges counters, one full
    /// candidate verification per attempt.
    pub fn semantic_minimize_reference(
        problem: &mut SynthesisProblem,
        model: FtKripke,
    ) -> (FtKripke, Vec<StateId>, MinimizeProfile) {
        minimize_core(problem, model, None)
            .unwrap_or_else(|a| panic!("ungoverned minimize aborted: {}", a.reason))
    }

    /// Reference form of [`super::semantic_minimize_governed`]
    /// (single-threaded; the attempt cap and the deadline/cancel flag
    /// are polled before every candidate verification).
    pub fn semantic_minimize_reference_governed(
        problem: &mut SynthesisProblem,
        model: FtKripke,
        gov: &Governor,
    ) -> Result<(FtKripke, Vec<StateId>, MinimizeProfile), MinimizeAbort> {
        minimize_core(problem, model, Some(gov))
    }

    fn minimize_core(
        problem: &mut SynthesisProblem,
        model: FtKripke,
        gov: Option<&Governor>,
    ) -> Result<(FtKripke, Vec<StateId>, MinimizeProfile), MinimizeAbort> {
        let mut profile = MinimizeProfile {
            threads: 1,
            ..MinimizeProfile::default()
        };
        let mut model = model;
        let mut total_map: Vec<StateId> = model.state_ids().collect();
        'outer: loop {
            let roles = model.classify();
            let mut group_index: HashMap<(PropSet, bool), usize> = HashMap::new();
            let mut groups: Vec<Vec<StateId>> = Vec::new();
            for s in model.state_ids() {
                let normal = roles[s.index()] == ftsyn_kripke::StateRole::Normal;
                let key = (model.state(s).props.clone(), normal);
                let gi = *group_index.entry(key).or_insert_with(|| {
                    groups.push(Vec::new());
                    groups.len() - 1
                });
                groups[gi].push(s);
            }
            let mut candidates: Vec<(StateId, StateId)> = Vec::new();
            for members in &groups {
                for (i, &a) in members.iter().enumerate() {
                    for &b in &members[i + 1..] {
                        candidates.push((b, a)); // merge later copy into earlier
                    }
                }
            }
            for (from, into) in candidates {
                if let Some(g) = gov {
                    if let Err(reason) = g
                        .check_minimize_attempts(profile.attempts)
                        .and_then(|()| g.check_realtime())
                    {
                        return Err(MinimizeAbort { reason, profile });
                    }
                }
                let (cand, step_map) = merged(&model, from, into);
                profile.attempts += 1;
                // Early-exit verdict: same predicates as `verify_semantic`,
                // but a rejected candidate stops at its first violation.
                if verify_semantic_ok(problem, &cand) {
                    profile.merges += 1;
                    model = cand;
                    for t in total_map.iter_mut() {
                        *t = step_map[t.index()];
                    }
                    continue 'outer;
                }
            }
            break;
        }
        Ok((model, total_map, profile))
    }
}

#[cfg(any(test, feature = "slow-reference"))]
pub use reference::{semantic_minimize_reference, semantic_minimize_reference_governed};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::mutex;
    use crate::synthesize;
    use crate::unravel::unravel_mode;
    use crate::verify::verify_semantic;
    use ftsyn_ctl::Closure;
    use ftsyn_kripke::TransKind;
    use ftsyn_tableau::{apply_deletion_rules_mode, build, Budget, FaultSpec};

    /// Structural identity of two models, id-for-id: states (valuations
    /// and shared variables), edges in insertion order, and initial
    /// states. `FtKripke` has no `PartialEq`; the Debug rendering of
    /// these components is a faithful fingerprint.
    fn fingerprint(m: &FtKripke) -> String {
        let states: Vec<_> = m.state_ids().map(|s| m.state(s)).collect();
        let succ: Vec<_> = m.state_ids().map(|s| m.succ(s)).collect();
        format!("{:?}|{states:?}|{succ:?}", m.init_states())
    }

    /// Replicates the pipeline up to the pre-minimization model (the
    /// input `semantic_minimize` sees during synthesis).
    fn pre_minimization_model(problem: &mut SynthesisProblem) -> FtKripke {
        let roots = problem.closure_roots();
        let spec_formula = roots[0];
        let closure = Closure::build(&mut problem.arena, &problem.props, &roots);
        let fault_spec = FaultSpec {
            actions: problem.faults.clone(),
            tolerance_labels: problem.tolerance_label_sets(&closure),
        };
        let mut root_label = closure.empty_label();
        root_label.insert(closure.index_of(spec_formula).unwrap());
        let mut tableau = build(&closure, &problem.props, root_label, &fault_spec);
        apply_deletion_rules_mode(&mut tableau, &closure, problem.mode);
        assert!(tableau.alive(tableau.root()), "problem is synthesizable");
        let c0 = tableau
            .alive_succ(tableau.root(), |_| true)
            .map(|(_, c)| c)
            .next()
            .expect("alive root has an alive AND child");
        unravel_mode(&tableau, &closure, &problem.props, c0, problem.mode).model
    }

    #[test]
    fn merged_redirects_edges() {
        use ftsyn_kripke::State;
        let mut m = FtKripke::new();
        let mk = |bits: &[u32]| {
            State::new(PropSet::from_iter_with_capacity(
                4,
                bits.iter().map(|&b| ftsyn_ctl::PropId(b)),
            ))
        };
        let a = m.push_state(mk(&[0]));
        let b1 = m.push_state(mk(&[1]));
        let b2 = m.push_state(mk(&[1]));
        m.add_init(a);
        m.add_edge(a, TransKind::Proc(0), b1);
        m.add_edge(b1, TransKind::Proc(0), b2);
        m.add_edge(b2, TransKind::Proc(0), a);
        let (out, mapping) = merged(&m, b2, b1);
        assert_eq!(out.len(), 2);
        assert_eq!(mapping.len(), 3);
        assert_eq!(mapping[1], mapping[2], "b2 merged into b1");
        // b1 now has a self-loop (the b1→b2 edge redirected).
        let nb1 = out
            .state_ids()
            .find(|&s| out.state(s).props.contains(ftsyn_ctl::PropId(1)))
            .unwrap();
        assert!(out.succ(nb1).iter().any(|e| e.to == nb1));
    }

    /// The arithmetic `merged` must be byte-identical to the reference
    /// engine's map-based construction — on every candidate pair of a
    /// real pipeline model, not just a toy.
    #[test]
    fn fast_merged_is_byte_identical_to_reference_merged() {
        let mut problem = mutex::with_fail_stop(2, crate::Tolerance::Masking);
        let model = pre_minimization_model(&mut problem);
        let ids: Vec<StateId> = model.state_ids().collect();
        let mut pairs = 0;
        for (i, &a) in ids.iter().enumerate() {
            for &b in ids.iter().skip(i + 1).take(3) {
                let (fast, fast_map) = merged(&model, b, a);
                let (slow, slow_map) = reference::merged(&model, b, a);
                assert_eq!(fingerprint(&fast), fingerprint(&slow), "{b:?}->{a:?}");
                assert_eq!(fast_map, slow_map, "{b:?}->{a:?}");
                pairs += 1;
            }
        }
        assert!(pairs > 10, "enough pairs exercised: {pairs}");
    }

    #[test]
    fn minimization_keeps_the_model_correct_and_small() {
        let mut problem = mutex::with_fail_stop(2, crate::Tolerance::Masking);
        let solved = synthesize(&mut problem).unwrap_solved();
        // synthesize already minimizes; minimizing again is a fixpoint.
        let before = solved.model.len();
        let (again, mapping, profile) =
            semantic_minimize_profiled(&mut problem, solved.model.clone());
        assert_eq!(again.len(), before, "minimization is a fixpoint");
        assert_eq!(mapping.len(), before);
        assert!(verify_semantic(&mut problem, &again).ok());
        // On a fixpoint every candidate is tried once and rejected.
        assert_eq!(profile.merges, 0, "no merge survives on a fixpoint");
        assert!(profile.attempts > 0, "candidates were actually tried");
        // Every attempt is classified by exactly one decision path.
        assert_eq!(
            profile.pruned_candidates + profile.incremental_relabels + profile.full_checks,
            profile.attempts,
            "decision-path counters partition the attempts: {profile:?}"
        );
    }

    /// Minimization stays verification-guarded: the synthesized model is
    /// a greedy fixpoint, so *every* remaining same-(valuation, role)
    /// merge candidate must fail the semantic verification — none was
    /// left unmerged for any reason other than the guard rejecting it.
    /// Vacuity is ruled out by requiring that such candidates exist: the
    /// guard is load-bearing, not idle.
    #[test]
    fn every_remaining_merge_candidate_is_semantically_invalid() {
        let mut problem = mutex::with_fail_stop(2, crate::Tolerance::Masking);
        let solved = synthesize(&mut problem).unwrap_solved();
        let model = &solved.model;
        let roles = model.classify();
        let ids: Vec<_> = model.state_ids().collect();
        let mut candidates = 0;
        for (i, &a) in ids.iter().enumerate() {
            for &b in &ids[i + 1..] {
                // Same candidate classes as the minimizer: valuation
                // plus the Normal/non-Normal split.
                let normal =
                    |s: StateId| roles[s.index()] == ftsyn_kripke::StateRole::Normal;
                if model.state(a).props != model.state(b).props || normal(a) != normal(b) {
                    continue;
                }
                candidates += 1;
                let (cand, _) = merged(model, b, a);
                assert!(
                    !verify_semantic(&mut problem, &cand).ok(),
                    "merging {b:?} into {a:?} passes verification, so \
                     minimization should have taken it"
                );
            }
        }
        assert!(
            candidates > 0,
            "no same-valuation candidate pairs left — the guard was never exercised"
        );
    }

    /// The heart of the PR's correctness claim: on real pipeline models
    /// the fast engine commits the same merge sequence as the reference
    /// engine — byte-identical minimized model, identical mapping,
    /// identical attempt/merge counts — at 1, 2, and 8 threads.
    #[test]
    fn engine_matches_reference_on_pipeline_models() {
        type ProblemMaker = fn() -> SynthesisProblem;
        let problems: Vec<(&str, ProblemMaker)> = vec![
            ("mutex2-failstop", || {
                mutex::with_fail_stop(2, crate::Tolerance::Masking)
            }),
            ("mutex2-nonmasking", || {
                mutex::with_fail_stop(2, crate::Tolerance::Nonmasking)
            }),
            ("phil3", || mutex::dining_philosophers(3)),
        ];
        for (name, mk) in problems {
            let mut problem = mk();
            let pre = pre_minimization_model(&mut problem);
            let (ref_model, ref_map, ref_profile) =
                semantic_minimize_reference(&mut problem, pre.clone());
            let ref_fp = fingerprint(&ref_model);
            for threads in [1, 2, 8] {
                let mut problem = mk();
                // Re-derive the same formulas on the fresh problem.
                let _ = pre_minimization_model(&mut problem);
                let (model, map, profile) =
                    semantic_minimize_with_threads(&mut problem, pre.clone(), threads);
                assert_eq!(
                    fingerprint(&model),
                    ref_fp,
                    "{name}: model diverges at {threads} threads"
                );
                assert_eq!(map, ref_map, "{name}: mapping diverges at {threads} threads");
                assert_eq!(
                    profile.attempts, ref_profile.attempts,
                    "{name}: attempts diverge at {threads} threads"
                );
                assert_eq!(
                    profile.merges, ref_profile.merges,
                    "{name}: merges diverge at {threads} threads"
                );
                assert_eq!(
                    profile.pruned_candidates
                        + profile.incremental_relabels
                        + profile.full_checks,
                    profile.attempts,
                    "{name}: decision-path counters partition the attempts"
                );
            }
        }
    }

    /// Deterministic counters must not depend on the thread count even
    /// though speculation does: pin the exact slice the conformance
    /// layer compares.
    #[test]
    fn deterministic_counters_agree_across_thread_counts() {
        let mut problem = mutex::with_fail_stop(2, crate::Tolerance::Masking);
        let pre = pre_minimization_model(&mut problem);
        let (_, _, base) = semantic_minimize_with_threads(&mut problem, pre.clone(), 1);
        for threads in [2, 8] {
            let mut problem = mutex::with_fail_stop(2, crate::Tolerance::Masking);
            let _ = pre_minimization_model(&mut problem);
            let (_, _, p) = semantic_minimize_with_threads(&mut problem, pre.clone(), threads);
            assert_eq!(
                p.deterministic_counters(),
                base.deterministic_counters(),
                "threads={threads}"
            );
            assert_eq!(p.threads, threads);
        }
        assert_eq!(base.parallel_batches, 0, "sequential scans claim no chunks");
        assert_eq!(base.speculative_attempts, 0, "sequential scans never speculate");
    }

    /// Governed runs abort at the same point as the reference engine:
    /// same partial merge count, exactly `cap` attempts, at every
    /// thread count (the governor determinism contract).
    #[test]
    fn governed_cap_abort_matches_reference() {
        let mk = || mutex::with_fail_stop(2, crate::Tolerance::Masking);
        let mut problem = mk();
        let pre = pre_minimization_model(&mut problem);
        // Uncapped attempt count, to pick caps on both sides of rounds.
        let (_, _, full) = semantic_minimize_reference(&mut mk(), pre.clone());
        assert!(full.attempts > 4, "fixture large enough: {full:?}");
        for cap in [1, 3, full.attempts - 1] {
            let gov = ftsyn_tableau::Governor::with_budget(Budget {
                max_minimize_attempts: Some(cap),
                ..Budget::default()
            });
            let ref_abort = semantic_minimize_reference_governed(&mut mk(), pre.clone(), &gov)
                .expect_err("cap below total attempts must abort");
            for threads in [1, 2, 8] {
                let gov = ftsyn_tableau::Governor::with_budget(Budget {
                    max_minimize_attempts: Some(cap),
                    ..Budget::default()
                });
                let abort =
                    semantic_minimize_governed(&mut mk(), pre.clone(), threads, &gov)
                        .expect_err("cap below total attempts must abort");
                assert_eq!(
                    format!("{}", abort.reason),
                    format!("{}", ref_abort.reason),
                    "cap={cap} threads={threads}"
                );
                assert_eq!(
                    abort.profile.attempts, ref_abort.profile.attempts,
                    "cap={cap} threads={threads}"
                );
                assert_eq!(abort.profile.attempts, cap, "cap is exact");
                assert_eq!(
                    abort.profile.merges, ref_abort.profile.merges,
                    "cap={cap} threads={threads}"
                );
            }
        }
        // A cap at or above the total attempt count never trips.
        let gov = ftsyn_tableau::Governor::with_budget(Budget {
            max_minimize_attempts: Some(full.attempts),
            ..Budget::default()
        });
        let (_, _, p) = semantic_minimize_governed(&mut mk(), pre, 2, &gov)
            .expect("exact cap admits the full run");
        assert_eq!(p.attempts, full.attempts);
        assert_eq!(p.merges, full.merges);
    }
}
