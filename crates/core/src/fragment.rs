//! Fragment construction (step 3 of the synthesis method, Section 5.2).
//!
//! For every AND-node `c` of the pruned tableau `T_F`, `FFRAG[c]` is a
//! finite acyclic prestructure of AND-node copies rooted at a copy of
//! `c`, in which every eventuality of `L(c)` is fault-free-fulfilled
//! (Proposition 7.1.7). It is built by chaining the per-eventuality
//! `FDAG`s extracted from the fulfillment rank certificates, and finally
//! attaching one successor per fault-successor OR-node of every interior
//! node (step 3(c)) — these fault successors join the fragment frontier.

use ftsyn_ctl::{Closure, ClosureIdx, EntryKind, LabelSet};
use ftsyn_tableau::{au_fulfillment, eu_fulfillment, CertMode, EdgeKind, Fulfillment, NodeId, Tableau};
use std::collections::HashMap;

/// Cache of fulfillment certificates, keyed by eventuality closure
/// index. A certificate is a whole-tableau rank computation that
/// depends only on the pruned tableau, the eventuality, and the
/// certificate mode — never on the fragment being built — so one
/// unraveling shares certificates across every embedded fragment
/// instead of recomputing them per fragment per eventuality.
#[derive(Default)]
pub(crate) struct FulfillmentCache {
    by_ev: HashMap<ClosureIdx, Fulfillment>,
}

/// A node of a fragment: a copy of a tableau AND-node.
#[derive(Clone, Debug)]
pub struct FragNode {
    /// The AND-node this is a copy of.
    pub tableau_id: NodeId,
    /// Outgoing edges within the fragment.
    pub succ: Vec<(EdgeKind, usize)>,
    /// Whether this copy is on the fragment frontier (to be identified
    /// with another fragment's root during unraveling).
    pub frontier: bool,
}

/// An acyclic prestructure rooted at a copy of one AND-node.
#[derive(Clone, Debug)]
pub struct Fragment {
    /// Index of the root node (always 0 in practice, never a frontier).
    pub root: usize,
    /// The nodes.
    pub nodes: Vec<FragNode>,
}

impl Fragment {
    /// Indices of the frontier nodes.
    pub fn frontier(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.frontier)
            .map(|(i, _)| i)
            .collect()
    }
}

/// The eventualities (`AU`/`EU` closure indices) in a label.
pub fn eventualities_in(closure: &Closure, label: &LabelSet) -> Vec<ClosureIdx> {
    label
        .iter()
        .filter(|&idx| closure.is_eventuality(idx))
        .collect()
}

struct Builder<'a> {
    t: &'a Tableau,
    closure: &'a Closure,
    mode: CertMode,
    nodes: Vec<FragNode>,
}

impl Builder<'_> {
    fn new_node(&mut self, c: NodeId, frontier: bool) -> usize {
        self.nodes.push(FragNode {
            tableau_id: c,
            succ: Vec::new(),
            frontier,
        });
        self.nodes.len() - 1
    }

    fn label(&self, c: NodeId) -> &LabelSet {
        &self.t.node(c).label
    }

    /// Picks the alive AND-child of OR-node `d` with minimum rank under
    /// `rank`, breaking ties toward the smallest label (fewer pending
    /// obligations → more node reuse → smaller models).
    fn pick_child(&self, d: NodeId, rank: &[u32]) -> NodeId {
        self.t
            .alive_succ(d, |_| true)
            .map(|(_, c)| c)
            .min_by_key(|c| (rank[c.index()], self.t.node(*c).label.len()))
            .expect("alive OR-nodes have alive children (DeleteOR)")
    }

    /// Picks the alive AND-child with the smallest label (used where no
    /// eventuality rank applies).
    fn pick_small_child(&self, d: NodeId) -> NodeId {
        self.t
            .alive_succ(d, |_| true)
            .map(|(_, c)| c)
            .min_by_key(|c| self.t.node(*c).label.len())
            .expect("alive OR-nodes have alive children (DeleteOR)")
    }

    /// Expands node `at` (a copy of an AND-node) into an `A[gUh]`-FDAG:
    /// every non-fault OR-successor is included, each realized by its
    /// minimum-rank child; recursion bottoms out at `h`-labeled copies,
    /// which stay on the frontier.
    fn expand_au(
        &mut self,
        at: usize,
        memo: &mut HashMap<NodeId, usize>,
        g: ClosureIdx,
        h: ClosureIdx,
        rank: &[u32],
    ) {
        let c = self.nodes[at].tableau_id;
        if self.label(c).contains(h) {
            return; // fulfilled here: frontier status unchanged
        }
        debug_assert!(
            g == self.closure.true_idx() || self.label(c).contains(g),
            "interior nodes of an AU certificate carry g"
        );
        self.nodes[at].frontier = false;
        let mode = self.mode;
        let succs: Vec<(EdgeKind, NodeId)> =
            self.t.alive_succ(c, move |k| mode.admits(k)).collect();
        for (kind, d) in succs {
            debug_assert!(
                kind != EdgeKind::Dummy,
                "nodes with a pending AU have nexttime obligations, never a dummy"
            );
            let child = self.pick_child(d, rank);
            let ci = if let Some(&i) = memo.get(&child) {
                i
            } else {
                let i = self.new_node(child, true);
                memo.insert(child, i);
                self.expand_au(i, memo, g, h, rank);
                i
            };
            if !self.nodes[at].succ.contains(&(kind, ci)) {
                self.nodes[at].succ.push((kind, ci));
            }
        }
    }

    /// Expands node `at` into an `E[gUh]`-FDAG: the rank-decreasing path
    /// realizes the eventuality; every other OR-successor is realized by
    /// an arbitrary child left on the frontier (interior nodes of a
    /// generated prestructure must carry all their `Tiles` successors).
    fn expand_eu(&mut self, at: usize, g: ClosureIdx, h: ClosureIdx, rank: &[u32]) {
        let c = self.nodes[at].tableau_id;
        if self.label(c).contains(h) {
            return;
        }
        debug_assert!(g == self.closure.true_idx() || self.label(c).contains(g));
        self.nodes[at].frontier = false;
        let mode = self.mode;
        let succs: Vec<(EdgeKind, NodeId)> =
            self.t.alive_succ(c, move |k| mode.admits(k)).collect();
        // Choose the OR-successor whose best child has minimum rank.
        let (best_d, best_child) = succs
            .iter()
            .map(|&(_, d)| (d, self.pick_child(d, rank)))
            .min_by_key(|(_, c2)| rank[c2.index()])
            .expect("EU-pending nodes have non-fault successors");
        for (kind, d) in succs {
            if d == best_d {
                let i = self.new_node(best_child, true);
                self.nodes[at].succ.push((kind, i));
                self.expand_eu(i, g, h, rank);
            } else {
                let child = self.pick_child(d, rank);
                let i = self.new_node(child, true);
                self.nodes[at].succ.push((kind, i));
            }
        }
    }

    /// Gives `at` one successor per non-fault OR-successor of its
    /// tableau node (the no-eventualities base case of step 3).
    fn expand_tiles(&mut self, at: usize) {
        let c = self.nodes[at].tableau_id;
        self.nodes[at].frontier = false;
        let mode = self.mode;
        let succs: Vec<(EdgeKind, NodeId)> =
            self.t.alive_succ(c, move |k| mode.admits(k) && !k.is_fault()).collect();
        let mut by_child: HashMap<NodeId, usize> = HashMap::new();
        for (kind, d) in succs {
            if kind == EdgeKind::Dummy {
                // A dummy successor realizes no obligation: the state is
                // a dead end of the model (finite fullpath).
                continue;
            }
            let child = self.pick_small_child(d);
            let ci = *by_child
                .entry(child)
                .or_insert_with(|| self.nodes.len());
            if ci == self.nodes.len() {
                self.new_node(child, true);
            }
            if !self.nodes[at].succ.contains(&(kind, ci)) {
                self.nodes[at].succ.push((kind, ci));
            }
        }
    }
}

/// Merges frontier nodes that are copies of the same tableau node
/// (the paper's "identify any two nodes on the frontier with the same
/// label" — labels are unique per AND-node).
fn merge_frontier(frag: &mut [FragNode]) {
    let mut canon: HashMap<NodeId, usize> = HashMap::new();
    let mut remap: HashMap<usize, usize> = HashMap::new();
    for (i, n) in frag.iter().enumerate() {
        if n.frontier {
            match canon.get(&n.tableau_id) {
                Some(&c) => {
                    remap.insert(i, c);
                }
                None => {
                    canon.insert(n.tableau_id, i);
                }
            }
        }
    }
    if remap.is_empty() {
        return;
    }
    for n in frag.iter_mut() {
        for (_, to) in n.succ.iter_mut() {
            if let Some(&c) = remap.get(to) {
                *to = c;
            }
        }
    }
    // Orphaned duplicates remain in the vector but are unreachable; they
    // are skipped during unraveling (no incoming edges, not the root).
}

/// Builds `FFRAG[c]` for an alive AND-node `c` of the pruned tableau.
///
/// # Panics
///
/// Panics if `c` is deleted, or if a deletion-rule invariant is violated
/// (an eventuality in an alive label that is not fulfillable).
pub fn build_ffrag(t: &Tableau, closure: &Closure, c: NodeId) -> Fragment {
    build_ffrag_mode(t, closure, c, CertMode::FaultFree)
}

/// [`build_ffrag`] with an explicit certificate mode (Section 8.3's
/// alternative method uses [`CertMode::FaultProne`], whose certificates
/// already include fault successors).
pub fn build_ffrag_mode(t: &Tableau, closure: &Closure, c: NodeId, mode: CertMode) -> Fragment {
    build_ffrag_cached(t, closure, c, mode, &mut FulfillmentCache::default())
}

/// [`build_ffrag_mode`] sharing fulfillment certificates across calls
/// (the unraveling embeds hundreds of fragments against one tableau).
pub(crate) fn build_ffrag_cached(
    t: &Tableau,
    closure: &Closure,
    c: NodeId,
    mode: CertMode,
    cache: &mut FulfillmentCache,
) -> Fragment {
    assert!(t.alive(c), "fragments are built for alive nodes only");
    let mut b = Builder {
        t,
        closure,
        mode,
        nodes: Vec::new(),
    };
    // The root starts out *frontier-eligible*: when an eventuality is
    // already fulfilled at the root (`h ∈ L(c)`, a trivial FDAG), the
    // root must remain available as an attachment point for the
    // remaining eventualities — exactly as in the paper, where the
    // frontier of a trivial FFRAG_1 is the root itself.
    let root = b.new_node(c, true);
    let evs = eventualities_in(closure, &t.node(c).label);

    if let Some(&first) = evs.first() {
        apply_ev(&mut b, root, first, cache);
        for &ev in &evs[1..] {
            merge_frontier(&mut b.nodes);
            let frontier: Vec<usize> = b
                .nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| n.frontier && t.node(n.tableau_id).label.contains(ev))
                .map(|(i, _)| i)
                .collect();
            for s in frontier {
                apply_ev(&mut b, s, ev, cache);
            }
        }
        merge_frontier(&mut b.nodes);
    }
    // The root is the fragment's own state, never an identification
    // point for the unraveling.
    b.nodes[root].frontier = false;

    // Root must realize its nexttime obligations even when all its
    // eventualities were fulfilled immediately (rank 0 everywhere).
    if b.nodes[root].succ.is_empty() {
        b.expand_tiles(root);
    }

    // Step 3(c): fault successors for every interior node (and the
    // root). Under FaultProne certificates a node's fault edges may
    // already be present (the FDAGs included them); only the missing
    // ones are attached.
    let interior: Vec<usize> = b
        .nodes
        .iter()
        .enumerate()
        .filter(|(i, n)| !n.frontier || *i == root)
        .map(|(i, _)| i)
        .collect();
    for at in interior {
        let cid = b.nodes[at].tableau_id;
        let fault_succs: Vec<(EdgeKind, NodeId)> =
            t.alive_succ(cid, EdgeKind::is_fault).collect();
        for (kind, d) in fault_succs {
            let already = b.nodes[at].succ.iter().any(|&(k, _)| k == kind);
            if already {
                continue;
            }
            let child = b.pick_small_child(d);
            let i = b.new_node(child, true);
            b.nodes[at].succ.push((kind, i));
        }
    }
    merge_frontier(&mut b.nodes);

    Fragment {
        root,
        nodes: b.nodes,
    }
}

fn apply_ev(b: &mut Builder<'_>, at: usize, ev: ClosureIdx, cache: &mut FulfillmentCache) {
    match b.closure.entry(ev).kind {
        EntryKind::Au { g, h, .. } => {
            let f = cache
                .by_ev
                .entry(ev)
                .or_insert_with(|| au_fulfillment(b.t, b.closure, g, h, b.mode));
            assert!(
                f.is_fulfilled(b.nodes[at].tableau_id),
                "DeleteAU guarantees fulfillment of alive labels"
            );
            let mut memo = HashMap::new();
            memo.insert(b.nodes[at].tableau_id, at);
            b.expand_au(at, &mut memo, g, h, &f.rank);
        }
        EntryKind::Eu { g, h, .. } => {
            let f = cache
                .by_ev
                .entry(ev)
                .or_insert_with(|| eu_fulfillment(b.t, b.closure, g, h, b.mode));
            assert!(
                f.is_fulfilled(b.nodes[at].tableau_id),
                "DeleteEU guarantees fulfillment of alive labels"
            );
            b.expand_eu(at, g, h, &f.rank);
        }
        _ => unreachable!("eventualities_in yields only AU/EU"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsyn_ctl::{parse::parse, FormulaArena, Owner, PropTable};
    use ftsyn_tableau::{apply_deletion_rules, build as build_tableau, FaultSpec};

    fn tf(spec: &str) -> (Tableau, Closure) {
        let mut props = PropTable::new();
        props.add("p", Owner::Process(0)).unwrap();
        props.add("q", Owner::Process(0)).unwrap();
        let mut arena = FormulaArena::new(1);
        let f = parse(&mut arena, &mut props, spec, true).unwrap();
        let cl = Closure::build(&mut arena, &props, &[f]);
        let mut root = cl.empty_label();
        root.insert(cl.index_of(f).unwrap());
        let mut t = build_tableau(&cl, &props, root, &FaultSpec::none());
        apply_deletion_rules(&mut t, &cl);
        (t, cl)
    }

    fn first_and(t: &Tableau) -> NodeId {
        t.alive_succ(t.root(), |_| true)
            .map(|(_, c)| c)
            .next()
            .expect("root has AND children")
    }

    fn assert_acyclic(frag: &Fragment) {
        // DFS with colors.
        #[derive(Clone, Copy, PartialEq)]
        enum C {
            White,
            Grey,
            Black,
        }
        fn visit(frag: &Fragment, i: usize, col: &mut Vec<C>) {
            col[i] = C::Grey;
            for &(_, j) in &frag.nodes[i].succ {
                match col[j] {
                    C::Grey => panic!("fragment has a cycle through node {j}"),
                    C::White => visit(frag, j, col),
                    C::Black => {}
                }
            }
            col[i] = C::Black;
        }
        let mut col = vec![C::White; frag.nodes.len()];
        visit(frag, frag.root, &mut col);
    }

    #[test]
    fn no_eventualities_fragment_has_tile_children() {
        let (t, cl) = tf("p & AG EX1 p");
        let c = first_and(&t);
        let frag = build_ffrag(&t, &cl, c);
        assert!(!frag.nodes[frag.root].succ.is_empty());
        assert!(!frag.nodes[frag.root].frontier);
        assert_acyclic(&frag);
        for &(_, i) in &frag.nodes[frag.root].succ {
            assert!(frag.nodes[i].frontier);
        }
    }

    #[test]
    fn au_fragment_fulfills_on_all_paths() {
        let (t, cl) = tf("~p & AF p & AG EX1 true");
        let c = first_and(&t);
        let frag = build_ffrag(&t, &cl, c);
        assert_acyclic(&frag);
        // Every maximal path from the root must reach a node whose label
        // contains p (the fulfillment of AF p).
        let p_lit = {
            // find some literal index: the closure was built over props
            // p/q, so look at labels directly via a recursive walk.
            fn reaches_p(
                frag: &Fragment,
                t: &Tableau,
                cl: &Closure,
                i: usize,
                seen: &mut Vec<bool>,
            ) -> bool {
                let label = &t.node(frag.nodes[i].tableau_id).label;
                let has_p = label.iter().any(|idx| {
                    matches!(
                        cl.entry(idx).kind,
                        EntryKind::Lit { positive: true, .. }
                    )
                });
                if has_p {
                    return true;
                }
                if seen[i] {
                    return false;
                }
                seen[i] = true;
                let succ: Vec<usize> = frag.nodes[i]
                    .succ
                    .iter()
                    .filter(|(k, _)| !k.is_fault())
                    .map(|&(_, j)| j)
                    .collect();
                !succ.is_empty() && succ.iter().all(|&j| reaches_p(frag, t, cl, j, seen))
            }
            let mut seen = vec![false; frag.nodes.len()];
            reaches_p(&frag, &t, &cl, frag.root, &mut seen)
        };
        assert!(p_lit, "AF p must be fulfilled on all fragment paths");
    }

    #[test]
    fn eu_fragment_has_a_fulfilling_path() {
        let (t, cl) = tf("~p & EF p & AG EX1 true");
        let c = first_and(&t);
        let frag = build_ffrag(&t, &cl, c);
        assert_acyclic(&frag);
        fn some_path_reaches_p(
            frag: &Fragment,
            t: &Tableau,
            cl: &Closure,
            i: usize,
            depth: usize,
        ) -> bool {
            if depth > frag.nodes.len() {
                return false;
            }
            let label = &t.node(frag.nodes[i].tableau_id).label;
            let has_p = label.iter().any(|idx| {
                matches!(cl.entry(idx).kind, EntryKind::Lit { positive: true, .. })
            });
            if has_p {
                return true;
            }
            frag.nodes[i]
                .succ
                .iter()
                .filter(|(k, _)| !k.is_fault())
                .any(|&(_, j)| some_path_reaches_p(frag, t, cl, j, depth + 1))
        }
        assert!(some_path_reaches_p(&frag, &t, &cl, frag.root, 0));
    }

    #[test]
    fn frontier_nodes_have_no_program_successors() {
        let (t, cl) = tf("~p & AF p & AG EX1 true");
        let c = first_and(&t);
        let frag = build_ffrag(&t, &cl, c);
        for n in &frag.nodes {
            if n.frontier {
                assert!(
                    n.succ.is_empty(),
                    "frontier nodes carry no edges until unraveling"
                );
            }
        }
    }

    #[test]
    fn all_eventualities_chained() {
        // Two eventualities at once: AF p and AF q.
        let (t, cl) = tf("~p & ~q & AF p & AF q & AG EX1 true");
        let c = first_and(&t);
        let evs = eventualities_in(&cl, &t.node(c).label);
        assert_eq!(evs.len(), 2);
        let frag = build_ffrag(&t, &cl, c);
        assert_acyclic(&frag);
        assert!(frag.nodes.len() >= 3);
    }
}
