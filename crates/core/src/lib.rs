//! `ftsyn` — synthesis of fault-tolerant concurrent programs from CTL
//! specifications.
//!
//! A from-scratch implementation of
//!
//! > P. C. Attie, A. Arora, E. A. Emerson.
//! > *Synthesis of Fault-Tolerant Concurrent Programs.*
//! > ACM TOPLAS 26(1):125–185, 2004 (PODC 1998).
//!
//! Given a problem specification (CTL), a fault specification (guarded
//! commands that perturb the state), a problem-fault coupling
//! specification, and a required tolerance (masking / nonmasking /
//! fail-safe — or a per-fault multitolerance assignment), [`synthesize`]
//! mechanically constructs a concurrent program — one synchronization
//! skeleton per process — that satisfies the specification in the absence
//! of faults and the tolerance property in their presence, or returns a
//! mechanical *impossibility result* when no such program exists.
//!
//! # Quickstart
//!
//! Synthesize the paper's two-process mutual exclusion solution under
//! fail-stop failures with masking tolerance (Section 6.1, Figures 8–9):
//!
//! ```
//! use ftsyn::{problems::mutex, synthesize, Tolerance};
//!
//! let mut problem = mutex::with_fail_stop(2, Tolerance::Masking);
//! let outcome = synthesize(&mut problem);
//! let solved = outcome.unwrap_solved();
//! assert!(solved.verification.ok(), "{:?}", solved.verification.failures);
//! println!("{}", solved.program.display(&problem.props));
//! ```
//!
//! # Pipeline
//!
//! 1. **Closure** — the generalized Fisher–Ladner closure of
//!    `spec ∧ Label_TOL(spec)` (crate [`ftsyn_ctl`]).
//! 2. **Tableau** — AND/OR graph with `Blocks`/`Tiles` successors *and*
//!    fault successors per Definition 5.1.2 (crate [`ftsyn_tableau`]).
//! 3. **Deletion** — the rules of Figure 2, certifying eventualities on
//!    fault-free subdags/paths; a deleted root is an impossibility
//!    result (Corollary 7.2).
//! 4. **Unraveling** — `FDAG`/`FFRAG` fragment construction and pasting
//!    (steps 3–4), yielding the fault-tolerant model `M_F`.
//! 5. **Extraction** — shared-variable disambiguation and projection
//!    into synchronization skeletons (step 5; crate [`ftsyn_guarded`]).
//! 6. **Verification** — Theorem 7.1.9 (soundness) and Theorem 7.3.2
//!    (fault closure) are re-checked on the produced model with the CTL
//!    model checker (crate [`ftsyn_kripke`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cegis;
mod check;
mod extract;
mod fragment;
mod minimize;
mod problem;
mod synthesize;
mod unravel;
mod verify;

pub mod problems;

pub use cegis::{cegis_synthesize, cegis_synthesize_with_config, CegisConfig, CegisProfile};
pub use check::{check_program, CheckError, CheckReport};
pub use extract::{
    extract_program, introduce_shared_variables, refine_guards, ExtractProfile,
    SharedIntroduction, DEFAULT_EXTRACT_REFINE_ROUNDS,
};
pub use fragment::{build_ffrag, build_ffrag_mode, eventualities_in, FragNode, Fragment};
pub use minimize::{
    semantic_minimize, semantic_minimize_governed, semantic_minimize_profiled,
    semantic_minimize_with_threads, MinimizeAbort, MinimizeProfile,
};
#[cfg(any(test, feature = "slow-reference"))]
pub use minimize::{semantic_minimize_reference, semantic_minimize_reference_governed};
pub use problem::{SynthesisProblem, Tolerance, ToleranceAssignment};
pub use synthesize::{
    default_threads, synthesize, synthesize_governed, synthesize_planned, synthesize_resume,
    synthesize_session, synthesize_with_engine, synthesize_with_threads, AbortedSynthesis, Engine,
    Impossibility, SynthesisOutcome, SynthesisSession, SynthesisStats, Synthesized, TableauArtifacts,
    ThreadPlan,
};
pub use ftsyn_tableau::{
    blob_checksum, AbortReason, Budget, CacheFill, CacheLimits, CertMode, Checkpoint,
    CheckpointError, ExpansionCache, Governor, Phase, CHECKPOINT_FORMAT_VERSION,
    CHECKPOINT_MIN_FORMAT_VERSION,
};
pub use unravel::{unravel, unravel_governed, unravel_mode, Unraveled};
pub use verify::{
    verify, verify_semantic, verify_semantic_ok, Failure, FailureKind, FailureStage, Verification,
};

// Re-export the substrate crates so downstream users need only `ftsyn`.
pub use ftsyn_ctl as ctl;
pub use ftsyn_guarded as guarded;
pub use ftsyn_kripke as kripke;
pub use ftsyn_tableau as tableau;
