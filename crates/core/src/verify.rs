//! Mechanical verification of synthesized models: the soundness and
//! fault-closure theorems of Section 7, re-checked on every produced
//! structure with the CTL model checker.

use crate::problem::SynthesisProblem;
use crate::unravel::Unraveled;
use ftsyn_ctl::Closure;
use ftsyn_kripke::{Checker, Semantics, StateRole, TransKind};
use ftsyn_tableau::{valuation_of, CertMode, Tableau};

/// The satisfaction relation matching a synthesis mode: `⊨ₙ` for the
/// main method, plain `⊨` for Section 8.3's alternative method.
fn semantics_of(mode: CertMode) -> Semantics {
    match mode {
        CertMode::FaultFree => Semantics::FaultFree,
        CertMode::FaultProne => Semantics::IncludeFaults,
    }
}

/// The outcome of verifying a synthesized model.
#[derive(Clone, Debug, Default)]
pub struct Verification {
    /// `M_F, s0 ⊨ₙ init ∧ AG(global) ∧ AG(coupling)` (Corollary 7.1(1)).
    pub init_satisfies_spec: bool,
    /// `M_F, S_F ⊨ₙ Label_TOL(spec)` for every perturbed state, using
    /// the tolerance of the fault action that reached it
    /// (Corollary 7.1(2)).
    pub perturbed_satisfy_tolerance: bool,
    /// Every enabled fault action has a fault transition for each of its
    /// outcomes at every state (Theorem 7.3.2, strengthened per-outcome).
    pub fault_closed: bool,
    /// Every formula in every state's tableau label holds at that state
    /// under `⊨ₙ` (Theorem 7.1.9).
    pub labels_sound: bool,
    /// Number of perturbed states found.
    pub perturbed_count: usize,
    /// Human-readable descriptions of any violations.
    pub failures: Vec<String>,
}

impl Verification {
    /// Whether all checks passed.
    pub fn ok(&self) -> bool {
        self.init_satisfies_spec
            && self.perturbed_satisfy_tolerance
            && self.fault_closed
            && self.labels_sound
    }
}

/// Runs the semantic checks (spec at init, tolerance at perturbed
/// states, fault closure) on any model — the three requirements of the
/// synthesis problem statement (Section 3). `labels_sound` is left
/// `true`; the full [`verify`] additionally checks it.
pub fn verify_semantic(
    problem: &mut SynthesisProblem,
    model: &ftsyn_kripke::FtKripke,
) -> Verification {
    let mut v = Verification {
        init_satisfies_spec: true,
        perturbed_satisfy_tolerance: true,
        fault_closed: true,
        labels_sound: true,
        ..Verification::default()
    };
    let spec_formula = problem.spec.formula(&mut problem.arena);
    let mut ck = Checker::new(model, semantics_of(problem.mode));

    // (1) Initial state satisfies the temporal specification. On
    // failure, pin down the offending conjunct and, for invariances,
    // attach a counterexample path.
    let init = model.init_states()[0];
    if !ck.holds(&problem.arena, spec_formula, init) {
        v.init_satisfies_spec = false;
        let conjuncts = problem.arena.conjuncts(spec_formula);
        let mut detailed = false;
        for conj in conjuncts {
            if ck.holds(&problem.arena, conj, init) {
                continue;
            }
            detailed = true;
            let mut msg = format!(
                "initial state violates `{}`",
                ftsyn_ctl::print::render(&problem.arena, &problem.props, conj)
            );
            if let ftsyn_ctl::Formula::Aw(g, h) = problem.arena.get(conj) {
                if problem.arena.get(g) == ftsyn_ctl::Formula::False {
                    if let Some(cex) = ck.counterexample_ag(&problem.arena, h, init) {
                        msg.push_str(&format!(
                            "; counterexample: {}",
                            cex.display(model, &problem.props)
                        ));
                    }
                }
            }
            v.failures.push(msg);
        }
        if !detailed {
            v.failures
                .push("initial state violates the temporal specification".into());
        }
    }

    // (2) Perturbed states satisfy their tolerance labels.
    let roles = model.classify();
    for s in model.state_ids() {
        if roles[s.index()] != StateRole::Perturbed {
            continue;
        }
        v.perturbed_count += 1;
        // Tolerances of the fault actions that can reach s.
        let mut tols = Vec::new();
        for e in model.pred(s) {
            if let TransKind::Fault(a) = e.kind {
                let t = problem.tolerance.of(a);
                if !tols.contains(&t) {
                    tols.push(t);
                }
            }
        }
        for tol in tols {
            for f in problem.label_tol_formulas(tol) {
                if !ck.holds(&problem.arena, f, s) {
                    v.perturbed_satisfy_tolerance = false;
                    v.failures.push(format!(
                        "perturbed state {} violates its {tol:?} tolerance label",
                        model.state(s).display(&problem.props)
                    ));
                }
            }
        }
    }

    // (3) Fault closure: every enabled action is represented, outcome by
    // outcome, at every state.
    for s in model.state_ids() {
        let valuation = &model.state(s).props;
        for (ai, action) in problem.faults.iter().enumerate() {
            if !action.enabled(valuation) {
                continue;
            }
            for phi in action.outcomes(valuation, problem.props.len()) {
                let covered = model.succ(s).iter().any(|e| {
                    e.kind == TransKind::Fault(ai) && model.state(e.to).props == phi
                });
                if !covered {
                    v.fault_closed = false;
                    v.failures.push(format!(
                        "state {} misses a fault transition for `{}`",
                        model.state(s).display(&problem.props),
                        action.name()
                    ));
                }
            }
        }
    }

    v
}

/// Runs all checks on an unraveled model, including label soundness
/// (Theorem 7.1.9: every formula in a state's tableau label holds at
/// that state under `⊨ₙ`).
pub fn verify(
    problem: &mut SynthesisProblem,
    closure: &Closure,
    tableau: &Tableau,
    unr: &Unraveled,
) -> Verification {
    let mut v = verify_semantic(problem, &unr.model);
    let model = &unr.model;
    let mut ck = Checker::new(model, semantics_of(problem.mode));
    for s in model.state_ids() {
        let label = unr.state_label(tableau, s);
        // Sanity: the state's valuation matches its label's literals.
        debug_assert_eq!(
            valuation_of(closure, &problem.props, label),
            model.state(s).props
        );
        for idx in label.iter() {
            let f = closure.entry(idx).id;
            if !ck.holds(&problem.arena, f, s) {
                v.labels_sound = false;
                v.failures.push(format!(
                    "state {} violates label formula {}",
                    model.state(s).display(&problem.props),
                    ftsyn_ctl::print::render(&problem.arena, &problem.props, f)
                ));
            }
        }
    }

    v
}
