//! Mechanical verification of synthesized models: the soundness and
//! fault-closure theorems of Section 7, re-checked on every produced
//! structure with the CTL model checker.

use crate::problem::SynthesisProblem;
use crate::unravel::Unraveled;
use ftsyn_ctl::Closure;
use ftsyn_kripke::{Checker, Semantics, StateRole, TransKind};
use ftsyn_tableau::{valuation_of, CertMode, Tableau};
use std::fmt;

/// Category of a verification failure — which theorem or requirement
/// was violated. Consumers filter on this instead of grepping the
/// human-readable message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// The initial state violates the temporal specification
    /// (Corollary 7.1(1)).
    Spec,
    /// A perturbed state violates its tolerance label
    /// (Corollary 7.1(2)).
    Tolerance,
    /// A state misses a fault transition for an enabled fault outcome
    /// (fault closure, Theorem 7.3.2).
    FaultClosure,
    /// A state violates a formula of its tableau label
    /// (Theorem 7.1.9).
    LabelSoundness,
    /// An expansion worker thread panicked; the scheduler contained the
    /// panic and the run aborted with partial diagnostics instead of
    /// taking the process down.
    WorkerPanic,
    /// The extracted program's explored structure failed verification
    /// and the bounded guard-refinement loop did not close the gap
    /// (Corollary 7.1's "execution of P generates M_F" could not be
    /// established).
    ExtractionGap,
}

impl FailureKind {
    /// Every kind, in reporting order.
    pub const ALL: [FailureKind; 6] = [
        FailureKind::Spec,
        FailureKind::Tolerance,
        FailureKind::FaultClosure,
        FailureKind::LabelSoundness,
        FailureKind::WorkerPanic,
        FailureKind::ExtractionGap,
    ];

    /// Stable machine-readable name (used as a JSON key by `bench_json`
    /// and in the `experiments` failure table).
    pub fn name(self) -> &'static str {
        match self {
            FailureKind::Spec => "spec",
            FailureKind::Tolerance => "tolerance",
            FailureKind::FaultClosure => "fault_closure",
            FailureKind::LabelSoundness => "label_soundness",
            FailureKind::WorkerPanic => "worker_panic",
            FailureKind::ExtractionGap => "extraction_gap",
        }
    }
}

/// Which model a failure was detected on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureStage {
    /// The final (minimized) model the program was extracted from.
    Final,
    /// The pre-minimization unraveled model — the structure the
    /// soundness theorems directly speak about.
    PreMinimization,
    /// No model at all: the failure was raised by the synthesis pipeline
    /// itself (e.g. a contained worker panic during tableau build).
    Pipeline,
}

/// One verification failure: a structured kind and stage plus the
/// human-readable description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Failure {
    /// The violated requirement.
    pub kind: FailureKind,
    /// The model the violation was found on.
    pub stage: FailureStage,
    /// Human-readable description.
    pub message: String,
}

impl Failure {
    /// A failure on the model currently under verification (the stage
    /// is re-tagged by [`Verification::merge_pre_minimization`] when the
    /// result is folded into a later verification).
    fn new(kind: FailureKind, message: String) -> Failure {
        Failure {
            kind,
            stage: FailureStage::Final,
            message,
        }
    }

    /// A failure raised by the synthesis pipeline itself rather than by
    /// checking a model (stage [`FailureStage::Pipeline`]).
    pub(crate) fn pipeline(kind: FailureKind, message: String) -> Failure {
        Failure {
            kind,
            stage: FailureStage::Pipeline,
            message,
        }
    }
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.stage {
            FailureStage::Final => write!(f, "{}", self.message),
            FailureStage::PreMinimization => {
                write!(f, "[pre-minimization] {}", self.message)
            }
            FailureStage::Pipeline => write!(f, "[pipeline] {}", self.message),
        }
    }
}

/// The satisfaction relation matching a synthesis mode: `⊨ₙ` for the
/// main method, plain `⊨` for Section 8.3's alternative method.
pub(crate) fn semantics_of(mode: CertMode) -> Semantics {
    match mode {
        CertMode::FaultFree => Semantics::FaultFree,
        CertMode::FaultProne => Semantics::IncludeFaults,
    }
}

/// The outcome of verifying a synthesized model.
#[derive(Clone, Debug, Default)]
pub struct Verification {
    /// `M_F, s0 ⊨ₙ init ∧ AG(global) ∧ AG(coupling)` (Corollary 7.1(1)).
    pub init_satisfies_spec: bool,
    /// `M_F, S_F ⊨ₙ Label_TOL(spec)` for every perturbed state, using
    /// the tolerance of the fault action that reached it
    /// (Corollary 7.1(2)).
    pub perturbed_satisfy_tolerance: bool,
    /// Every enabled fault action has a fault transition for each of its
    /// outcomes at every state (Theorem 7.3.2, strengthened per-outcome).
    pub fault_closed: bool,
    /// Every formula in every state's tableau label holds at that state
    /// under `⊨ₙ` (Theorem 7.1.9).
    pub labels_sound: bool,
    /// The extracted program regenerates a structure that passes the
    /// semantic checks under faults — Corollary 7.1's "execution of P
    /// generates M_F", established by the in-pipeline
    /// extraction-verification stage (false when the guard-refinement
    /// loop gave up with a [`FailureKind::ExtractionGap`] failure).
    pub extraction_ok: bool,
    /// Number of perturbed states found.
    pub perturbed_count: usize,
    /// Structured descriptions of any violations.
    pub failures: Vec<Failure>,
}

impl Verification {
    /// Whether all checks passed.
    pub fn ok(&self) -> bool {
        self.init_satisfies_spec
            && self.perturbed_satisfy_tolerance
            && self.fault_closed
            && self.labels_sound
            && self.extraction_ok
    }

    /// Folds a full pre-minimization verification into this (final,
    /// post-minimization) semantic verification.
    ///
    /// Label soundness (Theorem 7.1.9) is only checkable on the
    /// pre-minimization model, so its verdict carries over verbatim.
    /// *Every* pre-minimization failure — semantic ones included — is
    /// surfaced with its stage re-tagged, and the corresponding flags
    /// are conjoined: semantic minimization only preserves requirements
    /// that held before it, so a pre-minimization violation is a real
    /// defect even when the minimized model happens to pass.
    pub fn merge_pre_minimization(&mut self, pre: Verification) {
        self.init_satisfies_spec &= pre.init_satisfies_spec;
        self.perturbed_satisfy_tolerance &= pre.perturbed_satisfy_tolerance;
        self.fault_closed &= pre.fault_closed;
        self.extraction_ok &= pre.extraction_ok;
        self.labels_sound = pre.labels_sound;
        self.failures.extend(pre.failures.into_iter().map(|mut f| {
            f.stage = FailureStage::PreMinimization;
            f
        }));
    }

    /// Failure counts aggregated by kind, in [`FailureKind::ALL`] order
    /// (including kinds with zero failures, so consumers get a fixed
    /// schema).
    pub fn failures_by_kind(&self) -> [(FailureKind, usize); 6] {
        FailureKind::ALL.map(|k| (k, self.failures.iter().filter(|f| f.kind == k).count()))
    }

    /// Compact `kind:count` summary of non-empty kinds, e.g.
    /// `"spec:1 fault_closure:3"`; empty string when there are no
    /// failures.
    pub fn failure_summary(&self) -> String {
        self.failures_by_kind()
            .iter()
            .filter(|(_, n)| *n > 0)
            .map(|(k, n)| format!("{}:{n}", k.name()))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// Runs the semantic checks (spec at init, tolerance at perturbed
/// states, fault closure) on any model — the three requirements of the
/// synthesis problem statement (Section 3). `labels_sound` is left
/// `true`; the full [`verify`] additionally checks it.
pub fn verify_semantic(
    problem: &mut SynthesisProblem,
    model: &ftsyn_kripke::FtKripke,
) -> Verification {
    verify_semantic_impl(problem, model, true)
}

/// Early-exit form of [`verify_semantic`] for callers that only need
/// the verdict: evaluates the same three requirements with the same
/// model checker and returns at the first violation, skipping
/// counterexample extraction and failure-message construction. The
/// boolean equals `verify_semantic(problem, model).ok()` — the checks
/// are one shared implementation — but a rejection costs at most one
/// failed check instead of a full three-pass sweep, which matters to
/// the semantic minimizer's inner loop (one verification per candidate
/// merge).
pub fn verify_semantic_ok(
    problem: &mut SynthesisProblem,
    model: &ftsyn_kripke::FtKripke,
) -> bool {
    verify_semantic_impl(problem, model, false).ok()
}

/// Shared body of [`verify_semantic`] / [`verify_semantic_ok`]. With
/// `collect` the full diagnostic sweep runs (every violation gets a
/// [`Failure`] with a rendered message); without it the function
/// returns at the first violated requirement with only the verdict
/// flags set. Both modes evaluate the identical predicates in the
/// identical order, so the [`Verification::ok`] verdict never differs.
fn verify_semantic_impl(
    problem: &mut SynthesisProblem,
    model: &ftsyn_kripke::FtKripke,
    collect: bool,
) -> Verification {
    let mut v = Verification {
        init_satisfies_spec: true,
        perturbed_satisfy_tolerance: true,
        fault_closed: true,
        labels_sound: true,
        extraction_ok: true,
        ..Verification::default()
    };
    let spec_formula = problem.spec.formula(&mut problem.arena);
    let mut ck = Checker::new(model, semantics_of(problem.mode));

    // (1) Initial state satisfies the temporal specification. On
    // failure, pin down the offending conjunct and, for invariances,
    // attach a counterexample path.
    let init = model.init_states()[0];
    if !ck.holds(&problem.arena, spec_formula, init) {
        v.init_satisfies_spec = false;
        if !collect {
            return v;
        }
        let conjuncts = problem.arena.conjuncts(spec_formula);
        let mut detailed = false;
        for conj in conjuncts {
            if ck.holds(&problem.arena, conj, init) {
                continue;
            }
            detailed = true;
            let mut msg = format!(
                "initial state violates `{}`",
                ftsyn_ctl::print::render(&problem.arena, &problem.props, conj)
            );
            if let ftsyn_ctl::Formula::Aw(g, h) = problem.arena.get(conj) {
                if problem.arena.get(g) == ftsyn_ctl::Formula::False {
                    if let Some(cex) = ck.counterexample_ag(&problem.arena, h, init) {
                        msg.push_str(&format!(
                            "; counterexample: {}",
                            cex.display(model, &problem.props)
                        ));
                    }
                }
            }
            v.failures.push(Failure::new(FailureKind::Spec, msg));
        }
        if !detailed {
            v.failures.push(Failure::new(
                FailureKind::Spec,
                "initial state violates the temporal specification".into(),
            ));
        }
    }

    // (2) Perturbed states satisfy their tolerance labels.
    let roles = model.classify();
    for s in model.state_ids() {
        if roles[s.index()] != StateRole::Perturbed {
            continue;
        }
        v.perturbed_count += 1;
        // Tolerances of the fault actions that can reach s.
        let mut tols = Vec::new();
        for e in model.pred(s) {
            if let TransKind::Fault(a) = e.kind {
                let t = problem.tolerance.of(a);
                if !tols.contains(&t) {
                    tols.push(t);
                }
            }
        }
        for tol in tols {
            for f in problem.label_tol_formulas(tol) {
                if !ck.holds(&problem.arena, f, s) {
                    v.perturbed_satisfy_tolerance = false;
                    if !collect {
                        return v;
                    }
                    v.failures.push(Failure::new(
                        FailureKind::Tolerance,
                        format!(
                            "perturbed state {} violates its {tol:?} tolerance label",
                            model.state(s).display(&problem.props)
                        ),
                    ));
                }
            }
        }
    }

    // (3) Fault closure: every enabled action is represented, outcome by
    // outcome, at every state.
    for s in model.state_ids() {
        let valuation = &model.state(s).props;
        for (ai, action) in problem.faults.iter().enumerate() {
            if !action.enabled(valuation) {
                continue;
            }
            for phi in action.outcomes(valuation, problem.props.len()) {
                let covered = model.succ(s).iter().any(|e| {
                    e.kind == TransKind::Fault(ai) && model.state(e.to).props == phi
                });
                if !covered {
                    v.fault_closed = false;
                    if !collect {
                        return v;
                    }
                    v.failures.push(Failure::new(
                        FailureKind::FaultClosure,
                        format!(
                            "state {} misses a fault transition for `{}`",
                            model.state(s).display(&problem.props),
                            action.name()
                        ),
                    ));
                }
            }
        }
    }

    v
}

/// Runs all checks on an unraveled model, including label soundness
/// (Theorem 7.1.9: every formula in a state's tableau label holds at
/// that state under `⊨ₙ`).
pub fn verify(
    problem: &mut SynthesisProblem,
    closure: &Closure,
    tableau: &Tableau,
    unr: &Unraveled,
) -> Verification {
    let mut v = verify_semantic(problem, &unr.model);
    let model = &unr.model;
    let mut ck = Checker::new(model, semantics_of(problem.mode));
    for s in model.state_ids() {
        let label = unr.state_label(tableau, s);
        // Sanity: the state's valuation matches its label's literals.
        debug_assert_eq!(
            valuation_of(closure, &problem.props, label),
            model.state(s).props
        );
        for idx in label.iter() {
            let f = closure.entry(idx).id;
            if !ck.holds(&problem.arena, f, s) {
                v.labels_sound = false;
                v.failures.push(Failure::new(
                    FailureKind::LabelSoundness,
                    format!(
                        "state {} violates label formula {}",
                        model.state(s).display(&problem.props),
                        ftsyn_ctl::print::render(&problem.arena, &problem.props, f)
                    ),
                ));
            }
        }
    }

    v
}

#[cfg(test)]
mod aggregation_tests {
    use super::*;

    fn with_failures(kinds: &[FailureKind]) -> Verification {
        let mut v = Verification::default();
        for &k in kinds {
            v.failures.push(Failure::new(k, format!("injected {k:?}")));
        }
        v
    }

    fn count_of(v: &Verification, kind: FailureKind) -> usize {
        v.failures_by_kind()
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, n)| *n)
            .unwrap()
    }

    #[test]
    fn aggregates_spec_failures() {
        let v = with_failures(&[FailureKind::Spec, FailureKind::Spec]);
        assert_eq!(count_of(&v, FailureKind::Spec), 2);
        assert_eq!(v.failure_summary(), "spec:2");
    }

    #[test]
    fn aggregates_tolerance_failures() {
        let v = with_failures(&[FailureKind::Tolerance]);
        assert_eq!(count_of(&v, FailureKind::Tolerance), 1);
        assert_eq!(v.failure_summary(), "tolerance:1");
    }

    #[test]
    fn aggregates_fault_closure_failures() {
        let v = with_failures(&[FailureKind::FaultClosure, FailureKind::Spec]);
        assert_eq!(count_of(&v, FailureKind::FaultClosure), 1);
        // Summary keeps FailureKind::ALL order regardless of insertion.
        assert_eq!(v.failure_summary(), "spec:1 fault_closure:1");
    }

    #[test]
    fn aggregates_label_soundness_failures() {
        let v = with_failures(&[FailureKind::LabelSoundness; 3]);
        assert_eq!(count_of(&v, FailureKind::LabelSoundness), 3);
        assert_eq!(v.failure_summary(), "label_soundness:3");
    }

    #[test]
    fn aggregates_worker_panic_failures() {
        let mut v = Verification::default();
        v.failures.push(Failure::pipeline(
            FailureKind::WorkerPanic,
            "injected".into(),
        ));
        assert_eq!(count_of(&v, FailureKind::WorkerPanic), 1);
        assert_eq!(v.failure_summary(), "worker_panic:1");
        assert_eq!(v.failures[0].to_string(), "[pipeline] injected");
    }

    #[test]
    fn aggregates_extraction_gap_failures() {
        let mut v = Verification::default();
        v.failures.push(Failure::pipeline(
            FailureKind::ExtractionGap,
            "injected".into(),
        ));
        assert_eq!(count_of(&v, FailureKind::ExtractionGap), 1);
        assert_eq!(v.failure_summary(), "extraction_gap:1");
        assert_eq!(v.failures[0].to_string(), "[pipeline] injected");
    }

    #[test]
    fn clean_verification_has_empty_summary() {
        let v = Verification::default();
        assert!(v.failure_summary().is_empty());
        assert!(v.failures_by_kind().iter().all(|(_, n)| *n == 0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::mutex;
    use crate::unravel::unravel_mode;
    use ftsyn_guarded::{BoolExpr, FaultAction, PropAssign};
    use ftsyn_tableau::{apply_deletion_rules_mode, build, FaultSpec};

    /// Regression test for the string-grep failure filter this module's
    /// structured kinds replaced: a *non-label* failure pushed through
    /// the full [`verify`] must surface as a [`FailureKind::FaultClosure`]
    /// failure, distinguishable from label soundness without grepping
    /// the message.
    #[test]
    fn uncovered_fault_surfaces_as_structured_fault_closure() {
        let mut problem = mutex::fault_free(2);

        // Replicate the pipeline up to the pre-minimization model verify()
        // is specified on: closure → tableau → deletion → unraveling.
        let roots = problem.closure_roots();
        let spec_formula = roots[0];
        let closure = Closure::build(&mut problem.arena, &problem.props, &roots);
        let fault_spec = FaultSpec {
            actions: problem.faults.clone(),
            tolerance_labels: problem.tolerance_label_sets(&closure),
        };
        let mut root_label = closure.empty_label();
        root_label.insert(closure.index_of(spec_formula).unwrap());
        let mut tableau = build(&closure, &problem.props, root_label, &fault_spec);
        apply_deletion_rules_mode(&mut tableau, &closure, problem.mode);
        assert!(tableau.alive(tableau.root()), "mutex is synthesizable");
        let c0 = tableau
            .alive_succ(tableau.root(), |_| true)
            .map(|(_, c)| c)
            .next()
            .expect("alive root has an alive AND child");
        let unr = unravel_mode(&tableau, &closure, &problem.props, c0, problem.mode);

        let baseline = verify(&mut problem, &closure, &tableau, &unr);
        assert!(baseline.ok(), "baseline must verify: {:?}", baseline.failures);

        // Inject a fault action the synthesized model knows nothing
        // about: enabled everywhere, never represented by a transition.
        let t1 = problem.props.id("T1").unwrap();
        problem.faults.push(
            FaultAction::new("ghost", BoolExpr::Const(true), vec![(t1, PropAssign::True)])
                .expect("well-formed action"),
        );
        let v = verify(&mut problem, &closure, &tableau, &unr);
        assert!(!v.fault_closed);
        assert!(!v.ok());
        // Labels are untouched by the extra action: soundness still holds.
        assert!(v.labels_sound);
        let kinds: Vec<FailureKind> = v.failures.iter().map(|f| f.kind).collect();
        assert!(
            kinds.iter().all(|&k| k == FailureKind::FaultClosure),
            "only fault-closure failures expected, got {kinds:?}"
        );
        assert!(!kinds.is_empty(), "the violation must be reported");
        assert!(
            v.failures.iter().all(|f| f.stage == FailureStage::Final),
            "verify() reports on the model it was given"
        );

        // The merge re-tags the stage and conjoins the semantic flags, so
        // a pre-minimization fault-closure violation survives into a
        // final verification that passed on its own.
        let mut final_v = Verification {
            init_satisfies_spec: true,
            perturbed_satisfy_tolerance: true,
            fault_closed: true,
            labels_sound: true,
            extraction_ok: true,
            ..Verification::default()
        };
        final_v.merge_pre_minimization(v);
        assert!(!final_v.fault_closed);
        assert!(!final_v.ok());
        assert!(final_v
            .failures
            .iter()
            .all(|f| f.kind == FailureKind::FaultClosure
                && f.stage == FailureStage::PreMinimization));
        let shown = format!("{}", final_v.failures[0]);
        assert!(shown.starts_with("[pre-minimization] "), "{shown}");
    }

    /// The early-exit verdict must agree with the full diagnostic sweep
    /// on both accepting and rejecting models — they share one
    /// implementation, and this pins that they stay shared.
    #[test]
    fn fast_verdict_matches_full_verification() {
        let mut problem = mutex::with_fail_stop(2, crate::Tolerance::Masking);
        let solved = crate::synthesize(&mut problem).unwrap_solved();

        // Accepting: the synthesized model passes both forms.
        assert!(verify_semantic(&mut problem, &solved.model).ok());
        assert!(verify_semantic_ok(&mut problem, &solved.model));

        // Rejecting (fault closure): a ghost fault action breaks both.
        let t1 = problem.props.id("T1").unwrap();
        problem.faults.push(
            FaultAction::new("ghost", BoolExpr::Const(true), vec![(t1, PropAssign::True)])
                .expect("well-formed action"),
        );
        assert!(!verify_semantic(&mut problem, &solved.model).ok());
        assert!(!verify_semantic_ok(&mut problem, &solved.model));
        problem.faults.pop();

        // Rejecting (spec): drop the initial state's only successor
        // structure by merging every state into the initial one.
        let mut broken = ftsyn_kripke::FtKripke::new();
        let s0 = broken.push_state(solved.model.state(solved.model.init_states()[0]).clone());
        broken.add_init(s0);
        broken.add_edge(s0, TransKind::Proc(0), s0);
        assert!(!verify_semantic(&mut problem, &broken).ok());
        assert!(!verify_semantic_ok(&mut problem, &broken));
    }
}
