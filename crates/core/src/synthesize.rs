//! The end-to-end synthesis pipeline (Section 5.2, steps 1–5).

use crate::extract::{extract_program, introduce_shared_variables};
use crate::minimize::{semantic_minimize_profiled, MinimizeProfile};
use crate::problem::SynthesisProblem;
use crate::unravel::{unravel_mode, Unraveled};
use crate::verify::{verify, verify_semantic, Verification};
use ftsyn_ctl::Closure;
use ftsyn_guarded::{fault_set_size, Program};
use ftsyn_kripke::{bisimulation_quotient, FtKripke};
use ftsyn_tableau::{
    apply_deletion_rules_profiled, build_with_threads, BuildProfile, DeletionProfile,
    DeletionStats, FaultSpec, NodeId, Tableau,
};
use std::time::{Duration, Instant};

/// Size and timing measurements of one synthesis run (the quantities the
/// complexity analysis of Section 7.4 is about).
#[derive(Clone, Debug, Default)]
pub struct SynthesisStats {
    /// `|spec|`: length of the temporal specification.
    pub spec_length: usize,
    /// `|F|`: total description size of the fault actions.
    pub fault_size: usize,
    /// Closure size (`≤ 2|cl(spec ∧ AFAG global)|`).
    pub closure_size: usize,
    /// Total tableau nodes created.
    pub tableau_nodes: usize,
    /// Alive AND-nodes after deletion.
    pub alive_and: usize,
    /// Alive OR-nodes after deletion.
    pub alive_or: usize,
    /// Per-rule deletion counts.
    pub deletion: DeletionStats,
    /// States in the final model.
    pub model_states: usize,
    /// Program (non-fault) transitions in the final model.
    pub program_transitions: usize,
    /// Fault transitions in the final model.
    pub fault_transitions: usize,
    /// Wall-clock duration of the pipeline
    /// (= [`phase_total`](SynthesisStats::phase_total) +
    /// [`residual_time`](SynthesisStats::residual_time)).
    pub elapsed: Duration,
    /// Time spent constructing the tableau.
    pub build_time: Duration,
    /// Time spent applying the deletion rules.
    pub deletion_time: Duration,
    /// Time spent on fragments + unraveling + bisimulation quotient.
    pub unravel_time: Duration,
    /// Time spent on semantic minimization.
    pub minimize_time: Duration,
    /// Time spent on extraction.
    pub extract_time: Duration,
    /// Time spent on verification (label soundness + the final semantic
    /// re-check).
    pub verify_time: Duration,
    /// Wall-clock time not attributed to any phase (closure
    /// construction, bookkeeping between phases).
    pub residual_time: Duration,
    /// Frontier/parallelism statistics of the tableau construction.
    pub build_profile: BuildProfile,
    /// Per-rule timings and worklist counters of the deletion engine.
    pub deletion_profile: DeletionProfile,
    /// Candidate-merge counters of semantic minimization (the phase
    /// that dominates wall-clock on the larger instances).
    pub minimize_profile: MinimizeProfile,
}

impl SynthesisStats {
    /// Sum of the per-phase timings. [`elapsed`](SynthesisStats::elapsed)
    /// equals this plus [`residual_time`](SynthesisStats::residual_time).
    pub fn phase_total(&self) -> Duration {
        self.build_time
            + self.deletion_time
            + self.unravel_time
            + self.minimize_time
            + self.extract_time
            + self.verify_time
    }
}

/// A successful synthesis: the model, the extracted program, and the
/// artifacts needed to inspect or re-verify them.
#[derive(Debug)]
pub struct Synthesized {
    /// The fault-tolerant model `M_F` (with shared variables installed).
    pub model: FtKripke,
    /// The extracted concurrent program `P₁ ‖ … ‖ P_I`.
    pub program: Program,
    /// The closure the tableau was built over.
    pub closure: Closure,
    /// The pruned tableau `T_F`.
    pub tableau: Tableau,
    /// Per-state tableau AND-node of origin. Exact on the
    /// pre-minimization model (where label soundness is checked);
    /// indicative after semantic minimization merges copies.
    pub state_tableau: Vec<NodeId>,
    /// Measurements.
    pub stats: SynthesisStats,
    /// Mechanical verification results (soundness, fault closure).
    pub verification: Verification,
}

/// A mechanically derived impossibility result (Section 6.3): the root
/// of the tableau was deleted, so *no* program satisfies the
/// specification with the required tolerance.
#[derive(Clone, Debug)]
pub struct Impossibility {
    /// Measurements of the failed run.
    pub stats: SynthesisStats,
}

/// The outcome of synthesis.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)] // Impossibility stats are small but useful by value
pub enum SynthesisOutcome {
    /// A program exists and was synthesized.
    Solved(Box<Synthesized>),
    /// No program exists (completeness: Corollary 7.2).
    Impossible(Impossibility),
}

impl SynthesisOutcome {
    /// The synthesized artifacts.
    ///
    /// # Panics
    ///
    /// Panics if the outcome is [`SynthesisOutcome::Impossible`].
    pub fn unwrap_solved(self) -> Box<Synthesized> {
        match self {
            SynthesisOutcome::Solved(s) => s,
            SynthesisOutcome::Impossible(_) => {
                panic!("synthesis returned an impossibility result")
            }
        }
    }

    /// Whether a program was produced.
    pub fn is_solved(&self) -> bool {
        matches!(self, SynthesisOutcome::Solved(_))
    }
}

/// The worker-thread budget for tableau construction: the
/// `FTSYN_THREADS` environment variable when set to a positive integer
/// (the CI thread-matrix knob), the machine's available parallelism
/// otherwise. The synthesized program is identical for every value —
/// the build engine is deterministic across thread counts — so the
/// variable only redistributes work.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("FTSYN_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs the synthesis method on `problem`.
///
/// Implements steps 1–5 of Section 5.2: tableau construction, deletion,
/// fragment construction, unraveling, and extraction, followed by
/// mechanical verification of the produced model.
pub fn synthesize(problem: &mut SynthesisProblem) -> SynthesisOutcome {
    synthesize_with_threads(problem, default_threads())
}

/// [`synthesize`] with an explicit tableau worker-thread budget
/// (1 = fully sequential build). The outcome is bit-identical for
/// every thread count; the stats record how the work was scheduled.
pub fn synthesize_with_threads(
    problem: &mut SynthesisProblem,
    threads: usize,
) -> SynthesisOutcome {
    let start = Instant::now();
    let mut stats = SynthesisStats {
        fault_size: fault_set_size(&problem.faults),
        ..SynthesisStats::default()
    };

    // Step 0: closure over the spec and all tolerance labels.
    let roots = problem.closure_roots();
    let spec_formula = roots[0];
    stats.spec_length = problem.arena.length(spec_formula);
    let closure = Closure::build(&mut problem.arena, &problem.props, &roots);
    stats.closure_size = closure.len();

    // Step 1: tableau.
    let tol_labels = problem.tolerance_label_sets(&closure);
    let fault_spec = FaultSpec {
        actions: problem.faults.clone(),
        tolerance_labels: tol_labels,
    };
    let mut root_label = closure.empty_label();
    root_label.insert(
        closure
            .index_of(spec_formula)
            .expect("spec is a closure root"),
    );
    let t_build = Instant::now();
    let threads = threads.max(1);
    let (mut tableau, build_profile) =
        build_with_threads(&closure, &problem.props, root_label, &fault_spec, threads);
    stats.build_time = t_build.elapsed();
    stats.build_profile = build_profile;
    stats.tableau_nodes = tableau.len();

    // Step 2: deletion rules.
    let t_del = Instant::now();
    let (deletion, deletion_profile) =
        apply_deletion_rules_profiled(&mut tableau, &closure, problem.mode);
    stats.deletion = deletion;
    stats.deletion_profile = deletion_profile;
    stats.deletion_time = t_del.elapsed();
    let (alive_and, alive_or) = tableau.alive_counts();
    stats.alive_and = alive_and;
    stats.alive_or = alive_or;

    if !tableau.alive(tableau.root()) {
        stats.elapsed = start.elapsed();
        stats.residual_time = stats.elapsed.saturating_sub(stats.phase_total());
        return SynthesisOutcome::Impossible(Impossibility { stats });
    }

    // Steps 3–4: fragments and unraveling.
    let c0 = tableau
        .alive_succ(tableau.root(), |_| true)
        .map(|(_, c)| c)
        .next()
        .expect("alive root has an alive AND child (DeleteOR)");
    let t_unr = Instant::now();
    let unraveled = unravel_mode(&tableau, &closure, &problem.props, c0, problem.mode);
    // Quotient by labeled bisimulation: the unraveling duplicates states
    // (one copy per fragment occurrence); the quotient collapses
    // behaviorally identical copies. CTL satisfaction under both
    // semantics is bisimulation-invariant, so all verified properties
    // are preserved, and the extracted program needs far fewer
    // disambiguating shared variables.
    let q = bisimulation_quotient(&unraveled.model);
    let model = q.model;
    let state_tableau: Vec<NodeId> = q
        .representative
        .iter()
        .map(|&r| unraveled.state_tableau[r.index()])
        .collect();
    // Verify the quotient model in full (including the Theorem 7.1.9
    // label-soundness check, which is only meaningful while every state
    // still corresponds to one tableau AND-node).
    let pre_unr = Unraveled {
        model,
        state_tableau: state_tableau.clone(),
    };
    stats.unravel_time = t_unr.elapsed();
    let t_ver = Instant::now();
    let full_verification = verify(problem, &closure, &tableau, &pre_unr);
    stats.verify_time = t_ver.elapsed();
    // Semantic minimization: merge same-valuation copies as long as the
    // model keeps satisfying the synthesis problem's requirements.
    let t_min = Instant::now();
    let (model, merge_map, minimize_profile) =
        semantic_minimize_profiled(problem, pre_unr.model);
    stats.minimize_profile = minimize_profile;
    // Re-tag the minimized states: each final state keeps the tableau
    // node of the first pre-minimization state merged into it. (Labels
    // are exact on the pre-minimization model, where Theorem 7.1.9 is
    // checked; after merging they are indicative.)
    let state_tableau = {
        let mut tags: Vec<Option<NodeId>> = vec![None; model.len()];
        for (old, &new) in merge_map.iter().enumerate() {
            if tags[new.index()].is_none() {
                tags[new.index()] = Some(state_tableau[old]);
            }
        }
        tags.into_iter()
            .map(|t| t.expect("every final state has a source"))
            .collect::<Vec<NodeId>>()
    };
    stats.minimize_time = t_min.elapsed();
    stats.model_states = model.len();
    stats.fault_transitions = model.fault_edge_count();
    stats.program_transitions = model.edge_count() - stats.fault_transitions;
    let mut model = model;

    // Step 5: shared variables and program extraction.
    let t_ext = Instant::now();
    let shared = introduce_shared_variables(&mut model);
    let program = extract_program(
        &model,
        &problem.props,
        problem.arena.num_procs(),
        shared,
    );

    stats.extract_time = t_ext.elapsed();

    // Final verification of the minimized model: the three semantic
    // requirements of Section 3 re-checked on the exact structure the
    // program was extracted from, folded together with the full
    // pre-minimization verification (which alone can check label
    // soundness, Theorem 7.1.9). Every pre-minimization failure is
    // surfaced with its stage tagged, not just the label-related ones.
    let t_ver = Instant::now();
    let mut verification = verify_semantic(problem, &model);
    verification.merge_pre_minimization(full_verification);
    stats.verify_time += t_ver.elapsed();
    stats.elapsed = start.elapsed();
    stats.residual_time = stats.elapsed.saturating_sub(stats.phase_total());

    SynthesisOutcome::Solved(Box::new(Synthesized {
        model,
        program,
        closure,
        tableau,
        state_tableau,
        stats,
        verification,
    }))
}
