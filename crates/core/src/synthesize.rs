//! The end-to-end synthesis pipeline (Section 5.2, steps 1–5).

use crate::extract::{
    extract_program, introduce_shared_variables, refine_guards, ExtractProfile,
    DEFAULT_EXTRACT_REFINE_ROUNDS,
};
use crate::minimize::{
    semantic_minimize_governed, semantic_minimize_with_threads, MinimizeProfile,
};
use crate::cegis::{cegis_synthesize, CegisProfile};
use crate::problem::SynthesisProblem;
use crate::unravel::{unravel_governed, unravel_mode, Unraveled};
use crate::verify::{verify, verify_semantic, verify_semantic_ok, Failure, FailureKind, Verification};
use ftsyn_ctl::Closure;
use ftsyn_guarded::interp::{explore, Config};
use ftsyn_guarded::{fault_set_size, Program};
use ftsyn_kripke::{bisimulation_quotient, FtKripke};
use ftsyn_tableau::{
    apply_deletion_rules_governed, apply_deletion_rules_profiled, build_resume_governed,
    build_shared_cache_governed, spec_fingerprint, AbortReason, BuildProfile, CacheFill,
    Checkpoint, CheckpointError, DeletionProfile, DeletionStats, ExpansionCache, FaultSpec,
    Governor, NodeId, Phase, Tableau,
};
use std::time::{Duration, Instant};

/// Size and timing measurements of one synthesis run (the quantities the
/// complexity analysis of Section 7.4 is about).
#[derive(Clone, Debug, Default)]
pub struct SynthesisStats {
    /// `|spec|`: length of the temporal specification.
    pub spec_length: usize,
    /// `|F|`: total description size of the fault actions.
    pub fault_size: usize,
    /// Closure size (`≤ 2|cl(spec ∧ AFAG global)|`).
    pub closure_size: usize,
    /// Total tableau nodes created.
    pub tableau_nodes: usize,
    /// Alive AND-nodes after deletion.
    pub alive_and: usize,
    /// Alive OR-nodes after deletion.
    pub alive_or: usize,
    /// Per-rule deletion counts.
    pub deletion: DeletionStats,
    /// States in the final model.
    pub model_states: usize,
    /// Program (non-fault) transitions in the final model.
    pub program_transitions: usize,
    /// Fault transitions in the final model.
    pub fault_transitions: usize,
    /// Wall-clock duration of the pipeline
    /// (= [`phase_total`](SynthesisStats::phase_total) +
    /// [`residual_time`](SynthesisStats::residual_time)).
    pub elapsed: Duration,
    /// Time spent constructing the tableau.
    pub build_time: Duration,
    /// Time spent applying the deletion rules.
    pub deletion_time: Duration,
    /// Time spent on fragments + unraveling + bisimulation quotient.
    pub unravel_time: Duration,
    /// Time spent on semantic minimization.
    pub minimize_time: Duration,
    /// Time spent on extraction.
    pub extract_time: Duration,
    /// Time spent on verification (label soundness + the final semantic
    /// re-check).
    pub verify_time: Duration,
    /// Wall-clock time not attributed to any phase (closure
    /// construction, bookkeeping between phases).
    pub residual_time: Duration,
    /// Frontier/parallelism statistics of the tableau construction.
    pub build_profile: BuildProfile,
    /// Per-rule timings and worklist counters of the deletion engine.
    pub deletion_profile: DeletionProfile,
    /// Candidate-merge counters of semantic minimization (the phase
    /// that dominates wall-clock on the larger instances).
    pub minimize_profile: MinimizeProfile,
    /// Counters of the extraction + in-pipeline verification stage
    /// (explored vs model states, guard-refinement rounds).
    pub extract_profile: ExtractProfile,
    /// Candidate/blocking counters of the CEGIS bounded-synthesis
    /// engine (all zero for tableau runs).
    pub cegis_profile: CegisProfile,
}

impl SynthesisStats {
    /// Sum of the per-phase timings. [`elapsed`](SynthesisStats::elapsed)
    /// equals this plus [`residual_time`](SynthesisStats::residual_time).
    pub fn phase_total(&self) -> Duration {
        self.build_time
            + self.deletion_time
            + self.unravel_time
            + self.minimize_time
            + self.extract_time
            + self.verify_time
    }
}

/// Tableau-method artifacts of a solved run: the proof objects the
/// tableau pipeline produced on the way to the model, kept for
/// inspection and re-verification.
#[derive(Debug)]
pub struct TableauArtifacts {
    /// The closure the tableau was built over.
    pub closure: Closure,
    /// The pruned tableau `T_F`.
    pub tableau: Tableau,
    /// Per-state tableau AND-node of origin. Exact on the
    /// pre-minimization model (where label soundness is checked);
    /// indicative after semantic minimization merges copies.
    pub state_tableau: Vec<NodeId>,
}

/// A successful synthesis: the model, the extracted program, and the
/// artifacts needed to inspect or re-verify them.
#[derive(Debug)]
pub struct Synthesized {
    /// The fault-tolerant model `M_F` (with shared variables installed).
    pub model: FtKripke,
    /// The extracted concurrent program `P₁ ‖ … ‖ P_I`.
    pub program: Program,
    /// Tableau proof artifacts. `Some` for the tableau engine; `None`
    /// for the CEGIS backend, which searches model space directly and
    /// never builds a tableau on the solved path.
    pub artifacts: Option<TableauArtifacts>,
    /// Measurements.
    pub stats: SynthesisStats,
    /// Mechanical verification results (soundness, fault closure).
    pub verification: Verification,
}

/// A mechanically derived impossibility result (Section 6.3): the root
/// of the tableau was deleted, so *no* program satisfies the
/// specification with the required tolerance.
#[derive(Clone, Debug)]
pub struct Impossibility {
    /// Measurements of the failed run.
    pub stats: SynthesisStats,
}

/// A governed run that exceeded its [`ftsyn_tableau::Budget`] (or was
/// cancelled, or lost a worker to a panic): which phase stopped, why,
/// and everything measured up to the abort point — partial
/// [`BuildProfile`]/[`DeletionProfile`]/[`MinimizeProfile`] included, so
/// a caller can see how far the run got and how fast it was going.
#[derive(Clone, Debug)]
pub struct AbortedSynthesis {
    /// The pipeline phase that hit the limit.
    pub phase: Phase,
    /// Which limit tripped (deterministic caps report their counters).
    pub reason: AbortReason,
    /// Measurements up to the abort point. Phases that never ran keep
    /// their default (zero) values; the phase that aborted carries its
    /// partial profile.
    pub stats: SynthesisStats,
    /// Structured failures accompanying the abort — currently one
    /// [`FailureKind::WorkerPanic`] entry when a worker panicked, empty
    /// for budget/cancellation aborts.
    pub failures: Vec<Failure>,
    /// Resumable snapshot of the abort point, when the aborted phase
    /// supports one (today: Build-phase aborts of the work-stealing
    /// engine). Feed it to [`synthesize_resume`] under a raised budget
    /// to continue instead of restarting; the resumed outcome is
    /// byte-identical to an uninterrupted run.
    pub checkpoint: Option<Checkpoint>,
}

/// The outcome of synthesis.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)] // Impossibility stats are small but useful by value
pub enum SynthesisOutcome {
    /// A program exists and was synthesized.
    Solved(Box<Synthesized>),
    /// No program exists (completeness: Corollary 7.2).
    Impossible(Impossibility),
    /// A governed run stopped early: budget exceeded, cancelled, or a
    /// contained worker panic. Carries partial diagnostics; says nothing
    /// about whether a program exists.
    Aborted(Box<AbortedSynthesis>),
}

impl SynthesisOutcome {
    /// The synthesized artifacts.
    ///
    /// # Panics
    ///
    /// Panics if the outcome is [`SynthesisOutcome::Impossible`] or
    /// [`SynthesisOutcome::Aborted`].
    pub fn unwrap_solved(self) -> Box<Synthesized> {
        match self {
            SynthesisOutcome::Solved(s) => s,
            SynthesisOutcome::Impossible(_) => {
                panic!("synthesis returned an impossibility result")
            }
            SynthesisOutcome::Aborted(a) => {
                panic!("synthesis aborted in {} phase: {}", a.phase, a.reason)
            }
        }
    }

    /// Whether a program was produced.
    pub fn is_solved(&self) -> bool {
        matches!(self, SynthesisOutcome::Solved(_))
    }
}

/// The worker-thread budget for tableau construction: the
/// `FTSYN_THREADS` environment variable when set to a positive integer
/// (the CI thread-matrix knob), the machine's available parallelism
/// otherwise. The synthesized program is identical for every value —
/// the build engine is deterministic across thread counts — so the
/// variable only redistributes work.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("FTSYN_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Worker-thread budgets for the parallel pipeline phases. The two hot
/// phases scale differently — tableau expansion fans out over frontier
/// nodes, minimization over candidate merges — so their budgets are
/// separate knobs (the CLI exposes `--minimize-threads` for the
/// latter). Every combination produces a bit-identical outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ThreadPlan {
    /// Worker threads for tableau construction (1 = sequential).
    pub build: usize,
    /// Worker threads for semantic-minimization candidate scans
    /// (1 = sequential).
    pub minimize: usize,
}

impl ThreadPlan {
    /// The same budget for every phase — the default: minimization
    /// candidates are at least as plentiful as frontier nodes.
    pub fn uniform(threads: usize) -> ThreadPlan {
        let threads = threads.max(1);
        ThreadPlan {
            build: threads,
            minimize: threads,
        }
    }
}

/// Runs the synthesis method on `problem`.
///
/// Implements steps 1–5 of Section 5.2: tableau construction, deletion,
/// fragment construction, unraveling, and extraction, followed by
/// mechanical verification of the produced model.
pub fn synthesize(problem: &mut SynthesisProblem) -> SynthesisOutcome {
    synthesize_with_threads(problem, default_threads())
}

/// [`synthesize`] with an explicit worker-thread budget shared by all
/// parallel phases (1 = fully sequential). The outcome is bit-identical
/// for every thread count; the stats record how the work was scheduled.
pub fn synthesize_with_threads(
    problem: &mut SynthesisProblem,
    threads: usize,
) -> SynthesisOutcome {
    synthesize_planned(problem, ThreadPlan::uniform(threads), None)
}

/// [`synthesize_with_threads`] under a [`Governor`]: every hot loop
/// (tableau build on both schedulers, deletion, unraveling, semantic
/// minimization) polls the governor at bounded intervals, and exceeding
/// a budget — or an external [`Governor::cancel`], or a contained
/// worker panic — returns [`SynthesisOutcome::Aborted`] with the phase,
/// the reason, and the partial measurements instead of running open-loop.
///
/// The capped budgets abort at deterministic work counters, so the abort
/// point (phase + counters) is bit-identical at every thread count; with
/// an unlimited budget the outcome is byte-identical to
/// [`synthesize_with_threads`].
pub fn synthesize_governed(
    problem: &mut SynthesisProblem,
    threads: usize,
    gov: &Governor,
) -> SynthesisOutcome {
    synthesize_planned(problem, ThreadPlan::uniform(threads), Some(gov))
}

/// [`synthesize`] with per-phase thread budgets and an optional
/// governor — the fully general *fresh-start* entry point the other
/// variants wrap ([`synthesize_session`] generalizes further to shared
/// caches and checkpoint resume).
pub fn synthesize_planned(
    problem: &mut SynthesisProblem,
    plan: ThreadPlan,
    gov: Option<&Governor>,
) -> SynthesisOutcome {
    let (outcome, _) = synthesize_impl(problem, plan, gov, SynthesisSession::default())
        .expect("a fresh start has no checkpoint to validate");
    outcome
}

/// Which synthesis backend to run: the complete tableau method of the
/// source paper, or the CEGIS bounded-synthesis engine (guess–verify–
/// block over candidate models, falling back to the tableau certificate
/// for impossibility proofs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Engine {
    /// The tableau pipeline of Section 5.2 (complete; the default).
    #[default]
    Tableau,
    /// The CEGIS bounded-synthesis backend
    /// ([`cegis_synthesize`](crate::cegis_synthesize)): sound, and
    /// complete up to its queue bound — bound exhaustion on a
    /// satisfiable spec aborts rather than claiming impossibility.
    Cegis,
}

impl Engine {
    /// The engine's CLI/service name (`"tableau"` / `"cegis"`).
    pub fn name(self) -> &'static str {
        match self {
            Engine::Tableau => "tableau",
            Engine::Cegis => "cegis",
        }
    }

    /// Parses a CLI/service engine name. `None` for unknown names.
    pub fn parse(name: &str) -> Option<Engine> {
        match name {
            "tableau" => Some(Engine::Tableau),
            "cegis" => Some(Engine::Cegis),
            _ => None,
        }
    }
}

/// [`synthesize_planned`] with an explicit backend selection: dispatches
/// to the tableau pipeline or the CEGIS engine. Both return the same
/// [`SynthesisOutcome`] shape (CEGIS runs leave
/// [`Synthesized::artifacts`] empty and fill
/// [`SynthesisStats::cegis_profile`]).
pub fn synthesize_with_engine(
    problem: &mut SynthesisProblem,
    engine: Engine,
    plan: ThreadPlan,
    gov: Option<&Governor>,
) -> SynthesisOutcome {
    match engine {
        Engine::Tableau => synthesize_planned(problem, plan, gov),
        Engine::Cegis => cegis_synthesize(problem, plan, gov),
    }
}

/// Cross-request context for one synthesis run inside a service: an
/// optional *shared* [`ExpansionCache`] reference (the build only reads
/// it — the deferred [`CacheFill`]s come back in the result for the
/// service to apply, so many concurrent requests can warm one table)
/// and an optional [`Checkpoint`] to resume from instead of starting at
/// the root.
#[derive(Default)]
pub struct SynthesisSession<'a> {
    /// Shared `Blocks`/`Tiles` memo cache to read during the build.
    pub cache: Option<&'a ExpansionCache>,
    /// Checkpoint to resume from (validated against the problem before
    /// any work happens).
    pub resume: Option<Checkpoint>,
    /// Invoked with the checkpoint of a build-phase abort *inside* the
    /// pipeline, before the abort outcome propagates to the caller. A
    /// durable caller (the service's on-disk store) persists here, so a
    /// fail-stop between the abort and the caller's own handling still
    /// leaves the checkpoint recoverable.
    pub on_checkpoint: Option<&'a (dyn Fn(&Checkpoint) + Sync)>,
}

/// The fully general pipeline entry: [`synthesize_planned`] plus a
/// [`SynthesisSession`]. Returns the outcome together with the build's
/// deferred cache fills (empty when no cache was supplied).
///
/// # Errors
///
/// [`CheckpointError`] when `session.resume` holds a checkpoint whose
/// specification fingerprint or closure shape does not match `problem` —
/// a stale blob is rejected up front, never silently resumed.
pub fn synthesize_session(
    problem: &mut SynthesisProblem,
    plan: ThreadPlan,
    gov: Option<&Governor>,
    session: SynthesisSession<'_>,
) -> Result<(SynthesisOutcome, Vec<CacheFill>), CheckpointError> {
    synthesize_impl(problem, plan, gov, session)
}

/// Resumes an aborted run from its [`Checkpoint`] (see
/// [`AbortedSynthesis::checkpoint`]) under a fresh governor — typically
/// one with a raised budget. The resumed run replays the identical
/// deterministic schedule, so its outcome is byte-identical to an
/// uninterrupted run at every thread count.
///
/// # Errors
///
/// [`CheckpointError`] when the checkpoint does not belong to `problem`
/// (fingerprint or closure-shape mismatch) or was produced by a
/// different format version.
pub fn synthesize_resume(
    problem: &mut SynthesisProblem,
    plan: ThreadPlan,
    gov: Option<&Governor>,
    checkpoint: Checkpoint,
) -> Result<SynthesisOutcome, CheckpointError> {
    let session = SynthesisSession {
        resume: Some(checkpoint),
        ..SynthesisSession::default()
    };
    synthesize_impl(problem, plan, gov, session).map(|(outcome, _)| outcome)
}

/// Packages an abort with final timing bookkeeping (mirrors the
/// [`Impossibility`] return path: `elapsed`/`residual` reflect the
/// truncated run).
pub(crate) fn aborted(
    phase: Phase,
    reason: AbortReason,
    checkpoint: Option<Checkpoint>,
    mut stats: SynthesisStats,
    start: Instant,
) -> SynthesisOutcome {
    stats.elapsed = start.elapsed();
    stats.residual_time = stats.elapsed.saturating_sub(stats.phase_total());
    let failures = match &reason {
        AbortReason::WorkerPanic { message } => vec![Failure::pipeline(
            FailureKind::WorkerPanic,
            format!("tableau expansion worker panicked: {message}"),
        )],
        _ => Vec::new(),
    };
    SynthesisOutcome::Aborted(Box::new(AbortedSynthesis {
        phase,
        reason,
        stats,
        failures,
        checkpoint,
    }))
}

fn synthesize_impl(
    problem: &mut SynthesisProblem,
    plan: ThreadPlan,
    gov: Option<&Governor>,
    session: SynthesisSession<'_>,
) -> Result<(SynthesisOutcome, Vec<CacheFill>), CheckpointError> {
    let start = Instant::now();
    let mut stats = SynthesisStats {
        fault_size: fault_set_size(&problem.faults),
        ..SynthesisStats::default()
    };

    // Step 0: closure over the spec and all tolerance labels.
    let roots = problem.closure_roots();
    let spec_formula = roots[0];
    stats.spec_length = problem.arena.length(spec_formula);
    let closure = Closure::build(&mut problem.arena, &problem.props, &roots);
    stats.closure_size = closure.len();

    // Step 1: tableau.
    let tol_labels = problem.tolerance_label_sets(&closure);
    let fault_spec = FaultSpec {
        actions: problem.faults.clone(),
        tolerance_labels: tol_labels,
    };
    let mut root_label = closure.empty_label();
    root_label.insert(
        closure
            .index_of(spec_formula)
            .expect("spec is a closure root"),
    );
    let SynthesisSession {
        cache,
        resume,
        on_checkpoint,
    } = session;
    if let Some(ck) = &resume {
        // No silent resume of a stale blob: the checkpoint must carry
        // the fingerprint of exactly this problem's build inputs.
        ck.validate(
            spec_fingerprint(&closure, &problem.props, &root_label, &fault_spec),
            closure.len(),
            root_label.words().len(),
        )?;
    }
    if let Some(g) = gov {
        g.enter_phase(Phase::Build);
    }
    let t_build = Instant::now();
    let threads = plan.build.max(1);
    let build_result = match resume {
        Some(ck) => build_resume_governed(
            &closure,
            &problem.props,
            &fault_spec,
            threads,
            cache,
            gov,
            ck,
        ),
        None => build_shared_cache_governed(
            &closure,
            &problem.props,
            root_label,
            &fault_spec,
            threads,
            cache,
            gov,
        ),
    };
    let (mut tableau, build_profile, fills) = match build_result {
        Ok(ok) => ok,
        Err(a) => {
            stats.build_time = t_build.elapsed();
            stats.build_profile = a.profile;
            stats.tableau_nodes = a.nodes;
            let checkpoint = a.checkpoint.map(|ck| *ck);
            if let (Some(sink), Some(ck)) = (on_checkpoint, &checkpoint) {
                sink(ck);
            }
            return Ok((
                aborted(Phase::Build, a.reason, checkpoint, stats, start),
                a.fills,
            ));
        }
    };
    stats.build_time = t_build.elapsed();
    stats.build_profile = build_profile;
    stats.tableau_nodes = tableau.len();

    // Step 2: deletion rules.
    if let Some(g) = gov {
        g.enter_phase(Phase::Deletion);
    }
    let t_del = Instant::now();
    let deletion_result = match gov {
        Some(g) => apply_deletion_rules_governed(&mut tableau, &closure, problem.mode, g),
        None => Ok(apply_deletion_rules_profiled(
            &mut tableau,
            &closure,
            problem.mode,
        )),
    };
    let (deletion, deletion_profile) = match deletion_result {
        Ok(ok) => ok,
        Err(a) => {
            stats.deletion = a.stats;
            stats.deletion_profile = a.profile;
            stats.deletion_time = t_del.elapsed();
            let (alive_and, alive_or) = tableau.alive_counts();
            stats.alive_and = alive_and;
            stats.alive_or = alive_or;
            return Ok((
                aborted(Phase::Deletion, a.reason, None, stats, start),
                fills,
            ));
        }
    };
    stats.deletion = deletion;
    stats.deletion_profile = deletion_profile;
    stats.deletion_time = t_del.elapsed();
    let (alive_and, alive_or) = tableau.alive_counts();
    stats.alive_and = alive_and;
    stats.alive_or = alive_or;

    if !tableau.alive(tableau.root()) {
        stats.elapsed = start.elapsed();
        stats.residual_time = stats.elapsed.saturating_sub(stats.phase_total());
        return Ok((
            SynthesisOutcome::Impossible(Impossibility { stats }),
            fills,
        ));
    }

    // Steps 3–4: fragments and unraveling.
    let c0 = tableau
        .alive_succ(tableau.root(), |_| true)
        .map(|(_, c)| c)
        .next()
        .expect("alive root has an alive AND child (DeleteOR)");
    if let Some(g) = gov {
        g.enter_phase(Phase::Unravel);
    }
    let t_unr = Instant::now();
    let unravel_result = match gov {
        Some(g) => unravel_governed(&tableau, &closure, &problem.props, c0, problem.mode, g),
        None => Ok(unravel_mode(
            &tableau,
            &closure,
            &problem.props,
            c0,
            problem.mode,
        )),
    };
    let unraveled = match unravel_result {
        Ok(u) => u,
        Err(reason) => {
            stats.unravel_time = t_unr.elapsed();
            return Ok((aborted(Phase::Unravel, reason, None, stats, start), fills));
        }
    };
    // Quotient by labeled bisimulation: the unraveling duplicates states
    // (one copy per fragment occurrence); the quotient collapses
    // behaviorally identical copies. CTL satisfaction under both
    // semantics is bisimulation-invariant, so all verified properties
    // are preserved, and the extracted program needs far fewer
    // disambiguating shared variables.
    let q = bisimulation_quotient(&unraveled.model);
    let model = q.model;
    let state_tableau: Vec<NodeId> = q
        .representative
        .iter()
        .map(|&r| unraveled.state_tableau[r.index()])
        .collect();
    // Verify the quotient model in full (including the Theorem 7.1.9
    // label-soundness check, which is only meaningful while every state
    // still corresponds to one tableau AND-node).
    let pre_unr = Unraveled {
        model,
        state_tableau: state_tableau.clone(),
    };
    stats.unravel_time = t_unr.elapsed();
    let t_ver = Instant::now();
    let full_verification = verify(problem, &closure, &tableau, &pre_unr);
    stats.verify_time = t_ver.elapsed();
    // Semantic minimization: merge same-valuation copies as long as the
    // model keeps satisfying the synthesis problem's requirements.
    if let Some(g) = gov {
        g.enter_phase(Phase::Minimize);
    }
    let t_min = Instant::now();
    let minimize_result = match gov {
        Some(g) => semantic_minimize_governed(problem, pre_unr.model, plan.minimize, g),
        None => Ok(semantic_minimize_with_threads(
            problem,
            pre_unr.model,
            plan.minimize,
        )),
    };
    let (model, merge_map, minimize_profile) = match minimize_result {
        Ok(ok) => ok,
        Err(a) => {
            stats.minimize_profile = a.profile;
            stats.minimize_time = t_min.elapsed();
            return Ok((aborted(Phase::Minimize, a.reason, None, stats, start), fills));
        }
    };
    stats.minimize_profile = minimize_profile;
    // Re-tag the minimized states: each final state keeps the tableau
    // node of the first pre-minimization state merged into it. (Labels
    // are exact on the pre-minimization model, where Theorem 7.1.9 is
    // checked; after merging they are indicative.)
    let state_tableau = {
        let mut tags: Vec<Option<NodeId>> = vec![None; model.len()];
        for (old, &new) in merge_map.iter().enumerate() {
            if tags[new.index()].is_none() {
                tags[new.index()] = Some(state_tableau[old]);
            }
        }
        tags.into_iter()
            .map(|t| t.expect("every final state has a source"))
            .collect::<Vec<NodeId>>()
    };
    stats.minimize_time = t_min.elapsed();
    stats.model_states = model.len();
    stats.fault_transitions = model.fault_edge_count();
    stats.program_transitions = model.edge_count() - stats.fault_transitions;
    let mut model = model;

    // Step 5: shared variables and program extraction, followed by the
    // in-pipeline extraction-verification loop. The interpreter
    // regenerates the extracted program's global structure under faults
    // and the semantic checks run on it (Corollary 7.1's "execution of
    // P generates M_F", now established mechanically instead of
    // assumed). On rejection, the guards of the arcs implicated by the
    // off-model counterexample configurations are strengthened from the
    // displacement fixpoint and the check repeats, up to a
    // governor-visible round cap; a non-converging loop degrades the
    // verification with a structured `ExtractionGap` failure instead of
    // returning a silently-wrong program.
    if let Some(g) = gov {
        g.enter_phase(Phase::Extract);
    }
    let t_ext = Instant::now();
    let intro = introduce_shared_variables(&mut model);
    let mut program = extract_program(&model, &problem.props, problem.arena.num_procs(), &intro);
    let mut extract_profile = ExtractProfile {
        model_states: model.len(),
        shared_vars: intro.vars.len(),
        ..ExtractProfile::default()
    };
    let refine_cap = gov
        .and_then(|g| g.budget().max_extract_refine_rounds)
        .unwrap_or(DEFAULT_EXTRACT_REFINE_ROUNDS);
    let model_contents: std::collections::HashSet<&ftsyn_kripke::State> =
        model.state_ids().map(|s| model.state(s)).collect();
    let mut extraction_failure: Option<String> = None;
    loop {
        if let Some(g) = gov {
            if let Err(reason) = g.check_realtime() {
                stats.extract_time = t_ext.elapsed();
                stats.extract_profile = extract_profile;
                return Ok((aborted(Phase::Extract, reason, None, stats, start), fills));
            }
        }
        let ex = match explore(&program, &problem.faults, &problem.props) {
            Ok(ex) => ex,
            Err(e) => {
                extraction_failure = Some(format!("extracted program is not executable: {e}"));
                break;
            }
        };
        extract_profile.explored_states = ex.kripke.len();
        let off_configs: Vec<Config> = ex
            .kripke
            .state_ids()
            .filter(|&s| !model_contents.contains(ex.kripke.state(s)))
            .map(|s| ex.configs[s.index()].clone())
            .collect();
        extract_profile.off_model_states = off_configs.len();
        if verify_semantic_ok(problem, &ex.kripke) {
            extract_profile.verified = true;
            break;
        }
        if extract_profile.refinement_rounds >= refine_cap {
            let summary = verify_semantic(problem, &ex.kripke).failure_summary();
            extraction_failure = Some(format!(
                "extraction verification still rejects after {} refinement round(s): \
                 {summary} ({} explored vs {} model states)",
                extract_profile.refinement_rounds,
                ex.kripke.len(),
                model.len(),
            ));
            break;
        }
        let changed = refine_guards(problem, &model, &intro, &mut program);
        extract_profile.refinement_rounds += 1;
        extract_profile.refined_arcs += changed;
        if changed == 0 {
            let summary = verify_semantic(problem, &ex.kripke).failure_summary();
            extraction_failure = Some(format!(
                "extraction refinement made no progress: {summary} \
                 ({} explored vs {} model states)",
                ex.kripke.len(),
                model.len(),
            ));
            break;
        }
    }
    drop(model_contents);
    stats.extract_profile = extract_profile;
    stats.extract_time = t_ext.elapsed();

    // Final verification of the minimized model: the three semantic
    // requirements of Section 3 re-checked on the exact structure the
    // program was extracted from, folded together with the full
    // pre-minimization verification (which alone can check label
    // soundness, Theorem 7.1.9). Every pre-minimization failure is
    // surfaced with its stage tagged, not just the label-related ones.
    let t_ver = Instant::now();
    let mut verification = verify_semantic(problem, &model);
    verification.merge_pre_minimization(full_verification);
    if let Some(msg) = extraction_failure {
        verification.extraction_ok = false;
        verification
            .failures
            .push(Failure::pipeline(FailureKind::ExtractionGap, msg));
    }
    stats.verify_time += t_ver.elapsed();
    stats.elapsed = start.elapsed();
    stats.residual_time = stats.elapsed.saturating_sub(stats.phase_total());

    Ok((
        SynthesisOutcome::Solved(Box::new(Synthesized {
            model,
            program,
            artifacts: Some(TableauArtifacts {
                closure,
                tableau,
                state_tableau,
            }),
            stats,
            verification,
        })),
        fills,
    ))
}
