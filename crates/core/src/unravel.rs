//! Model construction by unraveling (step 4 of the synthesis method).
//!
//! Fragments are pasted together: each frontier node (a copy of some
//! AND-node `c`) is either identified with the root of an already
//! directly-embedded copy of `FFRAG[c]`, or replaced by a fresh copy of
//! `FFRAG[c]`. Since each fragment is embedded at most once, the map
//! from `c` to its embedded root implements the paper's
//! "directly embedded" test as a hash lookup, and the process terminates
//! with an empty frontier (Proposition 7.1.8, step 4).

use crate::fragment::{build_ffrag_cached, FulfillmentCache};
use ftsyn_ctl::{Closure, LabelSet, PropTable};
use ftsyn_kripke::{FtKripke, State, StateId, TransKind};
use ftsyn_tableau::{valuation_of, AbortReason, CertMode, EdgeKind, Governor, NodeId, Tableau};
use std::collections::{HashMap, VecDeque};

/// Frontier pops between governor deadline polls. Unraveling has no
/// dedicated work cap (it is polynomial in the pruned tableau, which is
/// already capped), so only the deadline and the cancel flag apply.
const REALTIME_POLL_INTERVAL: usize = 256;

/// The unraveled model, with bookkeeping connecting model states back to
/// tableau AND-nodes (needed for verification and extraction).
#[derive(Clone, Debug)]
pub struct Unraveled {
    /// The fault-tolerant Kripke structure `M`.
    pub model: FtKripke,
    /// For every state: the tableau AND-node it is a copy of.
    pub state_tableau: Vec<NodeId>,
}

impl Unraveled {
    /// The (full, temporal) label of a model state.
    pub fn state_label<'a>(&self, t: &'a Tableau, s: StateId) -> &'a LabelSet {
        &t.node(self.state_tableau[s.index()]).label
    }
}

#[derive(Clone, Debug)]
struct MNode {
    tableau_id: NodeId,
    succ: Vec<(EdgeKind, usize)>,
    frontier: bool,
    /// When a frontier node is identified with an embedded root, this
    /// points at that root.
    redirect: Option<usize>,
}

/// Unravels the pruned tableau into a model, starting from the chosen
/// initial AND-node `c0 ∈ Blocks(d0)`.
pub fn unravel(t: &Tableau, closure: &Closure, props: &PropTable, c0: NodeId) -> Unraveled {
    unravel_mode(t, closure, props, c0, CertMode::FaultFree)
}

/// [`unravel`] with an explicit certificate mode (Section 8.3).
pub fn unravel_mode(
    t: &Tableau,
    closure: &Closure,
    props: &PropTable,
    c0: NodeId,
    mode: CertMode,
) -> Unraveled {
    unravel_core(t, closure, props, c0, mode, None)
        .unwrap_or_else(|reason| panic!("ungoverned unravel aborted: {reason}"))
}

/// [`unravel_mode`] under a [`Governor`]: polls the deadline and cancel
/// flag every [`REALTIME_POLL_INTERVAL`] frontier pops.
pub fn unravel_governed(
    t: &Tableau,
    closure: &Closure,
    props: &PropTable,
    c0: NodeId,
    mode: CertMode,
    gov: &Governor,
) -> Result<Unraveled, AbortReason> {
    unravel_core(t, closure, props, c0, mode, Some(gov))
}

fn unravel_core(
    t: &Tableau,
    closure: &Closure,
    props: &PropTable,
    c0: NodeId,
    mode: CertMode,
    gov: Option<&Governor>,
) -> Result<Unraveled, AbortReason> {
    let mut nodes: Vec<MNode> = Vec::new();
    let mut root_of: HashMap<NodeId, usize> = HashMap::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    // Fulfillment certificates are whole-tableau computations shared by
    // every fragment this unraveling embeds.
    let mut certs = FulfillmentCache::default();

    // Embeds FFRAG[c]; returns the index of its root.
    let embed = |c: NodeId,
                     nodes: &mut Vec<MNode>,
                     root_of: &mut HashMap<NodeId, usize>,
                     queue: &mut VecDeque<usize>,
                     certs: &mut FulfillmentCache|
     -> usize {
        let frag = build_ffrag_cached(t, closure, c, mode, certs);
        // Copy only the nodes reachable from the fragment root (frontier
        // merging can orphan duplicates). Fragment node indices are
        // dense, so a plain vec keeps the mapping — and, crucially, lets
        // the frontier be enqueued in fragment-index order, making the
        // model's state numbering a pure function of the tableau.
        let mut map: Vec<Option<usize>> = vec![None; frag.nodes.len()];
        let mut stack = vec![frag.root];
        map[frag.root] = Some(nodes.len());
        nodes.push(MNode {
            tableau_id: frag.nodes[frag.root].tableau_id,
            succ: Vec::new(),
            frontier: frag.nodes[frag.root].frontier,
            redirect: None,
        });
        while let Some(i) = stack.pop() {
            let succ: Vec<(EdgeKind, usize)> = frag.nodes[i].succ.clone();
            for (kind, j) in succ {
                let jj = if let Some(jj) = map[j] {
                    jj
                } else {
                    let jj = nodes.len();
                    map[j] = Some(jj);
                    nodes.push(MNode {
                        tableau_id: frag.nodes[j].tableau_id,
                        succ: Vec::new(),
                        frontier: frag.nodes[j].frontier,
                        redirect: None,
                    });
                    stack.push(j);
                    jj
                };
                let ii = map[i].expect("visited");
                nodes[ii].succ.push((kind, jj));
            }
        }
        for (fi, &mi) in map.iter().enumerate() {
            if let Some(mi) = mi {
                if frag.nodes[fi].frontier {
                    queue.push_back(mi);
                }
            }
        }
        let r = map[frag.root].expect("root mapped");
        root_of.insert(c, r);
        r
    };

    let r0 = embed(c0, &mut nodes, &mut root_of, &mut queue, &mut certs);

    let mut pops = 0usize;
    while let Some(s) = queue.pop_front() {
        pops += 1;
        if let Some(g) = gov {
            if pops.is_multiple_of(REALTIME_POLL_INTERVAL) {
                g.check_realtime()?;
            }
        }
        if nodes[s].redirect.is_some() || !nodes[s].frontier {
            continue;
        }
        let c = nodes[s].tableau_id;
        let target = match root_of.get(&c) {
            Some(&r) => r,
            None => embed(c, &mut nodes, &mut root_of, &mut queue, &mut certs),
        };
        nodes[s].redirect = Some(target);
        nodes[s].frontier = false;
    }

    // Resolve redirects and build the Kripke structure. Redirect chains
    // have length ≤ 1 (roots are never frontier, hence never redirected).
    let resolve = |i: usize, nodes: &[MNode]| -> usize { nodes[i].redirect.unwrap_or(i) };

    let mut model = FtKripke::new();
    let mut state_tableau: Vec<NodeId> = Vec::new();
    let mut state_of: Vec<Option<StateId>> = vec![None; nodes.len()];
    for (i, n) in nodes.iter().enumerate() {
        if n.redirect.is_some() {
            continue;
        }
        let valuation = valuation_of(closure, props, &t.node(n.tableau_id).label);
        let sid = model.push_state(State::new(valuation));
        state_of[i] = Some(sid);
        state_tableau.push(n.tableau_id);
    }
    let state_at = |i: usize, state_of: &[Option<StateId>]| state_of[i].expect("kept state");
    for (i, n) in nodes.iter().enumerate() {
        if n.redirect.is_some() {
            continue;
        }
        let from = state_at(i, &state_of);
        for &(kind, j) in &n.succ {
            let to = state_at(resolve(j, &nodes), &state_of);
            match kind {
                EdgeKind::Proc(p) => model.add_edge(from, TransKind::Proc(p), to),
                EdgeKind::Fault(a) => model.add_edge(from, TransKind::Fault(a), to),
                // Dummy self-loops are dropped: the state becomes a dead
                // end, and the finite-fullpath semantics of the checker
                // agrees with the tableau's treatment.
                EdgeKind::Dummy | EdgeKind::Unlabeled => {}
            }
        }
    }
    model.add_init(state_at(r0, &state_of));

    Ok(Unraveled {
        model,
        state_tableau,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsyn_ctl::{parse::parse, FormulaArena, FormulaId, Owner};
    use ftsyn_kripke::{Checker, Semantics};
    use ftsyn_tableau::{apply_deletion_rules, build as build_tableau, FaultSpec};

    fn synthesize_plain(
        spec: &str,
    ) -> (FormulaArena, PropTable, Closure, Tableau, Unraveled, FormulaId) {
        let mut props = PropTable::new();
        props.add("p", Owner::Process(0)).unwrap();
        props.add("q", Owner::Process(0)).unwrap();
        let mut arena = FormulaArena::new(1);
        let f = parse(&mut arena, &mut props, spec, true).unwrap();
        let cl = Closure::build(&mut arena, &props, &[f]);
        let mut root = cl.empty_label();
        root.insert(cl.index_of(f).unwrap());
        let mut t = build_tableau(&cl, &props, root, &FaultSpec::none());
        apply_deletion_rules(&mut t, &cl);
        assert!(t.alive(t.root()), "spec must be satisfiable");
        let c0 = t
            .alive_succ(t.root(), |_| true)
            .map(|(_, c)| c)
            .next()
            .unwrap();
        let u = unravel(&t, &cl, &props, c0);
        (arena, props, cl, t, u, f)
    }

    #[test]
    fn model_satisfies_spec_at_initial_state() {
        for spec in [
            "p & AG EX1 true",
            "~p & AF p & AG EX1 true",
            "p & AG(EX1 true) & AG(p -> AX1 ~p) & AG(~p -> AX1 p)",
            "~p & EF p & AG EX1 true",
            "p & AG(p -> EX1 p)",
        ] {
            let (arena, _props, _cl, _t, u, f) = synthesize_plain(spec);
            let init = u.model.init_states()[0];
            let mut ck = Checker::new(&u.model, Semantics::FaultFree);
            assert!(
                ck.holds(&arena, f, init),
                "model of `{spec}` must satisfy it at the initial state"
            );
        }
    }

    #[test]
    fn every_state_satisfies_its_whole_label() {
        // Theorem 7.1.9 (soundness), checked mechanically.
        let (arena, _props, cl, t, u, _f) = synthesize_plain(
            "~p & AF p & AG EX1 true & AG(p -> AF ~p)",
        );
        let mut ck = Checker::new(&u.model, Semantics::FaultFree);
        for s in u.model.state_ids() {
            let label = u.state_label(&t, s);
            for idx in label.iter() {
                let fid = cl.entry(idx).id;
                assert!(
                    ck.holds(&arena, fid, s),
                    "state {s:?} must satisfy label formula {fid:?}"
                );
            }
        }
    }

    #[test]
    fn unraveling_terminates_and_is_finite() {
        let (_, _, _, t, u, _) = synthesize_plain("~p & AF p & AG EX1 true");
        let (and_alive, _) = t.alive_counts();
        // |M| is bounded by Σ|FFRAG| ≤ (#AND)².
        assert!(u.model.len() <= and_alive * and_alive + and_alive);
        assert!(!u.model.is_empty());
    }

    #[test]
    fn dead_end_states_allowed_for_pure_propositional_specs() {
        let (arena, _, _, _, u, f) = synthesize_plain("p & q");
        let init = u.model.init_states()[0];
        assert!(u.model.succ(init).is_empty(), "dummy self-loop dropped");
        let mut ck = Checker::new(&u.model, Semantics::FaultFree);
        assert!(ck.holds(&arena, f, init));
    }
}
